"""Ablation: cost of the shadow return-address stack (section 5).

Measures the per-call overhead the InfoMem shadow stack adds on top of
the MPU model, using the call-heavy recursive fib workload and the
Figure-3 benchmarks.  The paper floats this hardening as future work;
this quantifies what it would have cost.
"""

import pytest

from benchmarks.conftest import write_result
from repro.aft import AftPipeline, AppSource, IsolationModel
from repro.apps.catalog import load_benchmarks
from repro.kernel.machine import AmuletMachine

FIB = """
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int on_run(int n) { return fib(n); }
"""


def _cycles(shadow: bool, app_source, app, handler, arg) -> int:
    firmware = AftPipeline(IsolationModel.MPU,
                           shadow_stack=shadow).build(app_source)
    machine = AmuletMachine(firmware)
    if app == "activity":
        machine.dispatch("activity", "act_init", [0])
    machine.dispatch(app, handler, [arg])          # warm FRAM state
    return machine.dispatch(app, handler, [arg]).cycles


@pytest.fixture(scope="module")
def measurements():
    fib_app = [AppSource("fib", FIB, ["on_run"])]
    rows = {}
    rows["fib(12) [call-heavy]"] = (
        _cycles(False, fib_app, "fib", "on_run", 12),
        _cycles(True, fib_app, "fib", "on_run", 12))
    activity = load_benchmarks(["activity"])
    rows["Activity Case 2"] = (
        _cycles(False, activity, "activity", "activity_case2", 7),
        _cycles(True, activity, "activity", "activity_case2", 7))
    quicksort = load_benchmarks(["quicksort"])
    rows["Quicksort"] = (
        _cycles(False, quicksort, "quicksort", "quicksort_run", 7),
        _cycles(True, quicksort, "quicksort", "quicksort_run", 7))
    return rows


def test_shadow_stack_cost(measurements, results_dir, benchmark):
    benchmark(lambda: measurements)
    lines = ["Ablation: shadow return-address stack cost "
             "(MPU model, cycles per run)",
             f"{'Workload':<24}{'plain MPU':>12}{'+shadow':>12}"
             f"{'overhead':>10}"]
    for name, (plain, shadowed) in measurements.items():
        pct = 100.0 * (shadowed - plain) / plain
        lines.append(f"{name:<24}{plain:>12}{shadowed:>12}"
                     f"{pct:>9.1f}%")
    write_result(results_dir, "ablation_shadow", "\n".join(lines))

    for _name, (plain, shadowed) in measurements.items():
        assert shadowed > plain

    # call-heavy code pays the most (two InfoMem round trips per call)
    fib_pct = (measurements["fib(12) [call-heavy]"][1]
               / measurements["fib(12) [call-heavy]"][0])
    qs_pct = (measurements["Quicksort"][1]
              / measurements["Quicksort"][0])
    assert fib_pct > qs_pct


def test_benchmark_shadow_dispatch(benchmark):
    firmware = AftPipeline(IsolationModel.MPU, shadow_stack=True) \
        .build([AppSource("fib", FIB, ["on_run"])])
    machine = AmuletMachine(firmware)
    benchmark(machine.dispatch, "fib", "on_run", [8])
