"""Ablation: the "advanced MPU" the paper envisions (section 5).

*"MPUs that can protect all of memory and support 4 or more regions
would negate the need for our compiler-inserted bounds checks."*

The ADVANCED_MPU model removes every compiler check and enforces both
bounds with a hypothetical full-coverage MPU (same per-switch
reconfiguration cost).  Comparing its slowdown against the real-MPU
hybrid quantifies the headroom the authors point at.
"""

import pytest

from benchmarks.conftest import write_result
from repro.aft import AftPipeline, IsolationModel
from repro.apps.catalog import load_benchmarks
from repro.experiments.figure3 import CASES, run_figure3
from repro.kernel.machine import AmuletMachine

MODELS = (IsolationModel.NO_ISOLATION, IsolationModel.MPU,
          IsolationModel.ADVANCED_MPU)


@pytest.fixture(scope="module")
def figure3_advanced():
    return run_figure3(models=MODELS, runs=50)


def test_advanced_mpu_headroom(figure3_advanced, results_dir, benchmark):
    benchmark(lambda: figure3_advanced)
    result = figure3_advanced
    lines = ["Ablation: real MSP430 MPU (hybrid) vs hypothetical "
             "advanced MPU (no compiler checks)",
             f"{'Application':<18}{'MPU (hybrid)':>16}"
             f"{'Advanced MPU':>16}"]
    for case in result.cycles:
        mpu = result.slowdown_percent(case, IsolationModel.MPU)
        adv = result.slowdown_percent(case,
                                      IsolationModel.ADVANCED_MPU)
        lines.append(f"{case:<18}{mpu:>15.1f}%{adv:>15.1f}%")
    write_result(results_dir, "ablation_mpu4", "\n".join(lines))

    for case in result.cycles:
        mpu = result.slowdown_percent(case, IsolationModel.MPU)
        adv = result.slowdown_percent(case,
                                      IsolationModel.ADVANCED_MPU)
        # no compiler checks -> strictly less slowdown than the hybrid
        assert adv < mpu
        # and essentially free on compute-heavy code (only the gates
        # differ from no isolation; these benchmarks dispatch once)
        assert adv < 3.0


def test_advanced_mpu_still_isolates(benchmark):
    """Removing the checks must not remove the protection."""
    benchmark(lambda: None)
    from repro.aft.phases import AppSource
    firmware = AftPipeline(IsolationModel.ADVANCED_MPU).build([
        AppSource("evil",
                  "int on_e(int x) { return *(int *)0x2000; }",
                  ["on_e"])])
    machine = AmuletMachine(firmware)
    assert machine.dispatch("evil", "on_e", [0]).faulted


def test_benchmark_advanced_dispatch(benchmark):
    firmware = AftPipeline(IsolationModel.ADVANCED_MPU).build(
        load_benchmarks(["synthetic"]))
    machine = AmuletMachine(firmware)
    benchmark(machine.dispatch, "synthetic", "bench_empty", [0])
