"""Extension: flash footprint of each isolation method (see
repro.experiments.code_size).  Not a paper artifact — it fills in the
size column the software-isolation literature usually reports.
"""

import pytest

from benchmarks.conftest import write_result
from repro.aft.models import IsolationModel
from repro.experiments.code_size import run_code_size


@pytest.fixture(scope="module")
def code_size():
    return run_code_size()


def test_code_size_table(code_size, results_dir, benchmark):
    benchmark(code_size.render)
    text = code_size.render()
    write_result(results_dir, "code_size", text)
    assert code_size.shape_holds()


def test_software_only_biggest_inline_footprint(code_size, benchmark):
    """Two inline bounds per site beats one: SoftwareOnly > MPU."""
    benchmark(lambda: code_size)
    assert code_size.total(IsolationModel.SOFTWARE_ONLY) > \
        code_size.total(IsolationModel.MPU)


def test_mpu_size_overhead_moderate(code_size, benchmark):
    """The hybrid stays under a 60% flash premium on this suite."""
    benchmark(lambda: code_size)
    assert 0 < code_size.overhead_percent(IsolationModel.MPU) < 60
