"""Figure 2 — weekly isolation overhead and battery impact for the
nine-app suite under Feature Limited / MPU / Software Only.

Prints the figure's two series (billions of cycles per week, battery
lifetime impact %) per app and model, and asserts the paper's headline
claim: every app stays under 0.5 % battery impact with the MPU or
Software Only methods.
"""

import pytest

from benchmarks.conftest import write_result
from repro.apps.manifests import MANIFESTS
from repro.experiments.figure2 import FIGURE2_MODELS, run_figure2
from repro.experiments.table1 import run_table1
from repro.profiler.arp import ArpProfiler
from repro.apps.catalog import load_suite


@pytest.fixture(scope="module")
def figure2():
    table1 = run_table1(runs=100)
    return run_figure2(table1=table1, arp_samples=64)


def test_figure2_regeneration(figure2, results_dir, benchmark):
    benchmark(figure2.render)
    lines = [figure2.render(), ""]
    lines.append(f"max battery impact (MPU / Software Only): "
                 f"{figure2.max_battery_impact():.4f}%")
    lines.append("paper claim: < 0.5% for all applications")
    write_result(results_dir, "figure2", "\n".join(lines))
    assert figure2.shape_holds()


def test_figure2_accelerometer_apps_dominate(figure2, benchmark):
    """FallDetection and Pedometer are the figure's tallest bars."""
    benchmark(lambda: figure2)
    from repro.aft.models import IsolationModel
    mpu = IsolationModel.MPU
    heavy = {"falldetection", "pedometer"}
    heavy_min = min(figure2.overheads[a][mpu].cycles_per_week
                    for a in heavy)
    light_max = max(figure2.overheads[a][mpu].cycles_per_week
                    for a in ("clock", "sun", "temperature",
                              "batterymeter"))
    assert heavy_min > light_max


def test_figure2_every_model_has_every_app(figure2, benchmark):
    benchmark(lambda: figure2)
    assert set(figure2.overheads) == set(MANIFESTS)
    for by_model in figure2.overheads.values():
        assert set(by_model) == set(FIGURE2_MODELS)


def test_benchmark_arp_profiling(benchmark):
    """Wall-clock cost of one ARP handler profile (counting build)."""
    profiler = ArpProfiler(load_suite(["clock"]))
    from repro.kernel.events import EventType
    benchmark(profiler.profile_handler, "clock", "on_second",
              EventType.CLOCK_TICK, 8)
