"""Table 1 — average cycle count for basic memory-isolation operations.

Full-scale regeneration at the paper's 200-run protocol, plus
pytest-benchmark timings of the underlying single operations (one event
dispatch, one memory-access loop) so simulator throughput regressions
show up.
"""

import pytest

from benchmarks.conftest import write_result
from repro.aft import AftPipeline, AppSource, IsolationModel
from repro.apps.catalog import load_benchmarks
from repro.experiments.table1 import PAPER_TABLE1, run_table1
from repro.kernel.machine import AmuletMachine


@pytest.fixture(scope="module")
def table1():
    return run_table1(runs=200)


def test_table1_regeneration(table1, results_dir, benchmark):
    benchmark(table1.render)
    lines = [table1.render(), ""]
    lines.append("Paper Table 1 (cycles):")
    for model, (access, switch) in PAPER_TABLE1.items():
        lines.append(f"  {model.display:<18} access={access:>3} "
                     f"switch={switch:>3}")
    lines.append("")
    lines.append(f"qualitative shape holds: {table1.shape_holds()}")
    write_result(results_dir, "table1", "\n".join(lines))
    assert table1.shape_holds()


def test_table1_context_switch_magnitudes(table1, benchmark):
    """Context-switch costs land near the paper's absolute numbers
    (same gate structure, same cycle tables)."""
    benchmark(lambda: table1)
    for model, (paper_access, paper_switch) in PAPER_TABLE1.items():
        measured = table1.costs[model].context_switch
        assert paper_switch * 0.5 < measured < paper_switch * 1.5


@pytest.fixture(scope="module")
def mpu_machine():
    firmware = AftPipeline(IsolationModel.MPU).build(
        load_benchmarks(["synthetic"]))
    return AmuletMachine(firmware)


def test_benchmark_dispatch(benchmark, mpu_machine):
    """Wall-clock cost of simulating one MPU-model context switch."""
    benchmark(mpu_machine.dispatch, "synthetic", "bench_empty", [0])


def test_benchmark_memory_access_loop(benchmark, mpu_machine):
    """Wall-clock cost of simulating a 64-access checked loop."""
    benchmark(mpu_machine.dispatch, "synthetic", "bench_mem", [64])
