"""Ablation: per-app stacks vs. a shared stack with bzero.

Paper section 3: *"If we were to stick with the same single-stack
model, we would need to bzero the stack region every time we switched
apps, lest the new app glean information from the stack tailings left
behind by the prior app.  We chose instead to allocate a distinct
region of memory for each app's stack, removing this cost ... at the
cost of increased memory usage."*

This ablation measures both sides of that trade:

* the stack-swap instructions the separate-stack design actually pays
  per context switch (SoftwareOnly vs NoIsolation dispatch delta), and
* the cycles a bzero of the shared stack region would cost, by
  executing a real word-fill loop on the simulated CPU.
"""

import pytest

from benchmarks.conftest import write_result
from repro.aft import AftPipeline, AppSource, IsolationModel
from repro.asm.assembler import assemble
from repro.asm.linker import Linker, LinkScript
from repro.kernel.machine import AmuletMachine
from repro.msp430.cpu import Cpu
from repro.msp430.memory import MemoryMap

EMPTY_APP = "int on_e(int x) { return x; }"

BZERO_ASM = """
        .text
        .global __bzero
; R12 = start address, R13 = byte count (even)
__bzero:
        RRA R13             ; words
        TST R13
        JEQ .bz_done
.bz_loop:
        MOV #0, 0(R12)
        ADD #2, R12
        DEC R13
        JNE .bz_loop
.bz_done:
        RET
        .global __start
__start:
        CALL #__bzero
        MOV #1, &0x01F2
.park:  JMP .park
"""


def measure_bzero(byte_count: int) -> int:
    """Execute a real bzero of ``byte_count`` bytes; returns cycles."""
    script = LinkScript()
    script.region("fram", MemoryMap.FRAM_START, MemoryMap.FRAM_END)
    script.place_rule("*", "fram")
    image = Linker(script).place([assemble(BZERO_ASM, "bzero")]) \
        .resolve()
    cpu = Cpu()
    image.load_into(cpu.memory)
    cpu.memory.add_io(0x01F2, write=lambda a, v: cpu.halt())
    cpu.regs.pc = image.symbol("__start")
    cpu.regs.sp = 0x2400
    cpu.regs.write(12, 0x1C00)
    cpu.regs.write(13, byte_count)
    cpu.run(max_cycles=1_000_000)
    return cpu.cycles


def dispatch_cycles(model) -> int:
    firmware = AftPipeline(model).build(
        [AppSource("probe", EMPTY_APP, ["on_e"])])
    machine = AmuletMachine(firmware)
    machine.dispatch("probe", "on_e", [0])
    return machine.dispatch("probe", "on_e", [0]).cycles


@pytest.fixture(scope="module")
def numbers():
    swap_cost = (dispatch_cycles(IsolationModel.SOFTWARE_ONLY)
                 - dispatch_cycles(IsolationModel.NO_ISOLATION))
    bzero_costs = {size: measure_bzero(size)
                   for size in (64, 128, 256, 512)}
    return swap_cost, bzero_costs


def test_stack_design_tradeoff(numbers, results_dir, benchmark):
    benchmark(lambda: numbers)
    swap_cost, bzero_costs = numbers
    lines = ["Ablation: per-app stacks vs shared stack + bzero "
             "(cycles per context switch)",
             f"  separate stacks (paper design): {swap_cost} "
             f"(stack-pointer swap)"]
    for size, cycles in bzero_costs.items():
        lines.append(f"  shared stack, bzero {size:>4}B  : {cycles}")
    write_result(results_dir, "ablation_stack", "\n".join(lines))
    # The paper's choice wins for any realistic stack size.
    assert all(swap_cost < cycles for cycles in bzero_costs.values())


def test_bzero_scales_linearly(numbers, benchmark):
    benchmark(lambda: numbers)
    _swap, costs = numbers
    assert costs[512] > 3.5 * costs[128]


def test_benchmark_bzero_simulation(benchmark):
    benchmark(measure_bzero, 256)
