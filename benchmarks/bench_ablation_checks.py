"""Ablation: why is Feature Limited the *most* expensive per access?

The original Amulet toolchain implemented its array bounds check
out-of-line (a helper call) — reproduced by
:class:`~repro.aft.models.FeatureLimitedPolicy`.  This ablation swaps
in an inlined compare (the same shape the MPU/Software-Only models
use) and measures the per-access difference, quantifying how much of
Table 1's 41-cycle Feature-Limited access is the call overhead.
"""

import pytest

from benchmarks.conftest import write_result
from repro.aft import AftPipeline, IsolationModel
from repro.aft.models import FeatureLimitedPolicy
from repro.apps.catalog import load_benchmarks
from repro.experiments.table1 import _measure_loop
from repro.kernel.machine import AmuletMachine


class InlineArrayCheckPolicy(FeatureLimitedPolicy):
    """Feature Limited with the check inlined instead of called."""

    name = "feature-limited-inline"

    def array_index_check(self, gen, reg: str, length: int) -> None:
        ok = gen._new_label("idxok")
        gen.emit(f"CMP #{length}, {reg}")
        gen.emit(f"JLO {ok}")
        gen.emit("BR #__fault")
        gen.emit_label(ok)


def _per_access(policy_factory):
    pipeline = AftPipeline(IsolationModel.FEATURE_LIMITED,
                           policy_factory=policy_factory)
    firmware = pipeline.build(load_benchmarks(["synthetic"]))
    machine = AmuletMachine(firmware)
    return _measure_loop(machine, "bench_mem", 64, runs=100) / 64


@pytest.fixture(scope="module")
def ablation():
    helper = _per_access(None)    # stock Feature Limited
    inline = _per_access(
        lambda name, entries: InlineArrayCheckPolicy(name, entries))
    return helper, inline


def test_out_of_line_check_is_the_bottleneck(ablation, results_dir, benchmark):
    benchmark(lambda: ablation)
    helper, inline = ablation
    saved = helper - inline
    text = "\n".join([
        "Ablation: Feature-Limited array check placement",
        f"  out-of-line helper call (paper) : {helper:6.1f} "
        f"cycles/access",
        f"  inlined compare (ablation)      : {inline:6.1f} "
        f"cycles/access",
        f"  call overhead                   : {saved:6.1f} "
        f"cycles/access",
    ])
    write_result(results_dir, "ablation_checks", text)
    # the helper call costs at least a CALL+RET (8 cycles) extra
    assert saved >= 8


def test_inline_check_still_isolates(results_dir, benchmark):
    """Correctness is preserved: the inlined variant still faults on an
    out-of-bounds index."""
    benchmark(lambda: None)
    from repro.aft.phases import AppSource
    pipeline = AftPipeline(
        IsolationModel.FEATURE_LIMITED,
        policy_factory=lambda n, e: InlineArrayCheckPolicy(n, e))
    firmware = pipeline.build([AppSource(
        "probe", "int a[4]; int on_e(int i) { return a[i]; }",
        ["on_e"])])
    machine = AmuletMachine(firmware)
    assert not machine.dispatch("probe", "on_e", [3]).faulted
    assert machine.dispatch("probe", "on_e", [99]).faulted


def test_benchmark_helper_check_build(benchmark):
    """Wall-clock cost of a Feature-Limited firmware build."""
    benchmark(lambda: AftPipeline(IsolationModel.FEATURE_LIMITED)
              .build(load_benchmarks(["synthetic"])))
