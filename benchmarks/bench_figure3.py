"""Figure 3 — percentage slowdown of the benchmark applications
(Activity Case 1, Activity Case 2, Quicksort) per memory model,
at the paper's 200-run protocol.
"""

import pytest

from benchmarks.conftest import write_result
from repro.aft import AftPipeline, IsolationModel
from repro.apps.catalog import load_benchmarks
from repro.experiments.figure3 import run_figure3
from repro.kernel.machine import AmuletMachine


#: The paper runs 200 iterations; 100 keeps the full-suite benchmark
#: run tractable while staying well inside the 16-cycle timer's noise
#: floor (the workload is deterministic, so extra runs only average
#: away quantization).  Pass runs=200 to run_figure3 for the exact
#: paper protocol.
FIGURE3_RUNS = 100


@pytest.fixture(scope="module")
def figure3():
    return run_figure3(runs=FIGURE3_RUNS)


def test_figure3_regeneration(figure3, results_dir, benchmark):
    benchmark(figure3.render)
    lines = [figure3.render(), ""]
    lines.append("paper Figure 3: MPU lowest everywhere; Feature "
                 "Limited up to ~50% on Quicksort")
    lines.append(f"qualitative shape holds: {figure3.shape_holds()}")
    write_result(results_dir, "figure3", "\n".join(lines))
    assert figure3.shape_holds()


def test_figure3_quicksort_feature_limited_near_fifty_percent(figure3, benchmark):
    benchmark(lambda: figure3)
    fl = figure3.slowdown_percent("Quicksort",
                                  IsolationModel.FEATURE_LIMITED)
    assert 30 < fl < 70


def test_figure3_mpu_beats_software_only_on_compute(figure3, benchmark):
    """The paper's conclusion (2): the hybrid MPU approach outperforms
    software-only on computation-heavy code."""
    benchmark(lambda: figure3)
    for case in figure3.cycles:
        assert figure3.slowdown_percent(case, IsolationModel.MPU) < \
            figure3.slowdown_percent(case,
                                     IsolationModel.SOFTWARE_ONLY)


def test_benchmark_quicksort_simulation(benchmark):
    firmware = AftPipeline(IsolationModel.MPU).build(
        load_benchmarks(["quicksort"]))
    machine = AmuletMachine(firmware)
    benchmark(machine.dispatch, "quicksort", "quicksort_run", [3])
