"""Toolchain and simulator throughput benchmarks.

Not a paper artifact — these keep the reproduction's own moving parts
honest: AFT build time for the full nine-app suite, per-stage compiler
costs, and simulator instruction throughput.
"""

import pytest

from benchmarks.conftest import write_result
from repro.aft import AftPipeline, IsolationModel
from repro.apps.catalog import app_source, load_suite
from repro.asm.assembler import assemble
from repro.cc.codegen import compile_unit
from repro.cc.lexer import tokenize
from repro.cc.parser import parse
from repro.cc.runtime import runtime_asm
from repro.kernel.machine import AmuletMachine


def test_benchmark_lexer(benchmark):
    source = app_source("falldetection")
    benchmark(tokenize, source)


def test_benchmark_parser(benchmark):
    source = app_source("falldetection")
    benchmark(parse, source)


def test_benchmark_compile_unit(benchmark):
    from repro.kernel.api import amulet_api_table
    source = app_source("pedometer")
    benchmark(compile_unit, source, api=amulet_api_table())


def test_benchmark_assembler(benchmark):
    from repro.kernel.api import amulet_api_table
    asm = compile_unit(app_source("pedometer"),
                       api=amulet_api_table()).asm + runtime_asm()
    benchmark(assemble, asm)


def test_benchmark_full_suite_build(benchmark):
    benchmark.pedantic(
        lambda: AftPipeline(IsolationModel.MPU).build(load_suite()),
        rounds=3, iterations=1)


def test_simulator_throughput(results_dir, benchmark):
    """Simulated instructions per wall-clock second."""
    benchmark(lambda: None)
    import time
    firmware = AftPipeline(IsolationModel.NO_ISOLATION).build(
        load_suite(["pedometer"]))
    machine = AmuletMachine(firmware)
    start_insns = machine.cpu.instructions
    start = time.perf_counter()
    for i in range(300):
        machine.dispatch("pedometer", "on_accel",
                         [i * 37 & 0x7FF, i * 13 & 0x7FF, 1000])
    elapsed = time.perf_counter() - start
    executed = machine.cpu.instructions - start_insns
    ips = executed / elapsed
    write_result(results_dir, "simulator_throughput",
                 f"simulator throughput: {ips:,.0f} "
                 f"instructions/second ({executed} instructions in "
                 f"{elapsed:.2f}s)")
    assert ips > 10_000
