"""Simulated-instructions-per-second microbenchmark.

Tracks the simulator's raw speed across PRs.  Two workloads:

* ``raw_loop`` — a register-only countdown loop on a bare
  :class:`~repro.msp430.cpu.Cpu`, driven through :meth:`Cpu.run` (the
  production entry every experiment uses, so the superblock engine is
  what's measured; decode cache hot, no MPU): the ceiling of the
  execution engine itself.
* ``mpu_quicksort`` — repeated dispatches of the Quicksort benchmark
  app built under the MPU model on a full :class:`AmuletMachine`:
  the paper-experiment hot path (MPU enabled, checks inserted,
  memory-heavy).

``--step-only`` forces :attr:`Cpu.block_mode` off, measuring the
per-instruction interpreter alone — record one run with it and one
without for a before/after pair under identical harness conditions.

Run standalone (``PYTHONPATH=src python benchmarks/bench_sim_speed.py``)
to append a record to ``BENCH_sim.json`` at the repo root, or via
pytest for a quick smoke (``--seconds 0.2`` equivalent).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.msp430.cpu import Cpu, ExecutionLimitExceeded
from repro.msp430.encoding import encode_bytes
from repro.msp430.isa import Instruction, Opcode, imm, reg

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_sim.json"

CODE = 0x4400


def _load_raw_loop(cpu: Cpu) -> None:
    """MOV #N, R5 ; loop: DEC R5 ; JNE loop ; JMP start."""
    program = [
        Instruction(Opcode.MOV, src=imm(0x7FFF), dst=reg(5)),
        Instruction(Opcode.SUB, src=imm(1), dst=reg(5)),
        Instruction(Opcode.JNE, offset=-2),
        Instruction(Opcode.JMP, offset=-5),
    ]
    address = CODE
    for insn in program:
        blob = encode_bytes(insn, address)
        cpu.memory.load(address, blob)
        address += len(blob)
    cpu.regs.pc = CODE
    cpu.regs.sp = 0x2400


def bench_raw_loop(seconds: float = 1.0,
                   step_only: bool = False) -> float:
    """Instructions/second of a hot register-only loop via ``run()``."""
    cpu = Cpu()
    cpu.block_mode = not step_only
    _load_raw_loop(cpu)
    # warm the decode cache
    for _ in range(64):
        cpu.step()
    start_insns = cpu.instructions
    deadline = time.perf_counter() + seconds
    start = time.perf_counter()
    while time.perf_counter() < deadline:
        # the loop never halts, so every run() call spends its full
        # cycle budget — a realistic slice of experiment execution
        try:
            cpu.run(max_cycles=400_000)
        except ExecutionLimitExceeded:
            pass
    elapsed = time.perf_counter() - start
    return (cpu.instructions - start_insns) / elapsed


def bench_mpu_quicksort(seconds: float = 1.0,
                        step_only: bool = False) -> float:
    """Instructions/second of the paper's MPU-model Quicksort path."""
    from repro.aft.models import IsolationModel
    from repro.aft.phases import AftPipeline
    from repro.apps.catalog import load_benchmarks
    from repro.kernel.machine import AmuletMachine

    firmware = AftPipeline(IsolationModel.MPU).build(
        load_benchmarks(["quicksort"]))
    machine = AmuletMachine(firmware, step_only=step_only)
    machine.dispatch("quicksort", "quicksort_run", [1])  # warm up
    start_insns = machine.cpu.instructions
    deadline = time.perf_counter() + seconds
    start = time.perf_counter()
    run = 0
    while time.perf_counter() < deadline:
        result = machine.dispatch("quicksort", "quicksort_run",
                                  [run * 37 + 11])
        if result.faulted:
            raise RuntimeError(f"quicksort faulted: "
                               f"{result.fault.describe()}")
        run += 1
    elapsed = time.perf_counter() - start
    return (machine.cpu.instructions - start_insns) / elapsed


def run_benchmarks(seconds: float = 1.0, repeats: int = 3,
                   step_only: bool = False) -> dict:
    # Best-of-N, timeit-style: interference (other processes, CPU
    # steal on shared hosts) only ever *lowers* a rate, so the max
    # over repeats is the least-noisy estimate of the true speed.
    return {
        "raw_loop_insns_per_sec": round(max(
            bench_raw_loop(seconds, step_only)
            for _ in range(repeats))),
        "mpu_quicksort_insns_per_sec": round(max(
            bench_mpu_quicksort(seconds, step_only)
            for _ in range(repeats))),
    }


def record(label: str, seconds: float = 1.0, repeats: int = 3,
           step_only: bool = False) -> dict:
    """Append one measurement record to BENCH_sim.json."""
    entry = {
        "label": label,
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "seconds_per_workload": seconds,
        "repeats": repeats,
        "results": run_benchmarks(seconds, repeats, step_only),
    }
    if step_only:
        entry["step_only"] = True
    history = []
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text()).get("runs", [])
    history.append(entry)
    BENCH_JSON.write_text(json.dumps({"runs": history}, indent=2)
                          + "\n")
    return entry


# -- pytest smoke (fast; asserts the simulator actually executes) ------
def test_sim_speed_smoke():
    rate = bench_raw_loop(seconds=0.2)
    assert rate > 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="simulator instructions/second microbenchmark")
    parser.add_argument("--label", default="run",
                        help="label stored with the record")
    parser.add_argument("--seconds", type=float, default=1.0,
                        help="measurement window per workload")
    parser.add_argument("--repeats", type=int, default=3,
                        help="windows per workload; best is kept")
    parser.add_argument("--step-only", action="store_true",
                        help="disable superblocks (Cpu.block_mode "
                             "= False): measure the pure "
                             "per-instruction interpreter")
    args = parser.parse_args()
    entry = record(args.label, args.seconds, args.repeats,
                   args.step_only)
    for name, value in entry["results"].items():
        print(f"{name}: {value:,}")
    print(f"[appended to {BENCH_JSON}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
