"""Fleet campaign throughput microbenchmark.

Tracks how much simulated fleet time one wall-clock second buys:
``devices * sim-hours / s`` for a small-but-representative campaign
(jittered populations, rogues present, checkpoints written at the
default fleet cadence).  This is the number that says whether a
"100 devices for a week" study is an hour or a weekend.

Every recorded row is self-describing: the label carries the worker
count, the execution-cache state, and the host CPU count, because all
three change what the number means (``jobs=4`` on a 1-core container
measures scheduling overhead, not parallelism; a warm disk cache
skips the translation the cold number includes).

Cache states:

* ``default`` — whatever the environment provides (CI floor checks
  use this: it is what a user sees).
* ``cold``    — a fresh, empty on-disk execution cache per campaign
  and a cleared in-memory registry: the full translate-everything
  cost.
* ``warm``    — an unmeasured campaign first populates the disk
  cache, then the measured campaign starts from a cleared in-memory
  registry and revives translations from disk: the fresh-process
  steady state a resumed or repeated study enjoys.

``--trace`` applies the same three states to the cohort trace tier
(the ``.tbx`` stores): ``cold`` starts from an empty tier, ``warm``
lets an unmeasured campaign publish its dispatch traces first so the
measured one replays instead of executing — the repeated-study number
cross-unit trace sharing exists for.  ``--rejoin off`` disables
dispatch-boundary rejoin for before/after comparisons.

Run standalone (``PYTHONPATH=src python benchmarks/bench_fleet.py``)
to append a record to ``BENCH_fleet.json`` at the repo root, or via
pytest for a quick smoke.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_fleet.json"

#: enough devices for population variety (app subsets, rogues) while
#: keeping the standalone run under a minute on one core
DEVICES = 8
SIM_HOURS = 0.01            # 36 simulated seconds per device
MODEL = "mpu"

CACHE_STATES = ("default", "cold", "warm")


def _one_campaign(config, jobs: int, cohort: bool = False,
                  transport: str = "local",
                  rejoin: bool = True) -> float:
    """Wall seconds for one campaign into a throwaway directory."""
    from repro.fleet.executor import run_campaign

    out = Path(tempfile.mkdtemp(prefix="bench_fleet_"))
    try:
        if transport == "socket":
            return _one_socket_campaign(config, jobs, cohort, out,
                                        rejoin)
        start = time.perf_counter()
        run_campaign(config, out, jobs=jobs, cohort=cohort,
                     rejoin=rejoin)
        return time.perf_counter() - start
    finally:
        shutil.rmtree(out, ignore_errors=True)


def _one_socket_campaign(config, jobs: int, cohort: bool,
                         out: Path, rejoin: bool = True) -> float:
    """Wall seconds for the same campaign dispatched over loopback
    TCP to ``jobs`` worker subprocesses — the measured time includes
    worker spawn and handshake, because a real socket campaign pays
    them too."""
    import subprocess
    import sys
    import threading

    from repro.fleet.executor import run_campaign
    from repro.fleet.net.coordinator import SocketTransport

    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    start = time.perf_counter()
    transport = SocketTransport(lease_timeout_s=60.0,
                                heartbeat_s=1.0, idle_retry_s=0.1)
    failure = []

    def _campaign():
        try:
            run_campaign(config, out, jobs=jobs, cohort=cohort,
                         rejoin=rejoin, transport=transport)
        except BaseException as error:
            failure.append(error)

    thread = threading.Thread(target=_campaign, daemon=True)
    thread.start()
    addr_path = out / "coordinator.addr"
    while not addr_path.exists():
        if failure:
            raise failure[0]
        time.sleep(0.01)
    address = addr_path.read_text().strip()
    workers = [subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "fleet", "worker",
         "--connect", address, "--worker-id", f"bench-w{index}"],
        env=env, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL) for index in range(jobs)]
    thread.join()
    for worker in workers:
        worker.wait(timeout=120)
    if failure:
        raise failure[0]
    return time.perf_counter() - start


def bench_campaign(devices: int = DEVICES, hours: float = SIM_HOURS,
                   jobs: int = 1, seed: int = 0,
                   cache: str = "default", cohort: bool = False,
                   homogeneous: bool = False,
                   transport: str = "local", trace: str = "default",
                   rejoin: bool = True) -> float:
    """Device-sim-hours per wall second for one full campaign.

    ``homogeneous=True`` clones device 0 fleet-wide — the one-firmware
    fleet that is the cohort scenario's subject; ``cohort=True`` turns
    lockstep on (the pairing with ``homogeneous=False`` measures the
    handshake/record overhead on a fleet with nothing to share).
    ``trace`` pins the ``.tbx`` trace-tier state exactly like
    ``cache`` pins the ``.sbx`` one; the warm-up campaign runs with
    the same knobs as the measured one."""
    from repro.fleet import tracetier
    from repro.fleet.executor import FleetConfig
    from repro.msp430.execcache import clear_registry

    config = FleetConfig(devices=devices, hours=hours,
                         models=(MODEL,), seed=seed,
                         rogue_fraction=0.25,
                         homogeneous=homogeneous)

    def _measured() -> float:
        return devices * hours / _one_campaign(config, jobs, cohort,
                                               transport, rejoin)

    def _with_trace_tier(run):
        if trace == "default":
            return run()
        saved = os.environ.get("REPRO_TRACE_CACHE_DIR")
        trace_dir = tempfile.mkdtemp(prefix="bench_trace_")
        os.environ["REPRO_TRACE_CACHE_DIR"] = trace_dir
        tracetier.clear_tier()
        try:
            if trace == "warm":
                _one_campaign(config, jobs, cohort, transport,
                              rejoin)             # publish traces
                tracetier.clear_tier()    # warmth must come from disk
            return run()
        finally:
            if saved is None:
                os.environ.pop("REPRO_TRACE_CACHE_DIR", None)
            else:
                os.environ["REPRO_TRACE_CACHE_DIR"] = saved
            tracetier.clear_tier()
            shutil.rmtree(trace_dir, ignore_errors=True)

    if cache == "default":
        return _with_trace_tier(_measured)

    saved = os.environ.get("REPRO_EXEC_CACHE_DIR")
    cache_dir = tempfile.mkdtemp(prefix="bench_exec_")
    os.environ["REPRO_EXEC_CACHE_DIR"] = cache_dir
    clear_registry()
    try:
        if cache == "warm":
            _one_campaign(config, jobs, cohort,
                          transport, rejoin)      # populate disk
            clear_registry()              # warmth must come from disk
        return _with_trace_tier(_measured)
    finally:
        if saved is None:
            os.environ.pop("REPRO_EXEC_CACHE_DIR", None)
        else:
            os.environ["REPRO_EXEC_CACHE_DIR"] = saved
        clear_registry()
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_benchmarks(repeats: int = 3, jobs: int = 1,
                   cache: str = "default", cohort: bool = False,
                   homogeneous: bool = False,
                   devices: int = DEVICES,
                   transport: str = "local", trace: str = "default",
                   rejoin: bool = True) -> dict:
    # Best-of-N: interference only ever lowers a rate, so the max over
    # repeats is the least-noisy estimate (same rule as BENCH_sim).
    # A different seed per repeat keeps the firmware build cache from
    # turning later repeats into pure-simulation measurements only.
    return {
        "device_sim_hours_per_sec": round(max(
            bench_campaign(devices=devices, jobs=jobs, seed=n,
                           cache=cache, cohort=cohort,
                           homogeneous=homogeneous,
                           transport=transport, trace=trace,
                           rejoin=rejoin)
            for n in range(repeats)), 4),
        "devices": devices,
        "sim_hours_per_device": SIM_HOURS,
        "model": MODEL,
        "jobs": jobs,
        "cache": cache,
        "cohort": cohort,
        "homogeneous": homogeneous,
        "transport": transport,
        "trace": trace,
        "rejoin": rejoin,
        "host_cpus": os.cpu_count(),
    }


def record(label: str, repeats: int = 3, jobs: int = 1,
           cache: str = "default", cohort: bool = False,
           homogeneous: bool = False, devices: int = DEVICES,
           transport: str = "local", trace: str = "default",
           rejoin: bool = True) -> dict:
    """Append one measurement record to BENCH_fleet.json.  The stored
    label is annotated with everything that disambiguates the row —
    two rows are only comparable when jobs, cache state, population
    shape, cohort mode, trace-tier state, and host CPU count all
    match."""
    entry = {
        "label": f"{label} [jobs={jobs} cache={cache} "
                 f"cohort={'on' if cohort else 'off'} "
                 f"{'homogeneous' if homogeneous else 'jittered'} "
                 f"devices={devices} transport={transport} "
                 f"trace={trace} "
                 f"rejoin={'on' if rejoin else 'off'} "
                 f"cpus={os.cpu_count()}]",
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "repeats": repeats,
        "results": run_benchmarks(repeats, jobs, cache, cohort,
                                  homogeneous, devices, transport,
                                  trace, rejoin),
    }
    history = []
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text()).get("runs", [])
    history.append(entry)
    BENCH_JSON.write_text(json.dumps({"runs": history}, indent=2)
                          + "\n")
    return entry


def _parse_jobs(text: str) -> list:
    """``"1,2,4"`` -> ``[1, 2, 4]`` (a single value stays a 1-list)."""
    jobs = [int(part) for part in text.split(",") if part.strip()]
    if not jobs or any(j < 1 for j in jobs):
        raise argparse.ArgumentTypeError(
            f"--jobs wants positive integers, got {text!r}")
    return jobs


# -- pytest smoke (fast; asserts a campaign actually completes) --------
def test_fleet_throughput_smoke():
    rate = bench_campaign(devices=2, hours=0.001)
    assert rate > 0


def test_fleet_cohort_smoke():
    rate = bench_campaign(devices=2, hours=0.001, cohort=True,
                          homogeneous=True)
    assert rate > 0


def test_fleet_warm_trace_smoke():
    rate = bench_campaign(devices=2, hours=0.001, cohort=True,
                          trace="warm")
    assert rate > 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="fleet campaign throughput microbenchmark")
    parser.add_argument("--label", default="run",
                        help="label stored with the record (jobs, "
                             "cache state, and CPU count are appended "
                             "automatically)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="campaigns run; best is kept")
    parser.add_argument("--jobs", type=_parse_jobs, default=[1],
                        metavar="J[,J...]",
                        help="worker-process counts; a comma list "
                             "(e.g. 1,2,4) records one scaling row "
                             "per value")
    parser.add_argument("--cache", default="default",
                        choices=CACHE_STATES,
                        help="execution-cache state the campaign "
                             "starts from (see module docstring)")
    parser.add_argument("--cohort", default="off",
                        choices=("on", "off"),
                        help="cohort lockstep execution (pair with "
                             "--homogeneous for the one-firmware-fleet "
                             "scenario)")
    parser.add_argument("--homogeneous", action="store_true",
                        help="clone device 0 fleet-wide instead of "
                             "the jittered population")
    parser.add_argument("--devices", type=int, default=DEVICES,
                        metavar="N",
                        help="fleet size (cohort rows want enough "
                             "clones per worker to amortize the "
                             "leader)")
    parser.add_argument(
        "--transport", default="local", choices=("local", "socket"),
        help="dispatch units to an in-process pool, or over loopback "
             "TCP to --jobs worker subprocesses (spawn and handshake "
             "included in the measured time)")
    parser.add_argument("--trace", default="default",
                        choices=CACHE_STATES,
                        help="cohort trace-tier (.tbx) state the "
                             "campaign starts from (mirrors --cache)")
    parser.add_argument("--rejoin", default="on",
                        choices=("on", "off"),
                        help="dispatch-boundary rejoin for forked "
                             "cohort followers")
    parser.add_argument(
        "--check-floor", type=float, default=None, metavar="RATE",
        help="CI mode: run without recording, exit 1 unless "
             "device-sim-hours/s >= RATE (uses the first --jobs value)")
    args = parser.parse_args()
    cohort = args.cohort == "on"
    rejoin = args.rejoin == "on"
    if args.check_floor is not None:
        results = run_benchmarks(args.repeats, args.jobs[0],
                                 args.cache, cohort,
                                 args.homogeneous, args.devices,
                                 args.transport, args.trace, rejoin)
        rate = results["device_sim_hours_per_sec"]
        ok = rate >= args.check_floor
        print(f"fleet throughput {rate} device-sim-hours/s "
              f"(floor {args.check_floor}): "
              + ("PASS" if ok else "FAIL"))
        return 0 if ok else 1
    for jobs in args.jobs:
        entry = record(args.label, args.repeats, jobs, args.cache,
                       cohort, args.homogeneous, args.devices,
                       args.transport, args.trace, rejoin)
        print(json.dumps(entry, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
