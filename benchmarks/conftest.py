"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables/figures at
full scale (the paper's 200-run protocol) and prints the same rows the
paper reports; run with ``pytest benchmarks/ --benchmark-only -s`` to
see them.  The printed output is also written to
``benchmarks/results/`` so a plain ``--benchmark-only`` run leaves the
artifacts behind.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
