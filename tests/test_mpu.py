"""MPU model: registers, segments, permissions, violations."""

import pytest

from repro.errors import MemoryAccessError, MpuViolationError
from repro.msp430.memory import EXECUTE, Memory, READ, WRITE
from repro.msp430.mpu import (
    MPUCTL0,
    MPUCTL1,
    MPUSAM,
    MPUSEGB1,
    MPUSEGB2,
    Mpu,
    MpuConfig,
    SEG1IFG,
    SEG3IFG,
    SegmentPermissions,
)


def make_system():
    memory = Memory()
    mpu = Mpu()
    mpu.attach(memory)
    return memory, mpu


def app_config(b1=0x8000, b2=0x9000):
    return MpuConfig(
        b1=b1, b2=b2,
        seg1=SegmentPermissions.parse("--X"),
        seg2=SegmentPermissions.parse("RW-"),
        seg3=SegmentPermissions.parse("---"))


class TestSegmentPermissions:
    def test_parse_render_roundtrip(self):
        for text in ("RWX", "R--", "-W-", "--X", "---", "RW-"):
            assert SegmentPermissions.parse(text).render() == text

    def test_parse_rejects_bad_length(self):
        with pytest.raises(ValueError):
            SegmentPermissions.parse("RW")

    @pytest.mark.parametrize("text", ["-WR", "XWR", "RRR", "WWW",
                                      "RXW", "R W", "--R", "X--"])
    def test_parse_rejects_malformed_positions(self, text):
        """Regression: parse() used to test mere character membership,
        so "-WR", "XWR" and "RRR" all parsed without error."""
        with pytest.raises(ValueError):
            SegmentPermissions.parse(text)

    def test_parse_is_case_insensitive(self):
        assert SegmentPermissions.parse("rwx").render() == "RWX"
        assert SegmentPermissions.parse("r-x").render() == "R-X"

    def test_bits_roundtrip(self):
        perms = SegmentPermissions(True, False, True)
        assert SegmentPermissions.from_bits(perms.to_bits()) == perms


class TestMpuConfig:
    def test_boundaries_must_be_aligned(self):
        with pytest.raises(ValueError):
            MpuConfig(b1=0x8001, b2=0x9000,
                      seg1=SegmentPermissions(), seg2=SegmentPermissions(),
                      seg3=SegmentPermissions())

    def test_boundaries_must_be_ordered(self):
        with pytest.raises(ValueError):
            MpuConfig(b1=0x9000, b2=0x8000,
                      seg1=SegmentPermissions(), seg2=SegmentPermissions(),
                      seg3=SegmentPermissions())

    def test_register_writes_cover_all_registers(self):
        writes = dict(app_config().register_writes())
        assert set(writes) == {MPUCTL0, MPUSEGB1, MPUSEGB2, MPUSAM}
        assert writes[MPUSEGB1] == 0x8000 >> 4
        assert writes[MPUCTL0] >> 8 == 0xA5


class TestEnforcement:
    def test_disabled_mpu_allows_everything(self):
        memory, _mpu = make_system()
        memory.write_word(0x9800, 1)    # would be seg3 if enabled

    def test_seg3_no_access(self):
        memory, mpu = make_system()
        mpu.configure(app_config())
        with pytest.raises(MpuViolationError):
            memory.read_word(0x9800)
        assert mpu.ctl1 & SEG3IFG

    def test_seg2_read_write_ok_execute_denied(self):
        memory, mpu = make_system()
        mpu.configure(app_config())
        memory.write_word(0x8800, 42)
        assert memory.read_word(0x8800) == 42
        with pytest.raises(MpuViolationError):
            memory.fetch_word(0x8800)

    def test_seg1_execute_only(self):
        memory, mpu = make_system()
        memory.load(0x5000, b"\x03\x43")    # NOP encoding
        mpu.configure(app_config())
        assert memory.fetch_word(0x5000) == 0x4303
        with pytest.raises(MpuViolationError):
            memory.read_word(0x5000)
        with pytest.raises(MpuViolationError):
            memory.write_word(0x5000, 0)
        assert mpu.ctl1 & SEG1IFG

    def test_sram_never_protected(self):
        """The paper's key hardware limitation: the MPU cannot protect
        SRAM (or peripherals) — that is why the compiler must insert
        the lower-bound check."""
        memory, mpu = make_system()
        mpu.configure(app_config())
        memory.write_word(0x1C00, 0x1234)       # SRAM: allowed
        assert memory.read_word(0x1C00) == 0x1234
        memory.write_word(0x0200, 7)            # peripherals: allowed

    def test_violation_records_address_and_kind(self):
        memory, mpu = make_system()
        mpu.configure(app_config())
        with pytest.raises(MpuViolationError):
            memory.write_word(0x9802, 1)
        assert mpu.violation_address == 0x9802
        assert mpu.violation_kind == WRITE

    def test_segment_of(self):
        _memory, mpu = make_system()
        mpu.configure(app_config())
        assert mpu.segment_of(0x4400) == 1
        assert mpu.segment_of(0x8000) == 2
        assert mpu.segment_of(0x9000) == 3
        assert mpu.segment_of(0x1800) == 0       # InfoMem
        assert mpu.segment_of(0x1C00) is None    # SRAM uncovered


class TestRegisterSemantics:
    def test_password_required(self):
        memory, _mpu = make_system()
        with pytest.raises(MemoryAccessError):
            memory.write_word(MPUCTL0, 0x0001)   # missing 0xA5 password

    def test_correct_password_accepted(self):
        memory, mpu = make_system()
        memory.write_word(MPUCTL0, 0xA501)
        assert mpu.enabled

    def test_lock_freezes_configuration(self):
        memory, mpu = make_system()
        memory.write_word(MPUSEGB1, 0x800)
        memory.write_word(MPUCTL0, 0xA503)       # enable + lock
        memory.write_word(MPUSEGB1, 0x900)       # ignored
        assert mpu.segb1 == 0x800
        assert mpu.locked

    def test_disable_is_noop_while_locked(self):
        """Regression: disable() used to clear MPUENA even with
        MPULOCK set — hardware freezes the whole configuration
        (enable bit included) until reset."""
        memory, mpu = make_system()
        mpu.configure(app_config())
        memory.write_word(MPUCTL0, 0xA503)       # enable + lock
        mpu.disable()
        assert mpu.enabled                       # still on
        assert mpu.locked
        with pytest.raises(MpuViolationError):
            memory.read_word(0x9800)             # still enforced

    def test_disable_works_while_unlocked(self):
        memory, mpu = make_system()
        mpu.configure(app_config())
        mpu.disable()
        assert not mpu.enabled
        memory.read_word(0x9800)                 # no violation

    def test_boundary_saturates_instead_of_wrapping(self):
        """Regression: installing b2 = VECTORS_END + 1 = 0x10000 used
        to wrap the cached boundary to 0 ((0x1000 << 4) & 0xFFFF),
        silently erasing segment 2 and flipping everything above B1
        into segment 3."""
        memory, mpu = make_system()
        mpu.configure(MpuConfig(
            b1=0x8000, b2=0x10000,
            seg1=SegmentPermissions.parse("--X"),
            seg2=SegmentPermissions.parse("RW-"),
            seg3=SegmentPermissions.parse("---")))
        assert mpu.boundary2 == 0x10000
        assert mpu.segment_of(0x9800) == 2
        assert mpu.segment_of(0xFFFE) == 2
        memory.write_word(0x9800, 42)            # seg2 RW-: allowed
        assert memory.read_word(0x9800) == 42
        memory.write_word(0xFFF0, 7)             # still seg2, not seg3

    def test_boundary_saturation_matches_overlay(self):
        """check() and permission_overlay() agree at the saturated
        boundary."""
        memory, mpu = make_system()
        mpu.configure(MpuConfig(
            b1=0x8000, b2=0x10000,
            seg1=SegmentPermissions.parse("--X"),
            seg2=SegmentPermissions.parse("RW-"),
            seg3=SegmentPermissions.parse("---")))
        assert memory.access_allowed(0xFFFE, WRITE)
        assert not memory.access_allowed(0xFFFE, EXECUTE)

    def test_ctl1_flags_cleared_by_writing_zero(self):
        memory, mpu = make_system()
        mpu.configure(app_config())
        with pytest.raises(MpuViolationError):
            memory.read_word(0x9800)
        assert mpu.ctl1
        mpu.disable()
        memory.write_word(MPUCTL1, 0)
        assert mpu.ctl1 == 0

    def test_registers_readable_through_bus(self):
        memory, mpu = make_system()
        mpu.configure(app_config())
        mpu.disable()
        assert memory.read_word(MPUSEGB1) == 0x8000 >> 4
        assert memory.read_word(MPUSAM) == app_config().sam_value()
