"""Isolation transparency: the memory models may only change *cost*,
never *behaviour*.  Running the same deterministic event sequence under
every model must leave every app's data region byte-identical and
produce the same service traffic.
"""

import pytest

from repro.aft import AftPipeline, IsolationModel
from repro.apps import MANIFESTS, load_suite
from repro.kernel.machine import AmuletMachine
from repro.kernel.scheduler import AppSchedule, Scheduler
from repro.kernel.services import SensorEnvironment

MODELS = (IsolationModel.NO_ISOLATION,
          IsolationModel.FEATURE_LIMITED,
          IsolationModel.SOFTWARE_ONLY,
          IsolationModel.MPU,
          IsolationModel.ADVANCED_MPU)

HORIZON_MS = 700


def run_suite(model):
    firmware = AftPipeline(model).build(load_suite())
    machine = AmuletMachine(firmware, env=SensorEnvironment(seed=99))
    scheduler = Scheduler(machine)
    for name, manifest in MANIFESTS.items():
        scheduler.add_app(AppSchedule(
            name, sources=manifest.sources_for(name)))
    stats = scheduler.run(horizon_ms=HORIZON_MS)
    assert stats.faults == 0
    snapshots = {}
    for app in firmware.app_list():
        snapshots[app.name] = machine.cpu.memory.dump(
            app.stack_top, app.seg_hi - app.stack_top)
    return machine, snapshots, stats


@pytest.fixture(scope="module")
def baseline():
    return run_suite(IsolationModel.NO_ISOLATION)


@pytest.mark.parametrize("model", MODELS[1:])
def test_app_state_identical_across_models(baseline, model):
    _machine0, snapshots0, stats0 = baseline
    _machine, snapshots, stats = run_suite(model)
    assert stats.events_delivered == stats0.events_delivered
    for app, blob in snapshots0.items():
        # data regions may differ in *size* (16-byte rounding of seg_hi
        # can absorb slack), so compare the common prefix, which holds
        # every global in identical layout
        length = min(len(blob), len(snapshots[app]))
        assert snapshots[app][:length] == blob[:length], \
            f"{app} state diverged under {model.display}"


@pytest.mark.parametrize("model", MODELS[1:])
def test_service_traffic_identical(baseline, model):
    machine0, _s0, _st0 = baseline
    machine, _s, _st = run_suite(model)
    assert machine.services.log.words == machine0.services.log.words
    assert machine.services.display.digits == \
        machine0.services.display.digits
    assert machine.services.vibrations == machine0.services.vibrations


def test_cycle_costs_do_differ(baseline):
    """...while the cycle bill is genuinely different per model."""
    _m0, _s0, stats0 = baseline
    _m1, _s1, stats_mpu = run_suite(IsolationModel.MPU)
    total0 = sum(stats0.per_app_cycles.values())
    total_mpu = sum(stats_mpu.per_app_cycles.values())
    assert total_mpu > total0
