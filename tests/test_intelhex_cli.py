"""Intel HEX export/import and the command-line interface."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import intelhex
from repro.asm.intelhex import HexFormatError
from repro.cli import main


class TestIntelHex:
    def test_known_record(self):
        # canonical example: 16 bytes of zeros at 0x0100
        text = intelhex.encode([(0x0100, bytes(16))])
        first = text.splitlines()[0]
        assert first == ":10010000000000000000000000000000000000" \
                        "00EF"

    def test_eof_record(self):
        text = intelhex.encode([])
        assert text.strip() == ":00000001FF"

    def test_roundtrip_simple(self):
        segments = [(0x4400, b"\x01\x02\x03"), (0x8000, b"\xAA" * 40)]
        decoded = intelhex.decode_to_segments(
            intelhex.encode(segments))
        assert decoded == segments

    @given(segments=st.lists(
        st.tuples(st.integers(0, 0xF000).map(lambda a: a & 0xFFF0),
                  st.binary(min_size=1, max_size=64)),
        min_size=0, max_size=4, unique_by=lambda s: s[0]))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, segments):
        # keep segments disjoint: space them out by index
        spaced = [((0x1000 * i + addr % 0x800) & 0xFFF0, blob)
                  for i, (addr, blob) in enumerate(segments)]
        decoded = dict(intelhex.decode(intelhex.encode(spaced)))
        expected = {}
        for addr, blob in spaced:
            for i, b in enumerate(blob):
                expected[addr + i] = b
        assert decoded == expected

    def test_checksum_validation(self):
        text = intelhex.encode([(0x100, b"\x01")])
        corrupted = text.replace(":01010000", ":01010100", 1)
        with pytest.raises(HexFormatError, match="checksum"):
            intelhex.decode(corrupted)

    def test_missing_eof(self):
        with pytest.raises(HexFormatError, match="end-of-file"):
            intelhex.decode(":0101000001FD\n")

    def test_bad_start_code(self):
        with pytest.raises(HexFormatError, match="':'"):
            intelhex.decode("0101000001FD\n:00000001FF")

    def test_image_export_and_reload(self):
        from repro.aft import AftPipeline, AppSource, IsolationModel
        from repro.msp430.memory import Memory
        firmware = AftPipeline(IsolationModel.MPU).build([AppSource(
            "app", "int on_e(int x) { return x + 1; }", ["on_e"])])
        text = intelhex.encode_image(firmware.image)
        memory = Memory()
        loaded = intelhex.load_hex_into(memory, text)
        assert loaded == firmware.image.total_size()
        # spot-check: the handler bytes match
        handler = firmware.handler_address("app", "on_e")
        direct = Memory()
        firmware.image.load_into(direct)
        assert memory.dump(handler, 16) == direct.dump(handler, 16)


APP_SOURCE = """
int total = 0;
int on_tick(int step) {
    total += step;
    return total;
}
"""

EVIL_SOURCE = """
int on_tick(int step) {
    int *p = (int *)0x2000;
    return *p;
}
"""


@pytest.fixture
def app_file(tmp_path):
    path = tmp_path / "counter.mc"
    path.write_text(APP_SOURCE)
    return path


class TestCli:
    def test_build_writes_hex_and_map(self, app_file, tmp_path,
                                      capsys):
        output = tmp_path / "fw.hex"
        rc = main(["build", str(app_file), "--model", "mpu",
                   "-o", str(output), "--map"])
        assert rc == 0
        assert output.exists()
        assert intelhex.decode(output.read_text())
        map_text = (tmp_path / "fw.map").read_text()
        assert "counter" in map_text
        assert "__dispatch_counter" in map_text

    def test_run_dispatches_handler(self, app_file, capsys):
        rc = main(["run", str(app_file), "--handler", "on_tick",
                   "--args", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "-> 5" in out

    def test_run_reports_fault_with_exit_code(self, tmp_path, capsys):
        path = tmp_path / "evil.mc"
        path.write_text(EVIL_SOURCE)
        rc = main(["run", str(path), "--handler", "on_tick",
                   "--args", "0"])
        assert rc == 1
        assert "FAULTED" in capsys.readouterr().out

    def test_disasm_lists_instructions(self, app_file, capsys):
        rc = main(["disasm", str(app_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "app counter" in out
        assert "PUSH R4" in out

    def test_feature_limited_build_rejects_pointers(self, tmp_path,
                                                    capsys):
        path = tmp_path / "evil.mc"
        path.write_text(EVIL_SOURCE)
        rc = main(["build", str(path), "--model", "feature-limited",
                   "-o", str(tmp_path / "x.hex")])
        assert rc == 2
        assert "pointer" in capsys.readouterr().err

    def test_missing_file_reports_error(self, tmp_path, capsys):
        rc = main(["build", str(tmp_path / "nope.mc")])
        assert rc == 2

    def test_unknown_model_rejected(self, app_file):
        with pytest.raises(SystemExit):
            main(["build", str(app_file), "--model", "bogus"])

    def test_suite_command(self, capsys):
        rc = main(["suite", "--seconds", "1", "--model", "mpu"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "events=" in out
        assert "pedometer" in out

    def test_shadow_stack_flag(self, app_file, tmp_path):
        rc = main(["build", str(app_file), "--shadow-stack",
                   "-o", str(tmp_path / "s.hex")])
        assert rc == 0
