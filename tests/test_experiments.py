"""Experiment harnesses reproduce the paper's qualitative results.

Small iteration counts keep the tests fast; the full-scale runs live in
benchmarks/.
"""

import pytest

from repro.aft.models import IsolationModel
from repro.experiments.figure2 import overheads_from_table1, run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.table1 import PAPER_TABLE1, run_table1


@pytest.fixture(scope="module")
def table1():
    return run_table1(runs=12, loop_iterations=32)


@pytest.fixture(scope="module")
def figure3():
    return run_figure3(runs=8)


class TestTable1:
    def test_all_models_measured(self, table1):
        assert set(table1.costs) == set(PAPER_TABLE1)

    def test_memory_access_ordering(self, table1):
        """Paper Table 1: NoIso < MPU < SoftwareOnly < FeatureLimited
        per memory access."""
        costs = table1.costs
        assert costs[IsolationModel.NO_ISOLATION].memory_access < \
            costs[IsolationModel.MPU].memory_access < \
            costs[IsolationModel.SOFTWARE_ONLY].memory_access < \
            costs[IsolationModel.FEATURE_LIMITED].memory_access

    def test_context_switch_ordering(self, table1):
        """Paper Table 1: NoIso == FeatureLimited < SoftwareOnly <
        MPU per context switch."""
        costs = table1.costs
        noiso = costs[IsolationModel.NO_ISOLATION].context_switch
        fl = costs[IsolationModel.FEATURE_LIMITED].context_switch
        assert abs(noiso - fl) < 1.0
        assert fl < costs[IsolationModel.SOFTWARE_ONLY].context_switch
        assert costs[IsolationModel.SOFTWARE_ONLY].context_switch < \
            costs[IsolationModel.MPU].context_switch

    def test_shape_holds(self, table1):
        assert table1.shape_holds()

    def test_magnitudes_in_paper_ballpark(self, table1):
        """Not exact values (different substrate), but the same order
        of magnitude: tens of cycles per op, ~100+ per switch."""
        for model, costs in table1.costs.items():
            paper_access, paper_switch = PAPER_TABLE1[model]
            assert costs.memory_access < 4 * paper_access
            assert paper_switch / 2 < costs.context_switch \
                < 2 * paper_switch

    def test_overheads_positive_for_isolating_models(self, table1):
        overheads = table1.overheads()
        for model, costs in overheads.items():
            if model is not IsolationModel.FEATURE_LIMITED:
                assert costs.context_switch >= 0
            assert costs.memory_access > 0

    def test_render_mentions_all_models(self, table1):
        text = table1.render()
        for model in table1.costs:
            assert model.display in text


class TestFigure3:
    def test_all_cases_present(self, figure3):
        assert set(figure3.cycles) == {"Activity Case 1",
                                       "Activity Case 2", "Quicksort"}

    def test_mpu_lowest_everywhere(self, figure3):
        for case in figure3.cycles:
            mpu = figure3.slowdown_percent(case, IsolationModel.MPU)
            for other in (IsolationModel.SOFTWARE_ONLY,
                          IsolationModel.FEATURE_LIMITED):
                assert mpu < figure3.slowdown_percent(case, other)

    def test_quicksort_full_ordering(self, figure3):
        mpu = figure3.slowdown_percent("Quicksort", IsolationModel.MPU)
        sw = figure3.slowdown_percent("Quicksort",
                                      IsolationModel.SOFTWARE_ONLY)
        fl = figure3.slowdown_percent("Quicksort",
                                      IsolationModel.FEATURE_LIMITED)
        assert mpu < sw < fl
        assert 25 < fl < 75      # paper: approaching ~50 %

    def test_slowdowns_positive(self, figure3):
        for case in figure3.cycles:
            for model in (IsolationModel.FEATURE_LIMITED,
                          IsolationModel.MPU,
                          IsolationModel.SOFTWARE_ONLY):
                assert figure3.slowdown_percent(case, model) > 0

    def test_shape_holds(self, figure3):
        assert figure3.shape_holds()

    def test_render(self, figure3):
        text = figure3.render()
        assert "Quicksort" in text and "%" in text

    def test_render_chart(self, figure3):
        chart = figure3.render_chart()
        assert "#" in chart
        assert "Quicksort" in chart


class TestFigure2:
    @pytest.fixture(scope="class")
    def figure2(self, table1):
        return run_figure2(apps=("clock", "pedometer",
                                 "falldetection", "hr"),
                           table1=table1, arp_samples=8)

    def test_battery_impact_under_half_percent(self, figure2):
        """The paper's headline claim."""
        assert figure2.max_battery_impact() < 0.5

    def test_accel_apps_dominate(self, figure2):
        mpu = IsolationModel.MPU
        fall = figure2.overheads["falldetection"][mpu].cycles_per_week
        clock = figure2.overheads["clock"][mpu].cycles_per_week
        assert fall > 5 * clock

    def test_cycles_in_paper_range(self, figure2):
        """Figure 2's y axis tops out around 3 billion cycles/week."""
        for app, by_model in figure2.overheads.items():
            for overhead in by_model.values():
                assert 0 <= overhead.billions_of_cycles < 5

    def test_overheads_from_table1_strips_baseline(self, table1):
        per_op = overheads_from_table1(table1)
        assert IsolationModel.NO_ISOLATION not in per_op
        assert per_op[IsolationModel.MPU].per_context_switch > \
            per_op[IsolationModel.SOFTWARE_ONLY].per_context_switch

    def test_render(self, figure2):
        text = figure2.render()
        assert "Pedometer" in text and "B/" in text

    def test_render_chart(self, figure2):
        chart = figure2.render_chart()
        assert "#" in chart
        assert "billions of cycles" in chart
