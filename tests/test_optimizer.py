"""AST optimizer: folding, identities, pruning — and the property
that optimization never changes observable behaviour."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cc import ast
from repro.cc.codegen import compile_unit
from repro.cc.execution import BareMachine, run_compiled
from repro.cc.optimize import optimize_unit
from repro.cc.parser import parse


def optimized_main_body(source):
    unit = optimize_unit(parse(source))
    main = next(f for f in unit.functions if f.name == "main")
    return main.body


def run_optimized(source, fn="main", args=()):
    unit = compile_unit(source, optimize=True)
    return BareMachine(unit).run(fn, args).value


def run_plain(source, fn="main", args=()):
    return run_compiled(source, fn, args).value


class TestFolding:
    def test_arithmetic_folds_to_literal(self):
        body = optimized_main_body(
            "int main(void) { return (3 + 4) * 5 - 6 / 2; }")
        value = body.statements[0].value
        assert isinstance(value, ast.IntLiteral)
        assert value.value == 32

    def test_signed_division_folds_correctly(self):
        body = optimized_main_body(
            "int main(void) { return -17 / 5; }")
        assert body.statements[0].value.value == (-3) & 0xFFFF

    def test_division_by_zero_not_folded(self):
        body = optimized_main_body("int main(void) { return 5 / 0; }")
        assert isinstance(body.statements[0].value, ast.Binary)

    def test_comparisons_fold_signed(self):
        body = optimized_main_body(
            "int main(void) { return -1 < 1; }")
        assert body.statements[0].value.value == 1

    def test_shift_folds_with_masked_count(self):
        body = optimized_main_body(
            "int main(void) { return 1 << 17; }")
        assert body.statements[0].value.value == 2   # 17 & 15 = 1

    def test_unary_folds(self):
        body = optimized_main_body(
            "int main(void) { return -(3) + ~0 + !5; }")
        assert body.statements[0].value.value == (-3 - 1 + 0) & 0xFFFF

    def test_ternary_folds(self):
        body = optimized_main_body(
            "int main(void) { return 1 ? 10 : 20; }")
        assert body.statements[0].value.value == 10

    def test_cast_folds(self):
        body = optimized_main_body(
            "int main(void) { return (char)0x1FF; }")
        assert body.statements[0].value.value == 0xFF


class TestIdentities:
    def test_add_zero_removed(self):
        body = optimized_main_body(
            "int main(int x) { return x + 0; }")
        assert isinstance(body.statements[0].value, ast.Ident)

    def test_mul_one_removed(self):
        body = optimized_main_body(
            "int main(int x) { return x * 1; }")
        assert isinstance(body.statements[0].value, ast.Ident)

    def test_mul_zero_folds_when_pure(self):
        body = optimized_main_body(
            "int main(int x) { return x * 0; }")
        assert body.statements[0].value.value == 0

    def test_mul_zero_kept_when_side_effects(self):
        body = optimized_main_body("""
            int g;
            int bump(void) { g++; return g; }
            int main(void) { return bump() * 0; }
        """)
        # the call must survive
        assert isinstance(body.statements[0].value, ast.Binary)

    def test_short_circuit_constants(self):
        body = optimized_main_body(
            "int main(int x) { return (0 && x) + (1 || x); }")
        assert body.statements[0].value.value == 1


class TestPruning:
    def test_if_true_keeps_then(self):
        body = optimized_main_body("""
            int main(void) {
                if (1) return 10;
                else return 20;
            }
        """)
        assert isinstance(body.statements[0], ast.Return)
        assert body.statements[0].value.value == 10

    def test_if_false_keeps_else(self):
        body = optimized_main_body("""
            int main(void) {
                if (2 < 1) { return 10; }
                return 20;
            }
        """)
        assert body.statements[0].value.value == 20

    def test_while_false_removed(self):
        body = optimized_main_body("""
            int main(void) {
                while (0) { return 99; }
                return 1;
            }
        """)
        assert len(body.statements) == 1

    def test_pure_expression_statement_removed(self):
        body = optimized_main_body("""
            int main(int x) {
                x + 3;
                return x;
            }
        """)
        assert len(body.statements) == 1

    def test_impure_expression_statement_kept(self):
        body = optimized_main_body("""
            int g;
            int main(void) {
                g++;
                return g;
            }
        """)
        assert len(body.statements) == 2

    def test_for_false_keeps_init_effects(self):
        source = """
            int g = 5;
            int main(void) {
                for (g = 9; 0; g++) { }
                return g;
            }
        """
        assert run_optimized(source) == 9

    def test_dead_branch_code_is_absent(self):
        unit = compile_unit("""
            int main(void) {
                if (0) { return 1234; }
                return 1;
            }
        """, optimize=True)
        assert "#1234" not in unit.asm

    def test_folded_arithmetic_needs_no_helpers(self):
        unit = compile_unit(
            "int main(void) { return 100 * 25 / 5; }", optimize=True)
        assert "__mulhi" not in unit.asm
        assert "__divhi" not in unit.asm


class TestSemanticsPreserved:
    CASES = [
        ("int main(void) { return (3 + 4) * 5; }", ()),
        ("int main(int x) { return x * 0 + (1 ? x : 9); }", (7,)),
        ("""int g;
            int bump(void) { g += 3; return g; }
            int main(void) { return bump() * 0 + g; }""", ()),
        ("""int main(int x) {
                int acc = 0;
                int i;
                for (i = 0; i < 4; i++) {
                    if (1) acc += x; else acc -= 99;
                    while (0) acc = 7;
                }
                return acc + (0 && x) + (x || 1);
            }""", (5,)),
        ("""int main(int n) {
                switch (2 - 1) {
                  case 1: n += 10; break;
                  case 2: n += 99; break;
                }
                return n;
            }""", (3,)),
    ]

    @pytest.mark.parametrize("source,args", CASES)
    def test_optimized_matches_plain(self, source, args):
        assert run_optimized(source, args=args) == \
            run_plain(source, args=args)

    @given(a=st.integers(0, 0xFFFF), b=st.integers(0, 0xFFFF),
           k=st.integers(0, 50))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_mixed_program_property(self, a, b, k):
        source = f"""
            int main(int a, int b) {{
                int acc = {k} * 3 + 1;
                if ({k} > 25) acc += a; else acc += b;
                acc += (a + 0) * 1 + (b ^ 0);
                return acc + ({k} % 7);
            }}
        """
        assert run_optimized(source, args=(a, b)) == \
            run_plain(source, args=(a, b))

    def test_optimized_apps_still_behave(self):
        """The whole nine-app suite builds and runs with the optimizer
        enabled at the AFT layer (via compile_unit equivalence)."""
        from repro.apps.catalog import app_source
        from repro.kernel.api import amulet_api_table
        for name in ("pedometer", "hr", "clock"):
            unit = compile_unit(app_source(name),
                                api=amulet_api_table(), optimize=True)
            assert unit.asm


class TestFixedPoint:
    def test_cascading_folds_converge(self):
        body = optimized_main_body(
            "int main(void) { return ((1 + 1) * (2 + 2)) > 7 "
            "? (3 * 3) : (4 * 4); }")
        value = body.statements[0].value
        assert isinstance(value, ast.IntLiteral)
        assert value.value == 9
