"""MiniC lexer."""

import pytest

from repro.errors import CompileError
from repro.cc.lexer import tokenize
from repro.cc.tokens import TokenType


def kinds(source):
    return [t.type for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("int foo while whilefoo")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[1].type is TokenType.IDENT
        assert tokens[2].type is TokenType.KEYWORD
        assert tokens[3].type is TokenType.IDENT

    def test_decimal_hex_octal_binary(self):
        tokens = tokenize("10 0x1F 017 0b101")
        assert [t.value for t in tokens[:-1]] == [10, 31, 15, 5]

    def test_unsigned_suffix_accepted(self):
        assert tokenize("42u")[0].value == 42
        assert tokenize("42U")[0].value == 42

    def test_literal_too_big_rejected(self):
        with pytest.raises(CompileError):
            tokenize("70000")

    def test_char_literals(self):
        assert tokenize("'A'")[0].value == 65
        assert tokenize(r"'\n'")[0].value == 10
        assert tokenize(r"'\0'")[0].value == 0
        assert tokenize(r"'\x41'")[0].value == 0x41

    def test_string_literal_with_escapes(self):
        token = tokenize(r'"a\tb"')[0]
        assert token.type is TokenType.STRING
        assert token.text == "a\tb"

    def test_unterminated_string(self):
        with pytest.raises(CompileError):
            tokenize('"oops')

    def test_multichar_punctuators_greedy(self):
        assert texts("a <<= b >> c >= d") == \
            ["a", "<<=", "b", ">>", "c", ">=", "d"]
        assert texts("x->y") == ["x", "->", "y"]
        assert texts("i++ + ++j") == ["i", "++", "+", "++", "j"]

    def test_comments(self):
        assert texts("a // line\n b /* block\nstill */ c") == \
            ["a", "b", "c"]

    def test_unterminated_comment(self):
        with pytest.raises(CompileError):
            tokenize("/* never ends")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)

    def test_stray_character(self):
        with pytest.raises(CompileError):
            tokenize("a $ b")

    def test_eof_token_present(self):
        assert tokenize("")[-1].type is TokenType.EOF
