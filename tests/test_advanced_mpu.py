"""The hypothetical advanced MPU (section-5 ablation model)."""

import pytest

from repro.errors import MpuViolationError
from repro.kernel.advanced_mpu import AdvancedMpu, _APP_SAM
from repro.msp430.memory import Memory
from repro.msp430.mpu import (
    MPUCTL0,
    MPUSAM,
    MPUSEGB1,
    MPUSEGB2,
)


def app_mode_system(b1=0x8000, b2=0x9000):
    memory = Memory()
    mpu = AdvancedMpu()
    mpu.attach(memory)
    memory.write_word(MPUCTL0, 0xA501)
    memory.write_word(MPUSEGB1, b1 >> 4)
    memory.write_word(MPUSEGB2, b2 >> 4)
    memory.write_word(MPUSAM, _APP_SAM)
    return memory, mpu


class TestModes:
    def test_disabled_allows_everything(self):
        memory = Memory()
        mpu = AdvancedMpu()
        mpu.attach(memory)
        memory.write_word(0x2000, 1)     # SRAM write, no complaint

    def test_os_mode_allows_everything(self):
        memory, mpu = app_mode_system()
        memory.write_word(MPUCTL0, 0xA501)
        memory.write_word(MPUSAM, 0xFFFF)     # back to OS mode
        memory.write_word(0x2000, 1)
        memory.write_word(0x9800, 1)

    def test_app_mode_detection(self):
        _memory, mpu = app_mode_system()
        assert mpu.app_mode
        mpu.force_os_mode()
        assert not mpu.app_mode


class TestAppModeRules:
    def test_data_region_read_write(self):
        memory, _mpu = app_mode_system()
        memory.write_word(0x8800, 42)
        assert memory.read_word(0x8800) == 42

    def test_sram_write_denied(self):
        """Unlike the real MPU, the advanced part covers SRAM."""
        memory, _mpu = app_mode_system()
        with pytest.raises(MpuViolationError):
            memory.write_word(0x2000, 1)

    def test_sram_read_denied_outside_sysvar_window(self):
        memory, _mpu = app_mode_system()
        with pytest.raises(MpuViolationError):
            memory.read_word(0x2000)

    def test_sysvar_window_read_only(self):
        memory, mpu = app_mode_system()
        mpu.sysvar_window = (0x1C00, 0x1C10)
        memory.read_word(0x1C04)
        with pytest.raises(MpuViolationError):
            memory.write_word(0x1C04, 1)

    def test_infomem_denied(self):
        memory, _mpu = app_mode_system()
        with pytest.raises(MpuViolationError):
            memory.write_word(0x1800, 1)

    def test_execute_above_b1_denied(self):
        memory, _mpu = app_mode_system()
        memory.load(0x8800, b"\x03\x43")
        with pytest.raises(MpuViolationError):
            memory.fetch_word(0x8800)

    def test_execute_below_b1_allowed(self):
        memory, _mpu = app_mode_system()
        memory.load(0x5000, b"\x03\x43")
        assert memory.fetch_word(0x5000) == 0x4303

    def test_above_b2_fully_denied(self):
        memory, _mpu = app_mode_system()
        for op in (lambda: memory.read_word(0x9800),
                   lambda: memory.write_word(0x9800, 1),
                   lambda: memory.fetch_word(0x9800)):
            with pytest.raises(MpuViolationError):
                op()

    def test_violation_recorded(self):
        memory, mpu = app_mode_system()
        with pytest.raises(MpuViolationError):
            memory.write_word(0x9800, 1)
        assert mpu.violation_address == 0x9800
        assert mpu.violation_kind == "write"


class TestPrivilegedConfiguration:
    def test_password_write_allowed_from_app_mode(self):
        memory, mpu = app_mode_system()
        memory.write_word(MPUCTL0, 0xA501)      # gates do this
        memory.write_word(MPUSAM, 0xFFFF)       # completes reconfig
        assert not mpu.app_mode

    def test_unpassworded_ctl0_write_faults_in_app_mode(self):
        memory, _mpu = app_mode_system()
        with pytest.raises(MpuViolationError):
            memory.write_word(MPUCTL0, 0x0000)

    def test_boundary_write_without_unlock_faults(self):
        memory, _mpu = app_mode_system()
        with pytest.raises(MpuViolationError):
            memory.write_word(MPUSEGB1, 0x100)

    def test_kernel_ports_always_accessible(self):
        from repro.ports import DONE_PORT
        memory, _mpu = app_mode_system()
        memory.write_word(DONE_PORT, 1)    # no violation
