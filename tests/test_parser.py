"""MiniC parser: declarations, declarators, statements, expressions."""

import pytest

from repro.errors import CompileError
from repro.cc import ast
from repro.cc.parser import parse
from repro.cc.types import (
    ArrayType,
    CharType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
)


def first_function(source):
    return parse(source).functions[0]


class TestDeclarations:
    def test_global_scalar(self):
        unit = parse("int x = 5;")
        decl = unit.globals[0]
        assert decl.name == "x"
        assert isinstance(decl.ctype, IntType)
        assert decl.init.value == 5

    def test_unsigned(self):
        unit = parse("unsigned u;")
        assert not unit.globals[0].ctype.signed

    def test_bare_unsigned_means_unsigned_int(self):
        unit = parse("unsigned x; signed y;")
        assert not unit.globals[0].ctype.signed
        assert unit.globals[1].ctype.signed

    def test_array_with_length(self):
        unit = parse("int a[10];")
        assert isinstance(unit.globals[0].ctype, ArrayType)
        assert unit.globals[0].ctype.length == 10

    def test_array_length_inferred_from_init(self):
        unit = parse("int a[] = {1, 2, 3};")
        assert unit.globals[0].ctype.length == 3

    def test_char_array_from_string(self):
        unit = parse('char s[] = "hi";')
        assert unit.globals[0].ctype.length == 3   # includes NUL

    def test_multiple_declarators(self):
        unit = parse("int a, b = 2, c;")
        assert [d.name for d in unit.globals] == ["a", "b", "c"]

    def test_pointer_declarator(self):
        unit = parse("int *p;")
        assert isinstance(unit.globals[0].ctype, PointerType)

    def test_array_of_pointers(self):
        unit = parse("int *a[3];")
        ctype = unit.globals[0].ctype
        assert isinstance(ctype, ArrayType)
        assert isinstance(ctype.element, PointerType)

    def test_function_pointer_declarator(self):
        unit = parse("int (*fp)(int, int);")
        ctype = unit.globals[0].ctype
        assert isinstance(ctype, PointerType)
        assert isinstance(ctype.target, FunctionType)
        assert len(ctype.target.params) == 2

    def test_struct_definition_and_use(self):
        unit = parse("""
            struct point { int x; int y; };
            struct point origin;
        """)
        ctype = unit.globals[0].ctype
        assert isinstance(ctype, StructType)
        assert ctype.size == 4
        assert ctype.field("y").offset == 2

    def test_struct_field_alignment(self):
        unit = parse("struct s { char c; int i; }; struct s v;")
        struct = unit.globals[0].ctype
        assert struct.field("i").offset == 2
        assert struct.size == 4

    def test_struct_redefinition_rejected(self):
        with pytest.raises(CompileError):
            parse("struct s { int a; }; struct s { int b; };")

    def test_function_definition(self):
        fn = first_function("int add(int a, int b) { return a + b; }")
        assert fn.name == "add"
        assert len(fn.params) == 2
        assert fn.body is not None

    def test_void_param_list(self):
        fn = first_function("int f(void) { return 0; }")
        assert fn.params == []

    def test_prototype_without_body(self):
        unit = parse("int f(int);")
        assert unit.functions[0].body is None


class TestStatements:
    def _body(self, stmts):
        return first_function(f"void f(void) {{ {stmts} }}").body

    def test_if_else(self):
        body = self._body("if (1) ; else ;")
        assert isinstance(body.statements[0], ast.If)
        assert body.statements[0].otherwise is not None

    def test_while(self):
        assert isinstance(self._body("while (1) ;").statements[0],
                          ast.While)

    def test_do_while(self):
        assert isinstance(self._body("do ; while (0);").statements[0],
                          ast.DoWhile)

    def test_for_with_declaration(self):
        stmt = self._body("for (int i = 0; i < 3; i++) ;").statements[0]
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)

    def test_for_empty_clauses(self):
        stmt = self._body("for (;;) break;").statements[0]
        assert stmt.init is None and stmt.cond is None \
            and stmt.step is None

    def test_break_continue_return(self):
        body = self._body("while(1) { break; continue; } return;")
        inner = body.statements[0].body
        assert isinstance(inner.statements[0], ast.Break)
        assert isinstance(inner.statements[1], ast.Continue)
        assert isinstance(body.statements[1], ast.Return)

    def test_goto_parses(self):
        body = self._body("goto out; out: ;")
        assert isinstance(body.statements[0], ast.Goto)
        assert isinstance(body.statements[1], ast.LabelStmt)

    def test_inline_asm_parses(self):
        body = self._body('asm("NOP");')
        assert isinstance(body.statements[0], ast.InlineAsm)
        assert body.statements[0].text == "NOP"

    def test_switch_with_fallthrough_groups(self):
        stmt = self._body("""
            switch (x) {
              case 1: y = 1; break;
              case 2: y = 2;
              case 3: y = 3; break;
              default: y = 0;
            }
        """.replace("x", "1").replace("y = ", "1 + ")).statements[0]
        assert isinstance(stmt, ast.Switch)
        values = [v for v, _body in stmt.cases]
        assert values == [1, 2, 3, None]

    def test_statement_before_case_rejected(self):
        with pytest.raises(CompileError):
            self._body("switch (1) { 1 + 1; case 1: ; }")

    def test_local_declarations_split(self):
        body = self._body("int a = 1, b = 2;")
        assert isinstance(body.statements[0], ast.Block)
        names = [d.name for d in body.statements[0].statements]
        assert names == ["a", "b"]


class TestExpressions:
    def _expr(self, text):
        fn = first_function(f"int f(int x) {{ return {text}; }}")
        return fn.body.statements[0].value

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_below_add(self):
        expr = self._expr("1 << 2 + 3")
        assert expr.op == "<<"
        assert expr.right.op == "+"

    def test_logical_lowest(self):
        expr = self._expr("1 == 2 && 3 < 4")
        assert expr.op == "&&"

    def test_ternary(self):
        expr = self._expr("x ? 1 : 2")
        assert isinstance(expr, ast.Conditional)

    def test_assignment_right_associative(self):
        fn = first_function("void f(void) { int a; int b; a = b = 1; }")
        stmt = fn.body.statements[2]
        assert isinstance(stmt.expr, ast.Assign)
        assert isinstance(stmt.expr.value, ast.Assign)

    def test_unary_chain(self):
        expr = self._expr("-~!x")
        assert expr.op == "-"
        assert expr.operand.op == "~"
        assert expr.operand.operand.op == "!"

    def test_postfix_and_prefix(self):
        expr = self._expr("x++")
        assert isinstance(expr, ast.Postfix)
        expr = self._expr("++x")
        assert isinstance(expr, ast.Unary)

    def test_call_with_args(self):
        expr = self._expr("f(1, 2, 3)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3

    def test_index_and_member_chain(self):
        fn = first_function("""
            struct s { int v; };
            int f(void) { struct s a[2]; return a[1].v; }
        """.strip())
        # functions[0] is f
        value = fn.body.statements[1].value
        assert isinstance(value, ast.Member)
        assert isinstance(value.base, ast.Index)

    def test_arrow(self):
        expr = self._expr("((struct s *)x)->v") if False else None
        fn = first_function("""
            struct s { int v; };
            int f(struct s *p) { return p->v; }
        """.strip())
        value = fn.body.statements[0].value
        assert isinstance(value, ast.Member)
        assert value.arrow

    def test_cast(self):
        expr = self._expr("(char)x")
        assert isinstance(expr, ast.Cast)
        assert isinstance(expr.target_type, CharType)

    def test_cast_to_pointer(self):
        expr = self._expr("(int *)x")
        assert isinstance(expr.target_type, PointerType)

    def test_sizeof_type_and_expr(self):
        assert isinstance(self._expr("sizeof(int)"), ast.SizeOf)
        assert isinstance(self._expr("sizeof x"), ast.SizeOf)

    def test_parenthesized(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_missing_semicolon_reports_error(self):
        with pytest.raises(CompileError):
            parse("int f(void) { return 1 }")

    def test_unterminated_block(self):
        with pytest.raises(CompileError):
            parse("int f(void) { return 1;")
