"""AFT phase-1 analyses: call graph, recursion, stack depth, access
enumeration."""

import pytest

from repro.aft.access import enumerate_accesses
from repro.aft.callgraph import build_call_graph
from repro.aft.stackdepth import (
    DEFAULT_RECURSIVE_STACK,
    estimate_stack,
)
from repro.cc.parser import parse
from repro.cc.sema import FULL_C, analyze
from repro.kernel.api import amulet_api_table


def graph_of(source):
    return build_call_graph(analyze(parse(source), FULL_C,
                                    amulet_api_table()))


class TestCallGraph:
    def test_simple_edges(self):
        graph = graph_of("""
            int leaf(void) { return 1; }
            int top(void) { return leaf(); }
        """)
        assert graph.callees("top") == {"leaf"}
        assert graph.find_cycle() is None

    def test_direct_recursion_cycle(self):
        graph = graph_of("int f(int n) { if (n) return f(n-1); "
                         "return 0; }")
        assert graph.find_cycle() == ["f", "f"]

    def test_mutual_recursion_cycle(self):
        graph = graph_of("""
            int b(int n);
            int a(int n) { return b(n); }
            int b(int n) { return a(n); }
        """)
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) == {"a", "b"}

    def test_address_taken_excludes_direct_callees(self):
        graph = graph_of("""
            int used(void) { return 1; }
            int called(void) { return 2; }
            int main(void) {
                int (*fp)(void) = used;
                return called() + fp();
            }
        """)
        assert "used" in graph.address_taken
        assert "called" not in graph.address_taken

    def test_indirect_call_adds_conservative_edges(self):
        graph = graph_of("""
            int target(void) { return 1; }
            int caller(void) {
                int (*fp)(void) = target;
                return fp();
            }
        """)
        assert "target" in graph.callees("caller")

    def test_indirect_recursion_detected(self):
        graph = graph_of("""
            int spin(void);
            int helper(void) { return 0; }
            int spin(void) {
                int (*fp)(void) = spin;
                return fp();
            }
        """)
        assert graph.find_cycle() is not None

    def test_reachability(self):
        graph = graph_of("""
            int a(void) { return 1; }
            int b(void) { return a(); }
            int c(void) { return 2; }
        """)
        assert graph.reachable_from(["b"]) == {"a", "b"}


class TestStackDepth:
    def test_leaf_only(self):
        graph = graph_of("int f(void) { return 1; }")
        estimate = estimate_stack(graph, {"f": 8}, ["f"])
        assert estimate.exact
        assert estimate.bytes_needed >= 8
        assert estimate.bytes_needed % 16 == 0

    def test_chain_adds_frames(self):
        graph = graph_of("""
            int leaf(void) { return 1; }
            int mid(void) { return leaf(); }
            int top(void) { return mid(); }
        """)
        frames = {"leaf": 10, "mid": 20, "top": 30}
        single = estimate_stack(graph, {"leaf": 10}, ["leaf"])
        chained = estimate_stack(graph, frames, ["top"])
        assert chained.bytes_needed > single.bytes_needed
        assert chained.per_function["top"] > \
            chained.per_function["leaf"]

    def test_recursion_falls_back_to_default(self):
        graph = graph_of("int f(int n) { if (n) return f(n-1); "
                         "return 0; }")
        estimate = estimate_stack(graph, {"f": 8}, ["f"])
        assert estimate.recursive
        assert estimate.bytes_needed == DEFAULT_RECURSIVE_STACK

    def test_custom_recursive_default(self):
        graph = graph_of("int f(int n) { if (n) return f(n-1); "
                         "return 0; }")
        estimate = estimate_stack(graph, {"f": 8}, ["f"],
                                  default_recursive=1024)
        assert estimate.bytes_needed == 1024

    def test_widest_entry_point_wins(self):
        graph = graph_of("""
            int deep3(void) { return 1; }
            int deep2(void) { return deep3(); }
            int deep1(void) { return deep2(); }
            int shallow(void) { return 2; }
        """)
        frames = {"deep1": 20, "deep2": 20, "deep3": 20, "shallow": 4}
        both = estimate_stack(graph, frames, ["shallow", "deep1"])
        only_shallow = estimate_stack(graph, frames, ["shallow"])
        assert both.bytes_needed > only_shallow.bytes_needed


class TestAccessEnumeration:
    def test_counts_by_kind(self):
        sema = analyze(parse("""
            int arr[4];
            int helper(int *p) { return *p + p[1]; }
            int top(int i) {
                int (*fp)(int *) = helper;
                arr[i] = i;
                amulet_log_word(arr[i]);
                return fp(arr) + helper(arr);
            }
        """), FULL_C, amulet_api_table())
        report = enumerate_accesses(sema)
        helper = report.functions["helper"]
        top = report.functions["top"]
        assert helper.pointer_derefs == 2
        assert top.array_accesses == 2
        assert top.fn_pointer_calls == 1
        assert top.direct_calls == 1
        assert top.api_calls == 1
        assert helper.returns == 1
        assert report.total_api_calls == 1
        assert ("top", "amulet_log_word") in report.api_call_names

    def test_checked_sites(self):
        sema = analyze(parse(
            "int f(int *p) { return *p; }"), FULL_C)
        report = enumerate_accesses(sema)
        assert report.functions["f"].checked_sites == 2  # deref + ret
