"""Shard invariance and crash/resume for fleet campaigns.

The executor's contract: the summary (and every per-device record) is
a pure function of the campaign parameters — never of how many worker
processes ran it, or of how many times it was killed and resumed.
"""

import json

import pytest

from repro.errors import ReproError
from repro.fleet.executor import FleetConfig, run_campaign
from repro.fleet.telemetry import _percentiles

#: small but non-trivial: ~11 simulated seconds per device, several
#: checkpoint segments, rogues likely present
_CAMPAIGN = dict(devices=4, hours=0.003, models=("mpu",), seed=7,
                 checkpoint_minutes=0.05, rogue_fraction=0.5)


def _run(tmp_path, name, jobs, **overrides):
    config = FleetConfig(**{**_CAMPAIGN, **overrides})
    out = tmp_path / name
    summary = run_campaign(config, out, jobs=jobs)
    return out, summary


class TestShardInvariance:
    def test_jobs_1_2_4_identical_summary(self, tmp_path):
        outs = [_run(tmp_path, f"jobs{jobs}", jobs)[0]
                for jobs in (1, 2, 4)]
        blobs = [(out / "summary.json").read_bytes() for out in outs]
        assert blobs[0] == blobs[1] == blobs[2]
        records = [(out / "devices-mpu.jsonl").read_bytes()
                   for out in outs]
        assert records[0] == records[1] == records[2]

    def test_campaign_dir_rejects_other_config(self, tmp_path):
        out, _ = _run(tmp_path, "campaign", 1)
        other = FleetConfig(**{**_CAMPAIGN, "seed": 8})
        with pytest.raises(ReproError, match="different campaign"):
            run_campaign(other, out, jobs=1)

    def test_jobs_is_not_campaign_identity(self, tmp_path):
        # --jobs is an execution detail: the campaign key must not
        # change with it, so the same directory accepts any jobs
        out, first = _run(tmp_path, "anyjobs", 2)
        summary = run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=1)
        assert summary == first


class TestCrashResume:
    def test_kill_and_resume_is_byte_identical(self, tmp_path):
        reference, _ = _run(tmp_path, "reference", 1)

        config = FleetConfig(**_CAMPAIGN)
        out = tmp_path / "crashed"
        # every worker process dies (os._exit) after two committed
        # checkpoint writes — mid-device, mid-campaign
        with pytest.raises(ReproError, match="re-run the same"):
            run_campaign(config, out, jobs=2,
                         crash_after_checkpoints=2)
        assert (out / "shards").exists()         # checkpoints survive

        run_campaign(config, out, jobs=2)        # same command again
        assert (out / "summary.json").read_bytes() == \
            (reference / "summary.json").read_bytes()

    def test_kill_mid_checkpoint_write_falls_back(self, tmp_path):
        # worker dies after fully writing the Nth checkpoint's temp
        # file but BEFORE renaming it into place: the checkpoint path
        # must still hold the previous complete checkpoint (or not
        # exist), never a torn file, and the resume must land on the
        # byte-identical summary
        reference, _ = _run(tmp_path, "wreference", 1)

        config = FleetConfig(**_CAMPAIGN)
        out = tmp_path / "torn"
        with pytest.raises(ReproError, match="re-run the same"):
            run_campaign(config, out, jobs=2, crash_before_replace=2)

        shards = out / "shards"
        tmp_leftovers = list(shards.glob("*.ckpt.tmp*"))
        assert tmp_leftovers, "crash hook should leave a temp file"
        import pickle
        for ckpt in shards.glob("*.ckpt"):
            # every committed checkpoint is complete and loadable
            saved = pickle.loads(ckpt.read_bytes())
            assert saved["config_key"] == config.key()

        run_campaign(config, out, jobs=2)
        assert (out / "summary.json").read_bytes() == \
            (reference / "summary.json").read_bytes()

    def test_resume_under_different_jobs(self, tmp_path):
        # kill a jobs=2 run, resume it serially via a worker process
        # count the original run never saw — per-device state makes
        # the unit layout irrelevant
        reference, _ = _run(tmp_path, "jreference", 1)

        config = FleetConfig(**_CAMPAIGN)
        out = tmp_path / "rejobs"
        with pytest.raises(ReproError, match="re-run the same"):
            run_campaign(config, out, jobs=2,
                         crash_after_checkpoints=2)
        run_campaign(config, out, jobs=3)
        assert (out / "summary.json").read_bytes() == \
            (reference / "summary.json").read_bytes()

    def test_completed_models_are_not_rerun(self, tmp_path):
        out, first = _run(tmp_path, "resume", 1)
        lines = []
        config = FleetConfig(**_CAMPAIGN)
        summary = run_campaign(config, out, jobs=1,
                               report=lines.append)
        assert summary == first
        assert any("already complete" in line for line in lines)


class TestSummaryShape:
    def test_percentiles_nearest_rank(self):
        stats = _percentiles(list(range(1, 11)))
        assert stats == {"min": 1, "p50": 5, "p90": 9, "p99": 10,
                         "max": 10, "mean": 5.5}

    def test_summary_reports_models_and_containment(self, tmp_path):
        _, summary = _run(tmp_path, "shape", 2,
                          models=("none", "mpu"))
        assert set(summary["models"]) == {"none", "mpu"}
        mpu = summary["models"]["mpu"]
        assert mpu["overhead_vs_none_pct"] > 0
        assert mpu["rogue_contained"]
        # rogues fault and restart under the MPU, never under none
        if mpu["rogue_devices"]:
            assert mpu["faults"] > 0
            assert summary["models"]["none"]["faults"] == 0
