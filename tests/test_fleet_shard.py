"""Shard invariance and crash/resume for fleet campaigns.

The executor's contract: the summary (and every per-device record) is
a pure function of the campaign parameters — never of how many worker
processes ran it, or of how many times it was killed and resumed.
"""

import json

import pytest

from repro.errors import ReproError
from repro.fleet.executor import FleetConfig, run_campaign
from repro.fleet.telemetry import _percentiles

#: small but non-trivial: ~11 simulated seconds per device, several
#: checkpoint segments, rogues likely present
_CAMPAIGN = dict(devices=4, hours=0.003, models=("mpu",), seed=7,
                 checkpoint_minutes=0.05, rogue_fraction=0.5)


def _run(tmp_path, name, jobs, **overrides):
    config = FleetConfig(shards=jobs, **{**_CAMPAIGN, **overrides})
    out = tmp_path / name
    summary = run_campaign(config, out, jobs=jobs)
    return out, summary


class TestShardInvariance:
    def test_jobs_1_2_4_identical_summary(self, tmp_path):
        outs = [_run(tmp_path, f"jobs{jobs}", jobs)[0]
                for jobs in (1, 2, 4)]
        blobs = [(out / "summary.json").read_bytes() for out in outs]
        assert blobs[0] == blobs[1] == blobs[2]
        records = [(out / "devices-mpu.jsonl").read_bytes()
                   for out in outs]
        assert records[0] == records[1] == records[2]

    def test_campaign_dir_rejects_other_config(self, tmp_path):
        out, _ = _run(tmp_path, "campaign", 1)
        other = FleetConfig(shards=1, **{**_CAMPAIGN, "seed": 8})
        with pytest.raises(ReproError, match="different campaign"):
            run_campaign(other, out, jobs=1)


class TestCrashResume:
    def test_kill_and_resume_is_byte_identical(self, tmp_path):
        reference, _ = _run(tmp_path, "reference", 1)

        config = FleetConfig(shards=2, **_CAMPAIGN)
        out = tmp_path / "crashed"
        # every worker process dies (os._exit) after two checkpoint
        # writes — mid-device, mid-campaign
        with pytest.raises(ReproError, match="re-run the same"):
            run_campaign(config, out, jobs=2,
                         crash_after_checkpoints=2)
        assert (out / "shards").exists()         # checkpoints survive

        run_campaign(config, out, jobs=2)        # same command again
        assert (out / "summary.json").read_bytes() == \
            (reference / "summary.json").read_bytes()

    def test_completed_models_are_not_rerun(self, tmp_path):
        out, first = _run(tmp_path, "resume", 1)
        lines = []
        config = FleetConfig(shards=1, **_CAMPAIGN)
        summary = run_campaign(config, out, jobs=1,
                               report=lines.append)
        assert summary == first
        assert any("already complete" in line for line in lines)


class TestSummaryShape:
    def test_percentiles_nearest_rank(self):
        stats = _percentiles(list(range(1, 11)))
        assert stats == {"min": 1, "p50": 5, "p90": 9, "p99": 10,
                         "max": 10, "mean": 5.5}

    def test_summary_reports_models_and_containment(self, tmp_path):
        _, summary = _run(tmp_path, "shape", 2,
                          models=("none", "mpu"))
        assert set(summary["models"]) == {"none", "mpu"}
        mpu = summary["models"]["mpu"]
        assert mpu["overhead_vs_none_pct"] > 0
        assert mpu["rogue_contained"]
        # rogues fault and restart under the MPU, never under none
        if mpu["rogue_devices"]:
            assert mpu["faults"] > 0
            assert summary["models"]["none"]["faults"] == 0
