"""ARP counting, ARP-view extrapolation, and the energy model."""

import pytest

from repro.aft.models import IsolationModel
from repro.aft.phases import AppSource
from repro.apps.manifests import (
    AppManifest,
    HandlerRate,
    MANIFESTS,
    MS_PER_WEEK,
)
from repro.kernel.events import EventType
from repro.profiler.arp import ArpProfiler
from repro.profiler.arpview import ArpView, OperationOverheads
from repro.profiler.energy import EnergyModel

PROBE = """
int data[16];
int hits = 0;

int on_three_accesses(int arg) {
    data[0] = arg;          /* 1 */
    data[1] = data[0] + 1;  /* 2 reads+writes at two sites... */
    hits++;
    return data[1];
}

int on_api_twice(int arg) {
    amulet_log_word(arg);
    amulet_vibrate(1);
    return 0;
}

int on_variable(int arg) {
    int i;
    for (i = 0; i < (arg & 7); i++) {
        data[i] = i;
    }
    return 0;
}
"""

HANDLERS = ["on_three_accesses", "on_api_twice", "on_variable"]


@pytest.fixture(scope="module")
def profiler():
    return ArpProfiler([AppSource("probe", PROBE, HANDLERS)])


class TestArpCounts:
    def test_fixed_access_count(self, profiler):
        counts = profiler.profile_handler("probe", "on_three_accesses",
                                          EventType.TIMER, samples=4)
        # data[0] store, data[0] load, data[1] store, data[1] load = 4
        assert counts.memory_accesses == 4
        assert counts.api_calls == 0
        assert counts.context_switches == 1.0

    def test_api_calls_counted(self, profiler):
        counts = profiler.profile_handler("probe", "on_api_twice",
                                          EventType.TIMER, samples=4)
        assert counts.api_calls == 2
        assert counts.context_switches == 3.0

    def test_variable_path_averages(self, profiler):
        counts = profiler.profile_handler("probe", "on_variable",
                                          EventType.ACCEL_SAMPLE,
                                          samples=32)
        # loop runs (arg & 7) times; average over live samples
        assert 0 < counts.memory_accesses < 8

    def test_profile_app_covers_manifest(self):
        manifest = AppManifest("probe", "Probe", (
            HandlerRate("on_three_accesses", EventType.TIMER, 1000),
            HandlerRate("on_api_twice", EventType.TIMER, 5000),
        ))
        profiler = ArpProfiler([AppSource("probe", PROBE, HANDLERS)])
        profile = profiler.profile_app(manifest, samples=4)
        assert set(profile.handlers) == {"on_three_accesses",
                                         "on_api_twice"}
        assert "mem=" in profile.describe()


class TestArpView:
    def test_weekly_math(self):
        manifest = AppManifest("probe", "Probe", (
            HandlerRate("h", EventType.TIMER, 1000),))
        from repro.profiler.arp import ArpProfile, HandlerCounts
        profile = ArpProfile("probe")
        counts = HandlerCounts("h", samples=1)
        counts.data_accesses = 10.0
        counts.api_calls = 1.0
        profile.handlers["h"] = counts
        overheads = OperationOverheads(IsolationModel.MPU,
                                       per_memory_access=6.0,
                                       per_context_switch=50.0)
        view = ArpView()
        weekly = view.weekly_overhead(profile, manifest, overheads)
        events = MS_PER_WEEK // 1000
        assert weekly.memory_access_cycles == events * 10 * 6.0
        assert weekly.context_switch_cycles == events * 2 * 50.0
        assert weekly.cycles_per_week == (weekly.memory_access_cycles
                                          + weekly.context_switch_cycles)
        assert weekly.billions_of_cycles == \
            weekly.cycles_per_week / 1e9

    def test_battery_impact_consistent_with_energy_model(self):
        energy = EnergyModel()
        manifest = AppManifest("p", "P", (
            HandlerRate("h", EventType.TIMER, 1000),))
        from repro.profiler.arp import ArpProfile, HandlerCounts
        profile = ArpProfile("p")
        counts = HandlerCounts("h", samples=1)
        counts.data_accesses = 100.0
        profile.handlers["h"] = counts
        overheads = OperationOverheads(IsolationModel.MPU, 10.0, 0.0)
        weekly = ArpView(energy).weekly_overhead(profile, manifest,
                                                 overheads)
        expected = energy.battery_impact_percent(
            weekly.cycles_per_week)
        assert weekly.battery_impact_percent == pytest.approx(expected)


class TestEnergyModel:
    def test_cycle_energy_magnitude(self):
        energy = EnergyModel()
        # 100 µA/MHz at 3 V -> 0.3 nJ per cycle
        assert energy.joules_per_cycle == pytest.approx(0.3e-9)

    def test_battery_joules(self):
        energy = EnergyModel()
        assert energy.battery_joules == pytest.approx(
            0.110 * 3600 * 3.0, rel=1e-6)

    def test_weekly_budget(self):
        energy = EnergyModel(target_lifetime_weeks=2.0)
        assert energy.weekly_budget_joules == pytest.approx(
            energy.battery_joules / 2)

    def test_battery_impact_scales_linearly(self):
        energy = EnergyModel()
        one = energy.battery_impact_percent(1e9)
        two = energy.battery_impact_percent(2e9)
        assert two == pytest.approx(2 * one)

    def test_paper_scale_sanity(self):
        """Figure 2's heaviest app shows ~3e9 cycles/week of overhead
        and stays under 0.5 % battery impact — the default parameters
        must reproduce that relationship."""
        energy = EnergyModel()
        assert energy.battery_impact_percent(3e9) < 0.5

    def test_seconds_conversion(self):
        energy = EnergyModel()
        assert energy.cycles_to_seconds(16_000_000) == \
            pytest.approx(1.0)


class TestManifests:
    def test_all_suite_apps_have_manifests(self):
        assert len(MANIFESTS) == 9

    def test_rates_positive(self):
        for manifest in MANIFESTS.values():
            for rate in manifest.rates:
                assert rate.period_ms > 0
                assert rate.events_per_week > 0

    def test_accel_apps_are_busiest(self):
        fall = MANIFESTS["falldetection"].events_per_week()["on_accel"]
        clock = MANIFESTS["clock"].events_per_week()["on_second"]
        assert fall > 10 * clock

    def test_sources_for_creates_periodic_sources(self):
        sources = MANIFESTS["hr"].sources_for("hr")
        assert {s.handler for s in sources} == {"on_hr_sample",
                                                "on_display"}
