"""Assembler: syntax, directives, emulated instructions, relocations."""

import pytest

from repro.errors import AssemblerError
from repro.asm.assembler import assemble
from repro.asm.objfile import RelocType
from repro.msp430.decoder import decode_bytes
from repro.msp430.isa import AddressingMode, Opcode


def first_insn(obj, section=".text", offset=0):
    data = bytes(obj.sections[section].data)
    return decode_bytes(data[offset:], offset)[0]


class TestBasicSyntax:
    def test_simple_instruction(self):
        obj = assemble("MOV #5, R10")
        insn = first_insn(obj)
        assert insn.opcode is Opcode.MOV
        assert insn.dst.register == 10

    def test_label_definition(self):
        obj = assemble("start: NOP")
        assert obj.symbols["start"].offset == 0
        assert obj.symbols["start"].section == ".text"

    def test_multiple_labels_one_line(self):
        obj = assemble("a: b: NOP")
        assert obj.symbols["a"].offset == obj.symbols["b"].offset == 0

    def test_comments_stripped(self):
        obj = assemble("NOP ; comment\nNOP // another\n; full line")
        assert obj.sections[".text"].size == 4

    def test_case_insensitive_mnemonics(self):
        obj = assemble("mov #1, r5\nMoV #2, R6")
        assert obj.sections[".text"].size == 4   # both use CG

    def test_byte_suffix(self):
        insn = first_insn(assemble("MOV.B #1, R5"))
        assert insn.byte

    def test_char_literal_immediate(self):
        insn = first_insn(assemble("MOV #'A', R5"))
        assert insn.src.value == 65

    def test_unknown_mnemonic_reports_line(self):
        with pytest.raises(AssemblerError) as info:
            assemble("NOP\nFROB R5\n", name="x.s")
        assert "x.s:2" in str(info.value)

    def test_hex_and_binary_numbers(self):
        insn = first_insn(assemble("MOV #0x1F, R5"))
        assert insn.src.value == 0x1F
        insn = first_insn(assemble("MOV #0b101, R5"))
        assert insn.src.value == 5


class TestAddressingModes:
    def test_indexed(self):
        insn = first_insn(assemble("MOV 4(R7), R5"))
        assert insn.src.mode is AddressingMode.INDEXED
        assert insn.src.register == 7
        assert insn.src.value == 4

    def test_negative_index(self):
        insn = first_insn(assemble("MOV -2(R4), R5"))
        assert insn.src.value == 0xFFFE

    def test_absolute(self):
        insn = first_insn(assemble("MOV &0x8000, R5"))
        assert insn.src.mode is AddressingMode.ABSOLUTE
        assert insn.src.value == 0x8000

    def test_indirect_and_autoincrement(self):
        insn = first_insn(assemble("MOV @R9, R5"))
        assert insn.src.mode is AddressingMode.INDIRECT
        insn = first_insn(assemble("MOV @R9+, R5"))
        assert insn.src.mode is AddressingMode.AUTOINCREMENT

    def test_register_aliases(self):
        insn = first_insn(assemble("MOV SP, R5"))
        assert insn.src.register == 1


class TestEmulatedInstructions:
    @pytest.mark.parametrize("text,opcode", [
        ("NOP", Opcode.MOV),
        ("RET", Opcode.MOV),
        ("INC R5", Opcode.ADD),
        ("DEC R5", Opcode.SUB),
        ("TST R5", Opcode.CMP),
        ("INV R5", Opcode.XOR),
        ("RLA R5", Opcode.ADD),
        ("RLC R5", Opcode.ADDC),
        ("CLR R5", Opcode.MOV),
        ("POP R5", Opcode.MOV),
        ("CLRC", Opcode.BIC),
        ("SETC", Opcode.BIS),
        ("DINT", Opcode.BIC),
        ("EINT", Opcode.BIS),
    ])
    def test_expansion_opcode(self, text, opcode):
        assert first_insn(assemble(text)).opcode is opcode

    def test_ret_is_canonical_encoding(self):
        obj = assemble("RET")
        assert bytes(obj.sections[".text"].data) == b"\x30\x41"

    def test_nop_is_canonical_encoding(self):
        obj = assemble("NOP")
        assert bytes(obj.sections[".text"].data) == b"\x03\x43"

    def test_br_targets_pc(self):
        insn = first_insn(assemble("BR #0x5000"))
        assert insn.opcode is Opcode.MOV
        assert insn.dst.register == 0

    def test_rla_duplicates_operand(self):
        insn = first_insn(assemble("RLA R7"))
        assert insn.src.register == insn.dst.register == 7

    def test_jump_aliases(self):
        assert first_insn(assemble("JZ x\nx: NOP")).opcode is Opcode.JEQ
        assert first_insn(assemble("JLO x\nx: NOP")).opcode is Opcode.JNC
        assert first_insn(assemble("JHS x\nx: NOP")).opcode is Opcode.JC


class TestDirectives:
    def test_word_and_byte(self):
        obj = assemble(".data\n.word 0x1234, 7\n.byte 1, 2")
        assert bytes(obj.sections[".data"].data) == \
            b"\x34\x12\x07\x00\x01\x02"

    def test_space(self):
        obj = assemble(".data\n.space 4")
        assert bytes(obj.sections[".data"].data) == b"\x00" * 4

    def test_space_with_fill(self):
        obj = assemble(".data\n.space 3, 0xFF")
        assert bytes(obj.sections[".data"].data) == b"\xff" * 3

    def test_align(self):
        obj = assemble(".data\n.byte 1\n.align 4\n.byte 2")
        assert obj.sections[".data"].data[:5] == \
            bytearray(b"\x01\x00\x00\x00\x02")

    def test_ascii_and_asciz(self):
        obj = assemble('.data\n.asciz "hi"')
        assert bytes(obj.sections[".data"].data) == b"hi\x00"

    def test_equ_constant(self):
        obj = assemble(".equ LIMIT, 42\nMOV #LIMIT, R5")
        insn = first_insn(obj)
        assert insn.src.value == 42

    def test_section_switching(self):
        obj = assemble(".section .custom\n.word 1\n.text\nNOP")
        assert ".custom" in obj.sections
        assert obj.sections[".custom"].size == 2

    def test_global_marks_symbol(self):
        obj = assemble(".global foo\nfoo: NOP")
        assert obj.symbols["foo"].is_global

    def test_word_with_symbol_emits_reloc(self):
        obj = assemble(".data\n.word remote")
        relocs = obj.sections[".data"].relocations
        assert len(relocs) == 1
        assert relocs[0].type is RelocType.ABS16
        assert relocs[0].symbol == "remote"


class TestRelocations:
    def test_immediate_symbol(self):
        obj = assemble("MOV #target, R5")
        relocs = obj.sections[".text"].relocations
        assert relocs[0].type is RelocType.ABS16
        assert relocs[0].offset == 2      # extension word

    def test_jump_to_undefined_symbol(self):
        obj = assemble("JMP elsewhere")
        relocs = obj.sections[".text"].relocations
        assert relocs[0].type is RelocType.JUMP10
        assert relocs[0].offset == 0

    def test_symbolic_mode_pcrel_reloc(self):
        obj = assemble("MOV counter, R5")
        relocs = obj.sections[".text"].relocations
        assert relocs[0].type is RelocType.PCREL16

    def test_src_and_dst_relocs_ordered(self):
        obj = assemble("MOV #a, &b")
        relocs = sorted(obj.sections[".text"].relocations,
                        key=lambda r: r.offset)
        assert [r.symbol for r in relocs] == ["a", "b"]
        assert [r.offset for r in relocs] == [2, 4]

    def test_undefined_symbols_listed(self):
        obj = assemble("MOV #ghost, R5")
        assert obj.undefined_symbols() == ["ghost"]

    def test_symbol_with_addend(self):
        obj = assemble("MOV #table+4, R5")
        reloc = obj.sections[".text"].relocations[0]
        assert reloc.symbol == "table"
        assert reloc.addend == 4

    def test_symbol_with_negative_addend(self):
        obj = assemble("MOV #table-2, R5")
        reloc = obj.sections[".text"].relocations[0]
        assert reloc.addend == 0xFFFE    # -2 mod 2^16

    def test_indexed_with_symbol_offset(self):
        obj = assemble("MOV struct_off(R7), R5")
        reloc = obj.sections[".text"].relocations[0]
        assert reloc.type is RelocType.ABS16
        assert reloc.symbol == "struct_off"

    def test_equ_folds_into_indexed(self):
        obj = assemble(".equ OFF, 6\nMOV OFF(R7), R5")
        assert obj.sections[".text"].relocations == []
        insn = first_insn(obj)
        assert insn.src.value == 6

    def test_addend_resolves_through_linker(self):
        from repro.asm.linker import LinkScript, link
        obj = assemble("""
                MOV #table+2, R5
        .data
        .global table
table:  .word 0xAAAA, 0xBBBB
        """)
        script = LinkScript()
        script.region("fram", 0x4400, 0xFF7F)
        script.place_rule("*", "fram")
        image = link([obj], script)
        code = image.segments[0][1]
        patched = code[2] | (code[3] << 8)
        assert patched == image.symbol("table") + 2
