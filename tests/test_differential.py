"""Differential testing: the compiled simulator execution must agree
with the reference interpreter on randomly generated programs.

This is the compiler's strongest correctness evidence: hypothesis
builds arbitrary expression trees and small statement programs over a
fixed set of variables, and any divergence between
``Interpreter`` (Python semantics oracle) and the full
compile → assemble → link → simulate pipeline is a bug.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings, \
    strategies as st

from repro.errors import InterpreterError
from repro.cc.execution import run_compiled
from repro.cc.interp import Interpreter
from repro.cc.parser import parse
from repro.cc.sema import FULL_C, analyze

_SETTINGS = dict(max_examples=40, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

_INT_VARS = ("a", "b", "c")
_UNSIGNED_VARS = ("u", "v")


def _interp(source, fn="main", args=()):
    result = analyze(parse(source), FULL_C)
    # modest step budget: runaway generated programs get rejected fast
    return Interpreter(result, max_steps=300_000).call(fn, list(args))


def _compiled(source, fn="main", args=()):
    return run_compiled(source, fn, args).value


def assert_agreement(source, fn="main", args=()):
    try:
        expected = _interp(source, fn, args)
    except InterpreterError:
        # generated program doesn't terminate (or divides by zero in a
        # way the guards missed): not a compiler-correctness question
        assume(False)
        return
    actual = _compiled(source, fn, args)
    assert actual == expected, (
        f"divergence: interp={expected} compiled={actual}\n{source}")


# -- expression generation -------------------------------------------------

_BINOPS_SAFE = ("+", "-", "*", "&", "|", "^", "==", "!=", "<", ">",
                "<=", ">=", "&&", "||")


@st.composite
def int_expr(draw, depth=0):
    if depth >= 4 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(0, 200)))
        if choice == 1:
            return draw(st.sampled_from(_INT_VARS))
        return draw(st.sampled_from(_UNSIGNED_VARS))
    kind = draw(st.integers(0, 5))
    if kind == 0:
        op = draw(st.sampled_from(_BINOPS_SAFE))
        left = draw(int_expr(depth=depth + 1))
        right = draw(int_expr(depth=depth + 1))
        return f"({left} {op} {right})"
    if kind == 1:
        op = draw(st.sampled_from(("-", "~", "!")))
        inner = draw(int_expr(depth=depth + 1))
        return f"({op}{inner})"
    if kind == 2:
        # division guarded against zero
        left = draw(int_expr(depth=depth + 1))
        right = draw(int_expr(depth=depth + 1))
        op = draw(st.sampled_from(("/", "%")))
        return f"({left} {op} (({right}) | 1))"
    if kind == 3:
        # shift with bounded count
        left = draw(int_expr(depth=depth + 1))
        count = draw(st.integers(0, 15))
        op = draw(st.sampled_from(("<<", ">>")))
        return f"({left} {op} {count})"
    if kind == 4:
        cond = draw(int_expr(depth=depth + 1))
        a = draw(int_expr(depth=depth + 1))
        b = draw(int_expr(depth=depth + 1))
        return f"(({cond}) ? ({a}) : ({b}))"
    inner = draw(int_expr(depth=depth + 1))
    return f"((int)({inner}))"


class TestExpressionDifferential:
    @given(expr=int_expr(),
           a=st.integers(0, 0xFFFF), b=st.integers(0, 0xFFFF),
           c=st.integers(0, 0xFFFF), u=st.integers(0, 0xFFFF),
           v=st.integers(0, 0xFFFF))
    @settings(**_SETTINGS)
    def test_expressions_agree(self, expr, a, b, c, u, v):
        source = f"""
            int a; int b; int c;
            unsigned u; unsigned v;
            int main(int p, int q, int r, int s) {{
                a = p; b = q; c = r; u = s; v = p ^ q;
                return {expr};
            }}
        """
        assert_agreement(source, args=(a, b, c, u))

    @given(values=st.lists(st.integers(0, 0xFFFF), min_size=4,
                           max_size=4),
           shift=st.integers(0, 15))
    @settings(**_SETTINGS)
    def test_mixed_char_arithmetic(self, values, shift):
        source = f"""
            char cbuf[4];
            int main(int p, int q, int r, int s) {{
                cbuf[0] = p; cbuf[1] = q; cbuf[2] = r; cbuf[3] = s;
                return (cbuf[0] + cbuf[1] * cbuf[2] - cbuf[3])
                     ^ (cbuf[0] << {shift % 8});
            }}
        """
        assert_agreement(source, args=tuple(values))


# -- statement-level generation ---------------------------------------------

@st.composite
def statements(draw, depth=0):
    kind = draw(st.integers(0, 5 if depth < 2 else 2))
    target = draw(st.sampled_from(_INT_VARS))
    if kind == 0:
        expr = draw(int_expr(depth=2))
        op = draw(st.sampled_from(("=", "+=", "-=", "^=", "|=", "&=")))
        return f"{target} {op} {expr};"
    if kind == 1:
        expr = draw(int_expr(depth=3))
        return f"acc += {expr};"
    if kind == 2:
        return draw(st.sampled_from(
            [f"{target}++;", f"{target}--;", f"++{target};"]))
    if kind == 3:
        cond = draw(int_expr(depth=3))
        then = draw(statements(depth=depth + 1))
        other = draw(statements(depth=depth + 1))
        return f"if ({cond}) {{ {then} }} else {{ {other} }}"
    # loops use a per-nesting-depth counter so nested loops cannot
    # reset each other's induction variable (which would not terminate)
    if kind == 4:
        counter = f"i{depth}"
        body = draw(statements(depth=depth + 1))
        return (f"for ({counter} = 0; {counter} < "
                f"{draw(st.integers(1, 5))}; {counter}++) {{ {body} }}")
    counter = f"j{depth}"
    body = draw(statements(depth=depth + 1))
    return (f"{counter} = 0; while ({counter} < "
            f"{draw(st.integers(1, 4))}) {{ {body} {counter}++; }}")


class TestProgramDifferential:
    @given(stmts=st.lists(statements(), min_size=1, max_size=6),
           a=st.integers(0, 0xFFFF), b=st.integers(0, 0xFFFF))
    @settings(**_SETTINGS)
    def test_programs_agree(self, stmts, a, b):
        body = "\n                ".join(stmts)
        counters = "".join(f"int i{d} = 0; int j{d} = 0;"
                           for d in range(3))
        source = f"""
            int a; int b; int c;
            unsigned u; unsigned v;
            int main(int p, int q) {{
                int acc = 0;
                {counters}
                a = p; b = q; c = p + q; u = p; v = q;
                {body}
                return acc + a + b * 3 + c * 5 + (int)u + (int)v;
            }}
        """
        assert_agreement(source, args=(a, b))

    @given(data=st.lists(st.integers(0, 0xFFFF), min_size=6,
                         max_size=6))
    @settings(**_SETTINGS)
    def test_array_sort_agree(self, data):
        loads = "".join(f"d[{i}] = {v};" for i, v in enumerate(data))
        source = f"""
            int d[6];
            int main(void) {{
                int i;
                int j;
                int t;
                {loads}
                for (i = 0; i < 6; i++)
                    for (j = i + 1; j < 6; j++)
                        if (d[j] < d[i]) {{
                            t = d[i]; d[i] = d[j]; d[j] = t;
                        }}
                return d[0] ^ (d[1] + d[2]) ^ (d[5] - d[3]) ^ d[4];
            }}
        """
        assert_agreement(source)

    @given(n=st.integers(0, 10), seed=st.integers(0, 0xFFFF))
    @settings(max_examples=15, deadline=None)
    def test_recursive_functions_agree(self, n, seed):
        source = """
            int mix(int n, int s) {
                if (n <= 0) return s;
                return mix(n - 1, s * 3 + n) ^ n;
            }
            int main(int n, int s) { return mix(n, s); }
        """
        assert_agreement(source, args=(n, seed))

    @given(values=st.lists(st.integers(0, 0x7FFF), min_size=2,
                           max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_pointer_walks_agree(self, values):
        stores = "".join(f"buf[{i}] = {v};"
                         for i, v in enumerate(values))
        source = f"""
            int buf[8];
            int main(void) {{
                int *p = buf;
                int *end = buf + {len(values)};
                int acc = 0;
                {stores}
                while (p < end) {{
                    acc += *p;
                    acc ^= p[0] >> 1;
                    p++;
                }}
                return acc + (end - buf);
            }}
        """
        assert_agreement(source)


class TestRuntimeHelperProperties:
    """Direct properties of the assembly runtime helpers."""

    @given(a=st.integers(0, 0xFFFF), b=st.integers(0, 0xFFFF))
    @settings(**_SETTINGS)
    def test_multiply_matches_python(self, a, b):
        source = "unsigned main(unsigned a, unsigned b) { return a * b; }"
        assert _compiled(source, args=(a, b)) == (a * b) & 0xFFFF

    @given(a=st.integers(0, 0xFFFF), b=st.integers(1, 0xFFFF))
    @settings(**_SETTINGS)
    def test_unsigned_divmod_matches_python(self, a, b):
        q = _compiled("unsigned main(unsigned a, unsigned b) "
                      "{ return a / b; }", args=(a, b))
        r = _compiled("unsigned main(unsigned a, unsigned b) "
                      "{ return a % b; }", args=(a, b))
        assert q == a // b
        assert r == a % b
        assert (q * b + r) & 0xFFFF == a

    @given(a=st.integers(-0x8000, 0x7FFF),
           b=st.integers(-0x8000, 0x7FFF).filter(lambda v: v != 0))
    @settings(**_SETTINGS)
    def test_signed_division_truncates_toward_zero(self, a, b):
        q = _compiled("int main(int a, int b) { return a / b; }",
                      args=(a & 0xFFFF, b & 0xFFFF))
        expected = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected = -expected
        assert q == expected & 0xFFFF

    @given(a=st.integers(-0x8000, 0x7FFF),
           b=st.integers(-0x8000, 0x7FFF).filter(lambda v: v != 0))
    @settings(**_SETTINGS)
    def test_signed_remainder_identity(self, a, b):
        q = _compiled("int main(int a, int b) { return a / b; }",
                      args=(a & 0xFFFF, b & 0xFFFF))
        r = _compiled("int main(int a, int b) { return a % b; }",
                      args=(a & 0xFFFF, b & 0xFFFF))
        assert (q * (b & 0xFFFF) + r) & 0xFFFF == a & 0xFFFF
