"""Semantic analysis: type checking, restrictions, AFT facts."""

import pytest

from repro.errors import CompileError, RestrictionError
from repro.cc.parser import parse
from repro.cc.sema import AMULET_C, FULL_C, analyze
from repro.cc.symbols import SymbolKind
from repro.kernel.api import amulet_api_table


def check(source, profile=FULL_C, api=None):
    return analyze(parse(source), profile, api)


class TestTypeChecking:
    def test_undeclared_identifier(self):
        with pytest.raises(CompileError, match="undeclared"):
            check("int f(void) { return ghost; }")

    def test_call_arity(self):
        with pytest.raises(CompileError, match="expects 2"):
            check("int g(int a, int b) { return a; }"
                  "int f(void) { return g(1); }")

    def test_call_non_function(self):
        with pytest.raises(CompileError, match="cannot call"):
            check("int x; int f(void) { return x(); }")

    def test_assign_to_rvalue(self):
        with pytest.raises(CompileError, match="lvalue"):
            check("int f(int a) { (a + 1) = 2; return 0; }")

    def test_assign_to_array(self):
        with pytest.raises(CompileError, match="array"):
            check("int a[3]; int b[3];"
                  "void f(void) { a = b; }")

    def test_struct_assignment_rejected(self):
        with pytest.raises(CompileError, match="struct assignment"):
            check("struct s { int x; };"
                  "struct s a; struct s b;"
                  "void f(void) { a = b; }")

    def test_deref_non_pointer(self):
        with pytest.raises(CompileError, match="dereference"):
            check("int f(int a) { return *a; }")

    def test_index_non_array(self):
        with pytest.raises(CompileError, match="cannot index"):
            check("int f(int a) { return a[0]; }")

    def test_member_of_non_struct(self):
        with pytest.raises(CompileError):
            check("int f(int a) { return a.x; }")

    def test_unknown_struct_field(self):
        with pytest.raises(CompileError, match="no field"):
            check("struct s { int x; }; struct s v;"
                  "int f(void) { return v.y; }")

    def test_return_value_from_void(self):
        with pytest.raises(CompileError):
            check("void f(void) { return 1; }")

    def test_missing_return_value(self):
        with pytest.raises(CompileError):
            check("int f(void) { return; }")

    def test_void_variable(self):
        with pytest.raises(CompileError, match="void"):
            check("void f(void) { void v; }")

    def test_static_local_rejected(self):
        with pytest.raises(CompileError, match="static"):
            check("void f(void) { static int v; }")

    def test_continue_outside_loop(self):
        with pytest.raises(CompileError, match="continue"):
            check("void f(void) { continue; }")

    def test_global_init_must_be_constant(self):
        with pytest.raises(CompileError, match="constant"):
            check("int g(void) { return 1; } int x = g();")

    def test_redefinition(self):
        with pytest.raises(CompileError, match="redefinition"):
            check("int x; int x;")

    def test_char_promotes_in_arithmetic(self):
        result = check("int f(char c) { return c + 1; }")
        fn = result.unit.functions[0]
        expr = fn.body.statements[0].value
        assert str(expr.ctype) == "int"

    def test_pointer_plus_int(self):
        result = check("int f(int *p) { return *(p + 2); }")
        assert result.pointer_derefs

    def test_pointer_difference_is_int(self):
        check("int f(int *a, int *b) { return a - b; }")

    def test_shadowing_in_inner_scope(self):
        check("int x; int f(void) { int x = 1; { int x = 2; } "
              "return x; }")


class TestRestrictions:
    def test_amuletc_rejects_pointer_declaration(self):
        with pytest.raises(RestrictionError, match="pointer"):
            check("int *p;", AMULET_C)

    def test_amuletc_rejects_dereference(self):
        with pytest.raises(RestrictionError):
            check("int f(int p) { return *(int*)p; }", AMULET_C)

    def test_amuletc_rejects_address_of(self):
        with pytest.raises(RestrictionError):
            check("int f(void) { int x; return (int)&x; }", AMULET_C)

    def test_amuletc_rejects_function_pointers(self):
        with pytest.raises(RestrictionError):
            check("int g(void){return 1;}"
                  "int f(void) { int (*fp)(void) = g; return fp(); }",
                  AMULET_C)

    def test_amuletc_rejects_string_literals(self):
        with pytest.raises(RestrictionError):
            check('int f(void) { "hi"; return 0; }', AMULET_C)

    def test_amuletc_allows_arrays(self):
        result = check("int a[4]; int f(int i) { return a[i]; }",
                       AMULET_C)
        assert len(result.array_accesses) == 1

    def test_goto_rejected_everywhere(self):
        for profile in (AMULET_C, FULL_C):
            with pytest.raises(RestrictionError, match="goto"):
                check("void f(void) { goto x; x: ; }", profile)

    def test_inline_asm_rejected_everywhere(self):
        for profile in (AMULET_C, FULL_C):
            with pytest.raises(RestrictionError, match="assembly"):
                check('void f(void) { asm("NOP"); }', profile)

    def test_full_c_allows_pointers_and_recursion(self):
        check("int fact(int n) { if (n < 2) return 1; "
              "return n * fact(n - 1); }", FULL_C)


class TestApiIntegration:
    def test_api_call_recorded(self):
        api = amulet_api_table()
        result = check("void f(void) { amulet_log_word(3); }", FULL_C,
                       api)
        assert [name for name, _ in result.api_calls] == \
            ["amulet_log_word"]

    def test_unknown_api_rejected(self):
        api = amulet_api_table()
        with pytest.raises(CompileError, match="undeclared"):
            check("void f(void) { amulet_reboot(); }", FULL_C, api)

    def test_api_arity_checked(self):
        api = amulet_api_table()
        with pytest.raises(CompileError, match="expects"):
            check("void f(void) { amulet_log_word(); }", FULL_C, api)

    def test_sysvar_readable(self):
        api = amulet_api_table()
        result = check(
            "unsigned f(void) { return amulet_uptime_seconds; }",
            FULL_C, api)
        assert result.unit.functions[0].body is not None

    def test_sysvar_write_rejected(self):
        api = amulet_api_table()
        with pytest.raises(CompileError, match="read-only"):
            check("void f(void) { amulet_uptime_seconds = 3; }",
                  FULL_C, api)

    def test_app_cannot_redefine_api_name(self):
        api = amulet_api_table()
        with pytest.raises(CompileError, match="conflicts"):
            check("int amulet_get_battery(void) { return 0; }",
                  FULL_C, api)

    def test_sysvars_usable_without_pointers(self):
        api = amulet_api_table()
        check("unsigned f(void) { return amulet_wall_minutes; }",
              AMULET_C, api)


class TestAftFacts:
    def test_call_edges(self):
        result = check("""
            int leaf(void) { return 1; }
            int mid(void) { return leaf() + leaf(); }
            int top(void) { return mid(); }
        """)
        assert ("mid", "leaf") in result.call_edges
        assert ("top", "mid") in result.call_edges
        assert result.callees_of("top") == {"mid"}

    def test_fn_pointer_calls_recorded(self):
        result = check("""
            int one(void) { return 1; }
            int f(void) { int (*fp)(void) = one; return fp(); }
        """)
        assert len(result.fn_pointer_calls) == 1

    def test_deref_and_array_counts(self):
        result = check("""
            int a[4];
            int f(int *p, int i) { return *p + a[i] + p[2]; }
        """)
        assert len(result.pointer_derefs) == 2   # *p and p[2]
        assert len(result.array_accesses) == 1   # a[i]
