"""The bare-metal execution harness and the disassembler."""

import pytest

from repro.asm.disassembler import disassemble, listing
from repro.cc.codegen import compile_unit
from repro.cc.execution import BareMachine, run_compiled
from repro.msp430.encoding import encode_bytes
from repro.msp430.isa import Instruction, Opcode, imm, reg


class TestHarness:
    def test_run_compiled_returns_metrics(self):
        result = run_compiled("int main(void) { return 7; }", "main")
        assert result.value == 7
        assert result.cycles > 0
        assert result.instructions > 0
        assert not result.faulted

    def test_signed_view(self):
        result = run_compiled("int main(void) { return -5; }", "main")
        assert result.value == 0xFFFB
        assert result.signed_value == -5

    def test_args_passed_in_registers(self):
        result = run_compiled(
            "int main(int a, int b, int c, int d) "
            "{ return a + b*10 + c*100 + d*1000; }",
            "main", [1, 2, 3, 4])
        assert result.value == 4321

    def test_too_many_args_rejected(self):
        with pytest.raises(ValueError):
            run_compiled("int main(void) { return 0; }", "main",
                         [1, 2, 3, 4, 5])

    def test_machine_reusable_across_entries(self):
        unit = compile_unit("""
            int twice(int x) { return 2 * x; }
            int thrice(int x) { return 3 * x; }
        """)
        machine = BareMachine(unit)
        assert machine.run("twice", [5]).value == 10
        assert machine.run("thrice", [5]).value == 15
        assert machine.run("twice", [6]).value == 12

    def test_fault_port_sets_flag(self):
        # division helper faults are not wired in bare mode, but the
        # FL index-check helper jumps to the bundled __fault stub
        from repro.aft.models import FeatureLimitedPolicy
        unit = compile_unit(
            "int a[4]; int main(int i) { return a[i]; }",
            checks=FeatureLimitedPolicy("main_app"))
        machine = BareMachine(unit)
        good = machine.run("main", [2])
        assert not good.faulted
        bad = machine.run("main", [9])
        assert bad.faulted


class TestDisassembler:
    def test_round_trip_listing(self):
        insns = [
            Instruction(Opcode.MOV, src=imm(5), dst=reg(10)),
            Instruction(Opcode.ADD, src=reg(10), dst=reg(11)),
            Instruction(Opcode.PUSH, src=reg(11)),
        ]
        blob = b""
        address = 0x4400
        for insn in insns:
            blob += encode_bytes(insn, address + len(blob))
        decoded = disassemble(blob, 0x4400)
        assert [i.opcode for _a, i in decoded] == \
            [Opcode.MOV, Opcode.ADD, Opcode.PUSH]
        assert decoded[0][0] == 0x4400

    def test_listing_includes_symbols(self):
        insn = Instruction(Opcode.MOV, src=imm(5), dst=reg(10))
        blob = encode_bytes(insn, 0x4400)
        text = listing(blob, 0x4400, symbols={"entry": 0x4400})
        assert "entry:" in text
        assert "MOV" in text

    def test_compiled_function_disassembles_fully(self):
        unit = compile_unit("""
            int gcd(int a, int b) {
                while (b != 0) { int t = a % b; a = b; b = t; }
                return a;
            }
        """)
        result = run_compiled("""
            int gcd(int a, int b) {
                while (b != 0) { int t = a % b; a = b; b = t; }
                return a;
            }
            int main(void) { return gcd(48, 36); }
        """, "main")
        assert result.value == 12
        image = result.image
        # disassemble the unit's text section in place
        for _owner, section in image.placed:
            if section.name == ".text" and section.size:
                blob = result.cpu.memory.dump(section.address,
                                              section.size)
                assert disassemble(blob, section.address)
                break
