"""MPU edge geometry: degenerate and extreme boundary placements.

The paper's isolation argument rests on the three-segment split being
exact to the byte — every off-by-one here is an exploitable hole.
These tests pin the geometry at its edges (``B1 == B2``, boundaries at
the very start and end of FRAM, the saturated ``0x10000`` top) and
assert that the slow path (:meth:`Mpu.check`) and the memoized fast
path (:meth:`Mpu.permission_overlay`, which PR 1's permission bitmap
is built from) agree at every boundary, one byte below it, and one
byte above — across enabled, disabled and locked configurations.
"""

import pytest

from repro.errors import MpuViolationError
from repro.msp430.memory import (
    EXECUTE,
    Memory,
    MemoryMap,
    PERM_R,
    PERM_W,
    PERM_X,
    READ,
    WRITE,
)
from repro.msp430.mpu import (
    MPUCTL0,
    Mpu,
    MpuConfig,
    SegmentPermissions,
)

_KINDS = ((READ, PERM_R), (WRITE, PERM_W), (EXECUTE, PERM_X))

FRAM = MemoryMap.FRAM_START          # 0x4400
TOP = 0x10000

GEOMETRIES = {
    # b1 == b2: segment 2 is empty, FRAM splits into exactly two
    "degenerate-equal": (0x8000, 0x8000),
    # both boundaries at FRAM start: everything is segment 3
    "all-seg3": (FRAM, FRAM),
    # both at the (saturated) top: everything is segment 1
    "all-seg1": (TOP, TOP),
    # segment 1 empty, boundary at FRAM start
    "seg1-empty": (FRAM, 0x9000),
    # segment 3 empty, boundary saturated at the top
    "seg3-empty": (0x8000, TOP),
    # one 16-byte sliver of segment 2
    "sliver": (0x8000, 0x8010),
    "typical": (0x6000, 0xA000),
}

STATES = ("disabled", "enabled", "locked")


def build(b1, b2, state):
    memory = Memory()
    mpu = Mpu()
    mpu.attach(memory)
    mpu.configure(MpuConfig(
        b1=b1, b2=b2,
        seg1=SegmentPermissions.parse("--X"),
        seg2=SegmentPermissions.parse("RW-"),
        seg3=SegmentPermissions.parse("R--"),
        info=SegmentPermissions.parse("-W-"),
        enabled=state != "disabled"))
    if state == "locked":
        memory.write_word(MPUCTL0, 0xA503)
    return memory, mpu


def check_allows(mpu, address, kind):
    try:
        mpu.check(address, kind)
        return True
    except MpuViolationError:
        return False


def edge_addresses(b1, b2):
    """Every interesting boundary, one byte below, and one above."""
    anchors = (FRAM, b1, b2, MemoryMap.VECTORS_END + 1,
               MemoryMap.INFOMEM_START, MemoryMap.INFOMEM_END + 1)
    out = set()
    for anchor in anchors:
        for offset in (-1, 0, 1):
            address = anchor + offset
            if 0 <= address <= 0xFFFF:
                out.add(address)
    return sorted(out)


@pytest.mark.parametrize("state", STATES)
@pytest.mark.parametrize("name", sorted(GEOMETRIES))
def test_check_and_overlay_agree_at_every_edge(name, state):
    b1, b2 = GEOMETRIES[name]
    _memory, mpu = build(b1, b2, state)
    overlay = mpu.permission_overlay()
    if state == "disabled":
        assert overlay is None
        # a disabled MPU allows everything, everywhere
        for address in edge_addresses(b1, b2):
            for kind, _bit in _KINDS:
                assert check_allows(mpu, address, kind)
        return
    for address in edge_addresses(b1, b2):
        for kind, bit in _KINDS:
            slow = check_allows(mpu, address, kind)
            fast = bool(overlay[address] & bit)
            assert slow == fast, (
                f"{name}/{state}: check() and overlay disagree at "
                f"0x{address:04X} for {kind}")


@pytest.mark.parametrize("name", sorted(GEOMETRIES))
def test_segment_split_is_exact(name):
    """segment_of() honours `addr < b` strictly: the boundary byte
    itself belongs to the segment above."""
    b1, b2 = GEOMETRIES[name]
    _memory, mpu = build(b1, b2, "enabled")
    for address in range(FRAM, 0x10000, 0x10):
        expected = 1 if address < mpu.boundary1 else (
            2 if address < mpu.boundary2 else 3)
        assert mpu.segment_of(address) == expected
    if FRAM < b1 <= 0xFFFF:
        assert mpu.segment_of(b1 - 1) == 1
        assert mpu.segment_of(b1) in (2, 3)
    if b1 < b2 <= 0xFFFF:
        assert mpu.segment_of(b2 - 1) in (1, 2)
        assert mpu.segment_of(b2) == 3


@pytest.mark.parametrize("state", ("enabled", "locked"))
def test_degenerate_equal_boundaries_erase_segment_2(state):
    """With b1 == b2 segment 2 is empty: its RW- permissions must
    apply to no byte at all."""
    memory, mpu = build(0x8000, 0x8000, state)
    assert mpu.segment_of(0x7FFF) == 1
    assert mpu.segment_of(0x8000) == 3
    memory.load(0x7FFE, b"\x03\x43")
    assert memory.fetch_word(0x7FFE) == 0x4303      # seg1 --X
    with pytest.raises(MpuViolationError):
        memory.write_word(0x7FFE, 0)
    assert memory.read_word(0x8000) == 0            # seg3 R--
    with pytest.raises(MpuViolationError):
        memory.write_word(0x8000, 1)                # seg2 RW- gone


def test_infomem_is_segment_0_not_fram():
    """InfoMem must take segment 0's permissions regardless of where
    the FRAM boundaries sit."""
    memory, mpu = build(FRAM, FRAM, "enabled")      # all of FRAM: seg3
    assert mpu.segment_of(MemoryMap.INFOMEM_START) == 0
    assert mpu.segment_of(MemoryMap.INFOMEM_END) == 0
    memory.write_word(MemoryMap.INFOMEM_START, 7)   # info -W-
    with pytest.raises(MpuViolationError):
        memory.read_word(MemoryMap.INFOMEM_START)
    # one byte either side of InfoMem is *not* segment 0
    assert mpu.segment_of(MemoryMap.INFOMEM_START - 1) != 0
    assert mpu.segment_of(MemoryMap.INFOMEM_END + 1) != 0


def test_saturated_top_keeps_vectors_in_segment_2():
    """b2 = 0x10000 (register 0x1000): the vector table stays in
    segment 2 instead of wrapping into segment 3 — the regression the
    clamp fixes, seen through the whole bus stack."""
    memory, mpu = build(0x8000, TOP, "enabled")
    assert mpu.segment_of(0xFFFE) == 2
    assert memory.access_allowed(0xFFFE, WRITE)
    assert not memory.access_allowed(0xFFFE, EXECUTE)
    overlay = mpu.permission_overlay()
    assert overlay[0xFFFF] & PERM_W
    assert not overlay[0xFFFF] & PERM_X


def test_locked_geometry_survives_reconfiguration_attempts():
    memory, mpu = build(0x8000, 0x9000, "locked")
    before = mpu.permission_overlay()
    memory.write_word(0x05A6, 0x0600)    # MPUSEGB1: ignored
    memory.write_word(0x05A4, 0x0FF0)    # MPUSEGB2: ignored
    memory.write_word(0x05A8, 0xFFFF)    # MPUSAM: ignored
    mpu.disable()                        # no-op while locked
    assert mpu.permission_overlay() == before
    assert mpu.boundary1 == 0x8000 and mpu.boundary2 == 0x9000
