"""Snapshot determinism: resumed fleet devices are byte-identical.

The fleet layer's whole checkpoint/resume story rests on one claim:
snapshot a device at any dispatch boundary, restore it into a freshly
built machine (in a *different process*), continue, and you end in
exactly the state an uninterrupted run reaches.  The property test
here checks that end-to-end over random devices, models, horizons and
checkpoint cadences; the directed tests pin the corners (locked MPU,
version gate, boundary-only snapshots).
"""

import hashlib
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.aft.models import IsolationModel
from repro.errors import KernelError
from repro.fleet.device import make_device, simulate_device
from repro.fleet.population import device_spec
from repro.fleet.snapshot import STATE_VERSION, restore_device, \
    snapshot_device
from repro.msp430.mpu import MPUCTL0, MPUSEGB1
from repro.pool import worker_pool

_SETTINGS = dict(max_examples=5, deadline=None)

_MODELS = [IsolationModel.MPU, IsolationModel.SOFTWARE_ONLY,
           IsolationModel.NO_ISOLATION]


def _digest(run) -> str:
    """Hash of everything the snapshot layer considers device state.

    Canonical JSON, not pickle: pickle's output encodes object-identity
    sharing (memo back-references), which legitimately differs between
    processes for value-identical state."""
    blob = json.dumps((run.machine.state_dict(),
                       run.scheduler.state_dict()),
                      sort_keys=True,
                      default=lambda b: b.hex())
    return hashlib.sha256(blob.encode()).hexdigest()


def _resume_and_finish(spec, model, snapshot, sim_ms,
                       checkpoint_ms) -> str:
    """Worker entry point: restore in a fresh process, run to the end,
    return the final state digest."""
    run = simulate_device(spec, model, sim_ms=sim_ms,
                          checkpoint_every_ms=checkpoint_ms,
                          resume=snapshot)
    return _digest(run)


class TestSnapshotProperty:
    @settings(**_SETTINGS)
    @given(fleet_seed=st.integers(0, 2**31 - 1),
           device_id=st.integers(0, 50),
           model=st.sampled_from(_MODELS),
           checkpoint_ms=st.integers(800, 2500),
           extra_segments=st.integers(1, 3))
    def test_resume_in_fresh_process_is_byte_identical(
            self, fleet_seed, device_id, model, checkpoint_ms,
            extra_segments):
        spec = device_spec(fleet_seed, device_id, rogue_fraction=0.5)
        sim_ms = checkpoint_ms * (1 + extra_segments) + 137

        # uninterrupted run, capturing the snapshot at the first
        # (random, since checkpoint_ms is drawn) dispatch boundary
        captured = []
        run = simulate_device(
            spec, model, sim_ms=sim_ms,
            checkpoint_every_ms=checkpoint_ms,
            on_checkpoint=lambda t, snap:
            captured.append((t, snap)) if not captured else None)
        assert captured, "horizon must span at least one checkpoint"
        _t, snapshot = captured[0]

        with worker_pool(2) as pool:
            resumed_digest = pool.submit(
                _resume_and_finish, spec, model, snapshot, sim_ms,
                checkpoint_ms).result()
        assert resumed_digest == _digest(run)


class TestSnapshotCorners:
    def test_locked_mpu_round_trips(self):
        """MPULOCK freezes the hardware config until reset; a restored
        machine must come back frozen, not silently writable."""
        spec = device_spec(11, 3)
        model = IsolationModel.MPU
        run = simulate_device(spec, model, sim_ms=1000)
        memory = run.machine.cpu.memory
        memory.write_word(MPUCTL0, 0xA503)       # enable + lock
        assert run.machine.mpu.locked

        snapshot = snapshot_device(run.machine, run.scheduler, 1000)
        machine, scheduler, _rogue = make_device(spec, model)
        restore_device(machine, scheduler, snapshot)

        assert machine.mpu.locked
        assert machine.mpu.state_dict() == run.machine.mpu.state_dict()
        before = machine.mpu.segb1
        machine.cpu.memory.write_word(MPUSEGB1, before ^ 0x010)
        assert machine.mpu.segb1 == before       # still frozen

    def test_snapshot_version_gate(self):
        spec = device_spec(11, 3)
        run = simulate_device(spec, IsolationModel.NO_ISOLATION,
                              sim_ms=500)
        snapshot = snapshot_device(run.machine, run.scheduler, 500)
        snapshot["version"] = STATE_VERSION + 1
        machine, scheduler, _rogue = make_device(
            spec, IsolationModel.NO_ISOLATION)
        with pytest.raises(KernelError, match="version"):
            restore_device(machine, scheduler, snapshot)

    def test_snapshot_rejects_mid_dispatch(self):
        spec = device_spec(11, 3)
        run = simulate_device(spec, IsolationModel.NO_ISOLATION,
                              sim_ms=500)
        run.machine.current_app = spec.apps[0]   # fake "mid-handler"
        with pytest.raises(KernelError, match="dispatch boundary"):
            run.machine.state_dict()

    def test_snapshot_rejects_foreign_firmware(self):
        spec_a = device_spec(11, 3)
        spec_b = device_spec(11, 4)
        assert spec_a.apps != spec_b.apps
        run = simulate_device(spec_a, IsolationModel.NO_ISOLATION,
                              sim_ms=500)
        snapshot = snapshot_device(run.machine, run.scheduler, 500)
        machine, scheduler, _rogue = make_device(
            spec_b, IsolationModel.NO_ISOLATION)
        # the delta layer's base-image digest check fires before the
        # app-set check ever gets a chance
        with pytest.raises(KernelError,
                           match="different firmware image"):
            restore_device(machine, scheduler, snapshot)
