"""On-disk firmware cache bounding: REPRO_CACHE_MAX_MB + LRU prune."""

import os
import pickle

import pytest

from repro.aft import cache
from repro.aft.models import IsolationModel
from repro.aft.phases import AppSource

APP_SRC = """
int total = 0;
int on_tick(int step) { total += step; return total; }
"""


def _make_entry(directory, name, size, mtime):
    path = directory / f"{name}.pkl"
    path.write_bytes(b"\0" * size)
    os.utime(path, (mtime, mtime))
    return path


class TestPruneCache:
    def test_evicts_oldest_until_under_limit(self, tmp_path):
        old = _make_entry(tmp_path, "a" * 8, 1000, mtime=100)
        mid = _make_entry(tmp_path, "b" * 8, 1000, mtime=200)
        new = _make_entry(tmp_path, "c" * 8, 1000, mtime=300)
        removed = cache.prune_cache(tmp_path, max_bytes=2000)
        assert removed == 1
        assert not old.exists()
        assert mid.exists() and new.exists()

    def test_noop_when_within_limit(self, tmp_path):
        kept = _make_entry(tmp_path, "a" * 8, 100, mtime=100)
        assert cache.prune_cache(tmp_path, max_bytes=2000) == 0
        assert kept.exists()

    def test_zero_or_negative_limit_disables(self, tmp_path):
        kept = _make_entry(tmp_path, "a" * 8, 5000, mtime=100)
        assert cache.prune_cache(tmp_path, max_bytes=0) == 0
        assert cache.prune_cache(tmp_path, max_bytes=-1) == 0
        assert kept.exists()

    def test_missing_directory_is_noop(self, tmp_path):
        assert cache.prune_cache(tmp_path / "nope", max_bytes=1) == 0

    def test_ignores_non_pkl_files(self, tmp_path):
        note = tmp_path / "README.txt"
        note.write_text("not a cache entry")
        entry = _make_entry(tmp_path, "a" * 8, 4000, mtime=100)
        assert cache.prune_cache(tmp_path, max_bytes=2000) == 1
        assert note.exists() and not entry.exists()


class TestCacheMaxBytes:
    def test_default_is_256_mb(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert cache.cache_max_bytes() == 256 * 1024 * 1024

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1.5")
        assert cache.cache_max_bytes() == int(1.5 * 1024 * 1024)

    def test_garbage_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "lots")
        assert cache.cache_max_bytes() == 256 * 1024 * 1024


class TestBuildFirmwareLru:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        cache.clear_memory_cache()
        yield tmp_path
        cache.clear_memory_cache()

    def _apps(self):
        return [AppSource("demo", APP_SRC, handlers=["on_tick"])]

    def test_disk_hit_touches_mtime(self, isolated_cache):
        cache.build_firmware(IsolationModel.NO_ISOLATION, self._apps())
        (entry,) = isolated_cache.glob("*.pkl")
        os.utime(entry, (100, 100))       # pretend it is ancient
        cache.clear_memory_cache()        # force the disk path
        cache.build_firmware(IsolationModel.NO_ISOLATION, self._apps())
        assert entry.stat().st_mtime > 100   # read refreshed the entry

    def test_write_prunes_over_budget_entries(self, isolated_cache,
                                              monkeypatch):
        stale = _make_entry(isolated_cache, "f" * 8,
                            2 * 1024 * 1024, mtime=100)
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1")
        cache.build_firmware(IsolationModel.NO_ISOLATION, self._apps())
        # the fresh build's own entry survives; the old blob is gone
        assert not stale.exists()
        assert list(isolated_cache.glob("*.pkl"))

    def test_disk_round_trip_same_firmware(self, isolated_cache):
        built = cache.build_firmware(IsolationModel.NO_ISOLATION, self._apps())
        cache.clear_memory_cache()
        loaded = cache.build_firmware(IsolationModel.NO_ISOLATION, self._apps())
        assert built is not loaded        # came back through pickle
        assert pickle.dumps(built.image) == pickle.dumps(loaded.image)
