"""Gate generation and kernel service internals."""

import pytest

from repro.aft import AftPipeline, AppSource, IsolationModel
from repro.aft.models import model_config
from repro.kernel.api import amulet_api_table
from repro.kernel.gates import generate_os_asm, mpu_value_symbols
from repro.kernel.layout import DEFAULT_LAYOUT, KernelLayout
from repro.kernel.machine import AmuletMachine
from repro.kernel.services import SensorEnvironment


def gates_for(model, apps=("alpha", "beta")):
    return generate_os_asm(list(apps), model_config(model),
                           amulet_api_table(), DEFAULT_LAYOUT)


class TestGateGeneration:
    def test_dispatch_gate_per_app(self):
        asm = gates_for(IsolationModel.MPU)
        assert "__dispatch_alpha:" in asm
        assert "__dispatch_beta:" in asm

    def test_api_stub_per_function(self):
        asm = gates_for(IsolationModel.MPU)
        for name in amulet_api_table().functions:
            assert f"__api_{name}:" in asm

    def test_mpu_model_reprograms_mpu(self):
        asm = gates_for(IsolationModel.MPU)
        assert "&0x05A0" in asm                      # MPUCTL0
        assert "__mpu_alpha_segb1" in asm
        assert "__mpu_os_sam" in asm

    def test_no_isolation_gates_have_no_mpu_or_stack_swap(self):
        asm = gates_for(IsolationModel.NO_ISOLATION)
        assert "&0x05A0" not in asm
        assert "__os_sp_save" not in asm.split(".data")[0] \
            or "MOV SP, &__os_sp_save" not in asm

    def test_software_only_swaps_stacks_without_mpu(self):
        asm = gates_for(IsolationModel.SOFTWARE_ONLY)
        assert "MOV SP, &__os_sp_save" in asm
        assert "&0x05A0" not in asm
        assert "__app_alpha_sp" in asm

    def test_sysvars_emitted_in_sram_section(self):
        asm = gates_for(IsolationModel.MPU)
        sram_part = asm.split(".os.sram")[1]
        assert "__os_amulet_uptime_seconds:" in sram_part

    def test_fault_sink_present(self):
        asm = gates_for(IsolationModel.MPU)
        assert "__fault:" in asm

    def test_mpu_value_symbols(self):
        assert mpu_value_symbols("x") == [
            "__mpu_x_segb1", "__mpu_x_segb2", "__mpu_x_sam"]

    def test_layout_validation(self):
        with pytest.raises(ValueError):
            KernelLayout(app_base=0x7001).validate()
        DEFAULT_LAYOUT.validate()


class TestGateCycleAccounting:
    """The paper's context-switch ordering must hold at the gate level:
    NoIso == FeatureLimited < SoftwareOnly < MPU."""

    APP = "int on_e(int x) { return x; }"

    def _dispatch_cycles(self, model):
        firmware = AftPipeline(model).build(
            [AppSource("probe", self.APP, ["on_e"])])
        machine = AmuletMachine(firmware)
        machine.dispatch("probe", "on_e", [1])     # warm (FRAM state)
        return machine.dispatch("probe", "on_e", [1]).cycles

    def test_context_switch_ordering(self):
        noiso = self._dispatch_cycles(IsolationModel.NO_ISOLATION)
        fl = self._dispatch_cycles(IsolationModel.FEATURE_LIMITED)
        sw = self._dispatch_cycles(IsolationModel.SOFTWARE_ONLY)
        mpu = self._dispatch_cycles(IsolationModel.MPU)
        assert noiso == fl
        assert noiso < sw < mpu


class TestSensorEnvironment:
    def test_deterministic_given_seed(self):
        a = SensorEnvironment(seed=7)
        b = SensorEnvironment(seed=7)
        assert [a.heart_rate() for _ in range(5)] == \
            [b.heart_rate() for _ in range(5)]
        assert a.accel_sample() == b.accel_sample()

    def test_different_seeds_differ(self):
        a = SensorEnvironment(seed=1)
        b = SensorEnvironment(seed=2)
        assert [a.rand16() for _ in range(4)] != \
            [b.rand16() for _ in range(4)]

    def test_heart_rate_plausible(self):
        env = SensorEnvironment()
        for _ in range(100):
            assert 60 <= env.heart_rate() <= 90

    def test_accel_z_dominated_by_gravity(self):
        env = SensorEnvironment(seed=3)
        zs = [env.accel_sample()[2] for _ in range(50)]
        signed = [z - 0x10000 if z & 0x8000 else z for z in zs]
        assert sum(300 < z < 1700 for z in signed) > 40


class TestServicePointerValidation:
    def _machine(self, model=IsolationModel.MPU):
        firmware = AftPipeline(model).build([AppSource(
            "probe", "int on_e(int x) { return x; }", ["on_e"])])
        return AmuletMachine(firmware)

    def test_pointer_inside_app_region_accepted(self):
        machine = self._machine()
        app = machine.firmware.apps["probe"]
        machine.current_app = "probe"
        assert machine.services._validate_pointer(app.seg_lo + 4, 6)

    def test_pointer_outside_rejected(self):
        machine = self._machine()
        machine.current_app = "probe"
        assert not machine.services._validate_pointer(0x4400, 6)

    def test_pointer_spanning_boundary_rejected(self):
        machine = self._machine()
        app = machine.firmware.apps["probe"]
        machine.current_app = "probe"
        assert not machine.services._validate_pointer(
            app.seg_hi - 2, 6)

    def test_no_current_app_rejects(self):
        machine = self._machine()
        machine.current_app = None
        assert not machine.services._validate_pointer(0x9000, 2)

    def test_shared_stack_model_accepts_sram(self):
        machine = self._machine(IsolationModel.NO_ISOLATION)
        machine.current_app = "probe"
        assert machine.services._validate_pointer(0x2300, 6)

    def test_separate_stack_model_rejects_sram(self):
        machine = self._machine(IsolationModel.MPU)
        machine.current_app = "probe"
        assert not machine.services._validate_pointer(0x2300, 6)

    def test_unknown_service_id_raises(self):
        from repro.errors import KernelError
        machine = self._machine()
        with pytest.raises(KernelError):
            machine.services.dispatch(0xFF)
