"""Code generator output properties: inspected at the assembly-text
level (complementing the execution tests)."""

import pytest

from repro.cc.codegen import CheckPolicy, compile_unit
from repro.cc.sema import AMULET_C
from repro.errors import CompileError


class TestStructure:
    def test_sections_named_as_configured(self):
        unit = compile_unit("int g; int f(void) { return g; }",
                            text_section=".app.x.text",
                            data_section=".app.x.data",
                            label_prefix="app_x_")
        assert ".section .app.x.text" in unit.asm
        assert ".section .app.x.data" in unit.asm

    def test_label_prefix_applied_everywhere(self):
        unit = compile_unit("""
            int counter;
            int helper(void) { return counter; }
            int entry(void) { return helper(); }
        """, label_prefix="app_probe_")
        assert "app_probe_helper:" in unit.asm
        assert "app_probe_counter:" in unit.asm
        assert "CALL #app_probe_helper" in unit.asm
        assert "&app_probe_counter" in unit.asm

    def test_static_symbols_not_exported(self):
        unit = compile_unit("""
            static int hidden = 1;
            static int shy(void) { return hidden; }
            int open_fn(void) { return shy(); }
        """)
        assert ".global shy" not in unit.asm
        assert ".global hidden" not in unit.asm
        assert ".global open_fn" in unit.asm

    def test_prologue_epilogue_pairing(self):
        unit = compile_unit("int f(int a) { return a; }")
        lines = [l.strip() for l in unit.asm.splitlines()]
        assert "PUSH R4" in lines
        assert "MOV SP, R4" in lines
        assert "MOV R4, SP" in lines
        assert "POP R4" in lines
        assert "RET" in lines

    def test_callee_saved_registers_balanced(self):
        unit = compile_unit("""
            int f(int a, int b, int c) {
                return (a * b + c) * (a - b) * (c + 1) * (a + 2);
            }
        """)
        pushes = unit.asm.count("PUSH R")
        pops = unit.asm.count("POP R")
        assert pushes == pops

    def test_frame_sizes_recorded(self):
        unit = compile_unit("""
            int small(void) { return 1; }
            int big(void) { int a[20]; a[0] = 1; return a[0]; }
        """)
        assert unit.frame_sizes["big"] > unit.frame_sizes["small"]

    def test_string_literals_deduplicated(self):
        unit = compile_unit("""
            char *a = "shared";
            char *b = "shared";
            char *c = "different";
        """)
        assert unit.asm.count('"shared"') == 1
        assert unit.string_count == 2

    def test_mul_by_constant_power_of_two_uses_shifts(self):
        unit = compile_unit("int f(int x) { return x * 16; }")
        assert "__mulhi" not in unit.asm
        assert unit.asm.count("RLA") >= 4

    def test_division_uses_signed_helper_for_ints(self):
        unit = compile_unit("int f(int x) { return x / 3; }")
        assert "__divhi" in unit.asm

    def test_division_uses_unsigned_helper_for_unsigned(self):
        unit = compile_unit("unsigned f(unsigned x) { return x / 3; }")
        assert "__udivhi" in unit.asm
        assert "#__divhi" not in unit.asm

    def test_byte_ops_for_char(self):
        unit = compile_unit("""
            char c;
            char f(char v) { c = v; return c; }
        """)
        assert "MOV.B" in unit.asm


class TestCheckPolicyHooks:
    class RecordingPolicy(CheckPolicy):
        def __init__(self):
            self.calls = []

        def data_pointer_check(self, gen, reg, is_write):
            self.calls.append(("data", is_write))

        def fn_pointer_check(self, gen, reg):
            self.calls.append(("fn", None))

        def array_index_check(self, gen, reg, length):
            self.calls.append(("array", length))

        def return_check(self, gen):
            self.calls.append(("return", gen.function.name))

    def test_hooks_fire_at_expected_sites(self):
        policy = self.RecordingPolicy()
        compile_unit("""
            int arr[6];
            int cb(int v) { return v; }
            int f(int *p, int i) {
                int (*fp)(int) = cb;
                *p = arr[i];
                return fp(i);
            }
        """, checks=policy)
        kinds = [c[0] for c in policy.calls]
        assert kinds.count("array") == 1
        assert kinds.count("fn") == 1
        assert ("data", True) in policy.calls      # *p write
        assert ("array", 6) in policy.calls
        assert ("return", "cb") in policy.calls
        assert ("return", "f") in policy.calls

    def test_write_vs_read_flag(self):
        policy = self.RecordingPolicy()
        compile_unit("int f(int *p) { *p = *p + 1; return 0; }",
                     checks=policy)
        flags = [w for kind, w in policy.calls if kind == "data"]
        assert True in flags and False in flags

    def test_direct_scalar_access_not_checked(self):
        policy = self.RecordingPolicy()
        compile_unit("""
            int g;
            int f(int a) { g = a; return g + a; }
        """, checks=policy)
        data_calls = [c for c in policy.calls if c[0] == "data"]
        assert data_calls == []


class TestAmuletCCodegen:
    def test_array_code_compiles_under_amuletc(self):
        unit = compile_unit("""
            int win[8];
            int f(int i) { win[i & 7] = i; return win[0]; }
        """, profile=AMULET_C)
        assert "f:" in unit.asm

    def test_internal_errors_have_positions(self):
        with pytest.raises(CompileError) as info:
            compile_unit("int f(void) { return *; }")
        assert "minic" in str(info.value)
