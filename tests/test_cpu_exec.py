"""CPU execution semantics: ALU flags, stack ops, jumps, faults."""

import pytest

from repro.errors import MemoryAccessError
from repro.msp430.cpu import Cpu, CpuFault, ExecutionLimitExceeded, \
    FaultKind
from repro.msp430.encoding import encode_bytes
from repro.msp430.isa import (
    Instruction,
    Opcode,
    absolute,
    autoincrement,
    imm,
    indexed,
    indirect,
    reg,
)
from repro.msp430.registers import Reg, SR

CODE = 0x4400


def run_program(cpu, *insns, start=CODE):
    address = start
    for insn in insns:
        blob = encode_bytes(insn, address)
        cpu.memory.load(address, blob)
        address += len(blob)
    cpu.regs.pc = start
    for _ in insns:
        cpu.step()
    return cpu


@pytest.fixture
def cpu():
    c = Cpu()
    c.regs.sp = 0x2400
    return c


class TestMovAndArithmetic:
    def test_mov_immediate(self, cpu):
        run_program(cpu, Instruction(Opcode.MOV, src=imm(0x1234),
                                     dst=reg(5)))
        assert cpu.regs.read(5) == 0x1234

    def test_add_sets_carry_on_wrap(self, cpu):
        cpu.regs.write(5, 0xFFFF)
        run_program(cpu, Instruction(Opcode.ADD, src=imm(1),
                                     dst=reg(5)))
        assert cpu.regs.read(5) == 0
        assert cpu.regs.carry and cpu.regs.zero

    def test_add_signed_overflow(self, cpu):
        cpu.regs.write(5, 0x7FFF)
        run_program(cpu, Instruction(Opcode.ADD, src=imm(1),
                                     dst=reg(5)))
        assert cpu.regs.overflow and cpu.regs.negative

    def test_sub_carry_means_no_borrow(self, cpu):
        cpu.regs.write(5, 10)
        cpu.regs.write(6, 3)
        run_program(cpu, Instruction(Opcode.SUB, src=reg(6),
                                     dst=reg(5)))
        assert cpu.regs.read(5) == 7
        assert cpu.regs.carry          # no borrow

    def test_sub_borrow_clears_carry(self, cpu):
        cpu.regs.write(5, 3)
        cpu.regs.write(6, 10)
        run_program(cpu, Instruction(Opcode.SUB, src=reg(6),
                                     dst=reg(5)))
        assert cpu.regs.read(5) == (3 - 10) & 0xFFFF
        assert not cpu.regs.carry

    def test_addc_uses_carry(self, cpu):
        cpu.regs.set_flag(SR.C, True)
        cpu.regs.write(5, 10)
        run_program(cpu, Instruction(Opcode.ADDC, src=imm(0),
                                     dst=reg(5)))
        assert cpu.regs.read(5) == 11

    def test_cmp_does_not_write(self, cpu):
        cpu.regs.write(5, 42)
        run_program(cpu, Instruction(Opcode.CMP, src=imm(42),
                                     dst=reg(5)))
        assert cpu.regs.read(5) == 42
        assert cpu.regs.zero

    def test_dadd_bcd(self, cpu):
        cpu.regs.write(5, 0x0199)
        cpu.regs.set_flag(SR.C, False)
        run_program(cpu, Instruction(Opcode.DADD, src=imm(1),
                                     dst=reg(5)))
        assert cpu.regs.read(5) == 0x0200

    def test_byte_op_clears_high_byte(self, cpu):
        cpu.regs.write(5, 0xFFFF)
        run_program(cpu, Instruction(Opcode.MOV, byte=True,
                                     src=imm(0x12), dst=reg(5)))
        assert cpu.regs.read(5) == 0x0012


class TestLogic:
    def test_and_sets_carry_when_nonzero(self, cpu):
        cpu.regs.write(5, 0b1100)
        run_program(cpu, Instruction(Opcode.AND, src=imm(0b0100),
                                     dst=reg(5)))
        assert cpu.regs.read(5) == 0b0100
        assert cpu.regs.carry and not cpu.regs.zero

    def test_bit_only_flags(self, cpu):
        cpu.regs.write(5, 0b1000)
        run_program(cpu, Instruction(Opcode.BIT, src=imm(0b0111),
                                     dst=reg(5)))
        assert cpu.regs.read(5) == 0b1000
        assert cpu.regs.zero

    def test_bis_bic(self, cpu):
        cpu.regs.write(5, 0b1010)
        run_program(cpu,
                    Instruction(Opcode.BIS, src=imm(0b0101), dst=reg(5)),
                    Instruction(Opcode.BIC, src=imm(0b0011), dst=reg(5)))
        assert cpu.regs.read(5) == 0b1100

    def test_xor_overflow_when_both_negative(self, cpu):
        cpu.regs.write(5, 0x8000)
        cpu.regs.write(6, 0x8001)
        run_program(cpu, Instruction(Opcode.XOR, src=reg(6),
                                     dst=reg(5)))
        assert cpu.regs.overflow


class TestShifts:
    def test_rra_arithmetic(self, cpu):
        cpu.regs.write(5, 0x8002)
        run_program(cpu, Instruction(Opcode.RRA, src=reg(5)))
        assert cpu.regs.read(5) == 0xC001
        assert not cpu.regs.carry

    def test_rrc_through_carry(self, cpu):
        cpu.regs.set_flag(SR.C, True)
        cpu.regs.write(5, 0x0001)
        run_program(cpu, Instruction(Opcode.RRC, src=reg(5)))
        assert cpu.regs.read(5) == 0x8000
        assert cpu.regs.carry

    def test_swpb(self, cpu):
        cpu.regs.write(5, 0x1234)
        run_program(cpu, Instruction(Opcode.SWPB, src=reg(5)))
        assert cpu.regs.read(5) == 0x3412

    def test_sxt(self, cpu):
        cpu.regs.write(5, 0x0080)
        run_program(cpu, Instruction(Opcode.SXT, src=reg(5)))
        assert cpu.regs.read(5) == 0xFF80
        assert cpu.regs.negative


class TestStackAndCalls:
    def test_push_decrements_sp(self, cpu):
        cpu.regs.write(5, 0xBEEF)
        run_program(cpu, Instruction(Opcode.PUSH, src=reg(5)))
        assert cpu.regs.sp == 0x23FE
        assert cpu.memory.read_word(0x23FE) == 0xBEEF

    def test_call_pushes_return_address(self, cpu):
        insn = Instruction(Opcode.CALL, src=imm(0x5000))
        cpu.memory.load(CODE, encode_bytes(insn, CODE))
        cpu.regs.pc = CODE
        cpu.step()
        assert cpu.regs.pc == 0x5000
        assert cpu.memory.read_word(cpu.regs.sp) == CODE + 4

    def test_call_ret_roundtrip(self, cpu):
        # CALL #0x5000 ; (at 0x5000) MOV @SP+, PC
        call = Instruction(Opcode.CALL, src=imm(0x5000))
        ret = Instruction(Opcode.MOV, src=autoincrement(Reg.SP),
                          dst=reg(Reg.PC))
        cpu.memory.load(CODE, encode_bytes(call, CODE))
        cpu.memory.load(0x5000, encode_bytes(ret, 0x5000))
        cpu.regs.pc = CODE
        cpu.step()
        cpu.step()
        assert cpu.regs.pc == CODE + 4
        assert cpu.regs.sp == 0x2400

    def test_reti_restores_sr_and_pc(self, cpu):
        cpu.regs.sp = 0x23FC
        cpu.memory.write_word(0x23FC, 0x000F)   # saved SR
        cpu.memory.write_word(0x23FE, 0x4800)   # saved PC
        run_program(cpu, Instruction(Opcode.RETI))
        assert cpu.regs.pc == 0x4800
        assert cpu.regs.sr == 0x000F


class TestJumps:
    def _jump_taken(self, cpu, opcode, flags):
        for bit, value in flags.items():
            cpu.regs.set_flag(bit, value)
        insn = Instruction(opcode, offset=4)
        cpu.memory.load(CODE, encode_bytes(insn, CODE))
        cpu.regs.pc = CODE
        cpu.step()
        return cpu.regs.pc == CODE + 2 + 8

    def test_jeq(self, cpu):
        assert self._jump_taken(cpu, Opcode.JEQ, {SR.Z: True})

    def test_jne_not_taken_when_zero(self, cpu):
        assert not self._jump_taken(cpu, Opcode.JNE, {SR.Z: True})

    def test_jc(self, cpu):
        assert self._jump_taken(cpu, Opcode.JC, {SR.C: True})

    def test_jn(self, cpu):
        assert self._jump_taken(cpu, Opcode.JN, {SR.N: True})

    def test_jge_on_n_equals_v(self, cpu):
        assert self._jump_taken(cpu, Opcode.JGE,
                                {SR.N: True, SR.V: True})

    def test_jl_on_n_differs_v(self, cpu):
        assert self._jump_taken(cpu, Opcode.JL,
                                {SR.N: True, SR.V: False})

    def test_jmp_always(self, cpu):
        assert self._jump_taken(cpu, Opcode.JMP, {})


class TestMemoryOperands:
    def test_absolute_store_load(self, cpu):
        run_program(cpu,
                    Instruction(Opcode.MOV, src=imm(0x55AA),
                                dst=absolute(0x8000)),
                    Instruction(Opcode.MOV, src=absolute(0x8000),
                                dst=reg(7)))
        assert cpu.regs.read(7) == 0x55AA

    def test_indexed_addressing(self, cpu):
        cpu.regs.write(4, 0x8000)
        cpu.memory.write_word(0x8004, 0x77)
        run_program(cpu, Instruction(Opcode.MOV, src=indexed(4, 4),
                                     dst=reg(5)))
        assert cpu.regs.read(5) == 0x77

    def test_autoincrement_advances(self, cpu):
        cpu.regs.write(6, 0x8000)
        cpu.memory.write_word(0x8000, 0x11)
        run_program(cpu, Instruction(Opcode.MOV, src=autoincrement(6),
                                     dst=reg(5)))
        assert cpu.regs.read(5) == 0x11
        assert cpu.regs.read(6) == 0x8002

    def test_autoincrement_byte_advances_by_one(self, cpu):
        cpu.regs.write(6, 0x8000)
        cpu.memory.write_byte(0x8000, 0x22)
        run_program(cpu, Instruction(Opcode.MOV, byte=True,
                                     src=autoincrement(6), dst=reg(5)))
        assert cpu.regs.read(6) == 0x8001


class TestFaults:
    def test_bus_error_becomes_cpu_fault(self, cpu):
        insn = Instruction(Opcode.MOV, src=absolute(0x3000),
                           dst=reg(5))
        cpu.memory.load(CODE, encode_bytes(insn, CODE))
        cpu.regs.pc = CODE
        with pytest.raises(CpuFault) as info:
            cpu.step()
        assert info.value.kind is FaultKind.BUS_ERROR
        assert info.value.address == 0x3000
        assert info.value.pc == CODE

    def test_fetch_from_hole_faults(self, cpu):
        cpu.regs.pc = 0x3000
        with pytest.raises(CpuFault) as info:
            cpu.step()
        assert info.value.kind is FaultKind.BUS_ERROR

    def test_decode_error_faults(self, cpu):
        cpu.memory.load(CODE, b"\x00\x00")
        cpu.regs.pc = CODE
        with pytest.raises(CpuFault) as info:
            cpu.step()
        assert info.value.kind is FaultKind.DECODE_ERROR

    def test_run_limit(self, cpu):
        # JMP $ (offset -2... offset -1 jumps to itself: pc+2-2)
        insn = Instruction(Opcode.JMP, offset=-1)
        cpu.memory.load(CODE, encode_bytes(insn, CODE))
        cpu.regs.pc = CODE
        with pytest.raises(ExecutionLimitExceeded):
            cpu.run(max_cycles=1000)

    def test_halt_stops_run(self, cpu):
        cpu.memory.load(CODE, encode_bytes(
            Instruction(Opcode.JMP, offset=-1), CODE))
        cpu.regs.pc = CODE

        def stop(addr, insn):
            cpu.halt()

        cpu.trace_hook = stop
        cpu.run(max_cycles=1000)
        assert cpu.halted


class TestCycleCounting:
    def test_register_mov_is_one_cycle(self, cpu):
        run_program(cpu, Instruction(Opcode.MOV, src=reg(4),
                                     dst=reg(5)))
        assert cpu.cycles == 1

    def test_cg_immediate_is_register_timing(self, cpu):
        run_program(cpu, Instruction(Opcode.MOV, src=imm(0),
                                     dst=reg(5)))
        assert cpu.cycles == 1

    def test_big_immediate_is_two_cycles(self, cpu):
        run_program(cpu, Instruction(Opcode.MOV, src=imm(0x1234),
                                     dst=reg(5)))
        assert cpu.cycles == 2

    def test_mov_to_memory_discount(self, cpu):
        # #N -> &EDE is 5 cycles; MOV/BIT/CMP save one on this family
        run_program(cpu, Instruction(Opcode.MOV, src=imm(0x1234),
                                     dst=absolute(0x8000)))
        assert cpu.cycles == 4

    def test_add_to_memory_full_cost(self, cpu):
        run_program(cpu, Instruction(Opcode.ADD, src=imm(0x1234),
                                     dst=absolute(0x8000)))
        assert cpu.cycles == 5

    def test_jump_two_cycles(self, cpu):
        run_program(cpu, Instruction(Opcode.JMP, offset=0))
        assert cpu.cycles == 2

    def test_reset_uses_reset_vector(self, cpu):
        cpu.memory.load(0xFFFE, b"\x00\x50")
        cpu.reset()
        assert cpu.regs.pc == 0x5000
        assert cpu.cycles == 0


class TestICacheInvalidation:
    """The decoded-instruction cache must drop entries when code
    memory changes — via single stores (write hook pops the 64-byte
    block *and its predecessor*) or bulk loads (full clear)."""

    def _patch(self, cpu, address, insn):
        """Overwrite code with word stores, the targeted-invalidation
        path (memory.load would clear the whole cache)."""
        blob = encode_bytes(insn, address)
        for off in range(0, len(blob), 2):
            word = int.from_bytes(blob[off:off + 2], "little")
            cpu.memory.write_word(address + off, word)

    def test_self_modifying_code(self, cpu):
        run_program(cpu, Instruction(Opcode.MOV, src=imm(0x1111),
                                     dst=reg(5)))
        assert cpu.regs.read(5) == 0x1111
        self._patch(cpu, CODE, Instruction(Opcode.MOV, src=imm(0x2222),
                                           dst=reg(5)))
        cpu.regs.pc = CODE
        cpu.step()
        assert cpu.regs.read(5) == 0x2222

    def test_bulk_load_clears_cache(self, cpu):
        run_program(cpu, Instruction(Opcode.MOV, src=imm(0x1111),
                                     dst=reg(5)))
        blob = encode_bytes(Instruction(Opcode.MOV, src=imm(0x2222),
                                        dst=reg(5)), CODE)
        cpu.memory.load(CODE, blob)
        cpu.regs.pc = CODE
        cpu.step()
        assert cpu.regs.read(5) == 0x2222

    def test_straddling_block_boundary(self, cpu):
        # A 4-byte instruction whose opcode word sits in one 64-byte
        # icache block and whose extension word sits in the next: the
        # entry is cached under the *first* block, so a write that only
        # touches the second block must still evict it (the hook pops
        # block and block-1).
        start = 0x447E
        assert start >> 6 != (start + 2) >> 6
        insn = Instruction(Opcode.MOV, src=imm(0x1111), dst=reg(5))
        cpu.memory.load(start, encode_bytes(insn, start))
        cpu.regs.pc = start
        cpu.step()
        assert cpu.regs.read(5) == 0x1111
        # patch only the extension word, at start+2 in the next block
        cpu.memory.write_word(start + 2, 0x2222)
        cpu.regs.pc = start
        cpu.step()
        assert cpu.regs.read(5) == 0x2222

    def test_patch_opcode_word_of_straddler(self, cpu):
        # Same layout, but the write lands in the first block.
        start = 0x447E
        cpu.memory.load(start, encode_bytes(
            Instruction(Opcode.MOV, src=imm(0x1111), dst=reg(5)),
            start))
        cpu.regs.pc = start
        cpu.step()
        assert cpu.regs.read(5) == 0x1111
        self._patch(cpu, start, Instruction(Opcode.MOV,
                                            src=imm(0x3333),
                                            dst=reg(6)))
        cpu.regs.pc = start
        cpu.step()
        assert cpu.regs.read(6) == 0x3333
        assert cpu.regs.read(5) == 0x1111


# -- superblocks -----------------------------------------------------------

from repro.ports import DONE_PORT  # noqa: E402


def _block_cpu(block_mode=True):
    c = Cpu()
    c.block_mode = block_mode
    c.regs.sp = 0x2400
    c.memory.add_io(DONE_PORT, write=lambda a, v: c.halt())
    return c


def _load_insns(cpu, insns, start=CODE):
    address = start
    for insn in insns:
        blob = encode_bytes(insn, address)
        cpu.memory.load(address, blob)
        address += len(blob)
    cpu.regs.pc = start


def _arch_state(cpu):
    return (tuple(cpu.regs._regs), cpu.cycles, cpu.instructions,
            cpu.halted)


class TestSuperblockInvalidation:
    """Compiled superblocks must die with the code they fuse — for
    stores from inside the very block being executed, stores landing
    in a later 64-byte page of a block's range, and bulk loads."""

    HALT = Instruction(Opcode.MOV, src=imm(1), dst=absolute(DONE_PORT))

    def _run_both(self, build):
        """Run the same scenario in block mode and step-only mode and
        require bit-identical architectural state."""
        results = []
        for block_mode in (True, False):
            cpu = _block_cpu(block_mode)
            build(cpu)
            cpu.run(max_cycles=100_000)
            results.append((cpu, _arch_state(cpu)))
        (cpu_blocks, state_blocks), (_, state_step) = results
        assert state_blocks == state_step
        return cpu_blocks

    def test_store_into_own_block(self):
        # The first instruction rewrites the immediate of the second —
        # four bytes ahead, inside the same compiled block.  The store
        # must invalidate the block mid-flight so the patched
        # instruction executes, exactly as step() would.
        def build(cpu):
            _load_insns(cpu, [
                Instruction(Opcode.MOV, src=imm(0x2222),
                            dst=absolute(CODE + 8)),     # patch below
                Instruction(Opcode.MOV, src=imm(0x1111),  # ext at +8
                            dst=reg(5)),
                self.HALT,
            ])
        cpu = self._run_both(build)
        assert cpu.halted
        assert cpu.regs.read(5) == 0x2222

    def test_store_straddling_block_boundary(self):
        # Block compiled at 0x447E spans two 64-byte pages; a store
        # touching only the second page (the extension word) must
        # still kill the block.
        start = 0x447E
        assert start >> 6 != (start + 2) >> 6
        cpu = _block_cpu()
        _load_insns(cpu, [
            Instruction(Opcode.MOV, src=imm(0x1111), dst=reg(5)),
            self.HALT,
        ], start=start)
        cpu.run(max_cycles=100_000)
        assert cpu.regs.read(5) == 0x1111
        cpu.memory.write_word(start + 2, 0x2222)   # second page only
        cpu.halted = False
        cpu.regs.pc = start
        cpu.run(max_cycles=100_000)
        assert cpu.regs.read(5) == 0x2222

    def test_bulk_load_kills_blocks(self):
        cpu = _block_cpu()
        _load_insns(cpu, [
            Instruction(Opcode.MOV, src=imm(0x1111), dst=reg(5)),
            self.HALT,
        ])
        cpu.run(max_cycles=100_000)
        assert cpu.regs.read(5) == 0x1111
        blob = encode_bytes(Instruction(Opcode.MOV, src=imm(0x4444),
                                        dst=reg(5)), CODE)
        cpu.memory.load(CODE, blob)
        cpu.halted = False
        cpu.regs.pc = CODE
        cpu.run(max_cycles=100_000)
        assert cpu.regs.read(5) == 0x4444

    def test_mid_block_fault_pc_exact(self):
        # A store into the unmapped hole (0x1A00) faults in the middle
        # of a block; the reported pc, fault kind, counters, and
        # registers must be identical in block and step-only mode.
        insns = [
            Instruction(Opcode.MOV, src=imm(0x0005), dst=reg(5)),
            Instruction(Opcode.MOV, src=imm(0x1A00), dst=reg(4)),
            Instruction(Opcode.MOV, src=reg(5), dst=indexed(0, 4)),
            self.HALT,
        ]
        outcomes = []
        for block_mode in (True, False):
            cpu = _block_cpu(block_mode)
            _load_insns(cpu, insns)
            with pytest.raises(CpuFault) as info:
                cpu.run(max_cycles=100_000)
            outcomes.append((info.value.kind, info.value.pc,
                             info.value.address, _arch_state(cpu)))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] is FaultKind.BUS_ERROR
        assert outcomes[0][1] == CODE + 8      # the faulting store


class TestRunBudgetMessages:
    def _spin(self, cpu):
        cpu.memory.load(CODE, encode_bytes(
            Instruction(Opcode.JMP, offset=-1), CODE))
        cpu.regs.pc = CODE

    def test_cycle_budget_names_cycles(self, cpu):
        self._spin(cpu)
        with pytest.raises(ExecutionLimitExceeded) as info:
            cpu.run(max_cycles=1000)
        assert str(info.value).startswith("cycle budget")

    def test_instruction_budget_names_instructions(self, cpu):
        self._spin(cpu)
        with pytest.raises(ExecutionLimitExceeded) as info:
            cpu.run(max_cycles=10_000_000, max_instructions=100)
        assert str(info.value).startswith("instruction budget")

    def test_budget_raise_identical_across_modes(self):
        # The budget error must fire at the same instruction whether
        # the loop executed through superblocks or pure step().
        outcomes = []
        for block_mode in (True, False):
            cpu = _block_cpu(block_mode)
            _load_insns(cpu, [
                Instruction(Opcode.MOV, src=imm(0x7FFF), dst=reg(5)),
                Instruction(Opcode.SUB, src=imm(1), dst=reg(5)),
                Instruction(Opcode.JNE, offset=-2),
                Instruction(Opcode.JMP, offset=-5),
            ])
            with pytest.raises(ExecutionLimitExceeded):
                cpu.run(max_cycles=5_000)
            outcomes.append(_arch_state(cpu))
        assert outcomes[0] == outcomes[1]


class TestBlockStepDifferential:
    """Seeded random programs executed in block mode and step-only
    mode must agree on every register, flag, counter, and fault."""

    def _random_program(self, rng):
        insns = []
        alu = [Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.CMP,
               Opcode.AND, Opcode.BIS, Opcode.BIC, Opcode.XOR]
        fmt2 = [Opcode.RRA, Opcode.RRC, Opcode.SWPB, Opcode.SXT]
        n = rng.randrange(8, 24)
        for i in range(n):
            choice = rng.random()
            if choice < 0.45:
                insns.append(Instruction(
                    rng.choice(alu),
                    src=(reg(rng.randrange(4, 14))
                         if rng.random() < 0.5
                         else imm(rng.randrange(0, 0x10000))),
                    dst=reg(rng.randrange(4, 14))))
            elif choice < 0.6:
                insns.append(Instruction(rng.choice(fmt2),
                                         src=reg(rng.randrange(4, 14))))
            elif choice < 0.7:
                insns.append(Instruction(Opcode.PUSH,
                                         src=reg(rng.randrange(4, 14))))
            elif choice < 0.8:
                # in-bounds SRAM traffic through the fixed base in R4
                insns.append(Instruction(
                    Opcode.MOV, src=reg(rng.randrange(5, 14)),
                    dst=indexed(2 * rng.randrange(0, 16), 4)))
            elif choice < 0.9:
                insns.append(Instruction(
                    Opcode.MOV, src=indexed(2 * rng.randrange(0, 16), 4),
                    dst=reg(rng.randrange(5, 14))))
            else:
                # short forward jump, always in range
                insns.append(Instruction(
                    rng.choice([Opcode.JNE, Opcode.JEQ, Opcode.JC,
                                Opcode.JMP]),
                    offset=rng.randrange(0, 3)))
        insns.append(Instruction(Opcode.MOV, src=imm(1),
                                 dst=absolute(DONE_PORT)))
        return insns

    def _execute(self, insns, block_mode, seed):
        import random as _random
        rng = _random.Random(seed + 1)
        cpu = _block_cpu(block_mode)
        cpu.regs.write(4, 0x2000)               # SRAM scratch base
        for r in range(5, 14):
            cpu.regs.write(r, rng.randrange(0, 0x10000))
        _load_insns(cpu, insns)
        fault = None
        try:
            cpu.run(max_cycles=50_000)
        except CpuFault as exc:
            fault = (exc.kind, exc.pc, exc.address)
        except ExecutionLimitExceeded:
            fault = "limit"
        return _arch_state(cpu), fault

    def test_differential(self):
        import random as _random
        for seed in range(40):
            rng = _random.Random(seed)
            insns = self._random_program(rng)
            got_blocks = self._execute(insns, True, seed)
            got_step = self._execute(insns, False, seed)
            assert got_blocks == got_step, f"seed {seed} diverged"
