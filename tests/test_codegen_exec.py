"""Code generator correctness: compiled programs run on the simulator
and must produce the same results as the reference semantics."""

import pytest

from repro.cc.execution import BareMachine, run_compiled
from repro.cc.codegen import compile_unit


def run(source, fn="main", args=()):
    return run_compiled(source, fn, args).value


def run_signed(source, fn="main", args=()):
    return run_compiled(source, fn, args).signed_value


class TestArithmetic:
    def test_basic(self):
        assert run("int main(void){ return (3+4)*5 - 6/2; }") == 32

    def test_signed_division(self):
        assert run_signed("int main(void){ int a = -17; "
                          "return a / 5; }") == -3

    def test_signed_modulo(self):
        assert run_signed("int main(void){ int a = -17; "
                          "return a % 5; }") == -2

    def test_unsigned_division(self):
        assert run("int main(void){ unsigned a = 50000; "
                   "return a / 7; }") == 50000 // 7

    def test_unsigned_modulo(self):
        assert run("int main(void){ unsigned a = 50000; "
                   "return a % 7; }") == 50000 % 7

    def test_multiply_wraps(self):
        assert run("int main(void){ unsigned a = 300; "
                   "return a * a; }") == (300 * 300) & 0xFFFF

    def test_multiply_by_power_of_two_strength_reduced(self):
        unit = compile_unit("int f(int x) { return x * 8; }")
        assert "__mulhi" not in unit.asm
        assert run("int main(void){ return 5 * 8; }") == 40

    def test_divide_by_zero_returns_all_ones(self):
        # documented runtime behaviour (C leaves it undefined)
        assert run("int main(void){ int z = 0; return 5 / z; }") \
            == 0xFFFF

    def test_negation_and_complement(self):
        assert run_signed("int main(void){ int a = 13; "
                          "return -a + ~a; }") == -13 + ~13

    def test_shifts_constant_and_variable(self):
        assert run("int main(void){ int a = 3; int n = 4; "
                   "return (a << 2) + (a << n) + (48 >> 2); }") == \
            12 + 48 + 12

    def test_arithmetic_right_shift_signed(self):
        assert run_signed("int main(void){ int a = -64; "
                          "return a >> 3; }") == -8

    def test_logical_right_shift_unsigned(self):
        assert run("int main(void){ unsigned a = 0x8000; "
                   "return a >> 3; }") == 0x1000


class TestControlFlow:
    def test_if_chain(self):
        source = """
            int grade(int n) {
                if (n >= 90) return 4;
                else if (n >= 80) return 3;
                else if (n >= 70) return 2;
                return 0;
            }
            int main(void) { return grade(95)*100 + grade(85)*10
                                    + grade(50); }
        """
        assert run(source) == 430

    def test_while_and_for(self):
        assert run("""
            int main(void) {
                int s = 0;
                int i = 0;
                while (i < 5) { s += i; i++; }
                for (i = 0; i < 5; i++) s += i;
                return s;
            }
        """) == 20

    def test_do_while(self):
        assert run("int main(void){ int i=0; do { i++; } "
                   "while (i < 7); return i; }") == 7

    def test_break_continue(self):
        assert run("""
            int main(void) {
                int s = 0;
                int i;
                for (i = 0; i < 100; i++) {
                    if (i % 2 == 0) continue;
                    if (i > 10) break;
                    s += i;
                }
                return s;
            }
        """) == 1 + 3 + 5 + 7 + 9

    def test_switch(self):
        source = """
            int pick(int n) {
                switch (n) {
                  case 1: return 10;
                  case 2: return 20;
                  default: return 99;
                }
            }
            int main(void) { return pick(1) + pick(2) + pick(5); }
        """
        assert run(source) == 129

    def test_switch_fallthrough(self):
        source = """
            int pick(int n) {
                int r = 0;
                switch (n) {
                  case 1: r += 1;
                  case 2: r += 2; break;
                  default: r = 99;
                }
                return r;
            }
            int main(void) { return pick(1)*10 + pick(2); }
        """
        assert run(source) == 32

    def test_logical_short_circuit(self):
        source = """
            int calls;
            int bump(void) { calls++; return 1; }
            int main(void) {
                int a = 0 && bump();
                int b = 1 || bump();
                return calls * 100 + a * 10 + b;
            }
        """
        assert run(source) == 1

    def test_ternary(self):
        assert run("int main(void){ int a = 7; "
                   "return a > 5 ? a * 2 : a - 1; }") == 14

    def test_nested_loops(self):
        assert run("""
            int main(void) {
                int total = 0;
                int i;
                int j;
                for (i = 0; i < 4; i++)
                    for (j = 0; j < 4; j++)
                        if (i != j) total += i * j;
                return total;
            }
        """) == sum(i * j for i in range(4) for j in range(4)
                    if i != j)


class TestSignedUnsignedComparisons:
    def test_signed(self):
        assert run("int main(void){ int a = -1; return a < 1; }") == 1

    def test_unsigned(self):
        assert run("int main(void){ unsigned a = 0xFFFF; "
                   "return a > 1; }") == 1

    def test_greater_and_le(self):
        assert run("int main(void){ int a = 5; int b = 5; "
                   "return (a > b)*100 + (a >= b)*10 + (a <= b); }") \
            == 11

    def test_mixed_sign_comparison_is_unsigned(self):
        # -1 compared against unsigned 1 behaves as 0xFFFF > 1
        assert run("int main(void){ int a = -1; unsigned b = 1; "
                   "return a > b; }") == 1


class TestDataAccess:
    def test_global_arrays_and_pointers(self):
        assert run("""
            int data[6] = {5, 4, 3, 2, 1, 0};
            int main(void) {
                int *p = data + 1;
                p[2] = 40;
                return data[3] + *p;
            }
        """) == 44

    def test_local_array_initializer(self):
        assert run("""
            int main(void) {
                int a[4] = {1, 2};
                return a[0] + a[1] + a[2] + a[3];
            }
        """) == 3

    def test_char_buffers(self):
        assert run("""
            char buf[4];
            int main(void) {
                buf[0] = 'x';
                buf[1] = buf[0] + 1;
                return buf[0] + buf[1];
            }
        """) == 120 + 121

    def test_char_string_local(self):
        assert run("""
            int main(void) {
                char s[3] = "ab";
                return s[0] + s[1] + s[2];
            }
        """) == 97 + 98

    def test_struct_fields(self):
        assert run("""
            struct point { int x; int y; char tag; };
            struct point g;
            int main(void) {
                struct point *p = &g;
                g.x = 3;
                p->y = 4;
                p->tag = 'z';
                return g.x + g.y + p->tag;
            }
        """) == 3 + 4 + 122

    def test_array_of_structs(self):
        assert run("""
            struct cell { int v; int w; };
            struct cell grid[4];
            int main(void) {
                int i;
                for (i = 0; i < 4; i++) {
                    grid[i].v = i;
                    grid[i].w = i * 10;
                }
                return grid[2].v + grid[3].w;
            }
        """) == 32

    def test_pointer_to_local(self):
        assert run("""
            void set(int *out, int v) { *out = v; }
            int main(void) {
                int x = 0;
                set(&x, 42);
                return x;
            }
        """) == 42

    def test_global_string_pointer(self):
        assert run("""
            char *greeting = "hey";
            int main(void) { return greeting[0] + greeting[2]; }
        """) == ord("h") + ord("y")

    def test_increments_on_memory(self):
        assert run("""
            int g = 5;
            int main(void) {
                int a[2] = {1, 2};
                g++;
                ++g;
                a[0]--;
                return g * 10 + a[0] + a[1]++ + a[1];
            }
        """) == 70 + 0 + 2 + 3


class TestFunctions:
    def test_recursion(self):
        assert run("""
            int fib(int n) { if (n < 2) return n;
                             return fib(n-1) + fib(n-2); }
            int main(void) { return fib(12); }
        """) == 144

    def test_mutual_recursion(self):
        assert run("""
            int is_odd(int n);
            int is_even(int n) { if (n == 0) return 1;
                                 return is_odd(n - 1); }
            int is_odd(int n) { if (n == 0) return 0;
                                return is_even(n - 1); }
            int main(void) { return is_even(10)*10 + is_odd(7); }
        """) == 11

    def test_five_arguments_spill_to_stack(self):
        assert run("""
            int sum6(int a, int b, int c, int d, int e, int f) {
                return a + b*2 + c*3 + d*4 + e*5 + f*6;
            }
            int main(void) { return sum6(1, 2, 3, 4, 5, 6); }
        """) == 1 + 4 + 9 + 16 + 25 + 36

    def test_function_pointer_call(self):
        assert run("""
            int twice(int x) { return 2 * x; }
            int apply(int (*f)(int), int v) { return f(v); }
            int main(void) { return apply(twice, 21); }
        """) == 42

    def test_function_pointer_table(self):
        assert run("""
            int add(int a, int b) { return a + b; }
            int sub(int a, int b) { return a - b; }
            int main(void) {
                int (*ops[2])(int, int);
                ops[0] = add;
                ops[1] = sub;
                return ops[0](30, 12) + ops[1](30, 12);
            }
        """) == 60

    def test_char_parameter(self):
        assert run("""
            int promote(char c) { return c + 1; }
            int main(void) { return promote(200); }
        """) == 201

    def test_deep_expression_spills(self):
        # deeper than the 7-register pool: exercises spill/revive
        expr = "+".join(f"(a{i} * 2)" for i in range(10))
        decls = "".join(f"int a{i} = {i + 1};" for i in range(10))
        source = ("int main(void) { " + decls +
                  " return ((((((((" + expr + "))))))));}")
        assert run(source) == sum(2 * (i + 1) for i in range(10))

    def test_right_leaning_expression_tree(self):
        source = ("int main(void){ int a = 1; return "
                  + "a+(" * 9 + "a" + ")" * 9 + "; }")
        assert run(source) == 10
