"""The security test suite: each memory model versus a battery of
attacks.  This is the paper's core property — *"no application can
read, write, or execute memory locations outside its own allocated
region, or call functions outside a designated system API"* — so every
isolating model must stop every attack, while No Isolation (the
baseline) demonstrably does not.
"""

import pytest

from repro.aft import AftPipeline, AppSource, IsolationModel
from repro.kernel.fault import FaultOrigin
from repro.kernel.machine import AmuletMachine

ISOLATING_MODELS = (
    IsolationModel.SOFTWARE_ONLY,
    IsolationModel.MPU,
    IsolationModel.ADVANCED_MPU,
)

VICTIM = """
int secret = 0x1234;
int v_buffer[8];
int on_victim(int x) {
    v_buffer[x & 7] = secret + x;
    return v_buffer[x & 7];
}
"""


def build_pair(model, attacker_source, attacker_first=True):
    attacker = AppSource("attacker", attacker_source, ["on_attack"])
    victim = AppSource("victim", VICTIM, ["on_victim"])
    apps = [attacker, victim] if attacker_first else [victim, attacker]
    firmware = AftPipeline(model).build(apps)
    return firmware, AmuletMachine(firmware)


def attack_result(model, source, attacker_first=True):
    _fw, machine = build_pair(model, source, attacker_first)
    return machine.dispatch("attacker", "on_attack", [0])


class TestReadAttacks:
    SRAM_READ = """
    int on_attack(int x) {
        int *p = (int *)0x2000;     /* OS stack in SRAM */
        return *p;
    }
    """

    def sram_read_blocked(self, model):
        return attack_result(model, self.SRAM_READ).faulted

    @pytest.mark.parametrize("model", ISOLATING_MODELS)
    def test_os_stack_read_blocked(self, model):
        assert self.sram_read_blocked(model)

    def test_os_stack_read_succeeds_without_isolation(self):
        result = attack_result(IsolationModel.NO_ISOLATION,
                               self.SRAM_READ)
        assert not result.faulted

    @pytest.mark.parametrize("model", ISOLATING_MODELS)
    def test_victim_data_read_blocked(self, model):
        """Attacker placed below the victim reads upward."""
        firmware, _machine = build_pair(model, "int on_attack(int x)"
                                        "{ return x; }")
        victim_data = firmware.apps["victim"].stack_top
        source = f"""
        int on_attack(int x) {{
            int *p = (int *){victim_data};
            return *p;
        }}
        """
        result = attack_result(model, source)
        assert result.faulted

    @pytest.mark.parametrize("model", ISOLATING_MODELS)
    def test_os_data_read_blocked(self, model):
        """Reading OS FRAM (below the app's region)."""
        source = """
        int on_attack(int x) {
            int *p = (int *)0x4500;     /* OS code/data in low FRAM */
            return *p;
        }
        """
        assert attack_result(model, source).faulted


class TestWriteAttacks:
    @pytest.mark.parametrize("model", ISOLATING_MODELS)
    def test_victim_write_blocked(self, model):
        firmware, _machine = build_pair(model, "int on_attack(int x)"
                                        "{ return x; }")
        victim_data = firmware.apps["victim"].stack_top
        source = f"""
        int on_attack(int x) {{
            int *p = (int *){victim_data};
            *p = 0xDEAD;
            return 0;
        }}
        """
        assert attack_result(model, source).faulted

    def test_victim_write_corrupts_without_isolation(self):
        # victim placed first so its layout is independent of the
        # attacker's source size
        firmware, _machine = build_pair(
            IsolationModel.NO_ISOLATION,
            "int on_attack(int x) { return x; }", attacker_first=False)
        victim_secret = firmware.symbol("app_victim_secret")
        source = f"""
        int on_attack(int x) {{
            int *p = (int *){victim_secret};
            *p = 0x666;
            return *p;
        }}
        """
        firmware2, machine2 = build_pair(IsolationModel.NO_ISOLATION,
                                         source, attacker_first=False)
        assert firmware2.symbol("app_victim_secret") == victim_secret
        result = machine2.dispatch("attacker", "on_attack", [0])
        assert not result.faulted
        victim = machine2.dispatch("victim", "on_victim", [0])
        assert victim.return_value == 0x666    # corruption visible

    @pytest.mark.parametrize("model", ISOLATING_MODELS)
    def test_peripheral_write_blocked(self, model):
        """MPU registers live in peripheral space the hardware MPU
        cannot protect — the compiler check must catch the pointer."""
        source = """
        int on_attack(int x) {
            int *p = (int *)0x05A0;    /* MPUCTL0 */
            *p = 0;
            return 0;
        }
        """
        assert attack_result(model, source).faulted

    @pytest.mark.parametrize("model", ISOLATING_MODELS)
    def test_negative_array_index_blocked(self, model):
        source = """
        int a_buffer[4];
        int on_attack(int x) {
            int i = -2000;
            a_buffer[i] = 0xBAD;       /* far below the app */
            return 0;
        }
        """
        assert attack_result(model, source).faulted

    def test_negative_index_blocked_under_feature_limited(self):
        source = """
        int a_buffer[4];
        int on_attack(int x) {
            int i = -2000;
            a_buffer[i] = 0xBAD;
            return 0;
        }
        """
        firmware = AftPipeline(IsolationModel.FEATURE_LIMITED).build(
            [AppSource("attacker", source, ["on_attack"])])
        machine = AmuletMachine(firmware)
        result = machine.dispatch("attacker", "on_attack", [0])
        assert result.faulted
        assert result.fault.origin is FaultOrigin.SOFTWARE_CHECK

    def test_overlong_index_blocked_under_feature_limited(self):
        source = """
        int a_buffer[4];
        int on_attack(int x) {
            a_buffer[4000] = 1;
            return 0;
        }
        """
        firmware = AftPipeline(IsolationModel.FEATURE_LIMITED).build(
            [AppSource("attacker", source, ["on_attack"])])
        machine = AmuletMachine(firmware)
        assert machine.dispatch("attacker", "on_attack", [0]).faulted


class TestExecuteAttacks:
    @pytest.mark.parametrize("model", (IsolationModel.SOFTWARE_ONLY,
                                       IsolationModel.MPU))
    def test_function_pointer_below_code_blocked(self, model):
        """Calling into the OS through a rogue function pointer — the
        compiler's C_i lower-bound check (paper Figure 1).  The
        Advanced-MPU ablation is excluded: its coarse execute region
        spans the OS gates/runtime, an honest limitation of dropping
        the compiler check (see the module docstring of
        repro.kernel.advanced_mpu)."""
        source = """
        int on_attack(int x) {
            int (*fp)(void) = (int (*)(void))0x4400;
            return fp();
        }
        """
        assert attack_result(model, source).faulted

    @pytest.mark.parametrize("model", (IsolationModel.MPU,
                                       IsolationModel.ADVANCED_MPU))
    def test_function_pointer_into_own_data_blocked(self, model):
        """Jumping into writable data: execute-never via seg2 RW-."""
        source = """
        int a_code[4];
        int on_attack(int x) {
            int (*fp)(void);
            a_code[0] = 0x4130;       /* RET encoding as 'shellcode' */
            fp = (int (*)(void))a_code;
            return fp();
        }
        """
        result = attack_result(model, source)
        assert result.faulted

    @pytest.mark.parametrize("model", ISOLATING_MODELS)
    def test_stack_overflow_contained(self, model):
        """Deep recursion overruns the app stack; under the MPU model
        the stack walks into execute-only code and faults in hardware
        (the paper's overflow story)."""
        source = """
        int deep(int n) {
            int pad[16];
            pad[0] = n;
            if (n <= 0) return pad[0];
            return deep(n - 1) + pad[0];
        }
        int on_attack(int x) { return deep(2000); }
        """
        firmware = AftPipeline(model).build([
            AppSource("attacker", source, ["on_attack"],
                      recursive_stack=128),
            AppSource("victim", VICTIM, ["on_victim"]),
        ])
        machine = AmuletMachine(firmware)
        result = machine.dispatch("attacker", "on_attack", [0])
        assert result.faulted
        # the victim still works afterwards
        ok = machine.dispatch("victim", "on_victim", [1])
        assert not ok.faulted


class TestApiPointerAttacks:
    @pytest.mark.parametrize("model", ISOLATING_MODELS)
    def test_api_pointer_escape_blocked(self, model):
        """Passing an out-of-region pointer to the OS ("carefully
        handle application-provided pointers", paper section 3):
        the kernel-side validation must refuse to write through it."""
        source = """
        int on_attack(int x) {
            amulet_read_accel((int *)0x4500);   /* OS memory */
            return 0;
        }
        """
        result = attack_result(model, source)
        assert result.faulted
        assert result.fault.origin is FaultOrigin.API_POINTER

    @pytest.mark.parametrize("model", ISOLATING_MODELS)
    def test_api_storage_read_into_victim_blocked(self, model):
        firmware, _machine = build_pair(model, "int on_attack(int x)"
                                        "{ return x; }")
        victim_data = firmware.apps["victim"].stack_top
        source = f"""
        int on_attack(int x) {{
            char local[4];
            local[0] = 'p';
            amulet_storage_write(3, local, 4);
            amulet_storage_read(3, (char *){victim_data}, 4);
            return 0;
        }}
        """
        result = attack_result(model, source)
        assert result.faulted


class TestContainment:
    @pytest.mark.parametrize("model", ISOLATING_MODELS)
    def test_victim_unaffected_after_attack(self, model):
        firmware, machine = build_pair(model, """
        int on_attack(int x) {
            int *p = (int *)0x2000;
            *p = 0xAAAA;
            return 0;
        }
        """)
        machine.dispatch("victim", "on_victim", [2])
        machine.dispatch("attacker", "on_attack", [0])
        after = machine.dispatch("victim", "on_victim", [2])
        assert not after.faulted
        assert after.return_value == 0x1234 + 2

    @pytest.mark.parametrize("model", ISOLATING_MODELS)
    def test_fault_origin_is_recorded(self, model):
        result = attack_result(model, """
        int on_attack(int x) { return *(int *)0x2000; }
        """)
        assert result.fault.origin in (FaultOrigin.SOFTWARE_CHECK,
                                       FaultOrigin.MPU)
