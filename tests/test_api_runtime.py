"""The approved API table and the assembly runtime library."""

import pytest

from repro.cc.runtime import FAULT_STUB_ASM, RUNTIME_ASM, runtime_asm
from repro.cc.symbols import ApiTable
from repro.kernel.api import SERVICE_COSTS, amulet_api_table


class TestApiTable:
    def test_every_function_has_a_cost(self):
        table = amulet_api_table()
        for api in table.functions.values():
            assert api.service_id in SERVICE_COSTS
            assert api.cost_cycles == SERVICE_COSTS[api.service_id]

    def test_service_ids_unique(self):
        table = amulet_api_table()
        ids = [a.service_id for a in table.functions.values()]
        assert len(ids) == len(set(ids))

    def test_gate_symbols(self):
        table = amulet_api_table()
        assert table.gate_symbol("amulet_rand") == "__api_amulet_rand"
        assert table.sysvar_symbol("amulet_wall_minutes") == \
            "__os_amulet_wall_minutes"

    def test_contains(self):
        table = amulet_api_table()
        assert "amulet_get_battery" in table
        assert "amulet_format_disk" not in table

    def test_sysvars_declared(self):
        table = amulet_api_table()
        assert set(table.sysvars) == {
            "amulet_uptime_seconds", "amulet_wall_minutes",
            "amulet_battery_percent"}

    def test_empty_table_usable(self):
        table = ApiTable()
        assert "anything" not in table


class TestRuntimeAsm:
    def test_all_helpers_exported(self):
        for helper in ("__mulhi", "__udivmod", "__udivhi", "__uremhi",
                       "__divhi", "__remhi", "__ashlhi", "__ashrhi",
                       "__lshrhi", "__aft_check_index"):
            assert f"{helper}:" in RUNTIME_ASM

    def test_fault_stub_optional(self):
        assert "__fault:" in runtime_asm(with_fault_stub=True)
        assert "__fault:" not in runtime_asm(with_fault_stub=False)

    def test_runtime_assembles_standalone(self):
        from repro.asm.assembler import assemble
        obj = assemble(runtime_asm(), "runtime")
        assert obj.sections[".text"].size > 100
        # only __fault's ports and nothing else unresolved
        assert obj.undefined_symbols() == []

    def test_helpers_clobber_only_r12_to_r15(self):
        """The private-ABI contract the code generator relies on:
        execute each helper with sentinel values in R4-R11 and verify
        they survive."""
        from repro.asm.assembler import assemble
        from repro.asm.linker import Linker, LinkScript
        from repro.msp430.cpu import Cpu
        from repro.msp430.memory import MemoryMap

        harness = """
        .text
        .global __start
__start:
        CALL #{helper}
        MOV #1, &0x01F2
.spin:  JMP .spin
"""
        for helper in ("__mulhi", "__divhi", "__remhi", "__udivhi",
                       "__uremhi", "__ashlhi", "__ashrhi", "__lshrhi"):
            script = LinkScript()
            script.region("fram", MemoryMap.FRAM_START,
                          MemoryMap.FRAM_END)
            script.place_rule("*", "fram")
            image = (Linker(script)
                     .place([assemble(runtime_asm(), "rt"),
                             assemble(harness.format(helper=helper),
                                      "h")])
                     .resolve())
            cpu = Cpu()
            image.load_into(cpu.memory)
            cpu.memory.add_io(0x01F2, write=lambda a, v: cpu.halt())
            cpu.regs.pc = image.symbol("__start")
            cpu.regs.sp = 0x2400
            for reg in range(4, 12):
                cpu.regs.write(reg, 0x1000 + reg)
            cpu.regs.write(12, 1234)
            cpu.regs.write(13, 7)
            cpu.run(max_cycles=100_000)
            for reg in range(4, 12):
                assert cpu.regs.read(reg) == 0x1000 + reg, \
                    f"{helper} clobbered R{reg}"
