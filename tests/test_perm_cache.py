"""Property test for the flat permission bitmap.

The bus's fast path answers every permission question from a
per-address bitmap (region map AND MPU overlay, memoized per MPU
configuration).  Here an *independent* reimplementation of the
original semantics — a linear region scan plus the MPU's documented
segment walk, written from the register spec rather than shared code —
checks 200 random MPU configurations at random addresses for all three
access kinds.  Any divergence between the bitmap and the spec walk is
a real bug in one of them.
"""

import random

import pytest

from repro.msp430.memory import EXECUTE, READ, WRITE, Memory, MemoryMap
from repro.msp430.mpu import (
    SAM_R,
    SAM_W,
    SAM_X,
    Mpu,
    MpuConfig,
    SegmentPermissions,
)

KINDS = (READ, WRITE, EXECUTE)
_KIND_SAM = {READ: SAM_R, WRITE: SAM_W, EXECUTE: SAM_X}


def spec_allows(memory: Memory, mpu: Mpu, address: int,
                kind: str) -> bool:
    """The original check, re-derived from the spec: scan the region
    list (no page table), then walk the MPU segments from the raw
    registers (no cached boundaries, no overlay)."""
    if not 0 <= address <= 0xFFFF:
        return False
    region = next((r for r in memory.map.regions
                   if r.start <= address <= r.end), None)
    if region is None or not region.allows(kind):
        return False
    if mpu is None or not mpu.enabled:
        return True
    # MPU coverage: main FRAM (incl. vectors) -> segments 1-3 split at
    # the register-defined boundaries; InfoMem -> segment 0; anything
    # else (SRAM, peripherals, BSL) is uncovered and ungoverned.
    b1 = (mpu.segb1 << 4) & 0xFFFF
    b2 = (mpu.segb2 << 4) & 0xFFFF
    if MemoryMap.FRAM_START <= address <= MemoryMap.VECTORS_END:
        if address < b1:
            segment = 1
        elif address < b2:
            segment = 2
        else:
            segment = 3
        bits = (mpu.sam >> (4 * (segment - 1))) & 0xF
    elif MemoryMap.INFOMEM_START <= address <= MemoryMap.INFOMEM_END:
        bits = (mpu.sam >> 12) & 0xF
    else:
        return True
    return bool(bits & _KIND_SAM[kind])


def random_config(rng: random.Random) -> MpuConfig:
    def perms() -> SegmentPermissions:
        return SegmentPermissions(rng.random() < 0.6,
                                  rng.random() < 0.5,
                                  rng.random() < 0.5)

    lo = MemoryMap.FRAM_START
    hi = MemoryMap.VECTORS_END + 1
    b1, b2 = sorted(rng.randrange(lo, hi + 1, 16) for _ in range(2))
    return MpuConfig(b1=b1, b2=b2, seg1=perms(), seg2=perms(),
                     seg3=perms(), info=perms(),
                     enabled=rng.random() < 0.9)


def interesting_addresses(rng: random.Random,
                          config: MpuConfig) -> list:
    """Random probes plus every boundary's immediate neighborhood."""
    probes = [rng.randrange(0, 0x10000) for _ in range(24)]
    for edge in (MemoryMap.FRAM_START, MemoryMap.INFOMEM_START,
                 MemoryMap.INFOMEM_END, MemoryMap.SRAM_START,
                 MemoryMap.VECTORS_END, config.b1, config.b2):
        for delta in (-1, 0, 1):
            probes.append(max(0, min(0xFFFF, edge + delta)))
    return probes


class TestPermissionBitmapProperty:
    def test_bitmap_matches_spec_walk_for_200_random_configs(self):
        rng = random.Random(0x5EED)
        memory = Memory()
        mpu = Mpu()
        mpu.attach(memory)
        for _ in range(200):
            config = random_config(rng)
            mpu.configure(config)
            # the fast path must actually be active for this MPU
            memory.access_allowed(0, READ)   # force a refresh
            assert memory._perm is not None
            for address in interesting_addresses(rng, config):
                for kind in KINDS:
                    got = memory.access_allowed(address, kind)
                    want = spec_allows(memory, mpu, address, kind)
                    assert got == want, (
                        f"bitmap={got} spec={want} at 0x{address:04X} "
                        f"{kind} under {config.render()}")

    def test_disabled_mpu_reduces_to_region_map(self):
        rng = random.Random(7)
        memory = Memory()
        mpu = Mpu()
        mpu.attach(memory)
        mpu.configure(random_config(rng))
        mpu.disable()
        for address in [rng.randrange(0, 0x10000) for _ in range(64)]:
            for kind in KINDS:
                assert (memory.access_allowed(address, kind)
                        == spec_allows(memory, mpu, address, kind))

    def test_memoized_bitmaps_are_reused_across_reconfigs(self):
        memory = Memory()
        mpu = Mpu()
        mpu.attach(memory)
        rng = random.Random(3)
        a = random_config(rng)
        b = random_config(rng)
        mpu.configure(a)
        memory.access_allowed(0, READ)
        perm_a = memory._perm
        mpu.configure(b)
        memory.access_allowed(0, READ)
        assert memory._perm is not perm_a
        mpu.configure(a)              # context-switch back
        memory.access_allowed(0, READ)
        assert memory._perm is perm_a  # served from the signature memo

    def test_checked_access_agrees_with_probe(self):
        """memory._check raises exactly when access_allowed says no
        (and the slow path sets the MPU violation flags)."""
        from repro.errors import MemoryAccessError, MpuViolationError
        rng = random.Random(11)
        memory = Memory()
        mpu = Mpu()
        mpu.attach(memory)
        mpu.configure(random_config(rng))
        for address in [rng.randrange(0, 0x10000) for _ in range(128)]:
            for kind in KINDS:
                allowed = memory.access_allowed(address, kind)
                try:
                    memory._check(address, kind)
                    raised = False
                except (MemoryAccessError, MpuViolationError):
                    raised = True
                assert raised == (not allowed)


class TestSuperblockMpuReconfig:
    """An MPU reconfiguration between executions of a compiled
    superblock must re-validate the block against the new permission
    bitmap: still-executable code re-runs from the cached block,
    revoked code faults at the exact pc — identical to pure step()."""

    SEG_RWX = SegmentPermissions(True, True, True)
    SEG_RW = SegmentPermissions(True, True, False)
    CODE = 0x4400

    def _cpu(self, block_mode=True):
        from repro.msp430.cpu import Cpu
        from repro.msp430.encoding import encode_bytes
        from repro.msp430.isa import Instruction, Opcode, absolute, imm, reg
        from repro.ports import DONE_PORT

        cpu = Cpu()
        cpu.block_mode = block_mode
        cpu.regs.sp = 0x2400
        cpu.memory.add_io(DONE_PORT, write=lambda a, v: cpu.halt())
        mpu = Mpu()
        mpu.attach(cpu.memory)
        program = [
            Instruction(Opcode.MOV, src=imm(0x1111), dst=reg(5)),
            Instruction(Opcode.ADD, src=imm(3), dst=reg(5)),
            Instruction(Opcode.MOV, src=imm(1),
                        dst=absolute(DONE_PORT)),
        ]
        address = self.CODE
        for insn in program:
            blob = encode_bytes(insn, address)
            cpu.memory.load(address, blob)
            address += len(blob)
        return cpu, mpu

    def _config(self, executable: bool) -> MpuConfig:
        seg1 = self.SEG_RWX if executable else self.SEG_RW
        # b1 high: all code sits in segment 1
        return MpuConfig(b1=0xF000, b2=0xF000, seg1=seg1,
                         seg2=self.SEG_RWX, seg3=self.SEG_RWX,
                         info=self.SEG_RWX, enabled=True)

    def _run(self, cpu):
        cpu.halted = False
        cpu.regs.pc = self.CODE
        cpu.regs.write(5, 0)
        cpu.run(max_cycles=10_000)
        return cpu.regs.read(5)

    def test_reconfig_between_block_executions(self):
        for block_mode in (True, False):
            cpu, mpu = self._cpu(block_mode)
            mpu.configure(self._config(executable=True))
            assert self._run(cpu) == 0x1114       # block compiled
            # revoke execute on segment 1: the cached block must NOT
            # run; the fetch faults at the entry pc
            mpu.configure(self._config(executable=False))
            from repro.msp430.cpu import CpuFault
            cpu.halted = False
            cpu.regs.pc = self.CODE
            with pytest.raises(CpuFault) as info:
                cpu.run(max_cycles=10_000)
            assert info.value.pc == self.CODE
            # grant it back (same signature as the first config): the
            # memoized bitmap returns and the block revalidates
            mpu.configure(self._config(executable=True))
            assert self._run(cpu) == 0x1114
