"""Cycle table details and the measurement timer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.msp430.cpu import Cpu
from repro.msp430.cycles import instruction_cycles
from repro.msp430.encoding import encode_bytes
from repro.msp430.isa import (
    Instruction,
    Opcode,
    absolute,
    autoincrement,
    imm,
    indexed,
    indirect,
    reg,
)
from repro.msp430.registers import Reg
from repro.msp430.timer import CycleTimer


class TestCycleTable:
    @pytest.mark.parametrize("insn,expected", [
        # format I, from the family user's guide
        (Instruction(Opcode.MOV, src=reg(4), dst=reg(5)), 1),
        (Instruction(Opcode.MOV, src=reg(4), dst=reg(0)), 2),
        (Instruction(Opcode.MOV, src=indirect(4), dst=reg(5)), 2),
        (Instruction(Opcode.MOV, src=autoincrement(4), dst=reg(5)), 2),
        (Instruction(Opcode.MOV, src=indexed(2, 4), dst=reg(5)), 3),
        (Instruction(Opcode.MOV, src=absolute(0x8000), dst=reg(5)), 3),
        (Instruction(Opcode.ADD, src=reg(4),
                     dst=indexed(2, 5)), 4),
        (Instruction(Opcode.ADD, src=indexed(2, 4),
                     dst=indexed(4, 5)), 6),
        # MOV to memory: one cycle less
        (Instruction(Opcode.MOV, src=reg(4), dst=indexed(2, 5)), 3),
        (Instruction(Opcode.CMP, src=absolute(0x8000),
                     dst=absolute(0x8002)), 5),
        # constant generator: register timing
        (Instruction(Opcode.ADD, src=imm(1), dst=reg(5)), 1),
        (Instruction(Opcode.ADD, src=imm(8), dst=reg(5)), 1),
        (Instruction(Opcode.ADD, src=imm(3), dst=reg(5)), 2),
        # format II
        (Instruction(Opcode.RRA, src=reg(5)), 1),
        (Instruction(Opcode.RRA, src=indexed(0, 5)), 4),
        (Instruction(Opcode.PUSH, src=reg(5)), 3),
        (Instruction(Opcode.PUSH, src=imm(0x1234)), 4),
        (Instruction(Opcode.CALL, src=reg(5)), 4),
        (Instruction(Opcode.CALL, src=imm(0x4400)), 5),
        (Instruction(Opcode.RETI), 5),
        # jumps
        (Instruction(Opcode.JMP, offset=3), 2),
        (Instruction(Opcode.JEQ, offset=-3), 2),
    ])
    def test_known_cycle_counts(self, insn, expected):
        assert instruction_cycles(insn) == expected

    def test_ret_is_three_cycles(self):
        ret = Instruction(Opcode.MOV, src=autoincrement(Reg.SP),
                          dst=reg(Reg.PC))
        assert instruction_cycles(ret) == 3


class TestCycleTimer:
    def _cpu_with_timer(self):
        cpu = Cpu()
        cpu.regs.sp = 0x2400
        timer = CycleTimer(cpu)
        timer.attach()
        return cpu, timer

    def test_counter_quantizes_to_16(self):
        cpu, timer = self._cpu_with_timer()
        cpu.cycles = 15
        assert timer.read_counter() == 0
        cpu.cycles = 16
        assert timer.read_counter() == 1
        cpu.cycles = 47
        assert timer.read_counter() == 2

    def test_counter_readable_from_firmware(self):
        cpu, timer = self._cpu_with_timer()
        cpu.cycles = 64
        insn = Instruction(Opcode.MOV, src=absolute(timer.address),
                           dst=reg(5))
        cpu.memory.load(0x4400, encode_bytes(insn, 0x4400))
        cpu.regs.pc = 0x4400
        cpu.step()
        assert cpu.regs.read(5) == 4

    def test_measure_exact_and_quantized(self):
        cpu, timer = self._cpu_with_timer()
        with timer.measure() as m:
            cpu.cycles += 100
        assert m.cycles == 100
        assert m.measured_cycles == 96    # floor to 16-cycle ticks

    @given(start=st.integers(0, 2_000_000),
           elapsed=st.integers(0, 1_000_000))
    @settings(max_examples=60, deadline=None)
    def test_measurement_error_bounded_by_precision(self, start,
                                                    elapsed):
        """Property: the 16-cycle timer never errs by more than two
        quantization steps, including across counter wraparound."""
        cpu, timer = self._cpu_with_timer()
        cpu.cycles = start
        with timer.measure() as m:
            cpu.cycles += elapsed
        assert abs(m.measured_cycles - elapsed) < 2 * timer.divider

    def test_wraparound_handled(self):
        cpu, timer = self._cpu_with_timer()
        cpu.cycles = 16 * 0xFFFF    # counter at max
        with timer.measure() as m:
            cpu.cycles += 320
        assert m.measured_cycles == 320


class TestTimerBlockMode:
    def _measured_run(self, block_mode):
        """Countdown loop, a firmware timer read, then halt — run
        under ``timer.measure()`` with superblocks on or off."""
        from repro.ports import DONE_PORT

        cpu = Cpu()
        cpu.block_mode = block_mode
        cpu.regs.sp = 0x2400
        timer = CycleTimer(cpu)
        timer.attach()
        cpu.memory.add_io(DONE_PORT, write=lambda a, v: cpu.halt())
        program = [
            Instruction(Opcode.MOV, src=imm(40), dst=reg(5)),
            Instruction(Opcode.SUB, src=imm(1), dst=reg(5)),
            Instruction(Opcode.JNE, offset=-2),
            Instruction(Opcode.MOV, src=absolute(timer.address),
                        dst=reg(6)),
            Instruction(Opcode.MOV, src=imm(1),
                        dst=absolute(DONE_PORT)),
        ]
        address = 0x4400
        for insn in program:
            blob = encode_bytes(insn, address)
            cpu.memory.load(address, blob)
            address += len(blob)
        cpu.regs.pc = 0x4400
        with timer.measure() as m:
            cpu.run(max_cycles=50_000)
        return (m.cycles, m.measured_cycles, cpu.regs.read(6),
                cpu.cycles, cpu.instructions)

    def test_measure_identical_block_vs_step(self):
        blocked = self._measured_run(block_mode=True)
        stepped = self._measured_run(block_mode=False)
        assert blocked == stepped
        cycles, measured, r6, total_cycles, _ = blocked
        assert cycles > 0 and measured == (cycles // 16) * 16
        # the mid-program counter read saw the cycles spent so far
        assert 0 < r6 <= total_cycles // 16
