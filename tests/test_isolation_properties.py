"""Property-based isolation invariants.

For every generated address, an app that dereferences it must fault
exactly when the (word-aligned) access falls outside its own
data/stack region — the paper's memory-isolation definition, verified
over the whole address space by hypothesis.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.aft import AftPipeline, AppSource, IsolationModel
from repro.kernel.machine import AmuletMachine

PROBE = """
int keep = 0;
int on_write(int address) {
    int *p = (int *)address;
    *p = 0x55;
    return 0;
}
int on_read(int address) {
    int *p = (int *)address;
    keep = *p;
    return keep;
}
"""

_SETTINGS = dict(max_examples=80, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def build_machine(model):
    firmware = AftPipeline(model).build(
        [AppSource("probe", PROBE, ["on_write", "on_read"]),
         AppSource("neighbor", "int n_data[16]; int on_e(int x) "
                               "{ n_data[x & 15] = x; return x; }",
                   ["on_e"])])
    return firmware, AmuletMachine(firmware)


@pytest.fixture(scope="module")
def mpu_setup():
    return build_machine(IsolationModel.MPU)


@pytest.fixture(scope="module")
def sw_setup():
    return build_machine(IsolationModel.SOFTWARE_ONLY)


def in_own_region(firmware, address):
    app = firmware.apps["probe"]
    aligned = address & ~1
    return app.seg_lo <= aligned and aligned + 2 <= app.seg_hi


class TestWriteInvariant:
    @given(address=st.integers(0, 0xFFFF))
    @settings(**_SETTINGS)
    def test_mpu_write_faults_iff_outside_region(self, mpu_setup,
                                                 address):
        firmware, machine = mpu_setup
        result = machine.dispatch("probe", "on_write", [address])
        assert result.faulted == (not in_own_region(firmware, address))

    @given(address=st.integers(0, 0xFFFF))
    @settings(**_SETTINGS)
    def test_software_only_write_faults_iff_outside(self, sw_setup,
                                                    address):
        firmware, machine = sw_setup
        result = machine.dispatch("probe", "on_write", [address])
        assert result.faulted == (not in_own_region(firmware, address))

    @given(address=st.integers(0, 0xFFFF))
    @settings(**_SETTINGS)
    def test_read_faults_iff_outside(self, mpu_setup, address):
        firmware, machine = mpu_setup
        result = machine.dispatch("probe", "on_read", [address])
        assert result.faulted == (not in_own_region(firmware, address))

    @given(address=st.integers(0, 0xFFFF))
    @settings(**_SETTINGS)
    def test_neighbor_state_never_corrupted(self, mpu_setup, address):
        firmware, machine = mpu_setup
        machine.dispatch("neighbor", "on_e", [3])
        machine.dispatch("probe", "on_write", [address])
        check = machine.dispatch("neighbor", "on_e", [3])
        assert not check.faulted
        assert check.return_value == 3


class TestInRegionWritesSucceed:
    @given(offset=st.integers(0, 60))
    @settings(**_SETTINGS)
    def test_own_data_always_writable(self, mpu_setup, offset):
        firmware, machine = mpu_setup
        app = firmware.apps["probe"]
        address = (app.stack_top + offset * 2) % (app.seg_hi - 2)
        if address < app.seg_lo:
            address = app.seg_lo
        result = machine.dispatch("probe", "on_write", [address & ~1])
        assert not result.faulted
