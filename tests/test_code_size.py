"""Code-size experiment mechanics (fast, two-app corpus)."""

import pytest

from repro.aft import AppSource, IsolationModel
from repro.experiments.code_size import run_code_size

APPS = [
    AppSource("alpha", """
        int win[8];
        int total;
        int on_e(int i) {
            win[i & 7] = i;
            total += win[i & 7];
            return total;
        }
    """, ["on_e"]),
    AppSource("beta", """
        int grid[16];
        int on_e(int i) {
            int j;
            for (j = 0; j < 16; j++) grid[j] = i + j;
            return grid[i & 15];
        }
    """, ["on_e"]),
]


@pytest.fixture(scope="module")
def result():
    return run_code_size(apps=APPS)


class TestCodeSize:
    def test_every_model_measured(self, result):
        for by_model in result.sizes.values():
            assert len(by_model) == 4

    def test_baseline_smallest(self, result):
        assert result.shape_holds()

    def test_software_only_largest(self, result):
        totals = {model: result.total(model)
                  for model in result.sizes["alpha"]}
        assert max(totals, key=totals.get) is \
            IsolationModel.SOFTWARE_ONLY

    def test_overhead_percent_positive(self, result):
        for model in (IsolationModel.FEATURE_LIMITED,
                      IsolationModel.MPU,
                      IsolationModel.SOFTWARE_ONLY):
            assert result.overhead_percent(model) > 0

    def test_software_only_doubles_mpu_check_bytes(self, result):
        """SW adds upper+lower where MPU adds lower only, so SW's size
        *overhead* is roughly twice MPU's on check-dense code."""
        baseline = result.total(IsolationModel.NO_ISOLATION)
        mpu_extra = result.total(IsolationModel.MPU) - baseline
        sw_extra = result.total(IsolationModel.SOFTWARE_ONLY) - baseline
        assert 1.5 <= sw_extra / mpu_extra <= 2.5

    def test_render(self, result):
        text = result.render()
        assert "TOTAL" in text
        assert "alpha" in text and "beta" in text
