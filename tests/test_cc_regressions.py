"""Targeted compiler edge cases and regression guards."""

import pytest

from repro.errors import CompileError
from repro.cc.execution import run_compiled
from repro.cc.interp import Interpreter
from repro.cc.parser import parse
from repro.cc.sema import FULL_C, analyze


def run(source, fn="main", args=()):
    return run_compiled(source, fn, args).value


def agree(source, fn="main", args=()):
    interp = Interpreter(analyze(parse(source), FULL_C))
    expected = interp.call(fn, list(args))
    actual = run(source, fn, args)
    assert actual == expected
    return actual


class TestEdgeCases:
    def test_sizeof_array_parameter_decays(self):
        assert run("int f(int a[8]) { return sizeof a; }"
                   "int main(void) { int b[8]; return f(b); }") == 2

    def test_unary_minus_on_unsigned(self):
        assert run("unsigned main(void) { unsigned u = 1; "
                   "return -u; }") == 0xFFFF

    def test_char_comparison_promotes(self):
        # 200 as char stays 200 (unsigned byte), compares > 100 as int
        assert agree("int main(void) { char c = 200; "
                     "return c > 100; }") == 1

    def test_cast_truncates_to_byte(self):
        assert agree("int main(void) { int v = 0x1FF; "
                     "return (char)v; }") == 0xFF

    def test_pointer_cast_roundtrip(self):
        assert agree("""
            int main(void) {
                int x = 77;
                char *c = (char *)&x;
                int *back = (int *)c;
                return *back;
            }
        """) == 77

    def test_byte_pointer_walks_word(self):
        assert agree("""
            int main(void) {
                int x = 0x1234;
                char *c = (char *)&x;
                return c[0] * 1000 + c[1];    /* little endian */
            }
        """) == 0x34 * 1000 + 0x12

    def test_address_of_array_element(self):
        assert agree("""
            int a[5];
            int main(void) {
                int *p = &a[2];
                *p = 9;
                return a[2] + (p - a);
            }
        """) == 11

    def test_nested_struct_array_mix(self):
        assert agree("""
            struct item { int key; int vals[3]; };
            struct item table[2];
            int main(void) {
                table[1].key = 5;
                table[1].vals[2] = 7;
                return table[1].key + table[1].vals[2];
            }
        """) == 12

    def test_assignment_value_chains(self):
        assert agree("""
            int main(void) {
                int a;
                int b;
                int c;
                a = b = c = 4;
                return a + b + c;
            }
        """) == 12

    def test_compound_on_array_element(self):
        assert agree("""
            int a[3] = {1, 2, 3};
            int main(void) {
                a[1] += 10;
                a[2] <<= 2;
                return a[1] + a[2];
            }
        """) == 24

    def test_conditional_as_argument(self):
        assert agree("""
            int pick(int v) { return v * 2; }
            int main(void) {
                int x = 3;
                return pick(x > 2 ? 10 : 20);
            }
        """) == 20

    def test_expression_statement_side_effects_only(self):
        assert agree("""
            int g = 0;
            int bump(void) { g++; return g; }
            int main(void) { bump(); bump(); return g; }
        """) == 2

    def test_empty_function_returns(self):
        assert run("void noop(void) { }"
                   "int main(void) { noop(); return 3; }") == 3

    def test_modulo_powers_of_two_pattern(self):
        assert agree("""
            int main(void) {
                int h = 0;
                int i;
                for (i = 0; i < 20; i++) h = (h + 7) % 12;
                return h;
            }
        """)

    def test_many_locals(self):
        decls = "".join(f"int v{i} = {i};" for i in range(30))
        total = "+".join(f"v{i}" for i in range(30))
        assert run(f"int main(void) {{ {decls} return {total}; }}") \
            == sum(range(30))

    def test_while_with_complex_condition(self):
        assert agree("""
            int main(void) {
                int i = 0;
                int j = 10;
                while (i < 5 && j > 6 || i == 0) {
                    i++;
                    j--;
                }
                return i * 100 + j;
            }
        """)

    def test_chained_comparisons_are_left_assoc(self):
        # (1 < 2) < 3 -> 1 < 3 -> 1
        assert agree("int main(void) { return 1 < 2 < 3; }") == 1


class TestMultiAppMangling:
    def test_same_function_names_across_apps(self):
        from repro.aft import AftPipeline, AppSource, IsolationModel
        from repro.kernel.machine import AmuletMachine
        source_a = """
        int helper(void) { return 10; }
        int on_e(int x) { return helper() + x; }
        """
        source_b = """
        int helper(void) { return 20; }
        int on_e(int x) { return helper() + x; }
        """
        firmware = AftPipeline(IsolationModel.MPU).build([
            AppSource("alpha", source_a, ["on_e"]),
            AppSource("beta", source_b, ["on_e"]),
        ])
        machine = AmuletMachine(firmware)
        assert machine.dispatch("alpha", "on_e", [1]).return_value == 11
        assert machine.dispatch("beta", "on_e", [1]).return_value == 21

    def test_same_global_names_across_apps(self):
        from repro.aft import AftPipeline, AppSource, IsolationModel
        from repro.kernel.machine import AmuletMachine
        source = """
        int state = %d;
        int on_e(int x) { state += x; return state; }
        """
        firmware = AftPipeline(IsolationModel.MPU).build([
            AppSource("one", source % 100, ["on_e"]),
            AppSource("two", source % 200, ["on_e"]),
        ])
        machine = AmuletMachine(firmware)
        assert machine.dispatch("one", "on_e", [1]).return_value == 101
        assert machine.dispatch("two", "on_e", [1]).return_value == 201
        assert machine.dispatch("one", "on_e", [1]).return_value == 102


class TestDiagnostics:
    def test_error_carries_file_and_line(self):
        with pytest.raises(CompileError) as info:
            run_compiled("int f(void) {\n  return ghost;\n}", "f")
        assert ":2:" in str(info.value)

    def test_too_complex_call_reported_not_miscompiled(self):
        # 5-arg call nested deeper than the register pool must raise,
        # never silently corrupt
        args = ", ".join("1" for _ in range(5))
        deep = "a"
        for _ in range(8):
            deep = f"(a + {deep})"
        source = f"""
            int six(int a, int b, int c, int d, int e) {{ return a; }}
            int main(void) {{
                int a = 1;
                return {deep} + six({args});
            }}
        """
        # either compiles correctly or raises CompileError; both OK,
        # silent wrong answers are not.
        try:
            value = run(source)
        except CompileError:
            return
        interp = Interpreter(analyze(parse(source), FULL_C))
        assert value == interp.call("main")
