"""Unit tests: the MiniC type system and the object-file model."""

import pytest

from repro.errors import CompileError, LinkError
from repro.asm.objfile import ObjectFile, Relocation, RelocType, \
    Section
from repro.cc.types import (
    CHAR,
    ArrayType,
    FunctionType,
    INT,
    PointerType,
    StructType,
    UINT,
    VOID,
    assignable,
    common_type,
)


class TestTypeSizes:
    def test_scalar_sizes(self):
        assert INT.size == 2
        assert UINT.size == 2
        assert CHAR.size == 1
        assert VOID.size == 0
        assert PointerType(INT).size == 2

    def test_array_size(self):
        assert ArrayType(INT, 10).size == 20
        assert ArrayType(CHAR, 5).size == 5
        assert ArrayType(ArrayType(INT, 3), 2).size == 12

    def test_struct_layout_and_padding(self):
        struct = StructType("s")
        struct.add_field("c", CHAR)
        struct.add_field("i", INT)       # aligned up to offset 2
        struct.add_field("c2", CHAR)     # offset 4
        struct.finish()
        assert struct.field("c").offset == 0
        assert struct.field("i").offset == 2
        assert struct.field("c2").offset == 4
        assert struct.size == 6          # padded to word

    def test_struct_duplicate_field(self):
        struct = StructType("s")
        struct.add_field("x", INT)
        with pytest.raises(CompileError):
            struct.add_field("x", INT)

    def test_struct_unknown_field(self):
        struct = StructType("s")
        struct.finish()
        with pytest.raises(CompileError):
            struct.field("nope")

    def test_struct_identity_equality(self):
        a = StructType("same")
        b = StructType("same")
        assert a == a
        assert a != b


class TestDecayAndConversions:
    def test_array_decays_to_pointer(self):
        decayed = ArrayType(INT, 4).decay()
        assert isinstance(decayed, PointerType)
        assert decayed.target is INT

    def test_scalar_decay_identity(self):
        assert INT.decay() is INT

    def test_common_type_promotions(self):
        assert common_type(CHAR, CHAR) == INT
        assert common_type(INT, INT) == INT
        assert common_type(INT, UINT) == UINT
        assert common_type(CHAR, UINT) == UINT

    def test_common_type_pointer_wins(self):
        assert common_type(PointerType(INT), INT).is_pointer

    def test_assignable_rules(self):
        assert assignable(INT, CHAR)
        assert assignable(PointerType(INT), PointerType(INT))
        assert assignable(PointerType(VOID), PointerType(INT))
        assert assignable(PointerType(INT), PointerType(VOID))
        assert assignable(PointerType(INT), INT)   # with warning in C
        assert not assignable(
            StructType("a"), INT)

    def test_function_type_render(self):
        ftype = FunctionType(INT, (INT, PointerType(CHAR)))
        assert str(ftype) == "int(int, char*)"


class TestSection:
    def test_append_word_little_endian(self):
        section = Section(".t")
        offset = section.append_word(0x1234)
        assert offset == 0
        assert bytes(section.data) == b"\x34\x12"

    def test_read_write_word(self):
        section = Section(".t")
        section.append_word(0)
        section.write_word(0, 0xBEEF)
        assert section.read_word(0) == 0xBEEF

    def test_align_to(self):
        section = Section(".t")
        section.append_byte(1)
        section.align_to(4)
        assert section.size == 4


class TestObjectFile:
    def test_sections_created_on_demand(self):
        obj = ObjectFile("o")
        first = obj.section(".text")
        again = obj.section(".text")
        assert first is again

    def test_duplicate_symbol_rejected(self):
        obj = ObjectFile("o")
        obj.define("x", ".text", 0)
        with pytest.raises(LinkError):
            obj.define("x", ".text", 2)

    def test_globals_listing(self):
        obj = ObjectFile("o")
        obj.define("a", ".text", 0, is_global=True)
        obj.define("b", ".text", 2)
        assert [s.name for s in obj.globals()] == ["a"]

    def test_undefined_symbols_deduplicated(self):
        obj = ObjectFile("o")
        section = obj.section(".text")
        section.relocations.append(
            Relocation(0, RelocType.ABS16, "ghost"))
        section.relocations.append(
            Relocation(2, RelocType.ABS16, "ghost"))
        assert obj.undefined_symbols() == ["ghost"]

    def test_total_size(self):
        obj = ObjectFile("o")
        obj.section(".a").append_bytes(b"1234")
        obj.section(".b").append_bytes(b"56")
        assert obj.total_size() == 6

    def test_absolute_symbol(self):
        obj = ObjectFile("o")
        symbol = obj.define("CONST", None, 0x42)
        assert symbol.is_absolute
