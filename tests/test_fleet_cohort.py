"""Cohort lockstep execution: byte-identity, forking, and planning.

The cohort layer's contract mirrors ``--jobs``: it is an execution
detail.  A campaign run with ``--cohort on`` must produce the same
bytes as one run with it off — whether the fleet is homogeneous (full
lockstep), heterogeneous (mostly rejects), or killed and resumed
mid-flight.  The unit tests additionally pin the sharp edge: the
cycle-timer port returns *absolute* quantized cycles, so a follower
whose absolute cycle count differs may only replay a timer-reading
dispatch when the counts agree modulo ``divider * 2^16``.
"""

import json

from repro.aft.cache import build_firmware
from repro.aft.models import IsolationModel
from repro.aft.phases import AppSource
from repro.fleet.cohort import CohortStats, record_segment, \
    replay_segment
from repro.fleet.device import simulate_cohort, simulate_device
from repro.fleet.executor import FleetConfig, plan_cohort_units, \
    run_campaign
from repro.fleet.population import device_spec, generate_population
from repro.fleet.snapshot import snapshot_device
from repro.fleet.telemetry import MODELS_BY_KEY, device_record
from repro.kernel.events import EventType, PeriodicSource
from repro.kernel.machine import AmuletMachine
from repro.kernel.scheduler import AppSchedule, Scheduler
from repro.kernel.services import SensorEnvironment

_CAMPAIGN = dict(devices=6, hours=0.003, models=("mpu",), seed=7,
                 checkpoint_minutes=0.05, rogue_fraction=0.5)


def _campaign(tmp_path, name, cohort, jobs=2, profile=False,
              rejoin=True, **overrides):
    config = FleetConfig(**{**_CAMPAIGN, **overrides})
    out = tmp_path / name
    profile_dir = out / "profiles" if profile else None
    summary = run_campaign(config, out, jobs=jobs, cohort=cohort,
                           rejoin=rejoin, profile_dir=profile_dir)
    return out, summary


class TestCohortCampaign:
    def test_off_on_identical_heterogeneous(self, tmp_path):
        off, _ = _campaign(tmp_path, "het-off", cohort=False)
        on, _ = _campaign(tmp_path, "het-on", cohort=True)
        assert (off / "summary.json").read_bytes() == \
            (on / "summary.json").read_bytes()
        assert (off / "devices-mpu.jsonl").read_bytes() == \
            (on / "devices-mpu.jsonl").read_bytes()

    def test_off_on_identical_homogeneous_with_replays(self, tmp_path):
        off, _ = _campaign(tmp_path, "hom-off", cohort=False,
                           homogeneous=True)
        on, _ = _campaign(tmp_path, "hom-on", cohort=True,
                          profile=True, homogeneous=True)
        assert (off / "summary.json").read_bytes() == \
            (on / "summary.json").read_bytes()
        # the profile proves lockstep actually happened: clones
        # replayed the leader's deltas instead of executing
        profile = json.loads(
            (on / "profiles" / "coordinator.json").read_text())
        model = profile["models"]["mpu"]
        assert model["cohort_replayed"] > 0
        assert model["cohort_executed"] > 0
        assert model["cohort_forks"] == 0

    def test_cohort_kill_and_resume_is_byte_identical(self, tmp_path):
        import pytest
        from repro.errors import ReproError
        reference, _ = _campaign(tmp_path, "creference",
                                 cohort=False, jobs=1,
                                 homogeneous=True)
        config = FleetConfig(**{**_CAMPAIGN, "homogeneous": True})
        out = tmp_path / "ccrashed"
        with pytest.raises(ReproError, match="re-run the same"):
            run_campaign(config, out, jobs=2, cohort=True,
                         crash_after_checkpoints=2)
        run_campaign(config, out, jobs=2, cohort=True)
        assert (out / "summary.json").read_bytes() == \
            (reference / "summary.json").read_bytes()

    def test_rejoin_off_on_identical(self, tmp_path):
        off, _ = _campaign(tmp_path, "rj-off", cohort=True,
                           rejoin=False, profile=True)
        on, _ = _campaign(tmp_path, "rj-on", cohort=True,
                          rejoin=True, profile=True)
        assert (off / "summary.json").read_bytes() == \
            (on / "summary.json").read_bytes()
        assert (off / "devices-mpu.jsonl").read_bytes() == \
            (on / "devices-mpu.jsonl").read_bytes()
        for out, expected in ((off, False), (on, True)):
            profile = json.loads(
                (out / "profiles" / "coordinator.json").read_text())
            assert profile["rejoin"] is expected

    def test_cohort_is_not_campaign_identity(self, tmp_path):
        # finish a campaign with cohorts off, reopen it with them on:
        # same key, nothing reruns
        out, first = _campaign(tmp_path, "reopen", cohort=False)
        summary = run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=1,
                               cohort=True)
        assert summary == first


class TestCohortPlanning:
    def test_homogeneous_fleet_forms_per_job_units(self):
        config = FleetConfig(**{**_CAMPAIGN, "devices": 8,
                                "homogeneous": True})
        units = plan_cohort_units(config, MODELS_BY_KEY["mpu"],
                                  list(range(8)), jobs=2)
        assert units == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_units_group_by_firmware_signature(self):
        config = FleetConfig(**{**_CAMPAIGN, "devices": 16})
        model = MODELS_BY_KEY["mpu"]
        units = plan_cohort_units(config, model, list(range(16)),
                                  jobs=2)
        assert sorted(d for unit in units for d in unit) == \
            list(range(16))
        assert units == sorted(units, key=lambda unit: unit[0])
        for unit in units:
            signatures = set()
            for device_id in unit:
                spec = device_spec(config.seed, device_id,
                                   config.rogue_fraction)
                signatures.add((spec.apps, spec.rogue))
            assert len(signatures) == 1


class TestSimulateCohort:
    def test_matches_simulate_device_heterogeneous(self):
        model = MODELS_BY_KEY["mpu"]
        specs = generate_population(3, 4, rogue_fraction=0.5)
        stats = CohortStats()
        runs = simulate_cohort(specs, model, sim_ms=6000,
                               checkpoint_every_ms=2500, stats=stats)
        for spec in specs:
            solo = simulate_device(spec, model, sim_ms=6000,
                                   checkpoint_every_ms=2500)
            run = runs[spec.device_id]
            assert device_record(run, "mpu") == \
                device_record(solo, "mpu")
            assert snapshot_device(run.machine, run.scheduler, 6000) \
                == snapshot_device(solo.machine, solo.scheduler, 6000)

    def test_homogeneous_clones_stay_in_lockstep(self):
        model = MODELS_BY_KEY["mpu"]
        specs = generate_population(3, 4, rogue_fraction=0.5,
                                    homogeneous=True)
        stats = CohortStats()
        runs = simulate_cohort(specs, model, sim_ms=6000,
                               checkpoint_every_ms=2500, stats=stats)
        assert stats.replayed == 3 * stats.executed
        assert stats.forks == 0 and stats.rejects == 0
        solo = simulate_device(specs[1], model, sim_ms=6000,
                               checkpoint_every_ms=2500)
        assert snapshot_device(runs[1].machine, runs[1].scheduler,
                               6000) == \
            snapshot_device(solo.machine, solo.scheduler, 6000)


#: reads the Timer_A counter port each dispatch and folds it into a
#: global — state that diverges the moment a timer read differs
_TICKER = """
int last = 0;
int on_tick(int x) {
    int *t = (int *)0x0340;
    last = last + *t;
    return last;
}
"""

_SEGMENT_MS = 200


def _ticker_machine():
    firmware = build_firmware(
        IsolationModel.NO_ISOLATION,
        [AppSource("ticker", _TICKER, handlers=["on_tick"])])
    machine = AmuletMachine(firmware, env=SensorEnvironment(5))
    scheduler = Scheduler(machine)
    scheduler.add_app(AppSchedule("ticker", sources=[PeriodicSource(
        app="ticker", handler="on_tick",
        event_type=EventType.TIMER, period_ms=40, phase_ms=3)]))
    return machine, scheduler


def _run_reference(cycle_offset):
    machine, scheduler = _ticker_machine()
    machine.cpu.cycles += cycle_offset
    scheduler.seed_events(_SEGMENT_MS, 0)
    while scheduler.step(before_ms=_SEGMENT_MS) is not None:
        pass
    return machine


class TestTimerSensitivity:
    def _trace(self):
        leader, leader_sched = _ticker_machine()
        stats = CohortStats()
        trace = record_segment(leader, leader_sched, 0, _SEGMENT_MS,
                               stats)
        # the recorder must have seen the timer reads, else the guard
        # under test never arms
        assert trace.entries
        assert all(entry.cycles_mod is not None
                   for entry in trace.entries)
        return leader, trace

    def test_congruent_cycle_offset_replays(self):
        # +divider*2^16 cycles: every 16-bit counter read is identical,
        # so the follower may (and does) stay in lockstep
        leader, trace = self._trace()
        follower, follower_sched = _ticker_machine()
        follower.cpu.cycles += trace.timer_modulus
        stats = CohortStats()
        replay_segment(follower, follower_sched, trace, 0,
                       _SEGMENT_MS, stats)
        assert stats.joins == 1 and stats.forks == 0
        assert stats.replayed == len(trace.entries)
        assert follower.cpu.memory.image_equals(
            leader.cpu.memory.image_bytes())
        assert follower.cpu.regs.snapshot() == \
            leader.cpu.regs.snapshot()

    def test_incongruent_cycle_offset_forks(self):
        # an offset that shifts the counter value: the handshake still
        # passes (it does not cover absolute cycles), so only the
        # per-entry cycles_mod guard stands between the follower and a
        # wrong replay
        offset = 12344
        _leader, trace = self._trace()
        assert offset % trace.timer_modulus != 0
        follower, follower_sched = _ticker_machine()
        follower.cpu.cycles += offset
        stats = CohortStats()
        replay_segment(follower, follower_sched, trace, 0,
                       _SEGMENT_MS, stats)
        assert stats.joins == 1       # pre-state matches...
        assert stats.forks == 1       # ...but the first timer read forks
        assert stats.replayed == 0
        reference = _run_reference(offset)
        assert follower.cpu.memory.image_equals(
            reference.cpu.memory.image_bytes())
        assert follower.cpu.regs.snapshot() == \
            reference.cpu.regs.snapshot()
        assert follower.cpu.cycles == reference.cpu.cycles

    def test_divergent_pre_state_rejects_handshake(self):
        _leader, trace = self._trace()
        follower, follower_sched = _ticker_machine()
        follower.services.env._state += 1
        stats = CohortStats()
        replay_segment(follower, follower_sched, trace, 0,
                       _SEGMENT_MS, stats)
        assert stats.rejects == 1 and stats.joins == 0
        assert stats.replayed == 0
        assert stats.executed == len(trace.entries)


class TestDispatchBoundaryRejoin:
    """A forked follower re-handshakes at every later dispatch
    boundary (key + cycles-mod pre-filter, state digest to verify) and
    resumes delta replay the moment its live state matches a recorded
    entry again."""

    def _trace(self):
        leader, leader_sched = _ticker_machine()
        stats = CohortStats()
        trace = record_segment(leader, leader_sched, 0, _SEGMENT_MS,
                               stats)
        assert len(trace.entries) >= 4
        return leader, trace

    def test_rejected_handshake_rejoins_at_first_boundary(self):
        # a bogus segment digest rejects the handshake, but the
        # follower's state *is* the leader's — the first boundary
        # re-handshake matches entry 0 and the whole segment replays
        leader, trace = self._trace()
        trace.pre_sha = "0" * 64
        follower, follower_sched = _ticker_machine()
        stats = CohortStats()
        replay_segment(follower, follower_sched, trace, 0,
                       _SEGMENT_MS, stats)
        assert stats.rejects == 1 and stats.joins == 0
        assert stats.rejoins == 1
        assert stats.replayed == len(trace.entries)
        assert stats.executed == 0
        assert follower.cpu.memory.image_equals(
            leader.cpu.memory.image_bytes())
        assert follower.cpu.regs.snapshot() == \
            leader.cpu.regs.snapshot()

    def test_mid_trace_fork_rejoins_at_next_boundary(self):
        # one unmatchable entry forces a fork mid-segment; the forked
        # dispatch executes for real (deterministically, to the same
        # state the leader reached), so the next boundary rejoins
        leader, trace = self._trace()
        broken = len(trace.entries) // 2
        trace.entries[broken].key = ("rogue", "nope", (), ())
        follower, follower_sched = _ticker_machine()
        stats = CohortStats()
        replay_segment(follower, follower_sched, trace, 0,
                       _SEGMENT_MS, stats)
        assert stats.joins == 1
        assert stats.forks == 1 and stats.rejoins == 1
        assert stats.executed == 1
        assert stats.replayed == len(trace.entries) - 1
        assert follower.cpu.memory.image_equals(
            leader.cpu.memory.image_bytes())
        assert follower.cpu.regs.snapshot() == \
            leader.cpu.regs.snapshot()
        assert follower.cpu.cycles == leader.cpu.cycles

    def test_rejoin_off_forks_to_segment_end(self):
        # rejoin=False restores the old contract: one divergence and
        # the rest of the segment runs for real
        leader, trace = self._trace()
        broken = len(trace.entries) // 2
        trace.entries[broken].key = ("rogue", "nope", (), ())
        follower, follower_sched = _ticker_machine()
        stats = CohortStats()
        replay_segment(follower, follower_sched, trace, 0,
                       _SEGMENT_MS, stats, rejoin=False)
        assert stats.forks == 1 and stats.rejoins == 0
        assert stats.replayed == broken
        assert stats.executed == len(trace.entries) - broken
        assert follower.cpu.memory.image_equals(
            leader.cpu.memory.image_bytes())
        assert follower.cpu.regs.snapshot() == \
            leader.cpu.regs.snapshot()

    def test_persistent_divergence_never_rejoins(self):
        # a follower whose environment differs can never match a
        # recorded key: every boundary stays a cheap pre-filter miss
        _leader, trace = self._trace()
        follower, follower_sched = _ticker_machine()
        follower.services.env._state += 1
        stats = CohortStats()
        replay_segment(follower, follower_sched, trace, 0,
                       _SEGMENT_MS, stats)
        assert stats.rejects == 1
        assert stats.rejoins == 0 and stats.replayed == 0
        assert stats.executed == len(trace.entries)
