"""Memory bus and region-map behaviour."""

import pytest

from repro.errors import MemoryAccessError
from repro.msp430.memory import EXECUTE, Memory, MemoryMap, READ, WRITE


@pytest.fixture
def memory():
    return Memory()


class TestRegionMap:
    def test_fram_bounds(self):
        assert MemoryMap.in_main_fram(0x4400)
        assert MemoryMap.in_main_fram(0xFFFF)
        assert not MemoryMap.in_main_fram(0x43FF)

    def test_infomem_bounds(self):
        assert MemoryMap.in_infomem(0x1800)
        assert MemoryMap.in_infomem(0x19FF)
        assert not MemoryMap.in_infomem(0x1A00)

    def test_region_lookup(self, memory):
        assert memory.map.region_at(0x0000).name == "peripherals"
        assert memory.map.region_at(0x1C00).name == "sram"
        assert memory.map.region_at(0x5000).name == "fram"
        assert memory.map.region_at(0xFF80).name == "vectors"


class TestBasicAccess:
    def test_word_roundtrip(self, memory):
        memory.write_word(0x4400, 0xBEEF)
        assert memory.read_word(0x4400) == 0xBEEF

    def test_byte_roundtrip(self, memory):
        memory.write_byte(0x1C00, 0xA5)
        assert memory.read_byte(0x1C00) == 0xA5

    def test_word_is_little_endian(self, memory):
        memory.write_word(0x4400, 0x1234)
        assert memory.read_byte(0x4400) == 0x34
        assert memory.read_byte(0x4401) == 0x12

    def test_word_access_ignores_bit0(self, memory):
        memory.write_word(0x4401, 0xAAAA)
        assert memory.read_word(0x4400) == 0xAAAA

    def test_hole_read_raises(self, memory):
        with pytest.raises(MemoryAccessError):
            memory.read_word(0x3000)

    def test_hole_write_raises(self, memory):
        with pytest.raises(MemoryAccessError):
            memory.write_word(0x1B00, 1)

    def test_bsl_is_read_only(self, memory):
        with pytest.raises(MemoryAccessError):
            memory.write_word(0x1000, 1)

    def test_peripherals_not_executable(self, memory):
        with pytest.raises(MemoryAccessError):
            memory.fetch_word(0x0200)

    def test_fram_executable(self, memory):
        memory.load(0x4400, b"\x34\x12")
        assert memory.fetch_word(0x4400) == 0x1234


class TestSupervisorAccess:
    def test_supervisor_bypasses_region_checks(self, memory):
        with memory.supervisor():
            memory.write_word(0x1000, 0x5555)   # BSL is normally RO
        assert memory.dump(0x1000, 2) == b"\x55\x55"

    def test_load_and_dump_bypass(self, memory):
        memory.load(0x1B00, b"\x01\x02")        # hole
        assert memory.dump(0x1B00, 2) == b"\x01\x02"

    def test_load_past_end_raises(self, memory):
        with pytest.raises(MemoryAccessError):
            memory.load(0xFFFF, b"\x00\x01")


class TestIoPorts:
    def test_io_write_intercepted(self, memory):
        seen = []
        memory.add_io(0x0200, write=lambda a, v: seen.append((a, v)))
        memory.write_word(0x0200, 0x77)
        assert seen == [(0x0200, 0x77)]
        # backing store untouched
        assert memory.dump(0x0200, 2) == b"\x00\x00"

    def test_io_read_intercepted(self, memory):
        memory.add_io(0x0202, read=lambda: 0xCAFE)
        assert memory.read_word(0x0202) == 0xCAFE

    def test_io_byte_read_high_and_low(self, memory):
        memory.add_io(0x0204, read=lambda: 0xABCD)
        assert memory.read_byte(0x0204) == 0xCD
        assert memory.read_byte(0x0205) == 0xAB

    def test_io_must_be_word_aligned(self, memory):
        with pytest.raises(ValueError):
            memory.add_io(0x0201, read=lambda: 0)


class TestObservers:
    def test_observer_sees_accesses(self, memory):
        log = []
        memory.add_observer(lambda a, k, s: log.append((a, k, s)))
        memory.write_word(0x4400, 1)
        memory.read_byte(0x4400)
        assert (0x4400, WRITE, 2) in log
        assert (0x4400, READ, 1) in log

    def test_observer_removal(self, memory):
        log = []
        observer = lambda a, k, s: log.append(a)
        memory.add_observer(observer)
        memory.remove_observer(observer)
        memory.write_word(0x4400, 1)
        assert log == []

    def test_fill(self, memory):
        memory.fill(0x4400, 4, 0xAB)
        assert memory.dump(0x4400, 4) == b"\xab\xab\xab\xab"
