"""Differential fuzzing subsystem: generator, lockstep harness,
shrinker, corpus I/O, campaign driver and CLI."""

import dataclasses

import pytest

from repro.fuzz.engine import run_differential_campaign
from repro.fuzz.generator import (
    CODE_BASE,
    FuzzProgram,
    Item,
    generate_program,
)
from repro.fuzz.harness import FuzzMachine, build_image, run_differential
from repro.fuzz.shrink import load_case, shrink_program, write_case


class TestGenerator:
    def test_deterministic_for_a_seed(self):
        first = generate_program(42)
        second = generate_program(42)
        assert first.body_text() == second.body_text()
        assert first.metadata() == second.metadata()

    def test_distinct_seeds_differ(self):
        assert (generate_program(1).body_text()
                != generate_program(2).body_text())

    def test_every_program_assembles(self):
        for seed in range(30):
            build_image(generate_program(seed))

    def test_programs_end_with_halt_before_subroutines(self):
        program = generate_program(7)
        kinds = [item.kind for item in program.items]
        halt = kinds.index("halt")
        assert all(kind == "sub" for kind in kinds[halt + 1:])
        assert "anchor" in kinds[:halt]


class TestHarness:
    def test_machines_start_identical(self):
        program = generate_program(3)
        image = build_image(program)
        block = FuzzMachine(program, image, step_only=False)
        step = FuzzMachine(program, image, step_only=True)
        assert block.snapshot() == step.snapshot()
        assert block.memory._bytes == step.memory._bytes
        assert block.cpu.regs.pc == CODE_BASE

    def test_clean_seeds_run_clean(self):
        for seed in range(25):
            result = run_differential(generate_program(seed))
            assert result.ok, result.describe()

    def test_budget_backstop_is_deterministic(self):
        spin = FuzzProgram(seed=1, items=[
            Item("anchor", ["spin:"]),
            Item("insn", ["    JMP spin"]),
        ])
        result = run_differential(spin, chunk=16, max_instructions=64)
        assert result.ok
        assert result.outcome == ("budget",)

    def test_identical_faults_compare_equal(self):
        # an unmapped load faults identically in both modes
        crash = FuzzProgram(seed=2, items=[
            Item("insn", ["    MOV &0x2800, R4"]),   # HOLE2
            Item("halt", ["    MOV #1, &0x01F2"]),
        ])
        result = run_differential(crash)
        assert result.ok
        assert result.outcome[0] == "fault"
        assert result.outcome[1] == "BUS_ERROR"


class TestShrink:
    def marker_predicate(self, program):
        """Synthetic failure: the program still contains DADD."""
        return any("DADD" in line for item in program.items
                   for line in item.lines)

    def test_shrinks_to_the_marker(self):
        program = generate_program(0)
        # ensure at least one marker is present
        program.items.insert(3, Item("insn", ["    DADD R4, R5"]))
        minimal = shrink_program(program, self.marker_predicate)
        removable = [item for item in minimal.items if item.removable]
        assert len(removable) == 1
        assert any("DADD" in line for line in removable[0].lines)
        assert self.marker_predicate(minimal)

    def test_keeps_non_removable_items(self):
        program = generate_program(5)
        program.items.insert(0, Item("insn", ["    DADD R4, R5"]))
        minimal = shrink_program(program, self.marker_predicate)
        kinds = {item.kind for item in minimal.items}
        assert "anchor" in kinds and "halt" in kinds

    def test_never_returns_a_non_failing_program(self):
        program = generate_program(9)
        program.items.insert(2, Item("insn", ["    DADD R6, R7"]))
        minimal = shrink_program(program, self.marker_predicate)
        assert self.marker_predicate(minimal)


class TestCorpusIo:
    def test_roundtrip_preserves_behaviour(self, tmp_path):
        program = generate_program(11)
        path = tmp_path / "case.s"
        write_case(program, path, note="roundtrip")
        loaded = load_case(path)
        assert loaded.seed == program.seed
        assert loaded.sp == program.sp
        assert loaded.mem_seed == program.mem_seed
        assert loaded.regs == program.regs
        assert (loaded.mpu_segb1, loaded.mpu_segb2,
                loaded.mpu_sam, loaded.mpu_ctl0) == (
            program.mpu_segb1, program.mpu_segb2,
            program.mpu_sam, program.mpu_ctl0)
        original = run_differential(program)
        replayed = run_differential(loaded)
        assert replayed.outcome == original.outcome
        assert replayed.instructions == original.instructions

    def test_loaded_case_body_matches(self, tmp_path):
        program = generate_program(13)
        path = tmp_path / "case.s"
        write_case(program, path)
        loaded = load_case(path)
        strip = lambda text: [line.strip() for line
                              in text.splitlines() if line.strip()]
        assert strip(loaded.body_text()) == strip(program.body_text())


class TestCampaign:
    def test_small_campaign_is_clean(self):
        stats = run_differential_campaign(seeds=40, corpus=None)
        assert stats.clean, stats.describe()
        assert stats.ok == stats.seeds == 40
        assert stats.instructions > 0

    def test_divergence_is_shrunk_and_archived(self, tmp_path,
                                               monkeypatch):
        """Plant a fake divergence for one seed and watch the campaign
        shrink it and write a corpus case."""
        import repro.fuzz.engine as engine

        real = engine.run_differential
        planted = {"seed": 4}

        def fake(program, **kwargs):
            result = real(program, **kwargs)
            if (program.seed == planted["seed"]
                    and any("DADD" in line for item in program.items
                            for line in item.lines)):
                return dataclasses.replace(result, ok=False)
            return result

        monkeypatch.setattr(engine, "run_differential", fake)
        # make sure seed 4 contains the marker
        real_generate = engine.generate_program

        def generate(seed):
            program = real_generate(seed)
            if seed == planted["seed"]:
                program.items.insert(1,
                                     Item("insn", ["    DADD R4, R5"]))
            return program

        monkeypatch.setattr(engine, "generate_program", generate)
        stats = engine.run_differential_campaign(
            seeds=6, corpus=tmp_path)
        assert len(stats.divergences) == 1
        assert len(stats.cases_written) == 1
        case = stats.cases_written[0]
        assert case.exists()
        minimal = load_case(case)
        removable = [item for item in minimal.items if item.removable]
        assert len(removable) <= 2      # shrunk down to the marker


class TestCli:
    def test_fuzz_diff_only(self, capsys):
        from repro.cli import main
        code = main(["fuzz", "--seeds", "5", "--diff-only",
                     "--no-corpus"])
        assert code == 0
        out = capsys.readouterr().out
        assert "5 seeds: 5 ok, 0 divergences" in out

    def test_fuzz_replay_single_case(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "case.s"
        write_case(generate_program(17), path)
        assert main(["fuzz", "--replay", str(path)]) == 0
        assert "OK" in capsys.readouterr().out
