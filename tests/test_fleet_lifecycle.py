"""Resume-state hygiene: the out_dir file lifecycle across kill points.

Every worker commit follows the same order — flush checkpoints, append
the record line, unlink the checkpoint — so each kill point leaves a
characteristic residue.  These tests inject a crash at each point,
assert the exact residue, and pin that the resume (a) converges on the
byte-identical summary and (b) leaves ``shards/`` empty: no stale
checkpoints (a record always outranks one), no ``*.tmp`` litter, no
unit streams once the merge committed.
"""

import json

import pytest

from repro.errors import ReproError
from repro.fleet.executor import FleetConfig, run_campaign

_CAMPAIGN = dict(devices=4, hours=0.003, models=("mpu",), seed=11,
                 checkpoint_minutes=0.05, rogue_fraction=0.5)


def _reference(tmp_path):
    out = tmp_path / "reference"
    run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=1)
    return (out / "summary.json").read_bytes()


def _crashed(tmp_path, name, **crash):
    config = FleetConfig(**_CAMPAIGN)
    out = tmp_path / name
    with pytest.raises(ReproError, match="re-run the same"):
        run_campaign(config, out, jobs=2, **crash)
    return config, out


def _assert_clean(out):
    shards = out / "shards"
    assert not list(shards.glob("*.ckpt"))
    assert not list(shards.glob("*.jsonl"))
    assert not list(out.glob("**/*.tmp*"))
    assert (out / "devices-mpu.jsonl").exists()


class TestConfigValidation:
    @pytest.mark.parametrize("hours", [0, -1, -0.5])
    def test_rejects_nonpositive_hours(self, hours):
        with pytest.raises(ReproError, match="hours must be positive"):
            FleetConfig(**{**_CAMPAIGN, "hours": hours})

    @pytest.mark.parametrize("fraction", [-0.1, 1.5])
    def test_rejects_rogue_fraction_outside_unit_interval(
            self, fraction):
        with pytest.raises(ReproError, match="rogue_fraction"):
            FleetConfig(**{**_CAMPAIGN, "rogue_fraction": fraction})

    @pytest.mark.parametrize("fraction", [0.0, 1.0])
    def test_accepts_boundary_rogue_fractions(self, fraction):
        config = FleetConfig(**{**_CAMPAIGN,
                                "rogue_fraction": fraction})
        assert config.rogue_fraction == fraction

    @pytest.mark.parametrize("minutes", [0, -10.0])
    def test_rejects_nonpositive_checkpoint_cadence(self, minutes):
        # checkpoint_minutes <= 0 used to slip through __post_init__
        # and surface later as a confusing max(1, ...) cadence of one
        # simulated millisecond — it must fail loudly at construction
        with pytest.raises(ReproError,
                           match="checkpoint_minutes must be "
                                 "positive"):
            FleetConfig(**{**_CAMPAIGN,
                           "checkpoint_minutes": minutes})


class TestKillPointMatrix:
    def test_kill_mid_checkpoint_write(self, tmp_path):
        # died between the temp write and its rename: a .ckpt.tmp<pid>
        # is stranded (nothing will ever reuse the name)
        reference = _reference(tmp_path)
        config, out = _crashed(tmp_path, "midwrite",
                               crash_before_replace=2)
        assert list((out / "shards").glob("*.ckpt.tmp*"))

        run_campaign(config, out, jobs=2)
        assert (out / "summary.json").read_bytes() == reference
        _assert_clean(out)

    def test_kill_after_checkpoint_commit(self, tmp_path):
        # died right after renaming a checkpoint into place: the
        # device is mid-flight with a complete .ckpt and no record
        reference = _reference(tmp_path)
        config, out = _crashed(tmp_path, "committed",
                               crash_after_checkpoints=2)
        assert list((out / "shards").glob("*.ckpt"))

        run_campaign(config, out, jobs=2)
        assert (out / "summary.json").read_bytes() == reference
        _assert_clean(out)

    def test_kill_after_record_before_unlink(self, tmp_path):
        # died between flushing a device's record line and unlinking
        # its checkpoint: the device is complete, yet its .ckpt
        # survives — the stale-checkpoint leak.  The record must win
        # on resume and the orphan must be gone afterwards.
        reference = _reference(tmp_path)
        config, out = _crashed(tmp_path, "leak",
                               crash_after_records=1)
        shards = out / "shards"
        recorded = set()
        for stream in shards.glob("*-u*.jsonl"):
            for line in stream.read_text().splitlines():
                recorded.add(json.loads(line)["device"])
        leaked = {int(path.stem.rsplit("dev", 1)[1])
                  for path in shards.glob("*-dev*.ckpt")}
        assert recorded, "crash hook fired after a record commit"
        assert recorded & leaked, \
            "completed device should have left its checkpoint behind"

        run_campaign(config, out, jobs=2)
        assert (out / "summary.json").read_bytes() == reference
        _assert_clean(out)


class TestOutDirHygiene:
    def test_stale_tmp_files_swept_on_resume(self, tmp_path):
        config, out = _crashed(tmp_path, "litter",
                               crash_after_checkpoints=2)
        # plant litter the sweep must remove: a coordinator-level
        # atomic write and a checkpoint write, both from a dead pid
        (out / "summary.json.tmp99999").write_text("torn")
        (out / "shards" / "mpu-dev00000.ckpt.tmp99999").write_text(
            "torn")

        lines = []
        run_campaign(config, out, jobs=2, report=lines.append)
        assert any("swept" in line for line in lines)
        assert not list(out.glob("**/*.tmp*"))

    def test_unit_streams_removed_after_merge(self, tmp_path):
        out = tmp_path / "streams"
        run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=2)
        _assert_clean(out)

    def test_completed_model_resume_finishes_cleanup(self, tmp_path):
        # merge committed, then killed before the shard cleanup: the
        # early-continue branch must finish the job
        out = tmp_path / "latecleanup"
        run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=1)
        stale = out / "shards" / "mpu-u00000.jsonl"
        stale.write_text((out / "devices-mpu.jsonl")
                         .read_text().splitlines()[0] + "\n")
        run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=1)
        assert not stale.exists()


class TestCoordinatorProfile:
    def test_profile_reports_resumed_models(self, tmp_path):
        # a model satisfied from its merged file used to vanish from
        # coordinator.json entirely; it must now carry explicit status
        out = tmp_path / "profiled"
        run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=1)
        profile_dir = out / "profiles"
        run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=1,
                     profile_dir=profile_dir)
        profile = json.loads(
            (profile_dir / "coordinator.json").read_text())
        assert profile["models"]["mpu"] == {
            "resumed": True,
            "units_run": 0,
            "devices_resumed": _CAMPAIGN["devices"],
        }

    def test_profile_reports_fresh_models(self, tmp_path):
        out = tmp_path / "fresh"
        run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=1,
                     profile_dir=out / "profiles")
        model = json.loads(
            (out / "profiles" / "coordinator.json").read_text()
        )["models"]["mpu"]
        assert model["resumed"] is False
        assert model["devices_resumed"] == 0
        assert model["units_run"] == len(model["units"])
        assert model["units_run"] > 0
