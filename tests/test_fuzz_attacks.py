"""Attack engine: every adversarial template versus every model.

The matrix is the machine-checkable form of the paper's security
evaluation — isolation-enabled models contain each attack with the
expected fault origin (and an intact victim), No-Isolation
demonstrably fails.
"""

import pytest

from repro.aft import IsolationModel
from repro.fuzz.attacks import (
    ATTACK_TEMPLATES,
    AttackTemplate,
    run_attack,
    run_attack_matrix,
)
from repro.kernel.fault import FaultOrigin


@pytest.fixture(scope="module")
def matrix():
    return {(o.template, o.model): o for o in run_attack_matrix()}


def all_cells():
    cells = []
    for template in ATTACK_TEMPLATES:
        for model in template.models():
            cells.append((template.name, model))
        cells.append((template.name, IsolationModel.NO_ISOLATION))
    return cells


@pytest.mark.parametrize("name,model", all_cells(),
                         ids=lambda v: getattr(v, "name", v))
def test_matrix_cell(matrix, name, model):
    outcome = matrix[(name, model)]
    assert outcome.ok, outcome.describe()


def test_matrix_covers_the_issue_templates():
    names = {t.name for t in ATTACK_TEMPLATES}
    assert {"wild-store-os-sram", "wild-load-os-fram",
            "wild-store-neighbor", "fnptr-hijack-os",
            "retaddr-corruption", "stack-overflow",
            "mpu-reconfig"} <= names


def test_every_template_runs_under_every_isolating_model(matrix):
    """Templates may exclude a model only for a documented honest
    limitation (the Advanced-MPU ablation's coarse execute region)."""
    for template in ATTACK_TEMPLATES:
        models = set(template.models())
        assert IsolationModel.SOFTWARE_ONLY in models
        assert IsolationModel.MPU in models
        if IsolationModel.ADVANCED_MPU not in models:
            assert template.name in ("fnptr-hijack-os",
                                     "retaddr-corruption")


def test_contained_cells_report_an_isolation_origin(matrix):
    for (name, model), outcome in matrix.items():
        if model is IsolationModel.NO_ISOLATION:
            continue
        assert outcome.origin in (FaultOrigin.SOFTWARE_CHECK,
                                  FaultOrigin.MPU), outcome.describe()


def test_neighbor_store_origin_shifts_with_the_model(matrix):
    """The same attack, different mechanism: the software model's
    compiler check versus the MPU models' hardware segment 3."""
    sw = matrix[("wild-store-neighbor", IsolationModel.SOFTWARE_ONLY)]
    hw = matrix[("wild-store-neighbor", IsolationModel.MPU)]
    assert sw.origin is FaultOrigin.SOFTWARE_CHECK
    assert hw.origin is FaultOrigin.MPU


def test_single_cell_entry_point():
    template = next(t for t in ATTACK_TEMPLATES
                    if t.name == "wild-store-os-sram")
    outcome = run_attack(template, IsolationModel.SOFTWARE_ONLY)
    assert outcome.ok
    assert outcome.origin is FaultOrigin.SOFTWARE_CHECK
