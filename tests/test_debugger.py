"""Debugger: breakpoints, tracing, watchpoints, call stacks."""

import pytest

from repro.cc.codegen import compile_unit
from repro.cc.execution import BareMachine
from repro.msp430.debug import Debugger

SOURCE = """
int hits = 0;

int inner(int v) {
    hits = hits + v;
    return hits;
}

int middle(int v) {
    return inner(v) + inner(v);
}

int main(void) {
    return middle(3) + middle(4);
}
"""


@pytest.fixture
def setup():
    unit = compile_unit(SOURCE)
    machine = BareMachine(unit)
    image = machine._link_for("main")
    from repro.msp430.cpu import Cpu
    cpu = Cpu()
    image.load_into(cpu.memory)
    from repro.ports import DONE_PORT
    cpu.memory.add_io(DONE_PORT, write=lambda a, v: cpu.halt())
    cpu.regs.pc = image.symbol("__start")
    cpu.regs.sp = 0x2400
    debugger = Debugger(cpu)
    return cpu, image, debugger


class TestBreakpoints:
    def test_stops_at_breakpoint(self, setup):
        cpu, image, debugger = setup
        target = image.symbol("inner")
        debugger.add_breakpoint(target)
        hit = debugger.run()
        assert hit == target
        assert cpu.regs.pc == target

    def test_resume_hits_again(self, setup):
        cpu, image, debugger = setup
        target = image.symbol("inner")
        debugger.add_breakpoint(target)
        hits = 0
        while debugger.run() == target:
            hits += 1
        assert hits == 4        # inner called twice per middle call

    def test_remove_breakpoint(self, setup):
        cpu, image, debugger = setup
        target = image.symbol("inner")
        debugger.add_breakpoint(target)
        debugger.run()
        debugger.remove_breakpoint(target)
        assert debugger.run() is None     # runs to completion
        # main = middle(3) + middle(4) with accumulating hits:
        # 3,6 then 10,14 -> middle values 9 and 24 -> 33
        assert cpu.regs.read(12) == 33

    def test_run_to_completion_returns_result(self, setup):
        cpu, _image, debugger = setup
        assert debugger.run() is None
        # main = middle(3) + middle(4); hits accumulates 3,3,4,4
        assert cpu.regs.read(12) == (3 + 6) + (10 + 14)


class TestTracing:
    def test_trace_records_recent_instructions(self, setup):
        _cpu, image, debugger = setup
        debugger.add_breakpoint(image.symbol("inner"))
        debugger.run()
        text = debugger.trace_text()
        # break-before semantics: the last traced instruction is the
        # CALL into the breakpoint target
        assert f"CALL #{image.symbol('inner')}" in \
            text.splitlines()[-1]

    def test_trace_depth_bounded(self, setup):
        _cpu, _image, debugger = setup
        debugger.run()
        assert len(debugger.trace) <= 64


class TestCallStack:
    def test_backtrace_inside_inner(self, setup):
        cpu, image, debugger = setup
        debugger.add_breakpoint(image.symbol("inner"))
        debugger.run()
        assert len(debugger.call_stack) == 3   # start->main->middle->inner
        text = debugger.backtrace_text(image.symbols)
        assert "inner" in text
        assert "middle" in text.replace("+0x", "")  # symbolized frames

    def test_stack_unwinds_after_return(self, setup):
        cpu, image, debugger = setup
        debugger.add_breakpoint(image.symbol("inner"))
        debugger.run()
        depth_inside = len(debugger.call_stack)
        debugger.remove_breakpoint(image.symbol("inner"))
        debugger.run()
        assert len(debugger.call_stack) < depth_inside

    def test_step_over_call(self, setup):
        cpu, image, debugger = setup
        debugger.add_breakpoint(image.symbol("middle"))
        debugger.run()
        depth = len(debugger.call_stack)
        # step through middle's body; step_over must not descend
        for _ in range(40):
            debugger.step_over()
            assert len(debugger.call_stack) <= depth
            if len(debugger.call_stack) < depth:
                break


class TestWatchpoints:
    def test_watchpoint_records_writes(self, setup):
        cpu, image, debugger = setup
        hits_address = image.symbol("hits")
        debugger.add_watchpoint(hits_address)
        debugger.run()
        assert len(debugger.watch_hits) == 4
        assert all(h.address == hits_address
                   for h in debugger.watch_hits)
        cycles = [h.cycle for h in debugger.watch_hits]
        assert cycles == sorted(cycles)

    def test_detach_stops_observing(self, setup):
        cpu, image, debugger = setup
        debugger.add_watchpoint(image.symbol("hits"))
        debugger.detach()
        cpu.halted = False
        cpu.run(max_cycles=100_000)
        assert debugger.watch_hits == []


class TestMidRunAttach:
    """Attaching a Debugger mid-run installs a trace hook, which must
    disable superblock dispatch from that point on — the trace and
    watch hits must be bit-identical to a run that never used blocks."""

    def _fresh(self, block_mode):
        unit = compile_unit(SOURCE)
        machine = BareMachine(unit)
        image = machine._link_for("main")
        from repro.msp430.cpu import Cpu
        cpu = Cpu()
        cpu.block_mode = block_mode
        image.load_into(cpu.memory)
        from repro.ports import DONE_PORT
        cpu.memory.add_io(DONE_PORT, write=lambda a, v: cpu.halt())
        cpu.regs.pc = image.symbol("__start")
        cpu.regs.sp = 0x2400
        return cpu, image

    def _scenario(self, block_mode):
        from repro.msp430.cpu import ExecutionLimitExceeded
        cpu, image = self._fresh(block_mode)
        # phase 1: run undebugged — superblocks engage in block mode
        try:
            cpu.run(max_instructions=20)
        except ExecutionLimitExceeded:
            pass
        mid_state = (tuple(cpu.regs._regs), cpu.cycles,
                     cpu.instructions)
        # phase 2: attach a debugger with a watchpoint and finish
        debugger = Debugger(cpu)
        debugger.add_watchpoint(image.symbol("hits"))
        assert debugger.run() is None     # runs to completion
        return (mid_state, list(debugger.trace),
                list(debugger.watch_hits), tuple(cpu.regs._regs),
                cpu.cycles, cpu.instructions)

    def test_block_and_step_modes_identical(self):
        blocked = self._scenario(block_mode=True)
        stepped = self._scenario(block_mode=False)
        assert blocked == stepped
        _mid, trace, watch_hits, regs, _cycles, _insns = blocked
        assert trace                      # hook really observed insns
        assert len(watch_hits) == 4       # inner() stores, none missed
        assert regs[12] == 33             # main's return value
