"""Error hierarchy and shared port constants."""

import pytest

from repro import errors
from repro import ports


class TestErrorHierarchy:
    def test_all_are_repro_errors(self):
        for name in ("MemoryAccessError", "MpuViolationError",
                     "DecodeError", "EncodingError", "AssemblerError",
                     "LinkError", "CompileError", "RestrictionError",
                     "InterpreterError", "ToolchainError",
                     "KernelError", "AppFault"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_restriction_is_compile_error(self):
        assert issubclass(errors.RestrictionError, errors.CompileError)

    def test_memory_access_error_message(self):
        error = errors.MemoryAccessError(0x1B00, "write", "no memory")
        assert "0x1B00" in str(error)
        assert "no memory" in str(error)
        assert error.address == 0x1B00

    def test_mpu_violation_carries_context(self):
        error = errors.MpuViolationError(0x9000, "read", 3)
        assert error.segment == 3
        assert "segment 3" in str(error)

    def test_compile_error_position_format(self):
        error = errors.CompileError("boom", 12, 5, "app.mc")
        assert str(error) == "app.mc:12:5: boom"

    def test_compile_error_without_position(self):
        assert str(errors.CompileError("boom")) == "boom"

    def test_assembler_error_position(self):
        error = errors.AssemblerError("bad", 7, "x.s")
        assert str(error) == "x.s:7: bad"

    def test_app_fault_message(self):
        fault = errors.AppFault("pedometer", "stray pointer",
                                address=0x2000, pc=0x7100)
        assert "pedometer" in str(fault)
        assert "0x2000" in str(fault)


class TestPorts:
    def test_ports_word_aligned_and_distinct(self):
        values = [ports.SVC_PORT, ports.DONE_PORT, ports.FAULT_PORT,
                  ports.COUNT_PORT]
        assert len(set(values)) == len(values)
        assert all(v % 2 == 0 for v in values)

    def test_ports_live_in_peripheral_space(self):
        from repro.msp430.memory import MemoryMap
        for value in (ports.SVC_PORT, ports.DONE_PORT,
                      ports.FAULT_PORT, ports.COUNT_PORT):
            assert MemoryMap.PERIPH_START <= value \
                <= MemoryMap.PERIPH_END

    def test_ports_clear_of_mpu_registers(self):
        from repro.msp430 import mpu
        mpu_regs = {mpu.MPUCTL0, mpu.MPUCTL1, mpu.MPUSEGB1,
                    mpu.MPUSEGB2, mpu.MPUSAM}
        kernel_ports = {ports.SVC_PORT, ports.DONE_PORT,
                        ports.FAULT_PORT, ports.COUNT_PORT}
        assert not (mpu_regs & kernel_ports)

    def test_count_codes_distinct(self):
        codes = {ports.COUNT_DATA_ACCESS, ports.COUNT_FN_POINTER,
                 ports.COUNT_RETURN}
        assert len(codes) == 3


class TestPublicApi:
    def test_top_level_exports(self):
        import repro
        assert repro.__version__
        from repro import AftPipeline, AppSource, IsolationModel
        assert IsolationModel.MPU.display == "MPU"

    def test_model_display_names(self):
        from repro import IsolationModel
        names = {m.display for m in IsolationModel}
        assert "No Isolation" in names
        assert "Feature Limited" in names
