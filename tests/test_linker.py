"""Linker: placement, symbol resolution, relocation application."""

import pytest

from repro.errors import LinkError
from repro.asm.assembler import assemble
from repro.asm.linker import Image, Linker, LinkScript, MemoryRegion, \
    link


def script():
    s = LinkScript()
    s.region("low", 0x4400, 0x6FFF)
    s.region("high", 0x7000, 0xFF7F)
    s.place_rule(".app.*", "high")
    s.place_rule("*", "low")
    return s


class TestMemoryRegion:
    def test_bump_allocation(self):
        region = MemoryRegion("r", 0x4400, 0x44FF)
        assert region.allocate(16) == 0x4400
        assert region.allocate(16) == 0x4410
        assert region.used == 32

    def test_alignment(self):
        region = MemoryRegion("r", 0x4402, 0x44FF)
        assert region.allocate(4, align=16) == 0x4410

    def test_overflow_raises(self):
        region = MemoryRegion("r", 0x4400, 0x4407)
        with pytest.raises(LinkError):
            region.allocate(16)


class TestPlacement:
    def test_rules_route_sections(self):
        obj = assemble(".text\nNOP\n.section .app.foo.text\nNOP")
        linker = Linker(script()).place([obj])
        assert obj.sections[".text"].address == 0x4400
        assert obj.sections[".app.foo.text"].address == 0x7000

    def test_no_rule_raises(self):
        s = LinkScript()
        s.region("low", 0x4400, 0x6FFF)
        s.place_rule(".text", "low")
        obj = assemble(".section .weird\n.word 1")
        with pytest.raises(LinkError):
            Linker(s).place([obj])

    def test_section_alignment_respected(self):
        obj1 = assemble(".text\nNOP")          # 2 bytes at 0x4400
        obj2 = assemble(".text\nNOP")
        obj2.sections[".text"].align = 16
        Linker(script()).place([obj1, obj2])
        assert obj2.sections[".text"].address == 0x4410


class TestSymbolResolution:
    def test_cross_object_global(self):
        a = assemble(".global shared\nshared: NOP", "a")
        b = assemble("CALL #shared", "b")
        image = link([a, b], script())
        assert image.symbol("shared") == 0x4400

    def test_local_symbols_do_not_collide(self):
        a = assemble("local: NOP\nJMP local", "a")
        b = assemble("local: NOP\nNOP\nJMP local", "b")
        image = link([a, b], script())    # no duplicate error
        assert image.total_size() == 10

    def test_duplicate_globals_raise(self):
        a = assemble(".global x\nx: NOP", "a")
        b = assemble(".global x\nx: NOP", "b")
        with pytest.raises(LinkError):
            link([a, b], script())

    def test_undefined_symbol_raises(self):
        obj = assemble("CALL #missing")
        with pytest.raises(LinkError):
            link([obj], script())

    def test_extra_symbols_provided_by_caller(self):
        obj = assemble("MOV #__bound, R5")
        image = link([obj], script(), {"__bound": 0x8000})
        # extension word patched with the absolute value
        assert image.segments[0][1][2:4] == b"\x00\x80"

    def test_local_beats_global(self):
        a = assemble(".global name\nname: NOP", "a")
        b = assemble("NOP\nname: NOP\nJMP name", "b")
        image = link([a, b], script())
        # b's jump resolves to its own 'name' (no range error and the
        # offset encodes backwards by one word)
        assert image.symbols["name"] == 0x4400


class TestRelocationApplication:
    def test_abs16(self):
        a = assemble(".global var\n.data\nvar: .word 7", "a")
        b = assemble("MOV &var, R5", "b")
        image = link([b, a], script())
        var_address = image.symbol("var")
        blob = dict(image.segments)
        code = [seg for addr, seg in image.segments if addr == 0x4400][0]
        assert code[2] | (code[3] << 8) == var_address

    def test_jump10_forward_and_back(self):
        obj = assemble("""
start:  JMP fwd
        NOP
fwd:    JMP start
""")
        image = link([obj], script())
        code = image.segments[0][1]
        w0 = code[0] | (code[1] << 8)
        w2 = code[4] | (code[5] << 8)
        assert w0 & 0x3FF == 1            # skip one word forward
        assert w2 & 0x3FF == (-3) & 0x3FF  # back three words

    def test_jump10_out_of_range(self):
        obj = assemble("JMP far\n.space 2048\nfar: NOP")
        with pytest.raises(LinkError):
            link([obj], script())

    def test_pcrel16_symbolic(self):
        obj = assemble("MOV data, R5\ndata: .word 0xAAAA")
        image = link([obj], script())
        code = image.segments[0][1]
        ext = code[2] | (code[3] << 8)
        # value + P = target: P = 0x4402, target = 0x4404
        assert (ext + 0x4402) & 0xFFFF == 0x4404

    def test_image_loads_into_memory(self):
        from repro.msp430.memory import Memory
        obj = assemble(".data\n.word 0x1234")
        image = link([obj], script())
        memory = Memory()
        image.load_into(memory)
        address = image.segments[0][0]
        assert memory.read_word(address) == 0x1234


class TestImageQueries:
    def test_section_bounds(self):
        obj = assemble(".section .app.x.text\nNOP\nNOP\n"
                       ".section .app.x.data\n.word 1")
        image = link([obj], script())
        lo, hi = image.section_bounds(lambda n: n.startswith(".app.x."))
        assert lo == 0x7000
        assert hi == 0x7006

    def test_missing_symbol_raises(self):
        obj = assemble("NOP")
        image = link([obj], script())
        with pytest.raises(LinkError):
            image.symbol("ghost")
        assert not image.has_symbol("ghost")
