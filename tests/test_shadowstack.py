"""Shadow return-address stack (paper section 5 / footnote 3).

The bounds-based return check (MPU model) only verifies the return
address lies *within the app's code* — a stack smash that redirects a
return to a different function of the same app slips through (a
ROP-style, in-region hijack).  The shadow stack requires an exact
match, so it catches that too.  These tests demonstrate both halves.
"""

import pytest

from repro.aft import AftPipeline, AppSource, IsolationModel
from repro.aft.shadowstack import (
    SHADOW_BASE,
    SHADOW_SP_ADDRESS,
    initialize_shadow_stack,
)
from repro.kernel.fault import FaultOrigin
from repro.kernel.machine import AmuletMachine

WELL_BEHAVED = """
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int on_run(int n) { return fib(n); }
"""

# smash_me overwrites its own on-stack return address with the address
# of gadget() — which lies inside the app's code region, so the plain
# lower-bound return check cannot object.
HIJACK = """
int hijacked = 0;

void gadget(void) {
    hijacked = 1;
    while (1) { }
}

int smash_me(int target) {
    int local = 0;
    int *p = &local;
    p[3] = target;        /* local at -4(R4) (param homed at -2);
                             return address lives at +2(R4) */
    return local;
}

int on_attack(int unused) {
    int (*g)(void) = gadget;
    return smash_me((int)g);
}
"""


def build(model, source, handlers, shadow):
    firmware = AftPipeline(model, shadow_stack=shadow).build(
        [AppSource("probe", source, handlers)])
    return firmware, AmuletMachine(firmware)


class TestFunctionalTransparency:
    @pytest.mark.parametrize("model", (IsolationModel.MPU,
                                       IsolationModel.SOFTWARE_ONLY,
                                       IsolationModel.NO_ISOLATION))
    def test_recursion_still_correct(self, model):
        _fw, machine = build(model, WELL_BEHAVED, ["on_run"],
                             shadow=True)
        result = machine.dispatch("probe", "on_run", [10])
        assert not result.faulted
        assert result.return_value == 55

    def test_shadow_pointer_balanced_after_dispatch(self):
        _fw, machine = build(IsolationModel.MPU, WELL_BEHAVED,
                             ["on_run"], shadow=True)
        machine.dispatch("probe", "on_run", [8])
        memory = machine.cpu.memory
        assert memory.dump(SHADOW_SP_ADDRESS, 2) == \
            bytes([SHADOW_BASE & 0xFF, SHADOW_BASE >> 8])

    def test_repeated_dispatches_stay_balanced(self):
        _fw, machine = build(IsolationModel.MPU, WELL_BEHAVED,
                             ["on_run"], shadow=True)
        for n in (3, 7, 11):
            result = machine.dispatch("probe", "on_run", [n])
            assert not result.faulted

    def test_shadow_costs_cycles(self):
        _fw, plain = build(IsolationModel.MPU, WELL_BEHAVED,
                           ["on_run"], shadow=False)
        _fw2, shadowed = build(IsolationModel.MPU, WELL_BEHAVED,
                               ["on_run"], shadow=True)
        base = plain.dispatch("probe", "on_run", [10]).cycles
        hardened = shadowed.dispatch("probe", "on_run", [10]).cycles
        assert hardened > base


class TestHijackDefense:
    def _hijack_flag(self, machine):
        address = machine.firmware.symbol("app_probe_hijacked")
        blob = machine.cpu.memory.dump(address, 2)
        return blob[0] | (blob[1] << 8)

    def test_in_region_hijack_succeeds_without_shadow(self):
        """The bounds check alone misses the in-region redirect: the
        gadget runs (then the app is reaped as a runaway)."""
        _fw, machine = build(IsolationModel.MPU, HIJACK,
                             ["on_attack"], shadow=False)
        result = machine.dispatch("probe", "on_attack", [0],
                                  max_cycles=50_000)
        assert self._hijack_flag(machine) == 1      # gadget executed!
        assert result.faulted                        # only as a runaway
        assert result.fault.origin is FaultOrigin.RUNAWAY

    def test_shadow_stack_stops_the_hijack(self):
        _fw, machine = build(IsolationModel.MPU, HIJACK,
                             ["on_attack"], shadow=True)
        result = machine.dispatch("probe", "on_attack", [0],
                                  max_cycles=50_000)
        assert result.faulted
        assert result.fault.origin is FaultOrigin.SOFTWARE_CHECK
        assert self._hijack_flag(machine) == 0      # never ran

    def test_out_of_region_return_still_blocked_without_shadow(self):
        """Sanity: the plain bounds check does stop *out-of-region*
        return targets."""
        source = HIJACK.replace("return smash_me((int)g);",
                                "return smash_me(0x4400);")
        _fw, machine = build(IsolationModel.MPU, source,
                             ["on_attack"], shadow=False)
        result = machine.dispatch("probe", "on_attack", [0],
                                  max_cycles=50_000)
        assert result.faulted
        assert self._hijack_flag(machine) == 0

    def test_fault_recovery_resets_shadow(self):
        firmware, machine = build(IsolationModel.MPU, HIJACK,
                                  ["on_attack"], shadow=True)
        machine.dispatch("probe", "on_attack", [0], max_cycles=50_000)
        memory = machine.cpu.memory
        assert memory.dump(SHADOW_SP_ADDRESS, 2) == \
            bytes([SHADOW_BASE & 0xFF, SHADOW_BASE >> 8])


class TestMpuInteraction:
    def test_infomem_writable_only_with_shadow(self):
        fw_plain, _m = build(IsolationModel.MPU, WELL_BEHAVED,
                             ["on_run"], shadow=False)
        fw_shadow, _m2 = build(IsolationModel.MPU, WELL_BEHAVED,
                               ["on_run"], shadow=True)
        assert fw_plain.apps["probe"].mpu_config.info.render() == "---"
        assert fw_shadow.apps["probe"].mpu_config.info.render() == \
            "RW-"

    def test_app_pointer_into_infomem_still_blocked(self):
        """Only the inserted prologue/epilogue may touch InfoMem; an
        app-held pointer to it is below D_i and faults."""
        source = """
        int on_attack(int x) {
            int *p = (int *)0x1802;
            *p = 0xBAD;               /* forge a shadow entry? no. */
            return 0;
        }
        """
        _fw, machine = build(IsolationModel.MPU, source,
                             ["on_attack"], shadow=True)
        assert machine.dispatch("probe", "on_attack", [0]).faulted

    def test_initialize_helper(self):
        from repro.msp430.memory import Memory
        memory = Memory()
        initialize_shadow_stack(memory)
        assert memory.read_word(SHADOW_SP_ADDRESS) == SHADOW_BASE
