"""The application suite: every app builds under every applicable
model and behaves sensibly when driven with events."""

import pytest

from repro.aft import AftPipeline, AppSource, IsolationModel
from repro.apps import (
    BENCHMARK_NAMES,
    MANIFESTS,
    SUITE_NAMES,
    app_source,
    load_benchmarks,
    load_suite,
)
from repro.kernel.events import EventType, PeriodicSource
from repro.kernel.machine import AmuletMachine
from repro.kernel.scheduler import AppSchedule, Scheduler

ALL_MODELS = (IsolationModel.NO_ISOLATION,
              IsolationModel.FEATURE_LIMITED,
              IsolationModel.SOFTWARE_ONLY,
              IsolationModel.MPU,
              IsolationModel.ADVANCED_MPU)


class TestCatalog:
    def test_suite_has_nine_apps(self):
        assert len(SUITE_NAMES) == 9
        assert set(SUITE_NAMES) == set(MANIFESTS)

    def test_benchmarks_present(self):
        assert set(BENCHMARK_NAMES) == {"activity", "quicksort",
                                        "synthetic"}

    def test_sources_load(self):
        for name in SUITE_NAMES + BENCHMARK_NAMES:
            assert len(app_source(name)) > 100

    def test_unknown_app_raises(self):
        with pytest.raises(FileNotFoundError):
            app_source("ghost")


@pytest.mark.parametrize("model", ALL_MODELS)
class TestSuiteBuilds:
    def test_full_suite_builds(self, model):
        firmware = AftPipeline(model).build(load_suite())
        assert len(firmware.apps) == 9

    def test_benchmarks_build(self, model):
        firmware = AftPipeline(model).build(load_benchmarks())
        assert len(firmware.apps) == 3


def machine_for(names, model=IsolationModel.MPU):
    firmware = AftPipeline(model).build(load_suite(names))
    return AmuletMachine(firmware)


class TestAppBehaviour:
    def test_clock_rolls_minutes(self):
        machine = machine_for(["clock"])
        for second in range(61):
            machine.dispatch("clock", "on_second", [second])
        assert machine.services.display.last_digits == 1   # 00:01

    def test_pedometer_counts_steps_on_alternating_magnitudes(self):
        machine = machine_for(["pedometer"])
        # alternate high/low magnitude to trigger rising/falling edges
        for i in range(120):
            if (i // 6) % 2 == 0:
                machine.dispatch("pedometer", "on_accel",
                                 [900, 900, 900])
            else:
                machine.dispatch("pedometer", "on_accel", [10, 10, 50])
        machine.dispatch("pedometer", "on_minute", [0])
        steps_shown = machine.services.display.last_digits
        assert steps_shown > 0

    def test_hr_smoothing_and_display(self):
        machine = machine_for(["hr"])
        for _ in range(10):
            machine.dispatch("hr", "on_hr_sample", [80])
        machine.dispatch("hr", "on_display", [0])
        assert machine.services.display.last_digits == 80

    def test_hr_rejects_glitches(self):
        machine = machine_for(["hr"])
        machine.dispatch("hr", "on_hr_sample", [80])
        machine.dispatch("hr", "on_hr_sample", [999])   # glitch
        machine.dispatch("hr", "on_display", [0])
        assert machine.services.display.last_digits == 80

    def test_hrlog_flush_writes_compact_record(self):
        machine = machine_for(["hrlog"])
        for bpm in (70, 80, 90):
            machine.dispatch("hrlog", "on_hr_sample", [bpm])
        machine.dispatch("hrlog", "on_flush", [1])
        assert machine.services.log.words == [80, 70, 90, 3]

    def test_batterymeter_alarm_on_low_battery(self):
        machine = machine_for(["batterymeter"])
        for _ in range(3):
            machine.dispatch("batterymeter", "on_battery", [10])
        assert machine.services.vibrations >= 1
        assert machine.services.log.words

    def test_temperature_logs_out_of_range(self):
        machine = machine_for(["temperature"])
        for _ in range(8):
            machine.dispatch("temperature", "on_temp", [300])  # hot
        assert machine.services.log.words

    def test_sun_daylight_accumulates(self):
        machine = machine_for(["sun"])
        for _ in range(6):
            machine.dispatch("sun", "on_light", [800])
        machine.dispatch("sun", "on_show", [0])
        assert machine.services.display.last_digits == 0   # <1 minute
        for _ in range(20):
            machine.dispatch("sun", "on_light", [800])
        machine.dispatch("sun", "on_show", [0])
        assert machine.services.display.last_digits >= 2

    def test_rest_nudges_after_still_period(self):
        machine = machine_for(["rest"])
        for minute in range(46):
            machine.dispatch("rest", "on_minute", [minute])
        assert machine.services.vibrations >= 1

    def test_falldetection_flags_impact_then_stillness(self):
        machine = machine_for(["falldetection"])
        for _ in range(32):                       # baseline
            machine.dispatch("falldetection", "on_accel",
                             [10, 10, 1000])
        machine.dispatch("falldetection", "on_accel",
                         [3000, 3000, 3000])      # impact
        for _ in range(30):                       # stillness
            machine.dispatch("falldetection", "on_accel", [5, 5, 300])
        # one more sample triggers the ALERT state transition
        machine.dispatch("falldetection", "on_accel", [5, 5, 300])
        assert machine.services.vibrations >= 1
        assert machine.services.log.words


class TestBenchmarkApps:
    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_quicksort_sorts_under_every_model(self, model):
        firmware = AftPipeline(model).build(
            load_benchmarks(["quicksort"]))
        machine = AmuletMachine(firmware)
        result = machine.dispatch("quicksort", "quicksort_run", [42])
        assert not result.faulted
        assert result.return_value == 1    # verified sorted

    def test_quicksort_results_identical_across_models(self):
        outcomes = set()
        for model in ALL_MODELS:
            firmware = AftPipeline(model).build(
                load_benchmarks(["quicksort"]))
            machine = AmuletMachine(firmware)
            machine.dispatch("quicksort", "quicksort_run", [7])
            data_addr = firmware.symbol("app_quicksort_qs_data")
            outcomes.add(machine.cpu.memory.dump(data_addr, 256))
        assert len(outcomes) == 1

    def test_activity_classifier_is_deterministic(self):
        values = []
        for _ in range(2):
            machine = AmuletMachine(AftPipeline(
                IsolationModel.MPU).build(load_benchmarks(["activity"])))
            machine.dispatch("activity", "act_init", [0])
            r = machine.dispatch("activity", "activity_case2", [55])
            values.append(r.return_value)
        assert values[0] == values[1]
        assert 0 <= values[0] < 4

    def test_synthetic_benchmarks_run(self):
        machine = AmuletMachine(AftPipeline(
            IsolationModel.MPU).build(load_benchmarks(["synthetic"])))
        for handler, arg in (("bench_mem", 32), ("bench_mem_read", 32),
                             ("bench_nop", 32), ("bench_switch", 4),
                             ("bench_empty", 0)):
            result = machine.dispatch("synthetic", handler, [arg])
            assert not result.faulted


class TestWeekSimulationSlice:
    @pytest.mark.parametrize("model",
                             (IsolationModel.FEATURE_LIMITED,
                              IsolationModel.MPU,
                              IsolationModel.SOFTWARE_ONLY))
    def test_suite_runs_one_simulated_second(self, model):
        firmware = AftPipeline(model).build(load_suite())
        machine = AmuletMachine(firmware)
        scheduler = Scheduler(machine)
        for name, manifest in MANIFESTS.items():
            scheduler.add_app(AppSchedule(
                name, sources=manifest.sources_for(name)))
        stats = scheduler.run(horizon_ms=1000)
        assert stats.faults == 0
        assert stats.events_delivered > 50     # 32 Hz fall detection...
        assert set(stats.per_app_events) >= {"falldetection",
                                             "pedometer", "clock"}
