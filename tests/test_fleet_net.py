"""Socket dispatch: wire framing, blob validation, and loopback
campaigns.

The network layer's contract has two halves.  The wire half is
fail-closed framing and hostile-input hardening: torn, oversized,
garbage, or digest-mismatched frames raise :class:`WireError` and are
never acted on; a handshake with a stale campaign key, skewed
versions, or a failed shared-secret challenge is refused; and
payloads that *deserialize* (checkpoints, ``.sbx`` records) are
loaded with a restricted unpickler, so a crafted pickle is rejected
instead of executed.  The campaign half is transport invariance: a
campaign dispatched over sockets — including one that loses a worker
mid-unit, or loses the coordinator itself — produces byte-identical
output to the in-process ``--jobs`` path.
"""

import hashlib
import json
import os
import pickle
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
import zlib
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.fleet.executor import FleetConfig, run_campaign, _ckpt_path
from repro.fleet.net.coordinator import SocketTransport
from repro.fleet.net.protocol import Channel, MAX_FRAME, \
    PROTO_VERSION, WireError, auth_mac, blob_sha, pack_batch, \
    unpack_batch
from repro.fleet.net.worker import FrameBatcher, parse_endpoint, \
    run_worker
from repro.fleet.snapshot import STATE_VERSION, parse_checkpoint
from repro.msp430 import execcache
from repro.safeload import UnsafePayload, safe_loads

REPO = Path(__file__).resolve().parents[1]

#: same small-but-non-trivial campaign the shard tests use: several
#: checkpoint segments per device, rogues present
_CAMPAIGN = dict(devices=4, hours=0.003, models=("mpu",), seed=7,
                 checkpoint_minutes=0.05, rogue_fraction=0.5)


# -- wire framing -----------------------------------------------------------

def _pair():
    left, right = socket.socketpair()
    return Channel(left), Channel(right)


class TestProtocol:
    def test_roundtrip_message_and_blob(self):
        tx, rx = _pair()
        tx.send({"type": "blob", "name": "x"}, blob=b"payload")
        message, blob = rx.recv(timeout=5)
        assert message["type"] == "blob"
        assert blob == b"payload"
        assert message["blob_sha"] == blob_sha(b"payload")
        assert rx.bytes_in == tx.bytes_out > 0

    def test_oversized_length_prefix_rejected(self):
        left, right = socket.socketpair()
        left.sendall(struct.pack(">I", MAX_FRAME + 1))
        with pytest.raises(WireError, match="length"):
            Channel(right).recv(timeout=5)

    def test_garbage_payload_rejected(self):
        left, right = socket.socketpair()
        left.sendall(struct.pack(">I", 4) + b"\xff\xfe\x00\x01")
        with pytest.raises(WireError, match="not valid JSON"):
            Channel(right).recv(timeout=5)

    def test_untyped_message_rejected(self):
        left, right = socket.socketpair()
        payload = json.dumps([1, 2, 3]).encode()
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(WireError, match="typed message"):
            Channel(right).recv(timeout=5)

    def test_torn_frame_rejected(self):
        left, right = socket.socketpair()
        left.sendall(struct.pack(">I", 100) + b"{")
        left.close()
        with pytest.raises(WireError, match="torn"):
            Channel(right).recv(timeout=5)

    def test_blob_digest_mismatch_rejected(self):
        left, right = socket.socketpair()
        message = {"type": "blob", "blob_len": 3,
                   "blob_sha": "0" * 64}
        payload = json.dumps(message).encode()
        left.sendall(struct.pack(">I", len(payload)) + payload
                     + b"abc")
        with pytest.raises(WireError, match="digest mismatch"):
            Channel(right).recv(timeout=5)

    def test_oversized_outgoing_frame_refused(self):
        tx, _rx = _pair()
        with pytest.raises(WireError, match="MAX_FRAME"):
            tx.send({"type": "x", "pad": "a" * MAX_FRAME})

    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:7633") == ("127.0.0.1", 7633)
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="host:port"):
            parse_endpoint("7633")
        with pytest.raises(ReproError, match="integer"):
            parse_endpoint("host:seven")


# -- translation-store transfer validation ----------------------------------

def _sbx_frame(record: dict) -> bytes:
    payload = pickle.dumps(record,
                           protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()[:16]
    return (execcache._MAGIC
            + execcache._HEADER.pack(len(payload), digest) + payload)


class TestStoreTransfer:
    def test_scan_keeps_valid_rejects_torn_tail(self):
        good = _sbx_frame({"pc": 1, "code": "a"})
        torn = _sbx_frame({"pc": 2, "code": "b"})[:-3]
        kept, records, rejected = execcache.scan_frames(good + torn)
        assert (records, rejected) == (1, 1)
        assert kept == good

    def test_scan_rejects_corrupt_payload_digest(self):
        frame = bytearray(_sbx_frame({"pc": 1, "code": "a"}))
        frame[-1] ^= 0xFF
        kept, records, rejected = execcache.scan_frames(bytes(frame))
        assert (kept, records, rejected) == (b"", 0, 1)

    def test_scan_rejects_shapeless_records(self):
        frame = _sbx_frame({"not": "a block record"})
        kept, records, rejected = execcache.scan_frames(frame)
        assert (kept, records, rejected) == (b"", 0, 1)

    def test_import_writes_only_valid_frames(self, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_CACHE_DIR", str(tmp_path))
        name = "0123456789abcdef.sbx"
        good = _sbx_frame({"pc": 1, "code": "a"})
        assert execcache.import_store_file(
            name, good + b"trailing garbage") == 1
        assert (tmp_path / name).read_bytes() == good
        # an existing store is never overwritten by an import
        assert execcache.import_store_file(name, good) == 0

    def test_import_refuses_bad_names_and_empty_scans(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_CACHE_DIR", str(tmp_path))
        good = _sbx_frame({"pc": 1, "code": "a"})
        assert execcache.import_store_file("../evil.sbx", good) == 0
        assert execcache.import_store_file("UPPER.sbx", good) == 0
        assert execcache.import_store_file(
            "0123456789abcdef.sbx", b"pure garbage") == 0
        assert list(tmp_path.glob("*.sbx")) == []


# -- non-executing deserialization ------------------------------------------

class _Exploit:
    """Pickles to a REDUCE of ``os.mkdir(marker)`` — the classic
    ``pickle.loads`` code-execution payload.  Loading it with stock
    pickle creates the marker directory; the restricted loader must
    refuse it with the marker untouched."""

    def __init__(self, marker: str):
        self.marker = marker

    def __reduce__(self):
        return (os.mkdir, (self.marker,))


class TestSafeLoads:
    def test_roundtrips_the_primitive_payloads_we_ship(self):
        value = {"pc": 0x4400, "code": b"\x0f\x12", "pure": True,
                 "steps": [(1, 2, 3.5, None, "info", [4, 5])],
                 "nested": {"a": {"b": (b"c",)}}}
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        assert safe_loads(data) == value

    def test_refuses_global_references_without_executing(
            self, tmp_path):
        marker = tmp_path / "pwned"
        evil = pickle.dumps(_Exploit(str(marker)))
        with pytest.raises(UnsafePayload):
            safe_loads(evil)
        assert not marker.exists()

    def test_scan_frames_never_executes_a_hostile_record(
            self, tmp_path):
        # a well-framed transfer (magic, length, digest all
        # self-consistent — an attacker controls those) whose payload
        # is an exploit pickle: rejected, nothing executed
        marker = tmp_path / "pwned"
        frame = _sbx_frame(_Exploit(str(marker)))
        kept, records, rejected = execcache.scan_frames(frame)
        assert (kept, records, rejected) == (b"", 0, 1)
        assert not marker.exists()

    def test_disk_tier_never_executes_a_hostile_record(self, tmp_path):
        marker = tmp_path / "pwned"
        store = tmp_path / "0123456789abcdef.sbx"
        store.write_bytes(_sbx_frame(_Exploit(str(marker))))
        tier = execcache.DiskTier(store)
        assert (tier.loaded, tier.corrupt) == (0, 1)
        assert not marker.exists()

    def test_parse_checkpoint_never_executes_a_hostile_blob(
            self, tmp_path):
        marker = tmp_path / "pwned"
        evil = pickle.dumps(_Exploit(str(marker)))
        with pytest.raises(UnsafePayload):
            parse_checkpoint(evil, "key", 0)
        assert not marker.exists()
        with pytest.raises(ReproError, match="not a mapping"):
            parse_checkpoint(pickle.dumps([1, 2]), "key", 0)


# -- loopback campaigns -----------------------------------------------------

def _serial_reference(tmp_path):
    out = tmp_path / "reference"
    run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=1)
    return out


class _Coordinator:
    """A socket campaign on a background thread, on an ephemeral
    loopback port."""

    def __init__(self, out, jobs=2, lease_timeout_s=10.0,
                 profile=False, secret=None, cohort=False,
                 rejoin=True, **overrides):
        self.out = Path(out)
        self.transport = SocketTransport(
            lease_timeout_s=lease_timeout_s, heartbeat_s=0.5,
            idle_retry_s=0.1, secret=secret)
        self.error = None
        config = FleetConfig(**{**_CAMPAIGN, **overrides})
        profile_dir = self.out / "profiles" if profile else None

        def _run():
            try:
                run_campaign(config, self.out, jobs=jobs,
                             cohort=cohort, rejoin=rejoin,
                             transport=self.transport,
                             profile_dir=profile_dir)
            except BaseException as error:   # surfaced in join()
                self.error = error

        self.thread = threading.Thread(target=_run, daemon=True)
        self.thread.start()

    def address(self) -> str:
        path = self.out / "coordinator.addr"
        deadline = time.monotonic() + 30
        while not path.exists():
            assert time.monotonic() < deadline, \
                "coordinator never published its address"
            assert self.thread.is_alive() or path.exists(), \
                f"coordinator died early: {self.error}"
            time.sleep(0.02)
        return path.read_text().strip()

    def join(self):
        self.thread.join(timeout=120)
        assert not self.thread.is_alive(), "coordinator hung"
        if self.error is not None:
            raise self.error


def _worker_thread(address, worker_id, codes, **kwargs):
    def _run():
        codes[worker_id] = run_worker(address, worker_id=worker_id,
                                      **kwargs)
    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    return thread


def _raw_hello(address, **overrides):
    """Open one raw connection, send a hello, return the reply."""
    host, port = parse_endpoint(address)
    channel = Channel(socket.create_connection((host, port),
                                               timeout=10))
    hello = {"type": "hello", "proto": PROTO_VERSION,
             "state_version": STATE_VERSION,
             "disk_format": execcache.DISK_FORMAT,
             "campaign": None, "worker": "probe", "host": "test"}
    hello.update(overrides)
    channel.send(hello)
    reply, _ = channel.recv(timeout=10)
    channel.close()
    return reply


def _subprocess_env(tmp_path):
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    env["REPRO_EXEC_CACHE_DIR"] = str(tmp_path / "subproc-exec")
    env["REPRO_TRACE_CACHE_DIR"] = str(tmp_path / "subproc-trace")
    return env


class TestLoopbackCampaign:
    def test_two_workers_match_local_bytes(self, tmp_path):
        reference = _serial_reference(tmp_path)
        out = tmp_path / "sock"
        coordinator = _Coordinator(out, jobs=2, profile=True)
        address = coordinator.address()
        codes = {}
        workers = [_worker_thread(address, f"w{i}", codes)
                   for i in range(2)]
        coordinator.join()
        for worker in workers:
            worker.join(timeout=30)
        assert codes == {"w0": 0, "w1": 0}
        assert (out / "summary.json").read_bytes() == \
            (reference / "summary.json").read_bytes()
        assert (out / "devices-mpu.jsonl").read_bytes() == \
            (reference / "devices-mpu.jsonl").read_bytes()
        profile = json.loads(
            (out / "profiles" / "coordinator.json").read_text())
        assert profile["transport"] == "socket"
        assert set(profile["workers"]) == {"w0", "w1"}
        for row in profile["workers"].values():
            assert row["bytes_to_worker"] > 0
            assert row["bytes_from_worker"] > 0
        totals = profile["worker_totals"]
        assert totals["workers"] == 2
        assert totals["devices_done"] == _CAMPAIGN["devices"]
        assert totals["units_run"] >= 1

    def test_worker_kill_mid_unit_reassigns_lease(self, tmp_path):
        reference = _serial_reference(tmp_path)
        out = tmp_path / "killed"
        coordinator = _Coordinator(out, jobs=2, lease_timeout_s=3.0,
                                   profile=True)
        address = coordinator.address()
        # first worker dies (os._exit) after shipping two checkpoint
        # frames — mid-unit, with a lease held
        crash = subprocess.run(
            [sys.executable, "-m", "repro.cli", "fleet", "worker",
             "--connect", address, "--worker-id", "crashy",
             "--crash-after-ckpts", "2"],
            env=_subprocess_env(tmp_path), capture_output=True,
            timeout=120)
        assert crash.returncode == 3
        codes = {}
        healthy = _worker_thread(address, "healthy", codes)
        coordinator.join()
        healthy.join(timeout=30)
        assert codes == {"healthy": 0}
        assert (out / "summary.json").read_bytes() == \
            (reference / "summary.json").read_bytes()
        assert (out / "devices-mpu.jsonl").read_bytes() == \
            (reference / "devices-mpu.jsonl").read_bytes()
        profile = json.loads(
            (out / "profiles" / "coordinator.json").read_text())
        # the dead worker's lease went back to the queue, and the
        # profile attributes both ends of the story
        assert profile["requeues"] >= 1
        assert {"crashy", "healthy"} <= set(profile["workers"])
        assert profile["workers"]["healthy"]["units_run"] >= 1

    def test_stale_campaign_key_is_refused(self, tmp_path):
        out = tmp_path / "stale"
        coordinator = _Coordinator(out)
        address = coordinator.address()
        reply = _raw_hello(address, campaign="f" * 16)
        assert reply["type"] == "reject"
        assert reply["kind"] == "campaign"
        assert "stale campaign key" in reply["reason"]
        codes = {}
        worker = _worker_thread(address, "w0", codes)
        coordinator.join()
        worker.join(timeout=30)
        assert codes == {"w0": 0}

    def test_version_skew_is_refused(self, tmp_path):
        out = tmp_path / "skew"
        coordinator = _Coordinator(out)
        address = coordinator.address()
        reply = _raw_hello(address, proto=PROTO_VERSION + 1)
        assert reply["type"] == "reject"
        assert reply["kind"] == "version"
        reply = _raw_hello(address, state_version=STATE_VERSION + 1)
        assert reply["kind"] == "version"
        codes = {}
        worker = _worker_thread(address, "w0", codes)
        coordinator.join()
        worker.join(timeout=30)
        assert codes == {"w0": 0}

    def test_garbage_connection_does_not_wedge(self, tmp_path):
        out = tmp_path / "garbage"
        coordinator = _Coordinator(out)
        address = coordinator.address()
        host, port = parse_endpoint(address)
        # a port scanner / confused peer: raw bytes, then vanish
        probe = socket.create_connection((host, port), timeout=10)
        probe.sendall(b"\xff" * 8)
        probe.close()
        codes = {}
        worker = _worker_thread(address, "w0", codes)
        coordinator.join()
        worker.join(timeout=30)
        assert codes == {"w0": 0}

    def test_coordinator_kill_and_resume_is_byte_identical(
            self, tmp_path):
        reference = _serial_reference(tmp_path)
        out = tmp_path / "ckill"
        env = _subprocess_env(tmp_path)
        coordinator = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "fleet", "run",
             "--devices", str(_CAMPAIGN["devices"]),
             "--hours", str(_CAMPAIGN["hours"]),
             "--model", "mpu", "--seed", str(_CAMPAIGN["seed"]),
             "--checkpoint-minutes",
             str(_CAMPAIGN["checkpoint_minutes"]),
             "--rogue-fraction", str(_CAMPAIGN["rogue_fraction"]),
             "--out", str(out), "--jobs", "2",
             "--listen", "127.0.0.1:0"],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            addr_path = out / "coordinator.addr"
            deadline = time.monotonic() + 30
            while not addr_path.exists():
                assert time.monotonic() < deadline
                time.sleep(0.05)
            address = addr_path.read_text().strip()
            worker = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "fleet",
                 "worker", "--connect", address,
                 "--worker-id", "w0", "--retry-limit", "0"],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            try:
                # kill the coordinator once real progress exists —
                # a checkpoint or a committed record on its disk
                shards = out / "shards"
                deadline = time.monotonic() + 60
                while True:
                    assert time.monotonic() < deadline, \
                        "no checkpoint ever appeared"
                    if shards.is_dir() and (
                            list(shards.glob("*.ckpt"))
                            or list(shards.glob("*-u*.jsonl"))):
                        break
                    time.sleep(0.02)
                os.kill(coordinator.pid, signal.SIGKILL)
                coordinator.wait(timeout=30)
            finally:
                worker.terminate()
                worker.wait(timeout=30)
        finally:
            if coordinator.poll() is None:
                coordinator.kill()
                coordinator.wait(timeout=30)
        # resume the very same campaign locally — transports and
        # worker counts are execution details
        run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=1)
        assert (out / "summary.json").read_bytes() == \
            (reference / "summary.json").read_bytes()
        assert (out / "devices-mpu.jsonl").read_bytes() == \
            (reference / "devices-mpu.jsonl").read_bytes()


class _RecordingChannel:
    """Collects coordinator replies without a socket."""

    def __init__(self):
        self.sent = []

    def send(self, message, blob=None, compress=False):
        self.sent.append((message, blob))


class TestCoordinatorHardening:
    def test_transport_rejects_degenerate_timings(self):
        with pytest.raises(ReproError, match="lease timeout"):
            SocketTransport(lease_timeout_s=0)
        with pytest.raises(ReproError, match="heartbeat"):
            SocketTransport(heartbeat_s=0)
        with pytest.raises(ReproError, match="idle retry"):
            SocketTransport(idle_retry_s=-1)

    def test_non_loopback_bind_requires_a_secret(self):
        with pytest.raises(ReproError, match="non-loopback"):
            SocketTransport(host="0.0.0.0")
        with pytest.raises(ReproError, match="non-loopback"):
            SocketTransport(host="")          # all interfaces
        SocketTransport(host="0.0.0.0", secret=b"hunter2")
        SocketTransport(host="127.0.0.1")     # loopback stays easy

    def test_blob_names_cannot_escape_the_shards_dir(self, tmp_path):
        out = tmp_path / "out"
        transport = SocketTransport()
        transport._campaign = {"out_dir": str(out)}
        # a legitimate fetch still works…
        path = _ckpt_path(out, "mpu", 1)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"checkpoint bytes")
        channel = _RecordingChannel()
        transport._serve_blob(channel, {
            "name": "ckpt:mpu:1", "sha": blob_sha(b"checkpoint bytes")})
        assert channel.sent[-1] == ({"type": "blob",
                                     "name": "ckpt:mpu:1"},
                                    b"checkpoint bytes")
        # …while a path-shaped model key is refused before any
        # filesystem access (previously it walked out of shards/)
        outside = tmp_path / "secret.bin"
        outside.write_bytes(b"not yours")
        for name in ("ckpt:../../secret.bin:1", "ckpt:evil:1",
                     "ckpt:mpu:not-an-int"):
            channel = _RecordingChannel()
            transport._serve_blob(channel, {
                "name": name, "sha": blob_sha(b"not yours")})
            assert channel.sent == [({"type": "blob_missing",
                                      "name": name}, None)]


class TestSharedSecret:
    def test_secret_gates_admission_and_authed_workers_run(
            self, tmp_path):
        reference = _serial_reference(tmp_path)
        out = tmp_path / "auth"
        secret = b"fleet-secret-7"
        coordinator = _Coordinator(out, secret=secret)
        address = coordinator.address()
        host, port = parse_endpoint(address)
        # a probe is challenged; a wrong mac is rejected as auth-kind
        channel = Channel(socket.create_connection((host, port),
                                                   timeout=10))
        channel.send({"type": "hello", "proto": PROTO_VERSION,
                      "state_version": STATE_VERSION,
                      "disk_format": execcache.DISK_FORMAT,
                      "campaign": None, "worker": "probe",
                      "host": "test"})
        reply, _ = channel.recv(timeout=10)
        assert reply["type"] == "challenge"
        nonce = reply["nonce"]
        assert auth_mac(secret, nonce) != auth_mac(b"guess", nonce)
        channel.send({"type": "auth",
                      "mac": auth_mac(b"guess", nonce)})
        reply, _ = channel.recv(timeout=10)
        assert (reply["type"], reply["kind"]) == ("reject", "auth")
        channel.close()
        # a worker without the secret fails fast (exit 2, no retry)
        assert run_worker(address, worker_id="keyless") == 2
        # workers holding the secret run the campaign to the same bytes
        codes = {}

        def _authed(worker_id):
            def _run():
                codes[worker_id] = run_worker(
                    address, worker_id=worker_id, secret=secret)
            thread = threading.Thread(target=_run, daemon=True)
            thread.start()
            return thread

        workers = [_authed(f"w{i}") for i in range(2)]
        coordinator.join()
        for worker in workers:
            worker.join(timeout=30)
        assert codes == {"w0": 0, "w1": 0}
        assert (out / "summary.json").read_bytes() == \
            (reference / "summary.json").read_bytes()
        assert (out / "devices-mpu.jsonl").read_bytes() == \
            (reference / "devices-mpu.jsonl").read_bytes()


class TestCliValidation:
    def test_jobs_zero_is_refused(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "fleet", "run",
             "--devices", "1", "--hours", "0.001", "--model", "mpu",
             "--jobs", "0", "--out", str(tmp_path / "never")],
            env=_subprocess_env(tmp_path), capture_output=True,
            text=True, timeout=60)
        assert result.returncode == 2
        assert "--jobs must be >= 1" in result.stderr


# -- blob compression -------------------------------------------------------

class TestCompression:
    def test_large_blob_deflates_and_inflates_transparently(self):
        tx, rx = _pair()
        blob = b"amulet checkpoint page " * 500
        tx.send({"type": "blob", "name": "x"}, blob=blob,
                compress=True)
        message, out = rx.recv(timeout=5)
        assert out == blob
        assert message["blob_enc"] == "zlib"
        assert message["blob_raw_sha"] == blob_sha(blob)
        assert tx.bytes_out < len(blob)

    def test_small_and_incompressible_blobs_ship_raw(self):
        tx, rx = _pair()
        tx.send({"type": "blob"}, blob=b"tiny", compress=True)
        message, out = rx.recv(timeout=5)
        assert out == b"tiny"
        assert "blob_enc" not in message
        noise = os.urandom(4096)        # deflate only grows this
        tx.send({"type": "blob"}, blob=noise, compress=True)
        message, out = rx.recv(timeout=5)
        assert out == noise
        assert "blob_enc" not in message

    def _hostile(self, message, blob):
        """One hand-framed message+blob, bypassing Channel.send's
        self-consistent framing — the attacker's view."""
        left, right = socket.socketpair()
        payload = json.dumps(message).encode()
        left.sendall(struct.pack(">I", len(payload)) + payload + blob)
        return Channel(right)

    def test_tampered_raw_digest_fails_closed(self):
        raw = b"secret state " * 100
        packed = zlib.compress(raw)
        channel = self._hostile(
            {"type": "blob", "blob_len": len(packed),
             "blob_sha": blob_sha(packed), "blob_enc": "zlib",
             "blob_raw_len": len(raw), "blob_raw_sha": "0" * 64},
            packed)
        with pytest.raises(WireError, match="digest mismatch"):
            channel.recv(timeout=5)

    def test_understated_raw_length_trips_the_bomb_guard(self):
        # a deflate bomb declares less than it inflates to: the
        # declared length caps the inflater, and the leftover stream
        # fails the exactness check before any digesting happens
        raw = b"b" * 100_000
        packed = zlib.compress(raw)
        channel = self._hostile(
            {"type": "blob", "blob_len": len(packed),
             "blob_sha": blob_sha(packed), "blob_enc": "zlib",
             "blob_raw_len": 64, "blob_raw_sha": blob_sha(raw)},
            packed)
        with pytest.raises(WireError, match="declared length"):
            channel.recv(timeout=5)

    def test_trailing_garbage_after_the_stream_fails_closed(self):
        raw = b"clean payload " * 64
        packed = zlib.compress(raw) + b"#trailing#"
        channel = self._hostile(
            {"type": "blob", "blob_len": len(packed),
             "blob_sha": blob_sha(packed), "blob_enc": "zlib",
             "blob_raw_len": len(raw), "blob_raw_sha": blob_sha(raw)},
            packed)
        with pytest.raises(WireError, match="declared length"):
            channel.recv(timeout=5)

    def test_unknown_encoding_and_bad_lengths_refused(self):
        raw = b"x" * 600
        packed = zlib.compress(raw)
        base = {"type": "blob", "blob_len": len(packed),
                "blob_sha": blob_sha(packed),
                "blob_raw_len": len(raw),
                "blob_raw_sha": blob_sha(raw)}
        channel = self._hostile(dict(base, blob_enc="lz4"), packed)
        with pytest.raises(WireError, match="unknown blob encoding"):
            channel.recv(timeout=5)
        channel = self._hostile(
            dict(base, blob_enc="zlib", blob_raw_len=-1), packed)
        with pytest.raises(WireError, match="outside"):
            channel.recv(timeout=5)


# -- report-frame batching --------------------------------------------------

class TestBatching:
    def test_pack_unpack_roundtrip_over_the_wire(self):
        frames = [({"type": "dev_done", "device": 3}, None),
                  ({"type": "ckpt", "model": "mpu"}, b"alpha"),
                  ({"type": "result", "lease": 9}, b"bravo" * 300)]
        message, blob = pack_batch(frames)
        assert message["type"] == "batch"
        tx, rx = _pair()
        tx.send(message, blob=blob, compress=True)
        received, received_blob = rx.recv(timeout=5)
        out = unpack_batch(received, received_blob)
        assert [(sub["type"], piece) for sub, piece in out] == \
            [("dev_done", None), ("ckpt", b"alpha"),
             ("result", b"bravo" * 300)]

    def test_blobless_batch_has_no_blob(self):
        message, blob = pack_batch([({"type": "a"}, None),
                                    ({"type": "b"}, None)])
        assert blob is None
        assert [sub["type"] for sub, _ in
                unpack_batch(message, blob)] == ["a", "b"]

    def test_unpack_rejects_tampered_slice(self):
        message, blob = pack_batch([({"type": "ckpt"}, b"alpha"),
                                    ({"type": "ckpt"}, b"bravo")])
        evil = bytearray(blob)
        evil[0] ^= 0xFF
        with pytest.raises(WireError, match="digest mismatch"):
            unpack_batch(message, bytes(evil))

    def test_unpack_rejects_overrun_and_unclaimed_bytes(self):
        message, blob = pack_batch([({"type": "ckpt"}, b"alpha")])
        with pytest.raises(WireError, match="unclaimed"):
            unpack_batch(message, blob + b"!")
        with pytest.raises(WireError, match="overrun"):
            unpack_batch(message, blob[:-1])

    def test_unpack_rejects_nested_and_shapeless_frames(self):
        with pytest.raises(WireError, match="malformed"):
            unpack_batch({"type": "batch",
                          "frames": [{"type": "batch"}]}, None)
        with pytest.raises(WireError, match="malformed"):
            unpack_batch({"type": "batch", "frames": ["x"]}, None)
        with pytest.raises(WireError, match="non-empty"):
            unpack_batch({"type": "batch", "frames": []}, None)

    def test_batcher_single_frame_ships_unwrapped_on_age(self):
        tx, rx = _pair()
        batcher = FrameBatcher(tx, max_bytes=1 << 20, max_ms=30,
                               compress=False)
        try:
            batcher.add({"type": "dev_done", "device": 1})
            message, _ = rx.recv(timeout=5)
            assert message["type"] == "dev_done"
            assert batcher.batches_sent == 0
        finally:
            batcher.close()

    def test_batcher_coalesces_on_size(self):
        tx, rx = _pair()
        batcher = FrameBatcher(tx, max_bytes=3 * 256, max_ms=60_000,
                               compress=False)
        try:
            for device in range(3):
                batcher.add({"type": "dev_done", "device": device})
            message, blob = rx.recv(timeout=5)
            assert message["type"] == "batch"
            assert [sub["device"] for sub, _ in
                    unpack_batch(message, blob)] == [0, 1, 2]
            assert batcher.batches_sent == 1
        finally:
            batcher.close()

    def test_direct_flushes_buffered_frames_first(self):
        tx, rx = _pair()
        batcher = FrameBatcher(tx, max_bytes=1 << 20, max_ms=60_000,
                               compress=False)
        try:
            batcher.add({"type": "ckpt", "device": 0}, blob=b"ck")
            batcher.direct({"type": "lease_req"})
            first, first_blob = rx.recv(timeout=5)
            second, _ = rx.recv(timeout=5)
            assert (first["type"], first_blob) == ("ckpt", b"ck")
            assert second["type"] == "lease_req"
        finally:
            batcher.close()

    def test_disabled_batcher_sends_immediately(self):
        tx, rx = _pair()
        batcher = FrameBatcher(tx, max_bytes=0, compress=False)
        try:
            assert not batcher.enabled
            batcher.add({"type": "dev_done", "device": 5})
            message, _ = rx.recv(timeout=5)
            assert message["type"] == "dev_done"
            assert batcher.batches_sent == 0
        finally:
            batcher.close()


class TestHeartbeatJitter:
    def test_intervals_jitter_within_ten_percent(self):
        from repro.fleet.net.worker import _heartbeat

        waits = []

        class _Stop:
            def wait(self, seconds):
                waits.append(seconds)
                return len(waits) >= 50

        class _Null:
            def send(self, message, blob=None, compress=False):
                pass

        _heartbeat(_Null(), 10.0, _Stop())
        assert len(waits) == 50
        assert all(9.0 <= wait <= 11.0 for wait in waits)
        # actually jittered, not a constant at one end of the band
        assert len(set(waits)) > 1


# -- batching / trace tier / status over loopback ---------------------------

class TestBatchedCampaign:
    def test_batch_knobs_do_not_change_bytes(self, tmp_path):
        reference = _serial_reference(tmp_path)
        for name, kwargs in (
                ("unbatched", dict(batch_bytes=0, compress=False)),
                ("tiny-batches", dict(batch_bytes=512, batch_ms=5))):
            out = tmp_path / name
            coordinator = _Coordinator(out)
            address = coordinator.address()
            codes = {}
            workers = [_worker_thread(address, f"w{i}", codes,
                                      **kwargs) for i in range(2)]
            coordinator.join()
            for worker in workers:
                worker.join(timeout=30)
            assert codes == {"w0": 0, "w1": 0}
            assert (out / "summary.json").read_bytes() == \
                (reference / "summary.json").read_bytes()
            assert (out / "devices-mpu.jsonl").read_bytes() == \
                (reference / "devices-mpu.jsonl").read_bytes()

    def test_remote_profile_dumps_land_in_profile_dir(self, tmp_path):
        import pstats
        out = tmp_path / "prof"
        coordinator = _Coordinator(out, profile=True)
        address = coordinator.address()
        codes = {}
        worker = _worker_thread(address, "w0", codes)
        coordinator.join()
        worker.join(timeout=30)
        assert codes == {"w0": 0}
        dumps = sorted((out / "profiles").glob("mpu-u*.prof"))
        assert dumps, "no per-unit profile dumps arrived"
        stats = pstats.Stats(str(dumps[0]))
        assert stats.total_calls > 0


class TestSocketTraceTier:
    def test_warm_tier_ships_to_workers_and_matches_bytes(
            self, tmp_path):
        from repro.fleet import tracetier
        # a cold local cohort run publishes .tbx stores in this
        # process's (test-isolated) trace dir
        reference = tmp_path / "reference"
        run_campaign(FleetConfig(**_CAMPAIGN), reference, jobs=1,
                     cohort=True)
        assert list(tracetier.trace_cache_dir().glob("*.tbx"))
        # a subprocess worker starts with empty caches: the stores
        # must reach it over the sha-verified blob channel
        out = tmp_path / "sock-warm"
        coordinator = _Coordinator(out, cohort=True, profile=True)
        address = coordinator.address()
        env = _subprocess_env(tmp_path)
        worker = subprocess.run(
            [sys.executable, "-m", "repro.cli", "fleet", "worker",
             "--connect", address, "--worker-id", "wt"],
            env=env, capture_output=True, text=True, timeout=120)
        coordinator.join()
        assert worker.returncode == 0, worker.stderr
        assert "imported trace store" in worker.stdout
        assert list(Path(env["REPRO_TRACE_CACHE_DIR"]).glob("*.tbx"))
        assert (out / "summary.json").read_bytes() == \
            (reference / "summary.json").read_bytes()
        assert (out / "devices-mpu.jsonl").read_bytes() == \
            (reference / "devices-mpu.jsonl").read_bytes()
        profile = json.loads(
            (out / "profiles" / "coordinator.json").read_text())
        assert profile["models"]["mpu"]["trace_hits"] > 0


class TestFleetStatus:
    def _cli_status(self, target, tmp_path):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "fleet", "status",
             str(target)],
            env=_subprocess_env(tmp_path), capture_output=True,
            text=True, timeout=60)

    def test_live_then_file_mode(self, tmp_path):
        out = tmp_path / "status"
        coordinator = _Coordinator(out, cohort=True)
        address = coordinator.address()
        # live: no worker yet, the port answers a status observer
        live = self._cli_status(address, tmp_path)
        assert live.returncode == 0, live.stderr
        assert "campaign" in live.stdout
        assert "no workers have connected" in live.stdout
        codes = {}
        worker = _worker_thread(address, "w0", codes)
        coordinator.join()
        worker.join(timeout=30)
        assert codes == {"w0": 0}
        # file: the mirrored status.json outlives the coordinator
        # (with no model in flight; per-worker rows keep the totals)
        status = json.loads((out / "status.json").read_text())
        assert status["model"] is None
        assert status["workers"]["w0"]["devices_done"] == \
            _CAMPAIGN["devices"]
        assert status["cohort"]["cohort_executed"] > 0
        done = self._cli_status(out, tmp_path)
        assert done.returncode == 0, done.stderr
        assert "worker w0" in done.stdout

    def test_missing_status_file_is_a_clear_error(self, tmp_path):
        empty = tmp_path / "not-a-campaign"
        empty.mkdir()
        result = self._cli_status(empty, tmp_path)
        assert result.returncode != 0
        assert "status.json" in result.stderr
