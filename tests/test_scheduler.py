"""Event queue, scheduler, restart policies, app timers."""

import pytest

from repro.aft import AftPipeline, AppSource, IsolationModel
from repro.kernel.events import Event, EventQueue, EventType, \
    PeriodicSource
from repro.kernel.machine import AmuletMachine
from repro.kernel.scheduler import (
    AppSchedule,
    RestartPolicy,
    Scheduler,
)

COUNTER_APP = """
int ticks = 0;
int on_tick(int arg) { ticks++; return ticks; }
int on_faulty(int arg) {
    int *p = (int *)0x2000;
    return *p;
}
int on_arm(int arg) { return amulet_timer_set(7, 50); }
int on_timer(int event_id) { ticks += 100; return event_id; }
"""

HANDLERS = ["on_tick", "on_faulty", "on_arm", "on_timer"]


def make_scheduler(policy=RestartPolicy.DISABLE):
    firmware = AftPipeline(IsolationModel.MPU).build(
        [AppSource("app", COUNTER_APP, HANDLERS)])
    machine = AmuletMachine(firmware)
    return Scheduler(machine, policy=policy), machine


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.push(Event(30, "a", "h", EventType.TIMER))
        queue.push(Event(10, "a", "h", EventType.TIMER))
        queue.push(Event(20, "a", "h", EventType.TIMER))
        assert [queue.pop().time for _ in range(3)] == [10, 20, 30]

    def test_stable_for_equal_times(self):
        queue = EventQueue()
        queue.push(Event(5, "a", "first", EventType.TIMER))
        queue.push(Event(5, "a", "second", EventType.TIMER))
        assert queue.pop().handler == "first"
        assert queue.pop().handler == "second"

    def test_too_many_args_rejected(self):
        with pytest.raises(ValueError):
            Event(0, "a", "h", EventType.TIMER, (1, 2, 3, 4))

    def test_periodic_source_expansion(self):
        source = PeriodicSource("a", "h", EventType.TIMER,
                                period_ms=100)
        events = list(source.events_until(350))
        assert [e.time for e in events] == [0, 100, 200, 300]

    def test_periodic_source_phase(self):
        source = PeriodicSource("a", "h", EventType.TIMER,
                                period_ms=100, phase_ms=7)
        assert list(source.events_until(200))[0].time == 7


class TestScheduling:
    def test_run_delivers_periodic_events(self):
        scheduler, machine = make_scheduler()
        scheduler.add_app(AppSchedule("app", sources=[
            PeriodicSource("app", "on_tick", EventType.TIMER, 100)]))
        stats = scheduler.run(horizon_ms=1000)
        assert stats.events_delivered == 10
        assert stats.per_app_events["app"] == 10
        assert stats.per_app_cycles["app"] > 0

    def test_unknown_app_rejected(self):
        scheduler, _machine = make_scheduler()
        with pytest.raises(Exception):
            scheduler.add_app(AppSchedule("ghost"))

    def test_max_events_bound(self):
        scheduler, _machine = make_scheduler()
        scheduler.add_app(AppSchedule("app", sources=[
            PeriodicSource("app", "on_tick", EventType.TIMER, 10)]))
        stats = scheduler.run(horizon_ms=1000, max_events=5)
        assert stats.events_delivered == 5

    def test_app_timer_round_trip(self):
        """amulet_timer_set arms an APP_TIMER event delivered later."""
        scheduler, machine = make_scheduler()
        scheduler.add_app(AppSchedule(
            "app",
            sources=[PeriodicSource("app", "on_arm",
                                    EventType.TIMER, 10_000)],
            timer_handler="on_timer"))
        scheduler.run(horizon_ms=5000)
        # on_arm at t=1ms..., timer fires 50ms later adding 100
        ticks_addr = machine.firmware.symbol("app_app_ticks")
        blob = machine.cpu.memory.dump(ticks_addr, 2)
        assert blob[0] | (blob[1] << 8) == 100

    def test_trace_collection(self):
        scheduler, _machine = make_scheduler()
        scheduler.keep_trace = True
        scheduler.add_app(AppSchedule("app", sources=[
            PeriodicSource("app", "on_tick", EventType.TIMER, 100)]))
        scheduler.run(horizon_ms=300)
        assert len(scheduler.trace) == 3
        assert scheduler.trace[0].handler == "on_tick"


class TestRestartPolicies:
    def _faulting_schedule(self, scheduler):
        scheduler.add_app(AppSchedule("app", sources=[
            PeriodicSource("app", "on_faulty", EventType.TIMER, 100),
        ]))

    def test_disable_policy_drops_after_fault(self):
        scheduler, machine = make_scheduler(RestartPolicy.DISABLE)
        self._faulting_schedule(scheduler)
        stats = scheduler.run(horizon_ms=1000)
        assert stats.faults == 1
        assert stats.events_delivered == 1
        assert stats.events_dropped == 9
        assert machine.app_state["app"].disabled

    def test_continue_policy_keeps_delivering(self):
        scheduler, _machine = make_scheduler(RestartPolicy.CONTINUE)
        self._faulting_schedule(scheduler)
        stats = scheduler.run(horizon_ms=500)
        assert stats.events_delivered == 5
        assert stats.faults == 5

    def test_restart_after_cooldown(self):
        scheduler, machine = make_scheduler(RestartPolicy.RESTART_AFTER)
        scheduler.restart_cooldown_ms = 250
        self._faulting_schedule(scheduler)
        stats = scheduler.run(horizon_ms=1000)
        # fault at ~1ms, suspended ~250ms, fault again, ...
        assert 1 < stats.events_delivered < 10
        assert stats.events_dropped > 0

    def test_fault_log_accumulates(self):
        scheduler, machine = make_scheduler(RestartPolicy.CONTINUE)
        self._faulting_schedule(scheduler)
        scheduler.run(horizon_ms=300)
        assert len(machine.fault_log) == 3


class TestSensorArgSampling:
    def test_accel_events_carry_three_args(self):
        firmware = AftPipeline(IsolationModel.MPU).build([
            AppSource("acc", """
                int mag = 0;
                int on_accel(int x, int y, int z) {
                    mag = x + y + z;
                    return mag;
                }
            """, ["on_accel"])])
        machine = AmuletMachine(firmware)
        scheduler = Scheduler(machine)
        scheduler.add_app(AppSchedule("acc", sources=[
            PeriodicSource("acc", "on_accel", EventType.ACCEL_SAMPLE,
                           50)]))
        scheduler.keep_trace = True
        scheduler.run(horizon_ms=200)
        # z ~ 1000 milli-g, so the magnitudes are nonzero and vary
        values = [r.return_value for r in scheduler.trace]
        assert all(v != 0 for v in values)

    def test_clock_tick_carries_seconds(self):
        firmware = AftPipeline(IsolationModel.MPU).build([
            AppSource("clk", """
                int last = -1;
                int on_second(int now) { last = now; return now; }
            """, ["on_second"])])
        machine = AmuletMachine(firmware)
        scheduler = Scheduler(machine)
        scheduler.add_app(AppSchedule("clk", sources=[
            PeriodicSource("clk", "on_second", EventType.CLOCK_TICK,
                           1000)]))
        scheduler.keep_trace = True
        scheduler.run(horizon_ms=3500)
        assert [r.return_value for r in scheduler.trace] == [0, 1, 2, 3]
