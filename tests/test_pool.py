"""The shared worker-pool helper (repro/pool.py).

``worker_pool(jobs)`` is the one fan-out primitive both ``repro
experiments --jobs`` and ``repro fleet`` use: a real process pool for
``jobs > 1``, and a drop-in serial pool otherwise — so the serial path
has no multiprocessing machinery in it at all.
"""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.fleet.population import device_spec
from repro.pool import SerialFuture, SerialPool, completed, worker_pool


def _boom() -> None:
    raise ValueError("intentional")


class TestSerialPool:
    def test_submit_runs_inline_and_in_order(self):
        order = []
        with SerialPool() as pool:
            future = pool.submit(order.append, 1)
            order.append(2)
            assert future.result() is None
        assert order == [1, 2]          # ran at submit time, not later

    def test_result_reraises_worker_exception(self):
        with SerialPool() as pool:
            future = pool.submit(_boom)
        with pytest.raises(ValueError, match="intentional"):
            future.result()

    def test_returns_values(self):
        with SerialPool() as pool:
            futures = [pool.submit(pow, 2, n) for n in range(5)]
        assert [f.result() for f in futures] == [1, 2, 4, 8, 16]


class TestWorkerPool:
    def test_serial_for_one_job(self):
        assert isinstance(worker_pool(1), SerialPool)
        assert isinstance(worker_pool(0), SerialPool)

    def test_processes_for_many_jobs(self):
        pool = worker_pool(2)
        try:
            assert isinstance(pool, ProcessPoolExecutor)
        finally:
            pool.shutdown()

    def test_process_pool_matches_serial_result(self):
        local = device_spec(3, 1)
        with worker_pool(2) as pool:
            remote = pool.submit(device_spec, 3, 1).result()
        assert remote == local

    def test_serial_future_stores_value(self):
        future = SerialFuture(value=42)
        assert future.result() == 42


def _sleep_then(value, seconds):
    import time
    time.sleep(seconds)
    return value


class TestCompleted:
    def test_serial_yields_submission_order(self):
        with SerialPool() as pool:
            futures = [pool.submit(pow, 2, n) for n in range(4)]
        assert [f.result() for f in completed(futures)] == [1, 2, 4, 8]

    def test_process_pool_yields_as_workers_finish(self):
        # the slow task is submitted first; completion order must not
        # be submission order
        with worker_pool(2) as pool:
            slow = pool.submit(_sleep_then, "slow", 0.5)
            fast = pool.submit(_sleep_then, "fast", 0.0)
            order = [f.result() for f in completed([slow, fast])]
        assert order == ["fast", "slow"]
