"""Persistent cohort trace tier (``.tbx`` stores).

Promises pinned here:

* **Warm-start equivalence** — a follower that replays a trace
  revived from disk (in a fresh tier, as a fresh process would) ends
  bit-for-bit where a device that executed the segment ends, and a
  whole campaign is byte-identical with the tier cold, warm,
  corrupted, or disabled.
* **Fail-closed ingestion** — exploit pickles, torn tails, garbage,
  oversized length fields, and shape-invalid records are refused at
  the door; at worst a segment is re-recorded.
* **Poison resistance** — a rogue device's published write-sets sit
  in the same store file as a clean sibling's and are inert for it:
  the pre-state digest never matches, the lookup misses, the sibling
  executes and stays byte-identical.
"""

import json
import os
import pickle

import pytest

from repro.aft.cache import build_firmware
from repro.aft.models import IsolationModel
from repro.aft.phases import AppSource
from repro.fleet import tracetier
from repro.fleet.cohort import CohortStats, record_segment, \
    replay_segment, state_digest
from repro.fleet.executor import FleetConfig, run_campaign
from repro.fleet.tracetier import MAX_SEGMENT_VARIANTS, TraceStore, \
    revive_trace, trace_record, trace_tier
from repro.framestore import HEADER
from repro.kernel.events import EventType, PeriodicSource
from repro.kernel.machine import AmuletMachine
from repro.kernel.scheduler import AppSchedule, Scheduler
from repro.kernel.services import SensorEnvironment

_COUNTER = """
int total = 0;
int on_tick(int x) {
    total = total + x + 1;
    return total;
}
"""

_SEGMENT_MS = 200


def _machine():
    firmware = build_firmware(
        IsolationModel.NO_ISOLATION,
        [AppSource("counter", _COUNTER, handlers=["on_tick"])])
    machine = AmuletMachine(firmware, env=SensorEnvironment(5))
    scheduler = Scheduler(machine)
    scheduler.add_app(AppSchedule("counter", sources=[PeriodicSource(
        app="counter", handler="on_tick",
        event_type=EventType.TIMER, period_ms=40, phase_ms=3)]))
    return machine, scheduler


def _recorded_trace():
    machine, scheduler = _machine()
    stats = CohortStats()
    trace = record_segment(machine, scheduler, 0, _SEGMENT_MS, stats)
    assert trace.entries
    return machine, trace


class TestRoundTrip:
    def test_publish_reload_replay_byte_identical(self):
        leader, trace = _recorded_trace()
        tier = trace_tier()
        assert tier is not None
        assert tier.publish(trace)

        # a fresh tier (what a new process sees) must revive it
        tracetier.clear_tier()
        fresh = trace_tier()
        revived = fresh.load(trace.base_sha, 0, _SEGMENT_MS,
                             trace.pre_sha)
        assert revived is not None
        assert len(revived.entries) == len(trace.entries)

        follower, follower_sched = _machine()
        stats = CohortStats()
        replay_segment(follower, follower_sched, revived, 0,
                       _SEGMENT_MS, stats)
        assert stats.replayed == len(trace.entries)
        assert stats.executed == 0
        assert follower.cpu.memory.image_equals(
            leader.cpu.memory.image_bytes())
        assert follower.cpu.regs.snapshot() == \
            leader.cpu.regs.snapshot()
        assert state_digest(follower) == state_digest(leader)

    def test_publish_dedups_and_misses_are_none(self):
        _leader, trace = _recorded_trace()
        tier = trace_tier()
        assert tier.publish(trace)
        assert not tier.publish(trace)          # dup: dropped
        assert tier.load(trace.base_sha, 0, _SEGMENT_MS,
                         "0" * 64) is None      # foreign pre-state
        assert tier.load(trace.base_sha, _SEGMENT_MS,
                         2 * _SEGMENT_MS, trace.pre_sha) is None

    def test_truncated_trace_is_never_persisted(self):
        _leader, trace = _recorded_trace()
        trace.truncated = True
        assert not trace_tier().publish(trace)

    def test_disable_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        tracetier.clear_tier()
        assert trace_tier() is None
        monkeypatch.setenv("REPRO_TRACE_CACHE", "")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        tracetier.clear_tier()
        assert trace_tier() is None


class _Exploit:
    """A pickle that calls a global on load — the classic payload the
    restricted unpickler must refuse."""

    def __reduce__(self):
        return (os.getenv, ("PATH",))


class TestFailClosedIngestion:
    def _store_with_one_trace(self, tmp_path):
        _leader, trace = _recorded_trace()
        store = TraceStore(tmp_path / "s.tbx")
        assert store.put(trace)
        return store, trace

    def test_exploit_pickle_is_refused_not_executed(self, tmp_path):
        store, _trace = self._store_with_one_trace(tmp_path)
        with store.path.open("ab") as handle:
            handle.write(tracetier._FORMAT.frame(
                pickle.dumps(_Exploit())))
        fresh = TraceStore(store.path)
        assert fresh.loaded == 1
        assert fresh.corrupt >= 1

    def test_shape_valid_pickle_wrong_content_is_refused(self,
                                                         tmp_path):
        store, trace = self._store_with_one_trace(tmp_path)
        bogus = dict(trace_record(trace), pre_sha="f" * 64,
                     entries=[{"key": "not an entry"}])
        with store.path.open("ab") as handle:
            handle.write(tracetier._FORMAT.frame(pickle.dumps(bogus)))
        fresh = TraceStore(store.path)
        assert fresh.loaded == 2        # framing + top-level shape ok
        assert fresh.get(0, _SEGMENT_MS, "f" * 64) is None
        assert fresh.corrupt >= 1       # ...but revival refused it
        # the clean sibling record still revives
        assert fresh.get(0, _SEGMENT_MS, trace.pre_sha) is not None

    def test_flipped_payload_byte_is_skipped(self, tmp_path):
        store, trace = self._store_with_one_trace(tmp_path)
        data = bytearray(store.path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        store.path.write_bytes(bytes(data))
        fresh = TraceStore(store.path)
        assert fresh.loaded == 0
        assert fresh.corrupt >= 1
        assert fresh.get(0, _SEGMENT_MS, trace.pre_sha) is None

    def test_torn_tail_is_tolerated(self, tmp_path):
        store, trace = self._store_with_one_trace(tmp_path)
        clean_size = store.path.stat().st_size
        second = dict(trace_record(trace), pre_sha="e" * 64)
        assert store.publish_record(second)
        data = store.path.read_bytes()
        store.path.write_bytes(data[:len(data) - 7])   # killed writer
        fresh = TraceStore(store.path)
        assert fresh.loaded == 1                       # first intact
        assert fresh.path.stat().st_size >= clean_size
        assert fresh.get(0, _SEGMENT_MS, trace.pre_sha) is not None
        assert fresh.get(0, _SEGMENT_MS, "e" * 64) is None

    def test_garbage_file_loads_nothing(self, tmp_path):
        path = tmp_path / "s.tbx"
        path.write_bytes(b"definitely not a trace store" * 30)
        fresh = TraceStore(path)
        assert fresh.loaded == 0
        assert fresh.corrupt >= 1

    def test_oversized_length_field_rejected(self, tmp_path):
        path = tmp_path / "s.tbx"
        path.write_bytes(b"TBX1" + HEADER.pack(1 << 30, b"\x00" * 16)
                         + b"\x00" * 64)
        fresh = TraceStore(path)
        assert fresh.loaded == 0
        assert fresh.corrupt >= 1

    def test_variant_cap_holds_on_disk(self, tmp_path):
        _leader, trace = _recorded_trace()
        record = trace_record(trace)
        path = tmp_path / "s.tbx"
        # several writers (dedup state not shared) overfill one window
        for n in range(MAX_SEGMENT_VARIANTS + 3):
            TraceStore(path).publish_record(
                dict(record, pre_sha=f"{n:064x}"))
        fresh = TraceStore(path)
        assert fresh.loaded == MAX_SEGMENT_VARIANTS

    def test_import_rejects_garbage_and_bad_names(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        _leader, trace = _recorded_trace()
        store_bytes = tracetier._FORMAT.frame(
            pickle.dumps(trace_record(trace)))
        name = "ab" * 8 + ".tbx"
        assert tracetier.import_store_file(
            "../escape.tbx", store_bytes) == 0
        assert tracetier.import_store_file(
            name, b"garbage" * 100) == 0
        assert not (tmp_path / name).exists()
        assert tracetier.import_store_file(name, store_bytes) == 1
        assert tracetier.have_store_file(name)
        assert tracetier.read_store_file(name) is not None
        # re-import of an existing store is a no-op
        assert tracetier.import_store_file(name, store_bytes) == 0


class TestPoisonResistance:
    def test_rogue_variant_is_inert_for_clean_sibling(self):
        """A rogue's trace (recorded from a diverged state, carrying
        whatever write-set it likes) lands in the same store as the
        clean leader's.  The clean sibling's digest never matches it,
        so the sibling replays the clean variant — or executes — and
        ends byte-identical to a solo run."""
        leader, clean = _recorded_trace()

        rogue, rogue_sched = _machine()
        rogue.services.env._state += 7      # diverged pre-state
        stats = CohortStats()
        poisoned = record_segment(rogue, rogue_sched, 0, _SEGMENT_MS,
                                  stats)
        assert poisoned.pre_sha != clean.pre_sha
        for entry in poisoned.entries:      # make the payload hostile
            entry.pages = {0x2000: b"\xEE" * 256}
            entry.regs_post = tuple([0xBAD0] + [0] * 15)

        tier = trace_tier()
        assert tier.publish(poisoned)
        assert tier.publish(clean)
        tracetier.clear_tier()
        fresh = trace_tier()

        follower, follower_sched = _machine()
        pre_sha = state_digest(follower)
        revived = fresh.load(clean.base_sha, 0, _SEGMENT_MS, pre_sha)
        assert revived is not None
        assert revived.pre_sha == clean.pre_sha   # not the poison
        replay_segment(follower, follower_sched, revived, 0,
                       _SEGMENT_MS, CohortStats())
        assert follower.cpu.memory.image_equals(
            leader.cpu.memory.image_bytes())
        assert follower.cpu.regs.snapshot() == \
            leader.cpu.regs.snapshot()


_CAMPAIGN = dict(devices=6, hours=0.003, models=("mpu",), seed=7,
                 checkpoint_minutes=0.05, rogue_fraction=0.5)


def _campaign(tmp_path, name, **kwargs):
    out = tmp_path / name
    summary = run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=1,
                           cohort=True, profile_dir=out / "profiles",
                           **kwargs)
    return out, summary


def _model_profile(out):
    profile = json.loads(
        (out / "profiles" / "coordinator.json").read_text())
    return profile["models"]["mpu"]


def _bytes(out):
    return ((out / "summary.json").read_bytes(),
            (out / "devices-mpu.jsonl").read_bytes())


class TestCampaignByteIdentity:
    def test_cold_warm_corrupted_disabled_identical(self, tmp_path,
                                                    monkeypatch):
        cold, _ = _campaign(tmp_path, "cold")
        assert _model_profile(cold)["trace_published"] > 0
        trace_dir = tracetier.trace_cache_dir()
        stores = list(trace_dir.glob("*.tbx"))
        assert stores

        tracetier.clear_tier()
        warm, _ = _campaign(tmp_path, "warm")
        assert _bytes(warm) == _bytes(cold)
        warm_profile = _model_profile(warm)
        assert warm_profile["trace_hits"] > 0
        assert warm_profile["trace_misses"] == 0

        for path in stores:                 # bit-rot every store
            data = bytearray(path.read_bytes())
            data[len(data) // 2] ^= 0xFF
            path.write_bytes(bytes(data))
        tracetier.clear_tier()
        corrupted, _ = _campaign(tmp_path, "corrupted")
        assert _bytes(corrupted) == _bytes(cold)

        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        tracetier.clear_tier()
        disabled, _ = _campaign(tmp_path, "disabled")
        assert _bytes(disabled) == _bytes(cold)
        assert _model_profile(disabled)["trace_hits"] == 0
        assert _model_profile(disabled)["trace_misses"] == 0

    def test_warm_tier_survives_kill_and_resume(self, tmp_path):
        from repro.errors import ReproError
        reference, _ = _campaign(tmp_path, "reference")
        tracetier.clear_tier()
        out = tmp_path / "crashed"
        with pytest.raises(ReproError, match="re-run the same"):
            run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=2,
                         cohort=True, crash_after_checkpoints=2)
        tracetier.clear_tier()
        run_campaign(FleetConfig(**_CAMPAIGN), out, jobs=2,
                     cohort=True)
        assert (out / "summary.json").read_bytes() == \
            (reference / "summary.json").read_bytes()
