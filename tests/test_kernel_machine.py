"""AmuletMachine: dispatch, services, sysvars, fault plumbing."""

import pytest

from repro.errors import KernelError
from repro.aft import AftPipeline, AppSource, IsolationModel
from repro.kernel.fault import FaultOrigin
from repro.kernel.machine import AmuletMachine

APP = """
int total = 0;
int window[8];

int on_tick(int a, int b, int c) {
    total += a + b * 2 + c * 3;
    window[total & 7] = total;
    return total;
}

int on_api_probe(int unused) {
    amulet_display_digits(321);
    amulet_log_word(7);
    amulet_vibrate(1);
    return amulet_get_battery();
}

unsigned on_sysvar(int unused) {
    return amulet_uptime_seconds;
}

int on_accel_api(int unused) {
    int buf[3];
    amulet_read_accel(buf);
    return buf[0] + buf[1] + buf[2];
}

int on_storage(int unused) {
    char blob[4];
    int got;
    blob[0] = 'a'; blob[1] = 'b'; blob[2] = 'c'; blob[3] = 'd';
    amulet_storage_write(9, blob, 4);
    blob[0] = 0; blob[1] = 0;
    got = amulet_storage_read(9, blob, 4);
    return got * 1000 + blob[0] + blob[3];
}

int on_timer_arm(int unused) {
    return amulet_timer_set(5, 100);
}
"""

HANDLERS = ["on_tick", "on_api_probe", "on_sysvar", "on_accel_api",
            "on_storage", "on_timer_arm"]


@pytest.fixture(params=[IsolationModel.NO_ISOLATION,
                        IsolationModel.MPU])
def machine(request):
    firmware = AftPipeline(request.param).build(
        [AppSource("probe", APP, HANDLERS)])
    return AmuletMachine(firmware)


class TestDispatch:
    def test_handler_args_and_result(self, machine):
        result = machine.dispatch("probe", "on_tick", [1, 2, 3])
        assert result.return_value == 1 + 4 + 9
        assert not result.faulted
        assert result.cycles > 0

    def test_state_persists_across_dispatches(self, machine):
        machine.dispatch("probe", "on_tick", [1, 0, 0])
        result = machine.dispatch("probe", "on_tick", [1, 0, 0])
        assert result.return_value == 2

    def test_unknown_app_rejected(self, machine):
        with pytest.raises(KernelError):
            machine.dispatch("ghost", "on_tick")

    def test_too_many_args_rejected(self, machine):
        with pytest.raises(KernelError):
            machine.dispatch("probe", "on_tick", [1, 2, 3, 4])

    def test_app_state_accounting(self, machine):
        machine.dispatch("probe", "on_tick", [1, 1, 1])
        machine.dispatch("probe", "on_tick", [1, 1, 1])
        state = machine.app_state["probe"]
        assert state.dispatches == 2
        assert state.cycles > 0
        assert state.faults == 0


class TestServices:
    def test_display_and_log_and_vibrate(self, machine):
        result = machine.dispatch("probe", "on_api_probe", [0])
        services = machine.services
        assert services.display.last_digits == 321
        assert services.log.words == [7]
        assert services.vibrations == 1
        assert result.return_value == services.env.battery_percent

    def test_service_costs_accounted(self, machine):
        before = machine.cpu.cycles
        machine.dispatch("probe", "on_api_probe", [0])
        elapsed = machine.cpu.cycles - before
        from repro.kernel.api import (SERVICE_COSTS, SVC_DISPLAY_DIGITS,
                                      SVC_GET_BATTERY, SVC_LOG_WORD,
                                      SVC_VIBRATE)
        modeled = (SERVICE_COSTS[SVC_DISPLAY_DIGITS]
                   + SERVICE_COSTS[SVC_LOG_WORD]
                   + SERVICE_COSTS[SVC_VIBRATE]
                   + SERVICE_COSTS[SVC_GET_BATTERY])
        assert elapsed > modeled

    def test_accel_pointer_api(self, machine):
        result = machine.dispatch("probe", "on_accel_api", [0])
        assert not result.faulted
        # x + y + z of a ~1g sample is nonzero
        assert result.return_value != 0

    def test_storage_roundtrip(self, machine):
        result = machine.dispatch("probe", "on_storage", [0])
        assert not result.faulted
        assert result.return_value == 4 * 1000 + ord("a") + ord("d")

    def test_service_call_counting(self, machine):
        machine.dispatch("probe", "on_api_probe", [0])
        from repro.kernel.api import SVC_LOG_WORD
        assert machine.services.calls[SVC_LOG_WORD] == 1


class TestSysvars:
    def test_sysvar_read_from_app(self, machine):
        machine.set_sysvar("amulet_uptime_seconds", 1234)
        result = machine.dispatch("probe", "on_sysvar", [0])
        assert result.return_value == 1234
        assert machine.read_sysvar("amulet_uptime_seconds") == 1234


class TestFaultPlumbing:
    def test_disabled_app_rejected(self, machine):
        machine.app_state["probe"].disabled = True
        with pytest.raises(KernelError, match="disabled"):
            machine.dispatch("probe", "on_tick", [0, 0, 0])

    def test_runaway_handler_faults(self):
        firmware = AftPipeline(IsolationModel.MPU).build([
            AppSource("spin", "int on_spin(int x) { while (1) {} "
                              "return 0; }", ["on_spin"])])
        machine = AmuletMachine(firmware)
        result = machine.dispatch("spin", "on_spin", [0],
                                  max_cycles=10_000)
        assert result.faulted
        assert result.fault.origin is FaultOrigin.RUNAWAY

    def test_fault_log_records_app(self):
        evil = "int on_evil(int x) { return *(int *)0x2000; }"
        firmware = AftPipeline(IsolationModel.MPU).build(
            [AppSource("evil", evil, ["on_evil"])])
        machine = AmuletMachine(firmware)
        result = machine.dispatch("evil", "on_evil", [0])
        assert result.faulted
        assert machine.fault_log.for_app("evil")
        record = machine.fault_log.records[-1]
        assert "evil" in record.describe()

    def test_machine_recovers_after_fault(self):
        source = """
        int on_good(int x) { return x + 1; }
        int on_evil(int x) { return *(int *)0x2000; }
        """
        firmware = AftPipeline(IsolationModel.MPU).build(
            [AppSource("mixed", source, ["on_good", "on_evil"])])
        machine = AmuletMachine(firmware)
        assert machine.dispatch("mixed", "on_evil", [0]).faulted
        good = machine.dispatch("mixed", "on_good", [10])
        assert not good.faulted
        assert good.return_value == 11
