"""Persistent on-disk execution cache (the translation cache's third
tier, after per-CPU private caches and the process-wide shared store).

Promises pinned here:

* **Warm-start equivalence** — a fresh process that revives compiled
  superblocks from disk ends bit-for-bit where a cold process that
  translated everything itself ends.
* **Bounded and self-limiting** — stores are LRU-pruned to the
  ``REPRO_EXEC_CACHE_MAX_MB`` budget, and the per-PC variant cap holds
  on disk exactly as it does in memory.
* **Fail-closed ingestion** — corrupted, truncated, or hand-crafted
  hostile records are detected and skipped (and at worst cost a
  re-translation); a rogue device cannot use the shared store file to
  alter what a clean device computes.
"""

import hashlib
import json
import os
import struct

from repro.fleet.device import simulate_device
from repro.fleet.population import device_spec
from repro.fleet.telemetry import MODELS_BY_KEY
from repro.msp430 import execcache
from repro.msp430.cpu import _block_from_record
from repro.msp430.execcache import (
    MAX_VARIANTS,
    DiskTier,
    clear_registry,
    exec_cache_max_bytes,
    prune_exec_cache,
    shared_execution_cache,
)
from repro.pool import worker_pool

#: long enough that hot superblocks pass the tier-up threshold and
#: are code-generated — which is what gets published to disk
SIM_MS = 20_000


def _digest(run) -> str:
    blob = json.dumps((run.machine.state_dict(),
                       run.scheduler.state_dict()),
                      sort_keys=True,
                      default=lambda b: b.hex())
    return hashlib.sha256(blob.encode()).hexdigest()


def _sim_in_fresh_store(cache_dir, device_id=3, seed=11):
    """Worker entry point: point the exec cache at ``cache_dir``,
    drop inherited in-memory stores, run one device, and report the
    architectural digest plus the disk tier's counters."""
    os.environ["REPRO_EXEC_CACHE_DIR"] = str(cache_dir)
    clear_registry()
    spec = device_spec(seed, device_id)
    run = simulate_device(spec, MODELS_BY_KEY["mpu"], sim_ms=SIM_MS)
    disk = [store.disk.stats()
            for store in execcache._REGISTRY.values()
            if store.disk is not None]
    return _digest(run), disk


def _fresh_process(fn, *args):
    """Run ``fn`` in a newly forked worker — a process whose in-memory
    caches are exactly the (empty-registry) parent's, so any warmth
    must have come from disk."""
    with worker_pool(2) as pool:
        return pool.submit(fn, *args).result()


class TestWarmStart:
    def test_cold_then_warm_fresh_process_byte_identical(self,
                                                         tmp_path):
        clear_registry()          # parent registry stays cold
        cold_digest, cold_disk = _fresh_process(
            _sim_in_fresh_store, tmp_path)
        assert sum(d["published"] for d in cold_disk) > 0
        assert list(tmp_path.glob("*.sbx"))

        warm_digest, warm_disk = _fresh_process(
            _sim_in_fresh_store, tmp_path)
        assert warm_digest == cold_digest
        # the warm process really revived translations from disk
        assert sum(d["loaded"] for d in warm_disk) > 0
        assert all(d["corrupt"] == 0 for d in warm_disk)

    def test_disable_knob_gives_memory_only_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_CACHE", "0")
        clear_registry()
        assert shared_execution_cache([0x100]).disk is None
        monkeypatch.setenv("REPRO_EXEC_CACHE", "")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        clear_registry()
        assert shared_execution_cache([0x100]).disk is None
        clear_registry()


def _record(pc, code, payload=b"x" * 64):
    return {"pc": pc, "code": code, "filler": payload}


class TestPrune:
    def test_lru_prune_evicts_oldest_first(self, tmp_path):
        for n in range(4):
            path = tmp_path / f"store{n}.sbx"
            path.write_bytes(b"y" * 1000)
            os.utime(path, (1_000_000 + n, 1_000_000 + n))
        removed = prune_exec_cache(tmp_path, max_bytes=2500)
        assert removed == 2
        assert sorted(p.name for p in tmp_path.glob("*.sbx")) == \
            ["store2.sbx", "store3.sbx"]

    def test_keep_file_survives_even_when_oldest(self, tmp_path):
        keep = tmp_path / "live.sbx"
        for n, name in enumerate(["live.sbx", "b.sbx", "c.sbx"]):
            path = tmp_path / name
            path.write_bytes(b"y" * 1000)
            os.utime(path, (1_000_000 + n, 1_000_000 + n))
        prune_exec_cache(tmp_path, max_bytes=1000, keep=keep)
        assert keep.exists()

    def test_zero_budget_means_unbounded(self, tmp_path):
        (tmp_path / "a.sbx").write_bytes(b"y" * 1000)
        assert prune_exec_cache(tmp_path, max_bytes=0) == 0

    def test_budget_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_CACHE_MAX_MB", "2")
        assert exec_cache_max_bytes() == 2 * 1024 * 1024
        monkeypatch.setenv("REPRO_EXEC_CACHE_MAX_MB", "nonsense")
        assert exec_cache_max_bytes() == 64 * 1024 * 1024

    def test_publish_prunes_under_tiny_budget(self, tmp_path,
                                              monkeypatch):
        """End to end: with a budget smaller than one store, every
        publish prunes sibling stores but keeps its own append-target
        alive."""
        monkeypatch.setenv("REPRO_EXEC_CACHE_MAX_MB", "0.001")
        stale = tmp_path / "stale.sbx"
        stale.write_bytes(b"y" * 4096)
        os.utime(stale, (1_000_000, 1_000_000))
        tier = DiskTier(tmp_path / "live.sbx")
        for n in range(8):
            tier.publish(_record(0x4400 + 2 * n, bytes([n]) * 8,
                                 payload=b"z" * 512))
        assert not stale.exists()
        assert tier.path.exists()
        assert tier.published == 8


class TestFailClosedIngestion:
    def test_round_trip_and_dedup(self, tmp_path):
        tier = DiskTier(tmp_path / "s.sbx")
        tier.publish(_record(0x4400, b"\x01\x02"))
        tier.publish(_record(0x4400, b"\x01\x02"))     # dup: dropped
        fresh = DiskTier(tmp_path / "s.sbx")
        assert fresh.loaded == 1
        records = fresh.take(0x4400)
        assert len(records) == 1 and records[0]["code"] == b"\x01\x02"
        assert fresh.take(0x4400) is None              # popped once

    def test_variant_cap_holds_on_disk(self, tmp_path):
        path = tmp_path / "s.sbx"
        # two writers (dedup state not shared) overfill one PC
        for offset in range(MAX_VARIANTS + 3):
            DiskTier(path).publish(
                _record(0x4400, bytes([offset]) * 4))
        fresh = DiskTier(path)
        assert fresh.loaded == MAX_VARIANTS
        assert len(fresh.take(0x4400)) == MAX_VARIANTS

    def test_flipped_payload_byte_is_skipped(self, tmp_path):
        path = tmp_path / "s.sbx"
        tier = DiskTier(path)
        tier.publish(_record(0x4400, b"\x01\x02"))
        tier.publish(_record(0x4402, b"\x03\x04"))
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF          # bit-rot mid-file
        path.write_bytes(bytes(data))
        fresh = DiskTier(path)
        assert fresh.corrupt >= 1
        assert fresh.loaded < 2               # the damaged frame gone

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "s.sbx"
        tier = DiskTier(path)
        tier.publish(_record(0x4400, b"\x01\x02"))
        tier.publish(_record(0x4402, b"\x03\x04"))
        data = path.read_bytes()
        path.write_bytes(data[:len(data) - 7])  # kill mid-append
        fresh = DiskTier(path)
        assert fresh.loaded == 1              # first frame intact
        assert fresh.take(0x4400) is not None
        assert fresh.take(0x4402) is None     # torn frame not served

    def test_garbage_file_loads_nothing(self, tmp_path):
        path = tmp_path / "s.sbx"
        path.write_bytes(b"not a store file at all" * 10)
        fresh = DiskTier(path)
        assert fresh.loaded == 0
        assert fresh.corrupt >= 1

    def test_oversized_length_field_rejected(self, tmp_path):
        path = tmp_path / "s.sbx"
        header = struct.Struct("<I16s")
        path.write_bytes(b"SBX1"
                         + header.pack(1 << 30, b"\x00" * 16)
                         + b"\x00" * 64)
        fresh = DiskTier(path)
        assert fresh.loaded == 0
        assert fresh.corrupt >= 1

    def test_hostile_record_fails_revival(self):
        """A syntactically valid record whose contents aren't a real
        translation must revive to None (and so be re-translated), not
        crash or produce a bogus block."""
        assert _block_from_record(
            {"pc": 0x4400, "end": 0x4404, "end_pc": 0x4404,
             "pure": True, "loop": False, "code": b"\xff\xff\xff\xff",
             "steps": [(0x4400, 0x4404, 4, False, None, None)],
             "fn": None}) is None
        assert _block_from_record({"pc": 0x4400}) is None


def _poison_then_sim(cache_dir, device_id, seed):
    """Worker entry point: overfill the store with hostile variants at
    every published PC, then run a clean device against it."""
    os.environ["REPRO_EXEC_CACHE_DIR"] = str(cache_dir)
    clear_registry()
    store_files = list(cache_dir.glob("*.sbx"))
    assert store_files
    for path in store_files:
        reader = DiskTier(path)
        pcs = list(reader._records)
        writer = DiskTier(path)   # separate dedup state: can append
        for pc in pcs:
            for n in range(MAX_VARIANTS):
                writer.publish(
                    {"pc": pc, "code": bytes([0xEE, n]) * 3,
                     "end": pc + 6, "end_pc": pc + 6, "pure": True,
                     "loop": False, "fn": None,
                     "steps": [(pc, pc + 6, 1, False, None, None)]})
    return _sim_in_fresh_store(cache_dir, device_id, seed)


class TestPoisonResistance:
    def test_rogue_variants_cannot_alter_a_clean_device(self,
                                                        tmp_path):
        """Flood the shared store file with hostile same-PC variants;
        the clean device's warm run must stay byte-identical to its
        cold run — content verification (and the variant cap) make the
        poison inert."""
        clear_registry()
        cold_digest, _ = _fresh_process(_sim_in_fresh_store,
                                        tmp_path, 3, 11)
        warm_digest, disk = _fresh_process(_poison_then_sim,
                                           tmp_path, 3, 11)
        assert warm_digest == cold_digest
        # the run still *used* the disk tier (it loaded something) —
        # resistance isn't "the cache was off"
        assert sum(d["loaded"] for d in disk) > 0
