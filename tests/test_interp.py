"""Reference interpreter semantics."""

import pytest

from repro.errors import InterpreterError
from repro.cc.interp import Interpreter, _to_signed, _truncdiv, \
    _truncmod
from repro.cc.parser import parse
from repro.cc.sema import FULL_C, analyze


def run(source, fn="main", args=(), host_api=None):
    result = analyze(parse(source), FULL_C)
    interp = Interpreter(result, host_api=host_api)
    return interp.call(fn, list(args))


class TestHelpers:
    def test_to_signed(self):
        assert _to_signed(0x8000) == -32768
        assert _to_signed(0x7FFF) == 32767
        assert _to_signed(0xFFFF) == -1

    def test_truncdiv_toward_zero(self):
        assert _truncdiv(7, 2) == 3
        assert _truncdiv(-7, 2) == -3
        assert _truncdiv(7, -2) == -3
        assert _truncdiv(-7, -2) == 3

    def test_truncmod_sign_follows_dividend(self):
        assert _truncmod(7, 3) == 1
        assert _truncmod(-7, 3) == -1
        assert _truncmod(7, -3) == 1


class TestExecution:
    def test_arithmetic(self):
        assert run("int main(void){ return (3+4)*5 - 6/2; }") == 32

    def test_signed_wraparound(self):
        assert run("int main(void){ int x = 32767; x = x + 1; "
                   "return x < 0; }") == 1

    def test_unsigned_comparison(self):
        assert run("int main(void){ unsigned a = 60000; "
                   "return a > 1; }") == 1

    def test_signed_comparison(self):
        assert run("int main(void){ int a = -5; return a < 1; }") == 1

    def test_recursion(self):
        assert run("""
            int fact(int n) { if (n < 2) return 1;
                              return n * fact(n - 1); }
            int main(void) { return fact(6); }
        """) == 720

    def test_globals_persist(self):
        source = """
            int counter;
            int bump(void) { counter++; return counter; }
            int main(void) { bump(); bump(); return bump(); }
        """
        assert run(source) == 3

    def test_array_init_and_sum(self):
        assert run("""
            int main(void) {
                int a[5] = {1, 2, 3, 4, 5};
                int s = 0;
                int i;
                for (i = 0; i < 5; i++) s += a[i];
                return s;
            }
        """) == 15

    def test_partial_array_init_zero_fills(self):
        assert run("""
            int main(void) {
                int a[4] = {9};
                return a[0] + a[1] + a[2] + a[3];
            }
        """) == 9

    def test_pointer_walk(self):
        assert run("""
            int main(void) {
                int a[3] = {10, 20, 30};
                int *p = a;
                p++;
                return *p + p[1];
            }
        """) == 50

    def test_pointer_difference(self):
        assert run("""
            int main(void) {
                int a[8];
                int *p = &a[6];
                int *q = &a[2];
                return p - q;
            }
        """) == 4

    def test_char_is_unsigned_byte(self):
        assert run("int main(void){ char c = 255; c++; "
                   "return c; }") == 0

    def test_string_literal(self):
        assert run("""
            int main(void) {
                char *s = "AB";
                return s[0] + s[1] + s[2];
            }
        """) == 65 + 66

    def test_struct_via_pointer(self):
        assert run("""
            struct pair { int a; int b; };
            int main(void) {
                struct pair p;
                struct pair *pp = &p;
                p.a = 7;
                pp->b = 8;
                return p.a * pp->b;
            }
        """) == 56

    def test_function_pointer_dispatch(self):
        assert run("""
            int inc(int x) { return x + 1; }
            int dbl(int x) { return x * 2; }
            int main(void) {
                int (*ops[2])(int);
                ops[0] = inc;
                ops[1] = dbl;
                return ops[0](10) + ops[1](10);
            }
        """) == 31

    def test_switch_fallthrough(self):
        source = """
            int pick(int n) {
                int r = 0;
                switch (n) {
                  case 1: r += 1;
                  case 2: r += 2; break;
                  case 3: r += 3; break;
                  default: r = 99;
                }
                return r;
            }
            int main(void) { return pick(1)*100 + pick(3)*10 + pick(8); }
        """
        assert run(source) == 3 * 100 + 3 * 10 + 99

    def test_ternary_and_logic(self):
        assert run("int main(void){ int a = 5; "
                   "return (a > 3 ? 10 : 20) + (a && 0) + (0 || 2); }"
                   ) == 11

    def test_compound_assignment_on_pointer(self):
        assert run("""
            int main(void) {
                int a[4] = {1, 2, 3, 4};
                int *p = a;
                p += 2;
                return *p;
            }
        """) == 3

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpreterError, match="zero"):
            run("int main(void){ int z = 0; return 5 / z; }")

    def test_step_budget_stops_infinite_loop(self):
        result = analyze(parse("int main(void){ while (1) {} "
                               "return 0; }"), FULL_C)
        interp = Interpreter(result, max_steps=1000)
        with pytest.raises(InterpreterError, match="budget"):
            interp.call("main")

    def test_host_api(self):
        from repro.kernel.api import amulet_api_table
        result = analyze(parse(
            "int main(void) { return amulet_get_battery() + 1; }"),
            FULL_C, amulet_api_table())
        interp = Interpreter(result,
                             host_api={"amulet_get_battery":
                                       lambda: 80})
        assert interp.call("main") == 81

    def test_missing_host_api_raises(self):
        from repro.kernel.api import amulet_api_table
        result = analyze(parse(
            "int main(void) { return amulet_get_battery(); }"),
            FULL_C, amulet_api_table())
        with pytest.raises(InterpreterError, match="host handler"):
            Interpreter(result).call("main")

    def test_do_while(self):
        assert run("""
            int main(void) {
                int i = 0;
                int n = 0;
                do { n += 10; i++; } while (i < 3);
                return n;
            }
        """) == 30

    def test_break_and_continue(self):
        assert run("""
            int main(void) {
                int s = 0;
                int i;
                for (i = 0; i < 10; i++) {
                    if (i == 3) continue;
                    if (i == 6) break;
                    s += i;
                }
                return s;
            }
        """) == 0 + 1 + 2 + 4 + 5

    def test_shift_semantics(self):
        assert run("int main(void){ int a = -16; "
                   "return (a >> 2) + ((unsigned)a >> 12); }") == \
            ((-16 >> 2) + (((-16) & 0xFFFF) >> 12)) & 0xFFFF

    def test_sizeof(self):
        assert run("""
            struct s { int a; char b; };
            int main(void) {
                int arr[6];
                return sizeof(int) + sizeof(char) + sizeof(struct s)
                     + sizeof arr + sizeof(int *);
            }
        """) == 2 + 1 + 4 + 12 + 2
