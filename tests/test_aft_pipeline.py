"""AFT pipeline: the four phases, placement, boundary symbols, and the
per-model firmware differences."""

import pytest

from repro.errors import RestrictionError, ToolchainError
from repro.aft import AftPipeline, AppSource, IsolationModel
from repro.aft.models import boundary_symbols, model_config
from repro.asm.disassembler import disassemble_range
from repro.kernel.machine import AmuletMachine
from repro.msp430.memory import MemoryMap

SIMPLE = """
int state = 0;
int scratch[4];
int on_event(int arg) {
    scratch[arg & 3] = arg;
    state += arg;
    return state;
}
"""

POINTERY = """
int data[4];
int on_event(int arg) {
    int *p = data;
    p[arg & 3] = arg;
    return *p;
}
"""

RECURSIVE = """
int on_event(int n) {
    if (n <= 0) return 0;
    return n + on_event(n - 1);
}
"""


def build(model, sources=None):
    sources = sources if sources is not None else [
        AppSource("alpha", SIMPLE, ["on_event"]),
        AppSource("beta", POINTERY, ["on_event"]),
    ]
    return AftPipeline(model).build(sources)


class TestPhase1:
    def test_duplicate_app_names_rejected(self):
        with pytest.raises(ToolchainError, match="duplicate"):
            build(IsolationModel.MPU, [
                AppSource("x", SIMPLE, ["on_event"]),
                AppSource("x", SIMPLE, ["on_event"]),
            ])

    def test_empty_build_rejected(self):
        with pytest.raises(ToolchainError):
            AftPipeline(IsolationModel.MPU).build([])

    def test_unknown_handler_rejected(self):
        with pytest.raises(ToolchainError, match="handler"):
            build(IsolationModel.MPU,
                  [AppSource("x", SIMPLE, ["missing"])])

    def test_feature_limited_rejects_pointers(self):
        with pytest.raises(RestrictionError):
            build(IsolationModel.FEATURE_LIMITED,
                  [AppSource("x", POINTERY, ["on_event"])])

    def test_feature_limited_rejects_recursion(self):
        with pytest.raises(RestrictionError, match="recursion"):
            build(IsolationModel.FEATURE_LIMITED,
                  [AppSource("x", RECURSIVE, ["on_event"])])

    def test_mpu_allows_recursion(self):
        firmware = build(IsolationModel.MPU,
                         [AppSource("x", RECURSIVE, ["on_event"])])
        assert firmware.apps["x"].stack_estimate.recursive

    def test_bad_app_name_rejected(self):
        with pytest.raises(ToolchainError):
            AppSource("__bad", SIMPLE, ["on_event"])


class TestPlacement:
    def test_apps_live_in_high_fram(self):
        firmware = build(IsolationModel.MPU)
        for app in firmware.apps.values():
            assert app.code_lo >= firmware.layout.app_base
            assert app.seg_hi <= firmware.layout.app_limit + 1

    def test_code_below_stack_below_data(self):
        """Paper: the stack tops out just under the data and grows
        down into execute-only code on overflow."""
        firmware = build(IsolationModel.MPU)
        for app in firmware.apps.values():
            assert app.code_hi <= app.seg_lo        # code below stack
            assert app.seg_lo < app.stack_top       # stack non-empty
            assert app.stack_top <= app.seg_hi      # data above stack

    def test_boundaries_are_16_byte_aligned(self):
        firmware = build(IsolationModel.MPU)
        for app in firmware.apps.values():
            assert app.seg_lo % 16 == 0
            assert app.seg_hi % 16 == 0
            assert app.code_lo % 16 == 0

    def test_apps_do_not_overlap(self):
        firmware = build(IsolationModel.MPU)
        ordered = firmware.app_list()
        for first, second in zip(ordered, ordered[1:]):
            assert first.seg_hi <= second.code_lo

    def test_boundary_symbols_resolve(self):
        firmware = build(IsolationModel.SOFTWARE_ONLY)
        for name, app in firmware.apps.items():
            bounds = boundary_symbols(name)
            assert firmware.symbol(bounds.code_lo) == app.code_lo
            assert firmware.symbol(bounds.code_hi) == app.code_hi
            assert firmware.symbol(bounds.seg_lo) == app.seg_lo
            assert firmware.symbol(bounds.seg_hi) == app.seg_hi

    def test_shared_stack_models_have_empty_stack_sections(self):
        firmware = build(IsolationModel.NO_ISOLATION)
        for app in firmware.apps.values():
            assert app.stack_bytes == 0

    def test_separate_stack_models_allocate_stacks(self):
        firmware = build(IsolationModel.MPU)
        for app in firmware.apps.values():
            assert app.stack_bytes >= 32
            assert app.stack_bytes % 16 == 0

    def test_recursive_app_gets_default_stack(self):
        firmware = build(IsolationModel.MPU, [
            AppSource("r", RECURSIVE, ["on_event"],
                      recursive_stack=256)])
        assert firmware.apps["r"].stack_bytes == 256


class TestMpuConfigs:
    def test_app_config_matches_paper_figure1(self):
        firmware = build(IsolationModel.MPU)
        for app in firmware.apps.values():
            config = app.mpu_config
            assert config.b1 == app.seg_lo
            assert config.b2 == app.seg_hi
            assert config.seg1.render() == "--X"
            assert config.seg2.render() == "RW-"
            assert config.seg3.render() == "---"

    def test_os_config(self):
        firmware = build(IsolationModel.MPU)
        config = firmware.os_mpu_config
        assert config.seg1.render() == "--X"
        assert config.seg2.render() == "RW-"
        assert config.seg3.render() == "RW-"
        assert config.b2 == firmware.layout.app_base

    def test_non_mpu_models_have_no_config(self):
        firmware = build(IsolationModel.SOFTWARE_ONLY)
        assert firmware.os_mpu_config is None
        for app in firmware.apps.values():
            assert app.mpu_config is None


class TestCheckInsertion:
    def _count_boundary_compares(self, model, source):
        pipeline = AftPipeline(model)
        pipeline.build([AppSource("probe", source, ["on_event"])])
        build = pipeline.report.apps["probe"]
        asm = build.unit.asm
        bounds = boundary_symbols("probe")
        return {
            "seg_lo": asm.count(f"#{bounds.seg_lo}"),
            "seg_hi": asm.count(f"#{bounds.seg_hi}"),
            "code_lo": asm.count(f"#{bounds.code_lo}"),
            "code_hi": asm.count(f"#{bounds.code_hi}"),
            "helper": asm.count("__aft_check_index"),
        }

    def test_no_isolation_inserts_nothing(self):
        counts = self._count_boundary_compares(
            IsolationModel.NO_ISOLATION, POINTERY)
        assert all(v == 0 for v in counts.values())

    def test_mpu_inserts_lower_checks_only(self):
        """The paper's core asymmetry: MPU needs half the checks."""
        counts = self._count_boundary_compares(
            IsolationModel.MPU, POINTERY)
        assert counts["seg_lo"] > 0
        assert counts["seg_hi"] == 0
        assert counts["code_hi"] == 0

    def test_software_only_inserts_both_bounds(self):
        counts = self._count_boundary_compares(
            IsolationModel.SOFTWARE_ONLY, POINTERY)
        assert counts["seg_lo"] > 0
        assert counts["seg_hi"] == counts["seg_lo"]

    def test_mpu_has_half_the_data_checks_of_software_only(self):
        mpu = self._count_boundary_compares(IsolationModel.MPU,
                                            POINTERY)
        sw = self._count_boundary_compares(
            IsolationModel.SOFTWARE_ONLY, POINTERY)
        assert (sw["seg_lo"] + sw["seg_hi"]) == \
            2 * (mpu["seg_lo"] + mpu["seg_hi"])

    def test_feature_limited_uses_helper(self):
        counts = self._count_boundary_compares(
            IsolationModel.FEATURE_LIMITED, SIMPLE)
        assert counts["helper"] > 0
        assert counts["seg_lo"] == 0

    def test_fn_pointer_checks(self):
        source = """
        int cb(int v) { return v; }
        int on_event(int arg) {
            int (*fp)(int) = cb;
            return fp(arg);
        }
        """
        mpu = self._count_boundary_compares(IsolationModel.MPU, source)
        sw = self._count_boundary_compares(
            IsolationModel.SOFTWARE_ONLY, source)
        assert mpu["code_lo"] > 0 and mpu["code_hi"] == 0
        assert sw["code_lo"] > 0 and sw["code_hi"] > 0

    def test_entry_points_skip_return_check(self):
        source = """
        int inner(int v) { return v * 2; }
        int on_event(int arg) { return inner(arg); }
        """
        pipeline = AftPipeline(IsolationModel.MPU)
        pipeline.build([AppSource("probe", source, ["on_event"])])
        asm = pipeline.report.apps["probe"].unit.asm
        bounds = boundary_symbols("probe")
        # exactly one return check (inner's), none for the handler
        assert asm.count(f"CMP #{bounds.code_lo}, 2(R4)") == 1


class TestFirmwareQueries:
    def test_handler_addresses_inside_code(self):
        firmware = build(IsolationModel.MPU)
        for name, app in firmware.apps.items():
            address = firmware.handler_address(name, "on_event")
            assert app.code_lo <= address < app.code_hi

    def test_unknown_handler_raises(self):
        firmware = build(IsolationModel.MPU)
        with pytest.raises(KeyError):
            firmware.handler_address("alpha", "nope")

    def test_app_of_address(self):
        firmware = build(IsolationModel.MPU)
        alpha = firmware.apps["alpha"]
        assert firmware.app_of_address(alpha.code_lo) == "alpha"
        assert firmware.app_of_address(0x4400) is None

    def test_report_describe(self):
        pipeline = AftPipeline(IsolationModel.MPU)
        pipeline.build([AppSource("alpha", SIMPLE, ["on_event"])])
        text = pipeline.report.describe()
        assert "alpha" in text and "stack=" in text

    def test_code_sections_disassemble(self):
        """Every byte the AFT placed as code decodes as instructions."""
        firmware = build(IsolationModel.MPU)
        machine = AmuletMachine(firmware)
        for app in firmware.apps.values():
            listing = disassemble_range(machine.cpu.memory,
                                        app.code_lo, app.code_hi)
            assert listing
