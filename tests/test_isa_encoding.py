"""Instruction model, binary encoding, and decode round-trips
(including a hypothesis property test over the whole instruction
space)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodeError, EncodingError
from repro.msp430.decoder import decode_bytes
from repro.msp430.encoding import CG_ENCODINGS, encode, encode_bytes
from repro.msp430.isa import (
    AddressingMode,
    FORMAT1_OPCODES,
    FORMAT2_OPCODES,
    Instruction,
    JUMP_OPCODES,
    Opcode,
    Operand,
    absolute,
    autoincrement,
    imm,
    indexed,
    indirect,
    reg,
    symbolic,
)
from repro.msp430.registers import Reg


class TestInstructionModel:
    def test_format1_requires_both_operands(self):
        with pytest.raises(EncodingError):
            Instruction(Opcode.MOV, src=reg(4))

    def test_format1_rejects_immediate_destination(self):
        with pytest.raises(EncodingError):
            Instruction(Opcode.ADD, src=reg(4), dst=imm(5))

    def test_format2_takes_one_operand(self):
        with pytest.raises(EncodingError):
            Instruction(Opcode.PUSH, src=reg(4), dst=reg(5))

    def test_reti_takes_none(self):
        with pytest.raises(EncodingError):
            Instruction(Opcode.RETI, src=reg(4))

    def test_swpb_has_no_byte_form(self):
        with pytest.raises(EncodingError):
            Instruction(Opcode.SWPB, byte=True, src=reg(4))

    def test_jump_offset_range(self):
        Instruction(Opcode.JMP, offset=511)
        Instruction(Opcode.JMP, offset=-512)
        with pytest.raises(EncodingError):
            Instruction(Opcode.JMP, offset=512)

    def test_size_words(self):
        assert Instruction(Opcode.MOV, src=reg(4),
                           dst=reg(5)).size_words() == 1
        assert Instruction(Opcode.MOV, src=imm(0x1234),
                           dst=reg(5)).size_words() == 2
        assert Instruction(Opcode.MOV, src=imm(0x1234),
                           dst=absolute(0x4400)).size_words() == 3

    def test_cg_immediates_are_one_word(self):
        for value in (0, 1, 2, 4, 8, 0xFFFF):
            insn = Instruction(Opcode.MOV, src=imm(value), dst=reg(5))
            assert insn.size_words() == 1

    def test_symboled_immediate_always_extends(self):
        insn = Instruction(Opcode.MOV, src=imm(0, symbol="x"),
                           dst=reg(5))
        assert insn.size_words() == 2

    def test_render(self):
        insn = Instruction(Opcode.ADD, src=imm(5), dst=reg(9))
        assert insn.render() == "ADD #5, R9"
        insn = Instruction(Opcode.MOV, byte=True,
                           src=indirect(7), dst=reg(8))
        assert insn.render() == "MOV.B @R7, R8"


class TestEncodingKnownValues:
    """Golden encodings cross-checked against the MSP430 ISA manual."""

    def test_mov_register(self):
        # MOV R4, R5 -> 0x4405
        assert encode(Instruction(Opcode.MOV, src=reg(4),
                                  dst=reg(5))) == [0x4405]

    def test_nop_encoding(self):
        # canonical NOP is MOV R3, R3 -> 0x4303
        assert encode(Instruction(Opcode.MOV, src=reg(3),
                                  dst=reg(3))) == [0x4303]

    def test_ret_encoding(self):
        # RET is MOV @SP+, PC -> 0x4130
        assert encode(Instruction(Opcode.MOV, src=autoincrement(Reg.SP),
                                  dst=reg(Reg.PC))) == [0x4130]

    def test_add_immediate_cg(self):
        # ADD #1, R5 uses CG2=01 -> 0x5315
        assert encode(Instruction(Opcode.ADD, src=imm(1),
                                  dst=reg(5))) == [0x5315]

    def test_push_register(self):
        # PUSH R11 -> 0x120B
        assert encode(Instruction(Opcode.PUSH,
                                  src=reg(11))) == [0x120B]

    def test_call_immediate(self):
        # CALL #0x4400 -> 0x12B0 0x4400
        assert encode(Instruction(Opcode.CALL,
                                  src=imm(0x4400))) == [0x12B0, 0x4400]

    def test_jmp(self):
        # JMP $+2 (offset 0) -> 0x3C00
        assert encode(Instruction(Opcode.JMP, offset=0)) == [0x3C00]

    def test_jnz_negative_offset(self):
        words = encode(Instruction(Opcode.JNE, offset=-1))
        assert words == [0x2000 | 0x3FF]

    def test_symbolic_is_pc_relative(self):
        insn = Instruction(Opcode.MOV, src=symbolic(0x4500), dst=reg(5))
        words = encode(insn, address=0x4400)
        # extension word sits at 0x4402; stored value target-extaddr
        assert words[1] == (0x4500 - 0x4402) & 0xFFFF

    def test_reti(self):
        assert encode(Instruction(Opcode.RETI)) == [0x1300]


def _operand_strategy(source: bool):
    regs = st.integers(min_value=4, max_value=15)
    choices = [
        st.builds(reg, regs),
        st.builds(indexed, st.integers(0, 0xFFFF), regs),
        st.builds(absolute, st.integers(0, 0xFFFF)),
        st.builds(symbolic, st.integers(0x100, 0xFF00).map(
            lambda v: v & 0xFFFE)),
    ]
    if source:
        choices += [
            st.builds(indirect, regs),
            st.builds(autoincrement, regs),
            st.builds(imm, st.integers(0, 0xFFFF)),
        ]
    return st.one_of(*choices)


@st.composite
def instructions(draw):
    kind = draw(st.sampled_from(["f1", "f2", "jump"]))
    if kind == "jump":
        opcode = draw(st.sampled_from(sorted(JUMP_OPCODES,
                                             key=lambda o: o.value)))
        return Instruction(opcode, offset=draw(
            st.integers(min_value=-512, max_value=511)))
    if kind == "f2":
        opcode = draw(st.sampled_from(sorted(FORMAT2_OPCODES,
                                             key=lambda o: o.value)))
        if opcode is Opcode.RETI:
            return Instruction(opcode)
        byte = draw(st.booleans()) and opcode not in (
            Opcode.SWPB, Opcode.SXT, Opcode.CALL)
        src = draw(_operand_strategy(source=True))
        if opcode not in (Opcode.PUSH, Opcode.CALL) and \
                src.mode is AddressingMode.IMMEDIATE:
            src = reg(4)    # shifts cannot take immediates
        return Instruction(opcode, byte=byte, src=src)
    opcode = draw(st.sampled_from(sorted(FORMAT1_OPCODES,
                                         key=lambda o: o.value)))
    return Instruction(opcode, byte=draw(st.booleans()),
                       src=draw(_operand_strategy(source=True)),
                       dst=draw(_operand_strategy(source=False)))


class TestRoundTrip:
    @given(insn=instructions(),
           address=st.integers(0, 0x7FF0).map(lambda v: v & 0xFFFE))
    @settings(max_examples=300, deadline=None)
    def test_encode_decode_roundtrip(self, insn, address):
        blob = encode_bytes(insn, address)
        decoded, size = decode_bytes(blob, address)
        assert size == len(blob)
        assert decoded.opcode is insn.opcode
        assert decoded.byte == insn.byte
        assert decoded.offset == insn.offset
        for original, parsed in ((insn.src, decoded.src),
                                 (insn.dst, decoded.dst)):
            if original is None:
                assert parsed is None
                continue
            assert parsed.mode is original.mode
            if original.mode in (AddressingMode.REGISTER,
                                 AddressingMode.INDIRECT,
                                 AddressingMode.AUTOINCREMENT,
                                 AddressingMode.INDEXED):
                assert parsed.register == original.register
            if original.mode in (AddressingMode.INDEXED,
                                 AddressingMode.ABSOLUTE,
                                 AddressingMode.SYMBOLIC):
                assert parsed.value == original.value
            if original.mode is AddressingMode.IMMEDIATE:
                assert parsed.value == original.value & 0xFFFF

    def test_decode_bad_opcode_raises(self):
        with pytest.raises(DecodeError):
            decode_bytes(b"\x00\x00", 0)

    def test_decode_truncated_raises(self):
        blob = encode_bytes(Instruction(Opcode.MOV, src=imm(0x1234),
                                        dst=reg(5)))
        with pytest.raises(DecodeError):
            decode_bytes(blob[:2], 0)
