"""Register-file behaviour."""

import pytest

from repro.msp430.registers import Reg, RegisterFile, SR


class TestRegisterFile:
    def test_starts_zeroed(self):
        regs = RegisterFile()
        assert all(regs.read(i) == 0 for i in range(16))

    def test_write_masks_to_16_bits(self):
        regs = RegisterFile()
        regs.write(Reg.R5, 0x12345)
        assert regs.read(Reg.R5) == 0x2345

    def test_pc_forced_even(self):
        regs = RegisterFile()
        regs.pc = 0x4401
        assert regs.pc == 0x4400

    def test_sp_forced_even(self):
        regs = RegisterFile()
        regs.sp = 0x23FF
        assert regs.sp == 0x23FE

    def test_general_register_keeps_odd_values(self):
        regs = RegisterFile()
        regs.write(Reg.R10, 0x1235)
        assert regs.read(Reg.R10) == 0x1235

    def test_flag_set_and_clear(self):
        regs = RegisterFile()
        regs.set_flag(SR.C, True)
        assert regs.carry
        regs.set_flag(SR.C, False)
        assert not regs.carry

    def test_set_nz_word(self):
        regs = RegisterFile()
        regs.set_nz(0x8000)
        assert regs.negative and not regs.zero
        regs.set_nz(0)
        assert regs.zero and not regs.negative

    def test_set_nz_byte_sign(self):
        regs = RegisterFile()
        regs.set_nz(0x80, byte=True)
        assert regs.negative

    def test_snapshot_restore_roundtrip(self):
        regs = RegisterFile()
        for i in range(16):
            regs.write(i, i * 0x101)
        snap = regs.snapshot()
        regs.write(Reg.R7, 0xDEAD)
        regs.restore(snap)
        assert regs.read(Reg.R7) == 7 * 0x101

    def test_restore_rejects_short_list(self):
        regs = RegisterFile()
        with pytest.raises(ValueError):
            regs.restore([0] * 15)

    def test_flags_live_in_sr(self):
        regs = RegisterFile()
        regs.set_flag(SR.C, True)
        regs.set_flag(SR.V, True)
        assert regs.sr & SR.C
        assert regs.sr & SR.V

    def test_reg_names(self):
        assert Reg.name(0) == "PC"
        assert Reg.name(1) == "SP"
        assert Reg.name(2) == "SR"
        assert Reg.name(15) == "R15"
