"""Shared fixtures: keep the persistent trace tier test-local.

The trace tier is append-only and persistent by design; without
isolation one test's published traces would warm another's "cold"
run.  Results stay byte-identical either way — only the
executed/replayed split moves — but the profile tests pin that
split, so every test gets a private tier directory.
"""

import pytest

from repro.fleet import tracetier


@pytest.fixture(autouse=True)
def _isolated_trace_tier(tmp_path_factory, monkeypatch):
    monkeypatch.setenv(
        "REPRO_TRACE_CACHE_DIR",
        str(tmp_path_factory.mktemp("trace-tier")))
    tracetier.clear_tier()
    yield
    tracetier.clear_tier()
