"""Shared execution cache and delta checkpoints.

The fleet-scale cache story makes three promises, each pinned here:

* **Mode transparency** — a campaign's telemetry is byte-identical
  whether devices share one process-wide translation store, keep
  private caches, or run the one-instruction reference interpreter.
* **Divergence isolation** — a device that rewrites its own code
  recompiles privately; a clean sibling attached to the same store
  keeps executing the original translation, unaffected.
* **Delta checkpoints** — snapshots serialize only pages that differ
  from the per-firmware base image and reconstruct exactly, even when
  the restoring process already holds a warm shared cache.
"""

import hashlib
import json
import pickle

import pytest

from repro.aft.models import IsolationModel
from repro.errors import ReproError
from repro.fleet.device import CACHE_MODES, make_device, \
    simulate_device
from repro.fleet.executor import FleetConfig, run_campaign
from repro.fleet.population import device_spec
from repro.fleet.snapshot import DELTA_PAGE, apply_delta, \
    memory_delta, restore_device, snapshot_device
from repro.msp430 import execcache
from repro.msp430.cpu import Cpu
from repro.msp430.encoding import encode_bytes
from repro.msp430.execcache import MAX_VARIANTS, \
    SharedExecutionCache, clear_registry, image_digest, \
    shared_execution_cache
from repro.msp430.isa import Instruction, Opcode, absolute, imm, reg
from repro.pool import worker_pool
from repro.ports import DONE_PORT

#: rogue-heavy and two models, so wild-pointer devices run next to
#: clean siblings under both containment and free memory corruption
_CAMPAIGN = dict(devices=3, hours=0.002, models=("mpu", "none"),
                 seed=7, checkpoint_minutes=0.05, rogue_fraction=0.6)

CODE = 0x4400


def _campaign_blobs(tmp_path, name, cache_mode):
    config = FleetConfig(**_CAMPAIGN)
    out = tmp_path / name
    run_campaign(config, out, jobs=1, cache_mode=cache_mode)
    return ((out / "summary.json").read_bytes(),
            *((out / f"devices-{key}.jsonl").read_bytes()
              for key in _CAMPAIGN["models"]))


class TestCacheModeTransparency:
    def test_summary_identical_across_cache_modes(self, tmp_path):
        """summary.json and every per-device record are byte-identical
        for shared / private / step execution — caching is purely a
        speed knob."""
        clear_registry()
        blobs = {mode: _campaign_blobs(tmp_path, mode, mode)
                 for mode in CACHE_MODES}
        assert blobs["shared"] == blobs["private"] == blobs["step"]
        # not vacuous: the shared run really did cross-device sharing
        pulls = sum(store.block_pulls + store.page_pulls
                    for store in execcache._REGISTRY.values())
        assert pulls > 0

    def test_unknown_cache_mode_rejected(self):
        spec = device_spec(1, 0)
        with pytest.raises(ReproError, match="cache mode"):
            make_device(spec, IsolationModel.MPU, cache_mode="turbo")


def _loaded_cpu(store, delta=3):
    """A halting three-instruction program; ``delta`` parameterizes
    the ADD immediate so callers can mint distinct code bytes."""
    cpu = Cpu()
    cpu.regs.sp = 0x2400
    cpu.memory.add_io(DONE_PORT, write=lambda a, v: cpu.halt())
    cpu.attach_shared_cache(store)
    program = [
        Instruction(Opcode.MOV, src=imm(0x1111), dst=reg(5)),
        Instruction(Opcode.ADD, src=imm(delta), dst=reg(5)),
        Instruction(Opcode.MOV, src=imm(1), dst=absolute(DONE_PORT)),
    ]
    address = CODE
    for insn in program:
        blob = encode_bytes(insn, address)
        cpu.memory.load(address, blob)
        address += len(blob)
    return cpu


def _run_to_halt(cpu):
    cpu.halted = False
    cpu.regs.pc = CODE
    cpu.regs.write(5, 0)
    cpu.run(max_cycles=10_000)
    assert cpu.halted
    return cpu.regs.read(5)


class TestSharedStoreMechanics:
    def test_sibling_pulls_published_translation(self):
        store = SharedExecutionCache()
        assert _run_to_halt(_loaded_cpu(store)) == 0x1114
        assert store.publishes > 0
        pulls_before = store.block_pulls + store.page_pulls
        assert _run_to_halt(_loaded_cpu(store)) == 0x1114
        assert store.block_pulls + store.page_pulls > pulls_before

    def test_self_modifying_device_diverges_privately(self):
        """One device rewrites its own ADD immediate mid-life; its next
        run executes the new code, while a clean sibling sharing the
        store keeps the original translation and the original result."""
        store = SharedExecutionCache()
        clean = _loaded_cpu(store)
        dirty = _loaded_cpu(store)
        assert _run_to_halt(clean) == 0x1114
        assert _run_to_halt(dirty) == 0x1114

        # the ADD's extension word (its immediate) sits 2 bytes past
        # the 4-byte MOV: rewrite 3 -> 5 through the device's own bus,
        # which pops the private translation via the write hooks
        dirty.memory.write_word(CODE + 6, 5)
        assert _run_to_halt(dirty) == 0x1116
        assert _run_to_halt(clean) == 0x1114      # sibling unaffected
        # the divergent bytes were published as a *new* variant; the
        # original variant is still first in the list
        rejects_or_variants = (len(store.blocks.get(CODE, []))
                               + len(store.pages))
        assert rejects_or_variants > 0

    def test_variant_cap_stops_publishing(self):
        """A device minting endless distinct code bytes at one PC fills
        the variant list to MAX_VARIANTS and then publishes nothing
        more (rejects counted), so rogue self-modification can't grow
        the store without bound."""
        store = SharedExecutionCache()
        for n in range(MAX_VARIANTS + 3):
            cpu = _loaded_cpu(store, delta=n + 1)
            assert _run_to_halt(cpu) == (0x1111 + n + 1) & 0xFFFF
        assert len(store.blocks[CODE]) == MAX_VARIANTS
        assert store.rejects > 0

    def test_registry_keyed_by_port_wiring(self):
        clear_registry()
        a = shared_execution_cache([0x100, 0x102])
        b = shared_execution_cache([0x102, 0x100])   # order-free
        c = shared_execution_cache([0x100, 0x104])
        assert a is b and a is not c
        clear_registry()
        assert shared_execution_cache([0x100, 0x102]) is not a


class TestDeltaCheckpoints:
    def test_delta_round_trip_and_minimality(self):
        base = bytes(range(256)) * 256               # 64 KB
        image = bytearray(base)
        image[10] ^= 0xFF                            # page 0
        image[DELTA_PAGE * 7 + 3] ^= 0x01            # page 7
        image[DELTA_PAGE * 7 + 200] ^= 0x80          # page 7 again
        delta = memory_delta(bytes(image), base)
        assert sorted(delta) == [0, DELTA_PAGE * 7]
        assert apply_delta(base, delta) == bytes(image)

    def test_identical_image_has_empty_delta(self):
        base = bytes(65536)
        assert memory_delta(base, base) == {}
        assert apply_delta(base, {}) == base

    def test_snapshot_is_delta_form_and_small(self):
        spec = device_spec(11, 3)
        run = simulate_device(spec, IsolationModel.MPU, sim_ms=30_000)
        assert run.scheduler.stats.events_delivered > 0
        snapshot = snapshot_device(run.machine, run.scheduler, 30_000)
        memory = snapshot["machine"]["memory"]
        assert memory["base_sha"] == run.machine.base_sha
        assert "bytes" not in memory
        # a duty-cycled device dirties a small fraction of 256 pages
        assert 0 < len(memory["delta"]) < 128
        assert len(pickle.dumps(snapshot)) < 40_000  # vs ~70 KB full

    def test_full_form_memory_still_accepted(self):
        """Tools and old tests may hand restore_device a full image;
        the delta layer must pass it through untouched."""
        spec = device_spec(11, 3)
        run = simulate_device(spec, IsolationModel.NO_ISOLATION,
                              sim_ms=500)
        snapshot = snapshot_device(run.machine, run.scheduler, 500)
        full = dict(snapshot["machine"])
        full["memory"] = {
            "bytes": apply_delta(run.machine.base_image,
                                 snapshot["machine"]["memory"]["delta"]),
        }
        snapshot = {**snapshot, "machine": full}
        machine, scheduler, _rogue = make_device(
            spec, IsolationModel.NO_ISOLATION)
        restore_device(machine, scheduler, snapshot)
        assert machine.state_dict() == run.machine.state_dict()

    def test_image_digest_matches_machine_base_sha(self):
        spec = device_spec(11, 3)
        machine, _scheduler, _rogue = make_device(
            spec, IsolationModel.MPU)
        assert machine.base_sha == image_digest(machine.base_image)


def _digest(run) -> str:
    blob = json.dumps((run.machine.state_dict(),
                       run.scheduler.state_dict()),
                      sort_keys=True,
                      default=lambda b: b.hex())
    return hashlib.sha256(blob.encode()).hexdigest()


def _warm_then_resume(spec, model, snapshot, sim_ms,
                      checkpoint_ms) -> str:
    """Worker entry point: warm this process's shared store with a
    full sibling run of the *same firmware*, then restore the snapshot
    into a machine that adopts those warm translations."""
    simulate_device(spec, model, sim_ms=sim_ms)
    run = simulate_device(spec, model, sim_ms=sim_ms,
                          checkpoint_every_ms=checkpoint_ms,
                          resume=snapshot)
    return _digest(run)


class TestRestoreIntoWarmCache:
    def test_restore_with_warm_shared_cache_is_byte_identical(self):
        """Regression: a restored device that pulls already-published
        superblocks (instead of translating privately from its
        restored memory) must still end bit-for-bit where the
        uninterrupted run ends."""
        spec = device_spec(23, 5, rogue_fraction=1.0)
        model = IsolationModel.MPU
        sim_ms, checkpoint_ms = 3000, 1100

        captured = []
        run = simulate_device(
            spec, model, sim_ms=sim_ms,
            checkpoint_every_ms=checkpoint_ms,
            on_checkpoint=lambda t, snap:
            captured.append(snap) if not captured else None)
        assert captured

        with worker_pool(2) as pool:
            resumed = pool.submit(_warm_then_resume, spec, model,
                                  captured[0], sim_ms,
                                  checkpoint_ms).result()
        assert resumed == _digest(run)
