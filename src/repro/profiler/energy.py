"""Energy model: cycles → Joules → battery-lifetime impact.

Parameters follow the MSP430FR5969 datasheet and the Amulet platform
paper:

* active current ≈ 100 µA/MHz at 3.0 V → at 16 MHz the CPU draws
  1.6 mA while executing; one cycle costs (1.6 mA × 3.0 V) / 16 MHz =
  0.3 nJ.
* an Amulet-class device carries a ~110 mAh battery (≈ 1188 J at 3 V)
  and targets roughly two weeks of battery life, giving a weekly energy
  budget of ≈ 594 J.

Battery-lifetime impact of an overhead is the fraction of the weekly
budget it consumes — the right-hand axis of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    cpu_mhz: float = 16.0
    active_ua_per_mhz: float = 100.0
    supply_volts: float = 3.0
    battery_mah: float = 110.0
    target_lifetime_weeks: float = 2.0

    @property
    def active_current_a(self) -> float:
        return self.active_ua_per_mhz * self.cpu_mhz * 1e-6

    @property
    def joules_per_cycle(self) -> float:
        power_watts = self.active_current_a * self.supply_volts
        return power_watts / (self.cpu_mhz * 1e6)

    @property
    def battery_joules(self) -> float:
        return self.battery_mah * 1e-3 * 3600.0 * self.supply_volts

    @property
    def weekly_budget_joules(self) -> float:
        return self.battery_joules / self.target_lifetime_weeks

    def cycles_to_joules(self, cycles: float) -> float:
        return cycles * self.joules_per_cycle

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.cpu_mhz * 1e6)

    def battery_impact_percent(self, overhead_cycles_per_week: float
                               ) -> float:
        """Share of the weekly energy budget burned by the overhead."""
        overhead_j = self.cycles_to_joules(overhead_cycles_per_week)
        return 100.0 * overhead_j / self.weekly_budget_joules
