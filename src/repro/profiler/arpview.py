"""ARP-view: weekly overhead extrapolation (Figure 2 methodology).

Combines three ingredients, exactly as paper section 4.1 describes:

1. ARP counts — memory accesses and context switches per handler
   invocation (:mod:`repro.profiler.arp`);
2. event rates — how often each handler fires, from the app manifest;
3. per-operation overheads — the *extra* cycles each memory model pays
   per memory access and per context switch, taken from the Table 1
   microbenchmark (:mod:`repro.experiments.table1`).

The product, summed over handlers and a week of events, is the
isolation overhead in cycles/week; the energy model converts it to a
battery-lifetime impact percentage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.aft.models import IsolationModel
from repro.apps.manifests import AppManifest
from repro.profiler.arp import ArpProfile
from repro.profiler.energy import EnergyModel


@dataclass(frozen=True)
class OperationOverheads:
    """Extra cycles vs. No Isolation for one memory model."""

    model: IsolationModel
    per_memory_access: float
    per_context_switch: float


@dataclass
class WeeklyOverhead:
    app: str
    model: IsolationModel
    cycles_per_week: float
    battery_impact_percent: float
    memory_access_cycles: float
    context_switch_cycles: float

    @property
    def billions_of_cycles(self) -> float:
        return self.cycles_per_week / 1e9


class ArpView:
    def __init__(self, energy: Optional[EnergyModel] = None):
        self.energy = energy if energy is not None else EnergyModel()

    def weekly_overhead(self, profile: ArpProfile,
                        manifest: AppManifest,
                        overheads: OperationOverheads) -> WeeklyOverhead:
        mem_cycles = 0.0
        switch_cycles = 0.0
        for rate in manifest.rates:
            counts = profile.handlers[rate.handler]
            events = rate.events_per_week
            mem_cycles += (events * counts.memory_accesses
                           * overheads.per_memory_access)
            switch_cycles += (events * counts.context_switches
                              * overheads.per_context_switch)
        total = mem_cycles + switch_cycles
        return WeeklyOverhead(
            app=profile.app, model=overheads.model,
            cycles_per_week=total,
            battery_impact_percent=self.energy.battery_impact_percent(
                total),
            memory_access_cycles=mem_cycles,
            context_switch_cycles=switch_cycles)
