"""ARP: count memory accesses and context switches per handler.

Paper section 4.1: *"We use the Amulet Resource Profiler (ARP) and the
ARP-view tool to count the number of memory accesses and context
switches per state and transition, per application."*

Implementation: the apps are rebuilt once with a **counting policy** —
instead of bounds checks, every would-be-checked site (array access,
pointer dereference, function-pointer call, return) writes a site-kind
code to a count port the profiler watches.  Each handler is then
dispatched many times with live sensor arguments, and the counts are
averaged.  API calls (context switches) are counted at the service
port.  Timing of the counting build is irrelevant — only the counts
leave this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.aft.models import _AppCheckPolicy
from repro.aft.phases import AftPipeline, AppSource
from repro.aft.models import IsolationModel
from repro.kernel.events import Event, EventType
from repro.kernel.machine import AmuletMachine
from repro.kernel.scheduler import AppSchedule, Scheduler
from repro.apps.manifests import AppManifest
from repro.ports import (
    COUNT_DATA_ACCESS,
    COUNT_FN_POINTER,
    COUNT_PORT,
    COUNT_RETURN,
)


class CountingPolicy(_AppCheckPolicy):
    """Emits a count-port write wherever a check would go."""

    name = "counting"

    def data_pointer_check(self, gen, reg: str, is_write: bool) -> None:
        gen.emit(f"MOV #{COUNT_DATA_ACCESS}, &0x{COUNT_PORT:04X}")

    def fn_pointer_check(self, gen, reg: str) -> None:
        gen.emit(f"MOV #{COUNT_FN_POINTER}, &0x{COUNT_PORT:04X}")

    def return_check(self, gen) -> None:
        if gen.function.name in self.entry_points:
            return
        gen.emit(f"MOV #{COUNT_RETURN}, &0x{COUNT_PORT:04X}")

    # Feature-Limited's array check covers the same *sites* as the
    # pointer models' data check in these (pointer-free) apps, so one
    # data-access count serves every model.


@dataclass
class HandlerCounts:
    """Average per-invocation counts for one handler."""

    handler: str
    samples: int = 0
    data_accesses: float = 0.0
    fn_pointer_calls: float = 0.0
    returns: float = 0.0
    api_calls: float = 0.0

    @property
    def memory_accesses(self) -> float:
        return self.data_accesses

    @property
    def context_switches(self) -> float:
        """One dispatch plus one OS round trip per API call."""
        return 1.0 + self.api_calls


@dataclass
class ArpProfile:
    app: str
    handlers: Dict[str, HandlerCounts] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [f"ARP profile for {self.app}:"]
        for counts in self.handlers.values():
            lines.append(
                f"  {counts.handler}: mem={counts.memory_accesses:.1f} "
                f"api={counts.api_calls:.2f} "
                f"switches={counts.context_switches:.2f} "
                f"(n={counts.samples})")
        return "\n".join(lines)


class ArpProfiler:
    """Builds the counting firmware once and profiles handlers."""

    def __init__(self, apps: Sequence[AppSource]):
        pipeline = AftPipeline(
            IsolationModel.NO_ISOLATION,
            policy_factory=lambda name, entries: CountingPolicy(
                name, entries))
        self.firmware = pipeline.build(list(apps))
        self.machine = AmuletMachine(self.firmware)
        self._counters = {COUNT_DATA_ACCESS: 0, COUNT_FN_POINTER: 0,
                          COUNT_RETURN: 0}
        self.machine.cpu.memory.add_io(COUNT_PORT, write=self._on_count)
        self._scheduler = Scheduler(self.machine)

    def _on_count(self, _addr: int, value: int) -> None:
        if value in self._counters:
            self._counters[value] += 1

    def _reset_counters(self) -> None:
        for key in self._counters:
            self._counters[key] = 0

    def _api_calls_delta(self, before: Dict[int, int]) -> int:
        after = self.machine.services.calls
        return sum(after.get(k, 0) for k in after) - \
            sum(before.values())

    def profile_handler(self, app: str, handler: str,
                        event_type: EventType,
                        samples: int = 64) -> HandlerCounts:
        """Dispatch ``handler`` repeatedly with live sensor args."""
        counts = HandlerCounts(handler)
        env = self.machine.services.env
        scheduler = self._scheduler
        for index in range(samples):
            self._reset_counters()
            calls_before = dict(self.machine.services.calls)
            event = Event(time=index, app=app, handler=handler,
                          event_type=event_type)
            args = scheduler._sample_args(event)
            result = self.machine.dispatch(app, handler, args)
            if result.faulted:
                raise RuntimeError(
                    f"counting build faulted in {app}.{handler}: "
                    f"{result.fault.describe()}")
            counts.samples += 1
            counts.data_accesses += self._counters[COUNT_DATA_ACCESS]
            counts.fn_pointer_calls += self._counters[COUNT_FN_POINTER]
            counts.returns += self._counters[COUNT_RETURN]
            counts.api_calls += self._api_calls_delta(calls_before)
        if counts.samples:
            counts.data_accesses /= counts.samples
            counts.fn_pointer_calls /= counts.samples
            counts.returns /= counts.samples
            counts.api_calls /= counts.samples
        return counts

    def profile_app(self, manifest: AppManifest,
                    samples: int = 64) -> ArpProfile:
        profile = ArpProfile(manifest.name)
        for rate in manifest.rates:
            profile.handlers[rate.handler] = self.profile_handler(
                manifest.name, rate.handler, rate.event_type,
                samples=samples)
        return profile
