"""The Amulet Resource Profiler (ARP) and its companions.

* :mod:`repro.profiler.arp` — counts memory accesses and context
  switches per handler by running a *counting build* of each app
  (instrumentation at every would-be-checked site).
* :mod:`repro.profiler.arpview` — combines ARP counts with manifest
  event rates and per-operation overheads to extrapolate weekly
  isolation overhead per app and model (the Figure 2 methodology).
* :mod:`repro.profiler.energy` — converts cycles to Joules and battery
  lifetime impact.
"""

from repro.profiler.arp import ArpProfiler, HandlerCounts, ArpProfile
from repro.profiler.arpview import (
    ArpView,
    OperationOverheads,
    WeeklyOverhead,
)
from repro.profiler.energy import EnergyModel

__all__ = [
    "ArpProfiler", "HandlerCounts", "ArpProfile",
    "ArpView", "OperationOverheads", "WeeklyOverhead",
    "EnergyModel",
]
