"""Binary decoding of MSP430 instructions.

The decoder is the inverse of :mod:`repro.msp430.encoding`; the pair is
round-trip property-tested.  Decoding needs the instruction address to
reconstruct symbolic (PC-relative) operand targets.

The constant-generator encodings (R3 any mode, R2 with As>=2) decode back
into immediate operands, so the CPU execution engine never needs to know
about constant generators at all.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.errors import DecodeError
from repro.msp430.isa import (
    AddressingMode,
    Instruction,
    Opcode,
    Operand,
)
from repro.msp430.registers import Reg

_M = AddressingMode

_FORMAT1_BY_OPCODE = {
    op.value: op for op in Opcode if op.is_format1
}
_FORMAT2_BY_BITS = {
    op.value: op for op in Opcode if op.is_format2
}
_JUMP_BY_BITS = {
    op.value: op for op in Opcode if op.is_jump
}

# (register, As) -> constant, for constant-generator source decoding.
_CG_DECODE = {
    (Reg.CG2, 0b00): 0,
    (Reg.CG2, 0b01): 1,
    (Reg.CG2, 0b10): 2,
    (Reg.CG2, 0b11): 0xFFFF,
    (Reg.SR, 0b10): 4,
    (Reg.SR, 0b11): 8,
}


class WordReader:
    """Pulls successive 16-bit words from a fetch callback, tracking the
    current address so PC-relative operands decode correctly."""

    def __init__(self, fetch: Callable[[int], int], address: int):
        self._fetch = fetch
        self.address = address
        self.start = address

    def next(self) -> int:
        word = self._fetch(self.address) & 0xFFFF
        self.address += 2
        return word

    @property
    def consumed_words(self) -> int:
        return (self.address - self.start) // 2


def _decode_source(as_bits: int, register: int,
                   reader: WordReader) -> Operand:
    constant = _CG_DECODE.get((register, as_bits))
    if constant is not None:
        return Operand(_M.IMMEDIATE, value=constant)

    if as_bits == 0b00:
        return Operand(_M.REGISTER, register=register)
    if as_bits == 0b01:
        ext_addr = reader.address
        ext = reader.next()
        if register == Reg.PC:
            return Operand(_M.SYMBOLIC, register=Reg.PC,
                           value=(ext + ext_addr) & 0xFFFF)
        if register == Reg.SR:
            return Operand(_M.ABSOLUTE, register=Reg.SR, value=ext)
        return Operand(_M.INDEXED, register=register, value=ext)
    if as_bits == 0b10:
        return Operand(_M.INDIRECT, register=register)
    # as_bits == 0b11
    if register == Reg.PC:
        return Operand(_M.IMMEDIATE, value=reader.next())
    return Operand(_M.AUTOINCREMENT, register=register)


def _decode_dest(ad_bit: int, register: int, reader: WordReader) -> Operand:
    if ad_bit == 0:
        return Operand(_M.REGISTER, register=register)
    ext_addr = reader.address
    ext = reader.next()
    if register == Reg.PC:
        return Operand(_M.SYMBOLIC, register=Reg.PC,
                       value=(ext + ext_addr) & 0xFFFF)
    if register == Reg.SR:
        return Operand(_M.ABSOLUTE, register=Reg.SR, value=ext)
    return Operand(_M.INDEXED, register=register, value=ext)


def decode(fetch: Callable[[int], int],
           address: int) -> Tuple[Instruction, int]:
    """Decode one instruction starting at ``address``.

    ``fetch`` maps a word-aligned address to the 16-bit word stored there.
    Returns ``(instruction, size_in_bytes)``.
    """
    reader = WordReader(fetch, address)
    word = reader.next()

    major = (word >> 12) & 0xF
    if major == 0x1:
        bits = word & 0x1F80
        opcode = _FORMAT2_BY_BITS.get(bits)
        if opcode is None:
            raise DecodeError(f"bad format-II word 0x{word:04X} "
                              f"at 0x{address:04X}")
        if opcode is Opcode.RETI:
            return Instruction(Opcode.RETI), 2
        byte = bool(word & 0x40)
        as_bits = (word >> 4) & 0b11
        register = word & 0xF
        src = _decode_source(as_bits, register, reader)
        insn = Instruction(opcode, byte=byte, src=src)
        return insn, 2 * reader.consumed_words

    if major in (0x2, 0x3):
        opcode = _JUMP_BY_BITS.get(word & 0x3C00)
        if opcode is None:
            raise DecodeError(f"bad jump word 0x{word:04X}")
        offset = word & 0x3FF
        if offset & 0x200:
            offset -= 0x400
        return Instruction(opcode, offset=offset), 2

    opcode = _FORMAT1_BY_OPCODE.get(major)
    if opcode is None:
        raise DecodeError(f"bad opcode nibble 0x{major:X} in word "
                          f"0x{word:04X} at 0x{address:04X}")
    byte = bool(word & 0x40)
    as_bits = (word >> 4) & 0b11
    ad_bit = (word >> 7) & 1
    src_reg = (word >> 8) & 0xF
    dst_reg = word & 0xF
    src = _decode_source(as_bits, src_reg, reader)
    dst = _decode_dest(ad_bit, dst_reg, reader)
    insn = Instruction(opcode, byte=byte, src=src, dst=dst)
    return insn, 2 * reader.consumed_words


def decode_bytes(blob: bytes, address: int = 0) -> Tuple[Instruction, int]:
    """Decode from a byte buffer whose first byte lives at ``address``."""

    def fetch(addr: int) -> int:
        index = addr - address
        if index + 1 >= len(blob) + 1:
            raise DecodeError(f"decode ran past end of buffer at 0x{addr:04X}")
        try:
            return blob[index] | (blob[index + 1] << 8)
        except IndexError as exc:
            raise DecodeError("decode ran past end of buffer") from exc

    return decode(fetch, address)
