"""64 KB memory bus with the MSP430FR5969 region map.

Figure 1 of the paper draws the map this simulator implements:

====================  =================  ==========================
Address range         Region             Notes
====================  =================  ==========================
0x0000 - 0x0FFF       peripheral regs    not protectable by the MPU
0x1000 - 0x17FF       bootstrap loader   ROM
0x1800 - 0x19FF       InfoMem            512 B FRAM, MPU segment 0
0x1A00 - 0x1AFF       device descriptor  ROM
0x1B00 - 0x1BFF       *no memory*
0x1C00 - 0x23FF       SRAM (2 KB)        OS stack lives here
0x2400 - 0x43FF       *no memory*
0x4400 - 0xFF7F       main FRAM          OS + apps (MPU segments 1-3)
0xFF80 - 0xFFFF       interrupt vectors  top of FRAM
====================  =================  ==========================

Accesses to unmapped holes raise :class:`~repro.errors.MemoryAccessError`
— on real hardware they trigger a vacant-memory-access reset.  Word
accesses ignore bit 0 of the address, as the hardware does.

The bus supports memory-mapped I/O handlers (the MPU registers and the
kernel's service/done ports use them) and access-observer hooks used by
the profiler.

Permission fast path
--------------------

Instead of walking the region list and the MPU segment map on every
access, the bus keeps a flat per-address permission bitmap: one byte
per address whose low three bits say whether a read (bit 0), write
(bit 1) or execute (bit 2) is allowed there.  The bitmap is the AND of

* the static region permissions (computed once at construction), and
* the attached MPU's *permission overlay* (recomputed only when the
  MPU configuration changes — the MPU invalidates the bitmap from its
  register-write handlers, and overlays are memoized per configuration
  signature so swapping between the OS and per-app configurations is a
  dict hit).

When the bitmap denies an access, the original region walk + MPU
segment check runs as a slow path so the error type, message, and MPU
violation-flag side effects are bit-for-bit what they always were.
Architecture-visible behaviour is unchanged; only speed differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import MemoryAccessError

READ = "read"
WRITE = "write"
EXECUTE = "execute"

#: permission bitmap bits (match the MPU's SAM R/W/X bit values)
PERM_R = 0b001
PERM_W = 0b010
PERM_X = 0b100

_KIND_BIT = {READ: PERM_R, WRITE: PERM_W, EXECUTE: PERM_X}

#: translation tables for OR-ing a grant into an overlay slice at C
#: speed: ``buf[s:e] = buf[s:e].translate(OR_TABLES[bits])``
OR_TABLES = tuple(bytes(v | b for v in range(256)) for b in range(8))


@dataclass(frozen=True)
class Region:
    """One contiguous region of the address space."""

    name: str
    start: int
    end: int              # inclusive
    readable: bool = True
    writable: bool = True
    executable: bool = True
    present: bool = True

    def contains(self, address: int) -> bool:
        return self.start <= address <= self.end

    def allows(self, kind: str) -> bool:
        if not self.present:
            return False
        if kind == READ:
            return self.readable
        if kind == WRITE:
            return self.writable
        return self.executable

    def permission_bits(self) -> int:
        if not self.present:
            return 0
        return ((PERM_R if self.readable else 0)
                | (PERM_W if self.writable else 0)
                | (PERM_X if self.executable else 0))


class MemoryMap:
    """The FR5969 region layout, plus named landmarks."""

    PERIPH_START = 0x0000
    PERIPH_END = 0x0FFF
    BSL_START = 0x1000
    BSL_END = 0x17FF
    INFOMEM_START = 0x1800
    INFOMEM_END = 0x19FF
    DEVDESC_START = 0x1A00
    DEVDESC_END = 0x1AFF
    HOLE1_START = 0x1B00
    HOLE1_END = 0x1BFF
    SRAM_START = 0x1C00
    SRAM_END = 0x23FF
    HOLE2_START = 0x2400
    HOLE2_END = 0x43FF
    FRAM_START = 0x4400
    FRAM_END = 0xFF7F
    VECTORS_START = 0xFF80
    VECTORS_END = 0xFFFF

    RESET_VECTOR = 0xFFFE

    def __init__(self) -> None:
        self.regions: List[Region] = [
            Region("peripherals", self.PERIPH_START, self.PERIPH_END,
                   executable=False),
            Region("bsl", self.BSL_START, self.BSL_END, writable=False),
            Region("infomem", self.INFOMEM_START, self.INFOMEM_END,
                   executable=False),
            Region("devdesc", self.DEVDESC_START, self.DEVDESC_END,
                   writable=False, executable=False),
            Region("hole1", self.HOLE1_START, self.HOLE1_END, present=False),
            Region("sram", self.SRAM_START, self.SRAM_END),
            Region("hole2", self.HOLE2_START, self.HOLE2_END, present=False),
            Region("fram", self.FRAM_START, self.FRAM_END),
            Region("vectors", self.VECTORS_START, self.VECTORS_END),
        ]
        # O(1) lookup: every region boundary is 128-byte aligned, so a
        # 512-entry page table covers the space exactly.
        self.page_table: List[Region] = []
        for page in range(512):
            address = page << 7
            self.page_table.append(next(
                r for r in self.regions if r.contains(address)))

    def region_at(self, address: int) -> Region:
        if not 0 <= address <= 0xFFFF:
            raise MemoryAccessError(address, READ, "outside 64 KB space")
        return self.page_table[address >> 7]

    def region_permission_bytes(self) -> bytes:
        """Flat per-address allowed-bits map of the static regions."""
        perm = bytearray(0x10000)
        for region in self.regions:
            bits = region.permission_bits()
            perm[region.start:region.end + 1] = \
                bytes([bits]) * (region.end - region.start + 1)
        return bytes(perm)

    @classmethod
    def in_main_fram(cls, address: int) -> bool:
        """Is ``address`` in the MPU-coverable main FRAM (incl. vectors)?"""
        return cls.FRAM_START <= address <= cls.VECTORS_END

    @classmethod
    def in_infomem(cls, address: int) -> bool:
        return cls.INFOMEM_START <= address <= cls.INFOMEM_END


ReadHandler = Callable[[int], int]
WriteHandler = Callable[[int, int], None]
Observer = Callable[[int, str, int], None]

#: interned static region bitmaps, keyed by value.  Every Memory built
#: from the same map shares one ``bytes`` object, which in turn makes
#: the combined (region & MPU) bitmaps below shareable by identity —
#: the CPU's superblocks cache the bitmap *object* they were last
#: execute-validated against, so identical MPU configurations on
#: different devices must yield the same object, not just equal bytes.
_REGION_PERM_INTERN: Dict[bytes, bytes] = {}

#: process-global combined-bitmap memo: (region bitmap id, MPU
#: configuration signature) -> combined bitmap.  Signatures fully
#: determine the overlay (see Mpu.permission_signature), so the memo
#: is safe to share across devices; region ids are stable because the
#: intern table above keeps every region bitmap alive.
_PERM_MEMO: Dict[tuple, bytes] = {}


def _intern_region_perm(perm: bytes) -> bytes:
    return _REGION_PERM_INTERN.setdefault(perm, perm)


class Memory:
    """The simulated bus.

    Checks, in order: region presence/attributes, MPU (if attached and
    enabled), then performs the access.  I/O handlers intercept word
    accesses to registered addresses before touching backing storage.
    """

    def __init__(self, memory_map: Optional[MemoryMap] = None):
        self.map = memory_map if memory_map is not None else MemoryMap()
        self._bytes = bytearray(0x10000)
        self.mpu = None  # set by Cpu / kernel; avoids circular import
        self._io_read: Dict[int, ReadHandler] = {}
        self._io_write: Dict[int, WriteHandler] = {}
        # one-past the highest registered port: lets the word access
        # paths skip the handler-dict hash for ordinary RAM addresses
        self._io_rmax = 0
        self._io_wmax = 0
        self._observers: List[Observer] = []
        # When True, region/MPU checks are bypassed (loader, debugger).
        self._supervisor_depth = 0
        # Invoked with the written address; the CPU registers one to
        # invalidate its decoded-instruction cache (self-modifying
        # code, loaders), profilers and watchpoint engines may add
        # their own — hooks chain instead of clobbering each other.
        self.write_hooks: List[WriteHandler] = []
        # -- invalidation fast path ----------------------------------
        # The CPU's icache/superblock invalidator is the one hook that
        # fires on *every* backing-store write, but it only has work to
        # do when the written page actually holds decoded code.  It
        # registers here with a 1024-entry per-64-byte-page mask (shared
        # by reference with the CPU, which sets bits as it caches); the
        # write paths probe the mask and skip the Python call for the
        # overwhelmingly common data-page write.
        self._inv_hook: Optional[WriteHandler] = None
        self._inv_mask: Optional[bytearray] = None
        # -- permission fast path ------------------------------------
        #: static region allowed-bits, computed once and interned so
        #: identical maps share one object across Memory instances
        self._region_perm: bytes = _intern_region_perm(
            self.map.region_permission_bytes())
        #: active bitmap (region & MPU overlay); None means the fast
        #: path is unavailable (an MPU without overlay support)
        self._perm: Optional[bytes] = self._region_perm
        #: set by :meth:`invalidate_permissions`; forces a rebuild on
        #: the next checked access
        self._perm_stale = False
        #: overlay memo: MPU configuration signature -> combined bitmap
        self._perm_cache: Dict[tuple, Optional[bytes]] = {}

    # -- configuration -----------------------------------------------------
    def add_io(self, address: int,
               read: Optional[ReadHandler] = None,
               write: Optional[WriteHandler] = None) -> None:
        """Register a memory-mapped I/O word at ``address``."""
        if address & 1:
            raise ValueError("I/O ports must be word aligned")
        if read is not None:
            self._io_read[address] = read
            if address >= self._io_rmax:
                self._io_rmax = address + 1
        if write is not None:
            self._io_write[address] = write
            if address >= self._io_wmax:
                self._io_wmax = address + 1

    def io_addresses(self) -> frozenset:
        """Every word address with a registered I/O handler (read or
        write).  The CPU's superblock compiler terminates blocks at
        instructions that statically address one of these — kernel
        gate ports, MPU registers, the cycle timer — so port side
        effects always run under the exact ``step()`` path."""
        return frozenset(self._io_read) | frozenset(self._io_write)

    def add_observer(self, observer: Observer) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        self._observers.remove(observer)

    def add_write_hook(self, hook: WriteHandler) -> None:
        """Chain a callback invoked after every write with the address
        (``-1`` for bulk loads).  Hooks run in registration order."""
        self.write_hooks.append(hook)

    def remove_write_hook(self, hook: WriteHandler) -> None:
        self.write_hooks.remove(hook)

    def set_invalidator(self, hook: WriteHandler,
                        mask: bytearray) -> None:
        """Install the CPU's code-cache invalidator with its page mask.

        ``mask`` has one byte per 64-byte page; a nonzero byte means
        the page (or an instruction spilling into it from the previous
        page) holds cached decoded code.  Per-address writes only call
        ``hook`` when the mask says the write can touch cached code;
        bulk writes (:meth:`load`, :meth:`fill`, :meth:`load_state`)
        always call it with address ``-1``."""
        if len(mask) != 1024:
            raise ValueError("invalidator mask must cover 1024 pages")
        self._inv_hook = hook
        self._inv_mask = mask

    # -- permission bitmap -------------------------------------------------
    def invalidate_permissions(self) -> None:
        """Mark the flat permission bitmap stale (MPU config changed)."""
        self._perm_stale = True

    def _refresh_permissions(self) -> Optional[bytes]:
        """Rebuild the active bitmap from the region map and the MPU."""
        self._perm_stale = False
        mpu = self.mpu
        if mpu is None:
            self._perm = self._region_perm
            return self._perm
        signature_fn = getattr(mpu, "permission_signature", None)
        if signature_fn is None:
            # Unknown MPU implementation: disable the fast path and
            # consult it on every access via the slow path.
            self._perm = None
            return None
        sig = signature_fn()
        perm = self._perm_cache.get(sig)
        if perm is None:
            # L2: the process-global memo.  Signatures fully determine
            # overlays, and region bitmaps are interned, so two devices
            # with the same map and MPU configuration share the *same*
            # combined bitmap object — which keeps superblock
            # ``perm_ok is perm`` revalidation an identity hit even for
            # blocks pulled from the shared execution cache.
            key = (id(self._region_perm), sig)
            perm = _PERM_MEMO.get(key)
            if perm is None:
                overlay = mpu.permission_overlay()
                if overlay is None:
                    perm = self._region_perm
                else:
                    combined = (int.from_bytes(self._region_perm,
                                               "little")
                                & int.from_bytes(overlay, "little"))
                    perm = combined.to_bytes(0x10000, "little")
                _PERM_MEMO[key] = perm
            self._perm_cache[sig] = perm
        self._perm = perm
        return perm

    def access_allowed(self, address: int, kind: str) -> bool:
        """Would a ``kind`` access at ``address`` be permitted?

        Side-effect free (no MPU violation flags are raised or set);
        used by tests and tooling to probe the permission bitmap."""
        if not 0 <= address <= 0xFFFF:
            return False
        if self._perm_stale:
            self._refresh_permissions()
        perm = self._perm
        if perm is not None:
            return bool(perm[address] & _KIND_BIT[kind])
        # Slow-path probe against an MPU without overlay support: ask
        # the region map, then the MPU, undoing violation side effects.
        if not self.map.page_table[address >> 7].allows(kind):
            return False
        if self.mpu is None:
            return True
        from repro.errors import MpuViolationError
        try:
            self.mpu.check(address, kind)
        except (MpuViolationError, MemoryAccessError):
            return False
        return True

    # -- supervisor (unchecked) access --------------------------------------
    class _Supervisor:
        def __init__(self, memory: "Memory"):
            self._memory = memory

        def __enter__(self) -> "Memory":
            self._memory._supervisor_depth += 1
            return self._memory

        def __exit__(self, *exc) -> None:
            self._memory._supervisor_depth -= 1

    def supervisor(self) -> "Memory._Supervisor":
        """Context manager for loader/debugger access that skips checks."""
        return Memory._Supervisor(self)

    # -- checks --------------------------------------------------------------
    def _check(self, address: int, kind: str) -> None:
        if self._supervisor_depth:
            return
        if self._perm_stale:
            self._refresh_permissions()
        perm = self._perm
        if perm is not None and 0 <= address <= 0xFFFF \
                and perm[address] & _KIND_BIT[kind]:
            return
        self._check_slow(address, kind)

    def _check_slow(self, address: int, kind: str) -> None:
        """The original region walk + MPU segment check.  Runs when the
        bitmap denies (or cannot answer); raises the same errors with
        the same MPU violation-flag side effects as always."""
        if not 0 <= address <= 0xFFFF:
            raise MemoryAccessError(address, kind, "outside 64 KB space")
        region = self.map.page_table[address >> 7]
        if not region.allows(kind):
            reason = ("no memory" if not region.present
                      else f"{region.name} is not {kind[:-1]}able"
                      if kind != EXECUTE else
                      f"{region.name} is not executable")
            raise MemoryAccessError(address, kind, reason)
        if self.mpu is not None:
            self.mpu.check(address, kind)

    def _notify(self, address: int, kind: str, size: int) -> None:
        for observer in self._observers:
            observer(address, kind, size)

    # -- byte access -----------------------------------------------------------
    def read_byte(self, address: int, kind: str = READ) -> int:
        address &= 0xFFFF
        if not self._supervisor_depth:
            if self._perm_stale:
                self._refresh_permissions()
            perm = self._perm
            if perm is None or not perm[address] & \
                    (PERM_R if kind is READ else _KIND_BIT[kind]):
                self._check_slow(address, kind)
        if self._observers:
            self._notify(address, kind, 1)
        base = address & ~1
        if base < self._io_rmax and base in self._io_read:
            word = self._io_read[base]() & 0xFFFF
            return (word >> 8) & 0xFF if address & 1 else word & 0xFF
        return self._bytes[address]

    def write_byte(self, address: int, value: int) -> None:
        address &= 0xFFFF
        if not self._supervisor_depth:
            if self._perm_stale:
                self._refresh_permissions()
            perm = self._perm
            if perm is None or not perm[address] & PERM_W:
                self._check_slow(address, WRITE)
        if self._observers:
            self._notify(address, WRITE, 1)
        base = address & ~1
        if base < self._io_wmax and base in self._io_write:
            # Byte writes to I/O ports write the low byte, high byte zero,
            # matching MSP430 peripheral semantics.
            self._io_write[base](base, value & 0xFF)
            return
        self._bytes[address] = value & 0xFF
        inv = self._inv_hook
        if inv is not None:
            mask = self._inv_mask
            page = address >> 6
            # the written page, or code spilling into it from the
            # previous page (an entry indexed there reaches at most 4
            # bytes into this page: 6-byte max instruction)
            if mask[page] or (address & 63 < 4 and mask[page - 1]):
                inv(address, value)
        for hook in self.write_hooks:
            hook(address, value)

    # -- word access ------------------------------------------------------------
    def read_word(self, address: int, kind: str = READ) -> int:
        # Every region and MPU boundary is at least 16-byte aligned,
        # so an even-aligned word never spans a boundary: one check
        # covers both bytes.
        address &= 0xFFFE
        if not self._supervisor_depth:
            if self._perm_stale:
                self._refresh_permissions()
            perm = self._perm
            if perm is None or not perm[address] & \
                    (PERM_R if kind is READ else _KIND_BIT[kind]):
                self._check_slow(address, kind)
        if self._observers:
            self._notify(address, kind, 2)
        if address < self._io_rmax and address in self._io_read:
            return self._io_read[address]() & 0xFFFF
        data = self._bytes
        return data[address] | (data[address + 1] << 8)

    def write_word(self, address: int, value: int) -> None:
        address &= 0xFFFE
        if not self._supervisor_depth:
            if self._perm_stale:
                self._refresh_permissions()
            perm = self._perm
            if perm is None or not perm[address] & PERM_W:
                self._check_slow(address, WRITE)
        if self._observers:
            self._notify(address, WRITE, 2)
        if address < self._io_wmax and address in self._io_write:
            self._io_write[address](address, value & 0xFFFF)
            return
        data = self._bytes
        data[address] = value & 0xFF
        data[address + 1] = (value >> 8) & 0xFF
        inv = self._inv_hook
        if inv is not None:
            mask = self._inv_mask
            page = address >> 6
            # an entry indexed under the previous page reaches at most
            # 4 bytes into this one (6-byte max instruction, first
            # word in the previous page), so writes past offset 3
            # cannot hit spilled code
            if mask[page] or (address & 63 < 4 and mask[page - 1]):
                inv(address, value)
        for hook in self.write_hooks:
            hook(address, value)

    def fetch_word(self, address: int) -> int:
        """Instruction fetch: a word read with execute permission."""
        return self.read_word(address, kind=EXECUTE)

    # -- bulk helpers (loader) ----------------------------------------------------
    def load(self, address: int, blob: bytes) -> None:
        """Loader write, bypassing permission checks."""
        end = address + len(blob)
        if end > 0x10000:
            raise MemoryAccessError(end, WRITE, "load past end of memory")
        self._bytes[address:end] = blob
        self._bulk_invalidate()

    def dump(self, address: int, length: int) -> bytes:
        """Debugger read, bypassing permission checks."""
        return bytes(self._bytes[address:address + length])

    # -- snapshot/restore ---------------------------------------------------
    def state_dict(self) -> dict:
        """The full 64 KB backing image.  I/O handlers, observers and
        write hooks are *wiring*, re-created when the owning machine is
        reconstructed, so only the bytes are captured."""
        return {"bytes": bytes(self._bytes)}

    def load_state(self, state: dict) -> None:
        blob = state["bytes"]
        if len(blob) != 0x10000:
            raise ValueError(f"memory snapshot must be 64 KB, "
                             f"got {len(blob)} bytes")
        self._bytes[:] = blob
        self._bulk_invalidate()

    def fill(self, address: int, length: int, value: int = 0) -> None:
        self._bytes[address:address + length] = \
            bytes([value & 0xFF]) * length
        self._bulk_invalidate()

    def _bulk_invalidate(self) -> None:
        """Bulk write: full invalidation of every cached-code consumer."""
        if self._inv_hook is not None:
            self._inv_hook(-1, 0)
        for hook in self.write_hooks:
            hook(-1, 0)

    # -- whole-image helpers (checkpointing, cohort lockstep) ---------------
    def image_bytes(self) -> bytes:
        """An immutable copy of the full 64 KB backing image."""
        return bytes(self._bytes)

    def image_equals(self, image) -> bool:
        """Whole-image comparison without copying (bytearray == bytes
        compares contents)."""
        return self._bytes == image

    def delta_since(self, image) -> Dict[int, bytes]:
        """Pages of the current contents that differ from ``image``."""
        return page_delta(self._bytes, image)

    def apply_pages(self, pages: Dict[int, bytes]) -> None:
        """Bulk-write ``{offset: bytes}`` pages (a delta produced by
        :func:`page_delta`), bypassing permission checks, with one
        invalidation pass at the end — the restore half of the cohort
        replay path."""
        data = self._bytes
        for offset, chunk in pages.items():
            data[offset:offset + len(chunk)] = chunk
        if pages:
            self._bulk_invalidate()


#: coarse pass granularity for :func:`page_delta`; one slice compare
#: per chunk prunes the fine scan to chunks that actually changed
_DELTA_CHUNK = 4096


def page_delta(image, base, page: int = 256) -> Dict[int, bytes]:
    """``{offset: page bytes}`` for every ``page``-sized page of
    ``image`` that differs from ``base``.

    Hierarchical: a 4 KB slice compare (memcmp under the hood) first,
    descending to page granularity only inside changed chunks.  On the
    all-but-identical images the fleet sees — a dispatch dirties a few
    stack/global pages out of 256 — this is ~8x cheaper than scanning
    every page, which matters when the cohort recorder diffs after
    *every* dispatch.  Output (keys, values, insertion order) is
    identical to the flat per-page scan.
    """
    delta: Dict[int, bytes] = {}
    size = len(base)
    for lo in range(0, size, _DELTA_CHUNK):
        hi = min(lo + _DELTA_CHUNK, size)
        if image[lo:hi] != base[lo:hi]:
            for offset in range(lo, hi, page):
                chunk = image[offset:offset + page]
                if chunk != base[offset:offset + page]:
                    delta[offset] = bytes(chunk)
    return delta
