"""64 KB memory bus with the MSP430FR5969 region map.

Figure 1 of the paper draws the map this simulator implements:

====================  =================  ==========================
Address range         Region             Notes
====================  =================  ==========================
0x0000 - 0x0FFF       peripheral regs    not protectable by the MPU
0x1000 - 0x17FF       bootstrap loader   ROM
0x1800 - 0x19FF       InfoMem            512 B FRAM, MPU segment 0
0x1A00 - 0x1AFF       device descriptor  ROM
0x1B00 - 0x1BFF       *no memory*
0x1C00 - 0x23FF       SRAM (2 KB)        OS stack lives here
0x2400 - 0x43FF       *no memory*
0x4400 - 0xFF7F       main FRAM          OS + apps (MPU segments 1-3)
0xFF80 - 0xFFFF       interrupt vectors  top of FRAM
====================  =================  ==========================

Accesses to unmapped holes raise :class:`~repro.errors.MemoryAccessError`
— on real hardware they trigger a vacant-memory-access reset.  Word
accesses ignore bit 0 of the address, as the hardware does.

The bus supports memory-mapped I/O handlers (the MPU registers and the
kernel's service/done ports use them) and access-observer hooks used by
the profiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import MemoryAccessError

READ = "read"
WRITE = "write"
EXECUTE = "execute"


@dataclass(frozen=True)
class Region:
    """One contiguous region of the address space."""

    name: str
    start: int
    end: int              # inclusive
    readable: bool = True
    writable: bool = True
    executable: bool = True
    present: bool = True

    def contains(self, address: int) -> bool:
        return self.start <= address <= self.end

    def allows(self, kind: str) -> bool:
        if not self.present:
            return False
        if kind == READ:
            return self.readable
        if kind == WRITE:
            return self.writable
        return self.executable


class MemoryMap:
    """The FR5969 region layout, plus named landmarks."""

    PERIPH_START = 0x0000
    PERIPH_END = 0x0FFF
    BSL_START = 0x1000
    BSL_END = 0x17FF
    INFOMEM_START = 0x1800
    INFOMEM_END = 0x19FF
    DEVDESC_START = 0x1A00
    DEVDESC_END = 0x1AFF
    HOLE1_START = 0x1B00
    HOLE1_END = 0x1BFF
    SRAM_START = 0x1C00
    SRAM_END = 0x23FF
    HOLE2_START = 0x2400
    HOLE2_END = 0x43FF
    FRAM_START = 0x4400
    FRAM_END = 0xFF7F
    VECTORS_START = 0xFF80
    VECTORS_END = 0xFFFF

    RESET_VECTOR = 0xFFFE

    def __init__(self) -> None:
        self.regions: List[Region] = [
            Region("peripherals", self.PERIPH_START, self.PERIPH_END,
                   executable=False),
            Region("bsl", self.BSL_START, self.BSL_END, writable=False),
            Region("infomem", self.INFOMEM_START, self.INFOMEM_END,
                   executable=False),
            Region("devdesc", self.DEVDESC_START, self.DEVDESC_END,
                   writable=False, executable=False),
            Region("hole1", self.HOLE1_START, self.HOLE1_END, present=False),
            Region("sram", self.SRAM_START, self.SRAM_END),
            Region("hole2", self.HOLE2_START, self.HOLE2_END, present=False),
            Region("fram", self.FRAM_START, self.FRAM_END),
            Region("vectors", self.VECTORS_START, self.VECTORS_END),
        ]
        # O(1) lookup: every region boundary is 128-byte aligned, so a
        # 512-entry page table covers the space exactly.
        self.page_table: List[Region] = []
        for page in range(512):
            address = page << 7
            self.page_table.append(next(
                r for r in self.regions if r.contains(address)))

    def region_at(self, address: int) -> Region:
        if not 0 <= address <= 0xFFFF:
            raise MemoryAccessError(address, READ, "outside 64 KB space")
        return self.page_table[address >> 7]

    @classmethod
    def in_main_fram(cls, address: int) -> bool:
        """Is ``address`` in the MPU-coverable main FRAM (incl. vectors)?"""
        return cls.FRAM_START <= address <= cls.VECTORS_END

    @classmethod
    def in_infomem(cls, address: int) -> bool:
        return cls.INFOMEM_START <= address <= cls.INFOMEM_END


ReadHandler = Callable[[int], int]
WriteHandler = Callable[[int, int], None]
Observer = Callable[[int, str, int], None]


class Memory:
    """The simulated bus.

    Checks, in order: region presence/attributes, MPU (if attached and
    enabled), then performs the access.  I/O handlers intercept word
    accesses to registered addresses before touching backing storage.
    """

    def __init__(self, memory_map: Optional[MemoryMap] = None):
        self.map = memory_map if memory_map is not None else MemoryMap()
        self._bytes = bytearray(0x10000)
        self.mpu = None  # set by Cpu / kernel; avoids circular import
        self._io_read: Dict[int, ReadHandler] = {}
        self._io_write: Dict[int, WriteHandler] = {}
        self._observers: List[Observer] = []
        # When True, region/MPU checks are bypassed (loader, debugger).
        self._supervisor_depth = 0
        # Invoked with the written address so the CPU can invalidate
        # its decoded-instruction cache (self-modifying code, loaders).
        self.write_hook: Optional[WriteHandler] = None

    # -- configuration -----------------------------------------------------
    def add_io(self, address: int,
               read: Optional[ReadHandler] = None,
               write: Optional[WriteHandler] = None) -> None:
        """Register a memory-mapped I/O word at ``address``."""
        if address & 1:
            raise ValueError("I/O ports must be word aligned")
        if read is not None:
            self._io_read[address] = read
        if write is not None:
            self._io_write[address] = write

    def add_observer(self, observer: Observer) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        self._observers.remove(observer)

    # -- supervisor (unchecked) access --------------------------------------
    class _Supervisor:
        def __init__(self, memory: "Memory"):
            self._memory = memory

        def __enter__(self) -> "Memory":
            self._memory._supervisor_depth += 1
            return self._memory

        def __exit__(self, *exc) -> None:
            self._memory._supervisor_depth -= 1

    def supervisor(self) -> "Memory._Supervisor":
        """Context manager for loader/debugger access that skips checks."""
        return Memory._Supervisor(self)

    # -- checks --------------------------------------------------------------
    def _check(self, address: int, kind: str) -> None:
        if self._supervisor_depth:
            return
        if not 0 <= address <= 0xFFFF:
            raise MemoryAccessError(address, kind, "outside 64 KB space")
        region = self.map.page_table[address >> 7]
        if not region.allows(kind):
            reason = ("no memory" if not region.present
                      else f"{region.name} is not {kind[:-1]}able"
                      if kind != EXECUTE else
                      f"{region.name} is not executable")
            raise MemoryAccessError(address, kind, reason)
        if self.mpu is not None:
            self.mpu.check(address, kind)

    def _notify(self, address: int, kind: str, size: int) -> None:
        for observer in self._observers:
            observer(address, kind, size)

    # -- byte access -----------------------------------------------------------
    def read_byte(self, address: int, kind: str = READ) -> int:
        address &= 0xFFFF
        self._check(address, kind)
        self._notify(address, kind, 1)
        base = address & ~1
        if base in self._io_read:
            word = self._io_read[base]() & 0xFFFF
            return (word >> 8) & 0xFF if address & 1 else word & 0xFF
        return self._bytes[address]

    def write_byte(self, address: int, value: int) -> None:
        address &= 0xFFFF
        self._check(address, WRITE)
        self._notify(address, WRITE, 1)
        base = address & ~1
        if base in self._io_write:
            # Byte writes to I/O ports write the low byte, high byte zero,
            # matching MSP430 peripheral semantics.
            self._io_write[base](base, value & 0xFF)
            return
        self._bytes[address] = value & 0xFF
        if self.write_hook is not None:
            self.write_hook(address, value)

    # -- word access ------------------------------------------------------------
    def read_word(self, address: int, kind: str = READ) -> int:
        # Every region and MPU boundary is at least 16-byte aligned,
        # so an even-aligned word never spans a boundary: one check
        # covers both bytes.
        address &= 0xFFFE
        self._check(address, kind)
        if self._observers:
            self._notify(address, kind, 2)
        if address in self._io_read:
            return self._io_read[address]() & 0xFFFF
        return self._bytes[address] | (self._bytes[address + 1] << 8)

    def write_word(self, address: int, value: int) -> None:
        address &= 0xFFFE
        self._check(address, WRITE)
        self._notify(address, WRITE, 2)
        if address in self._io_write:
            self._io_write[address](address, value & 0xFFFF)
            return
        self._bytes[address] = value & 0xFF
        self._bytes[address + 1] = (value >> 8) & 0xFF
        if self.write_hook is not None:
            self.write_hook(address, value)

    def fetch_word(self, address: int) -> int:
        """Instruction fetch: a word read with execute permission."""
        return self.read_word(address, kind=EXECUTE)

    # -- bulk helpers (loader) ----------------------------------------------------
    def load(self, address: int, blob: bytes) -> None:
        """Loader write, bypassing permission checks."""
        end = address + len(blob)
        if end > 0x10000:
            raise MemoryAccessError(end, WRITE, "load past end of memory")
        self._bytes[address:end] = blob
        if self.write_hook is not None:
            self.write_hook(-1, 0)     # bulk write: full invalidation

    def dump(self, address: int, length: int) -> bytes:
        """Debugger read, bypassing permission checks."""
        return bytes(self._bytes[address:address + length])

    def fill(self, address: int, length: int, value: int = 0) -> None:
        self._bytes[address:address + length] = \
            bytes([value & 0xFF]) * length
        if self.write_hook is not None:
            self.write_hook(-1, 0)     # bulk write: full invalidation
