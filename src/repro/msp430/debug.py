"""Debugging aids for the simulator: tracing, breakpoints,
watchpoints, and call-stack reconstruction.

The experiments never need these, but anyone porting an app to the
platform does — this is the ``mspdebug``-shaped corner of the
toolbox::

    debugger = Debugger(cpu)
    debugger.add_breakpoint(image.symbol("app_probe_on_event"))
    debugger.run()
    print(debugger.call_stack)
    print(debugger.backtrace_text(image.symbols))

Attaching installs ``cpu.trace_hook`` (and watchpoints register memory
observers) — either one makes ``Cpu.run()`` leave its superblock fast
path and step one instruction at a time, so traces and watch hits are
exact whether or not the CPU ran in block mode beforehand
(``tests/test_debugger.py::TestMidRunAttach``).  :meth:`Debugger.detach`
restores full-speed execution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.msp430.cpu import Cpu
from repro.msp430.isa import Instruction, Opcode
from repro.msp430.memory import WRITE
from repro.msp430.registers import Reg


@dataclass(frozen=True)
class TraceEntry:
    pc: int
    text: str


@dataclass(frozen=True)
class WatchHit:
    address: int
    kind: str
    size: int
    pc: int
    cycle: int


class BreakpointHit(Exception):
    """Raised internally to stop the run loop at a breakpoint."""

    def __init__(self, address: int):
        self.address = address
        super().__init__(f"breakpoint at 0x{address:04X}")


class Debugger:
    """Wraps a :class:`~repro.msp430.cpu.Cpu` with debug features.

    Installing the debugger replaces the CPU's trace hook; only one
    debugger per CPU at a time.
    """

    def __init__(self, cpu: Cpu, trace_depth: int = 64):
        self.cpu = cpu
        self.trace: Deque[TraceEntry] = deque(maxlen=trace_depth)
        self.breakpoints: Set[int] = set()
        self.watchpoints: Set[int] = set()
        self.watch_hits: List[WatchHit] = []
        #: (return address, callee address) pairs, innermost last
        self.call_stack: List[Tuple[int, int]] = []
        self._break_pending: Optional[int] = None
        # resuming from a breakpoint must execute its instruction
        # without immediately re-breaking
        self._resume_guard: Optional[int] = None
        cpu.trace_hook = self._on_instruction
        cpu.memory.add_observer(self._on_access)

    def detach(self) -> None:
        self.cpu.trace_hook = None
        self.cpu.memory.remove_observer(self._on_access)

    # -- configuration ------------------------------------------------------
    def add_breakpoint(self, address: int) -> None:
        self.breakpoints.add(address & 0xFFFF)

    def remove_breakpoint(self, address: int) -> None:
        self.breakpoints.discard(address & 0xFFFF)

    def add_watchpoint(self, address: int) -> None:
        """Record (not stop) every write covering ``address``."""
        self.watchpoints.add(address & 0xFFFF)

    # -- hooks --------------------------------------------------------------
    def _on_instruction(self, pc: int, insn: Instruction) -> None:
        if pc in self.breakpoints and pc != self._resume_guard:
            # stop *before* the instruction executes
            raise BreakpointHit(pc)
        self._resume_guard = None
        self.trace.append(TraceEntry(pc, insn.render()))
        self._track_calls(pc, insn)

    def _track_calls(self, pc: int, insn: Instruction) -> None:
        if insn.opcode is Opcode.CALL:
            # callee resolved after execution; record the site and let
            # the return address identify the frame
            return_address = pc + insn.size_bytes()
            self.call_stack.append((return_address, -1))
            return
        # RET is MOV @SP+, PC
        if (insn.opcode is Opcode.MOV and insn.src is not None
                and insn.dst is not None
                and insn.dst.mode.name == "REGISTER"
                and insn.dst.register == Reg.PC
                and insn.src.mode.name == "AUTOINCREMENT"
                and insn.src.register == Reg.SP):
            if self.call_stack:
                self.call_stack.pop()

    def _on_access(self, address: int, kind: str, size: int) -> None:
        if kind != WRITE or not self.watchpoints:
            return
        covered = {address & 0xFFFF}
        if size == 2:
            covered.add((address + 1) & 0xFFFF)
        if covered & self.watchpoints:
            self.watch_hits.append(WatchHit(
                address=address, kind=kind, size=size,
                pc=self.cpu.regs.pc, cycle=self.cpu.cycles))

    # -- running --------------------------------------------------------------
    def run(self, max_cycles: int = 10_000_000) -> Optional[int]:
        """Run until a breakpoint, a halt, or the cycle budget.
        Returns the breakpoint address, or None for other stops.
        On a breakpoint the PC points *at* the unexecuted target."""
        self._break_pending = None
        self._resume_guard = self.cpu.regs.pc
        self.cpu.halted = False
        try:
            self.cpu.run(max_cycles=max_cycles)
        except BreakpointHit as hit:
            self.cpu.regs.pc = hit.address
            self._break_pending = hit.address
            self.cpu.halted = True
        return self._break_pending

    def step_over(self) -> None:
        """Execute one instruction (a CALL runs to its return)."""
        self._resume_guard = self.cpu.regs.pc
        depth = len(self.call_stack)
        self.cpu.step()
        while len(self.call_stack) > depth:
            self.cpu.step()

    # -- reporting --------------------------------------------------------------
    def trace_text(self) -> str:
        return "\n".join(f"0x{entry.pc:04X}: {entry.text}"
                         for entry in self.trace)

    def backtrace_text(self,
                       symbols: Optional[Dict[str, int]] = None) -> str:
        """Innermost-first backtrace, symbolized when possible."""
        names: Dict[int, str] = {}
        if symbols:
            for name, value in symbols.items():
                names.setdefault(value, name)

        def describe(address: int) -> str:
            if symbols:
                best = None
                for name, value in symbols.items():
                    if value <= address and (
                            best is None or value > best[1]):
                        best = (name, value)
                if best is not None:
                    offset = address - best[1]
                    return (best[0] if offset == 0
                            else f"{best[0]}+0x{offset:X}")
            return f"0x{address:04X}"

        lines = [f"#0  pc={describe(self.cpu.regs.pc)}"]
        for index, (return_address, _callee) in enumerate(
                reversed(self.call_stack), start=1):
            lines.append(
                f"#{index}  return to {describe(return_address)}")
        return "\n".join(lines)
