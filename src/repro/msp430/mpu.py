"""The MSP430FR58xx-family Memory Protection Unit.

This is the "low-sophistication MPU" at the heart of the paper.  Its
documented shortcomings — which the paper's design works around — are
modeled faithfully:

1. It covers **main FRAM only**.  SRAM, peripheral registers, the
   bootstrap loader and the device descriptor are never protected.
   (InfoMem has its own segment, but the paper leaves it unused.)
2. Only three main segments exist, delimited by **two adjustable
   boundaries** B1 and B2 (16-byte granularity):
   segment 1 = [FRAM start, B1), segment 2 = [B1, B2),
   segment 3 = [B2, end of FRAM including vectors].
   Three segments cannot express the four regions the paper wants (app
   code / app data / off-limits below / off-limits above), which is why
   the compiler must still insert *lower*-bound checks.
3. Register writes require the password 0xA5 in the high byte of
   MPUCTL0; a wrong password resets the device (modeled as
   :class:`~repro.errors.MemoryAccessError`).  Setting MPULOCK freezes
   the configuration until reset.

Registers (word offsets in peripheral space):

=========  ======  =====================================================
MPUCTL0    0x05A0  password | MPUSEGIE(4) | MPULOCK(1) | MPUENA(0)
MPUCTL1    0x05A2  violation flags: SEG1IFG/SEG2IFG/SEG3IFG/SEGIIFG
MPUSEGB2   0x05A4  boundary B2 = value << 4
MPUSEGB1   0x05A6  boundary B1 = value << 4
MPUSAM     0x05A8  R/W/X bits per segment (4 bits each, seg1..seg3,info)
=========  ======  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import MemoryAccessError, MpuViolationError
from repro.msp430.memory import (
    EXECUTE,
    READ,
    WRITE,
    MemoryMap,
)

MPUCTL0 = 0x05A0
MPUCTL1 = 0x05A2
MPUSEGB2 = 0x05A4
MPUSEGB1 = 0x05A6
MPUSAM = 0x05A8

MPU_PASSWORD = 0xA5
MPUENA = 0x0001
MPULOCK = 0x0002
MPUSEGIE = 0x0010

# MPUSAM bit layout: 4 bits per segment.
SAM_R = 0b0001
SAM_W = 0b0010
SAM_X = 0b0100

# Violation flag bits in MPUCTL1.
SEG1IFG = 0x0001
SEG2IFG = 0x0002
SEG3IFG = 0x0004
SEGIIFG = 0x0008

_KIND_TO_BIT = {READ: SAM_R, WRITE: SAM_W, EXECUTE: SAM_X}


@dataclass(frozen=True)
class SegmentPermissions:
    """High-level R/W/X triple for one MPU segment."""

    read: bool = False
    write: bool = False
    execute: bool = False

    def to_bits(self) -> int:
        return ((SAM_R if self.read else 0)
                | (SAM_W if self.write else 0)
                | (SAM_X if self.execute else 0))

    @staticmethod
    def from_bits(bits: int) -> "SegmentPermissions":
        return SegmentPermissions(bool(bits & SAM_R), bool(bits & SAM_W),
                                  bool(bits & SAM_X))

    @staticmethod
    def parse(text: str) -> "SegmentPermissions":
        """Parse the paper's ``RW-`` / ``--X`` / ``---`` notation.

        Strictly positional: position 1 must be ``R`` or ``-``,
        position 2 ``W`` or ``-``, position 3 ``X`` or ``-`` (case
        insensitive).  Strings like ``"-WR"``, ``"XWR"`` or ``"RRR"``
        are rejected instead of silently mis-parsing.
        """
        upper = text.upper()
        if (len(upper) != 3
                or upper[0] not in "R-" or upper[1] not in "W-"
                or upper[2] not in "X-"):
            raise ValueError(f"bad permission string {text!r}; "
                             f"want {{R|-}}{{W|-}}{{X|-}}")
        return SegmentPermissions(upper[0] == "R", upper[1] == "W",
                                  upper[2] == "X")

    def render(self) -> str:
        return (("R" if self.read else "-")
                + ("W" if self.write else "-")
                + ("X" if self.execute else "-"))


@dataclass(frozen=True)
class MpuConfig:
    """A complete MPU setting, the unit the OS swaps on context switch.

    ``b1`` and ``b2`` are byte addresses (16-byte aligned) of the two
    adjustable boundaries.  ``seg1``..``seg3`` and ``info`` carry the
    permission triples.
    """

    b1: int
    b2: int
    seg1: SegmentPermissions
    seg2: SegmentPermissions
    seg3: SegmentPermissions
    info: SegmentPermissions = SegmentPermissions()
    enabled: bool = True

    def __post_init__(self) -> None:
        for name, bound in (("b1", self.b1), ("b2", self.b2)):
            if bound & 0xF:
                raise ValueError(f"{name}=0x{bound:04X} not 16-byte aligned")
        if not (MemoryMap.FRAM_START <= self.b1 <= self.b2
                <= MemoryMap.VECTORS_END + 1):
            raise ValueError(
                f"boundaries must satisfy FRAM start <= b1 <= b2 <= end "
                f"(got b1=0x{self.b1:04X}, b2=0x{self.b2:04X})"
            )

    def sam_value(self) -> int:
        return (self.seg1.to_bits()
                | (self.seg2.to_bits() << 4)
                | (self.seg3.to_bits() << 8)
                | (self.info.to_bits() << 12))

    def register_writes(self) -> List[Tuple[int, int]]:
        """The (address, value) sequence a driver writes to install this
        configuration.  The kernel's context-switch gates emit exactly one
        MOV instruction per entry, so the length of this list is what the
        extra context-switch cost in Table 1 comes from."""
        ctl0 = (MPU_PASSWORD << 8) | (MPUENA if self.enabled else 0)
        return [
            (MPUCTL0, ctl0),
            (MPUSEGB1, self.b1 >> 4),
            (MPUSEGB2, self.b2 >> 4),
            (MPUSAM, self.sam_value()),
        ]

    def render(self) -> str:
        return (f"MPU[b1=0x{self.b1:04X} b2=0x{self.b2:04X} "
                f"seg1={self.seg1.render()} seg2={self.seg2.render()} "
                f"seg3={self.seg3.render()} info={self.info.render()}]")


class Mpu:
    """Register-accurate MPU model.

    Attach to a :class:`~repro.msp430.memory.Memory` with
    :meth:`attach`; the MPU registers then appear in peripheral space
    and the bus consults :meth:`check` on every access.
    """

    def __init__(self) -> None:
        self.ctl0 = 0
        self.ctl1 = 0
        self.segb1 = 0
        self.segb2 = 0
        self.sam = 0xFFFF  # hardware reset value: everything allowed
        self.violation_address: Optional[int] = None
        self.violation_kind: Optional[str] = None
        # cached byte-address boundaries (hot path)
        self._b1 = 0
        self._b2 = 0
        #: bumped on every configuration change; drives the bus's flat
        #: permission-bitmap invalidation
        self.config_epoch = 0
        self._memory = None

    # -- wiring ---------------------------------------------------------------
    def attach(self, memory) -> None:
        memory.mpu = self
        self._memory = memory
        memory.add_io(MPUCTL0, read=lambda: self.ctl0,
                      write=self._write_ctl0)
        memory.add_io(MPUCTL1, read=lambda: self.ctl1,
                      write=self._write_ctl1)
        memory.add_io(MPUSEGB2, read=lambda: self.segb2,
                      write=self._write_segb2)
        memory.add_io(MPUSEGB1, read=lambda: self.segb1,
                      write=self._write_segb1)
        memory.add_io(MPUSAM, read=lambda: self.sam, write=self._write_sam)
        memory.invalidate_permissions()

    def _config_changed(self) -> None:
        self.config_epoch += 1
        if self._memory is not None:
            self._memory.invalidate_permissions()

    # -- register semantics -------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return bool(self.ctl0 & MPUENA)

    @property
    def locked(self) -> bool:
        return bool(self.ctl0 & MPULOCK)

    def _check_password(self, value: int, register: str) -> None:
        if (value >> 8) != MPU_PASSWORD:
            # Hardware: wrong password causes a PUC (reset).
            raise MemoryAccessError(
                MPUCTL0, WRITE,
                f"MPU password violation writing {register} "
                f"(got 0x{value >> 8:02X}, want 0xA5)"
            )

    def _write_ctl0(self, _addr: int, value: int) -> None:
        self._check_password(value, "MPUCTL0")
        if self.locked:
            # Lock is one-way until reset; only violation flags change.
            return
        self.ctl0 = (MPU_PASSWORD << 8) | (value & (MPUENA | MPULOCK
                                                    | MPUSEGIE))
        self._config_changed()

    def _write_ctl1(self, _addr: int, value: int) -> None:
        # Writing 0 bits clears violation flags.
        self.ctl1 &= value

    def _write_segb1(self, _addr: int, value: int) -> None:
        if not self.locked:
            self.segb1 = value & 0xFFFF
            # Boundaries saturate at the top of the address space: a
            # register value of 0x1000 means B1 = 0x10000 ("end of
            # FRAM"), not a 16-bit wrap to 0 that would erase the
            # segment.  check() compares 16-bit addresses with ``<``,
            # so any clamped value >= 0x10000 behaves identically.
            self._b1 = min(self.segb1 << 4, 0x10000)
            self._config_changed()

    def _write_segb2(self, _addr: int, value: int) -> None:
        if not self.locked:
            self.segb2 = value & 0xFFFF
            self._b2 = min(self.segb2 << 4, 0x10000)
            self._config_changed()

    def _write_sam(self, _addr: int, value: int) -> None:
        if not self.locked:
            self.sam = value & 0xFFFF
            self._config_changed()

    # -- convenience ---------------------------------------------------------------
    def configure(self, config: MpuConfig) -> None:
        """Directly install a configuration (driver-level shortcut)."""
        for address, value in config.register_writes():
            if address == MPUCTL0:
                self._write_ctl0(address, value)
            elif address == MPUSEGB1:
                self._write_segb1(address, value)
            elif address == MPUSEGB2:
                self._write_segb2(address, value)
            elif address == MPUSAM:
                self._write_sam(address, value)

    def disable(self) -> None:
        """Clear MPUENA — unless MPULOCK is set: hardware freezes the
        whole configuration (enable bit included) until reset, so a
        locked MPU cannot be switched off."""
        if self.locked:
            return
        self.ctl0 &= ~MPUENA & 0xFFFF
        self._config_changed()

    # -- snapshot/restore ---------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "ctl0": self.ctl0,
            "ctl1": self.ctl1,
            "segb1": self.segb1,
            "segb2": self.segb2,
            "sam": self.sam,
            "violation_address": self.violation_address,
            "violation_kind": self.violation_kind,
        }

    def load_state(self, state: dict) -> None:
        """Direct register restore, deliberately bypassing the
        password/lock write semantics: a snapshot of a locked MPU must
        come back locked (and a register-write path would refuse to
        restore anything under MPULOCK)."""
        self.ctl0 = state["ctl0"] & 0xFFFF
        self.ctl1 = state["ctl1"] & 0xFFFF
        self.segb1 = state["segb1"] & 0xFFFF
        self.segb2 = state["segb2"] & 0xFFFF
        self.sam = state["sam"] & 0xFFFF
        self._b1 = min(self.segb1 << 4, 0x10000)
        self._b2 = min(self.segb2 << 4, 0x10000)
        self.violation_address = state["violation_address"]
        self.violation_kind = state["violation_kind"]
        self._config_changed()

    @property
    def boundary1(self) -> int:
        return min(self.segb1 << 4, 0x10000)

    @property
    def boundary2(self) -> int:
        return min(self.segb2 << 4, 0x10000)

    def segment_of(self, address: int) -> Optional[int]:
        """Which MPU segment covers ``address``?  ``None`` if uncovered —
        the MPU's fundamental limitation."""
        if MemoryMap.in_infomem(address):
            return 0
        if not MemoryMap.in_main_fram(address):
            return None
        if address < self.boundary1:
            return 1
        if address < self.boundary2:
            return 2
        return 3

    def permissions_for(self, segment: int) -> SegmentPermissions:
        if segment == 0:
            return SegmentPermissions.from_bits((self.sam >> 12) & 0xF)
        return SegmentPermissions.from_bits(
            (self.sam >> (4 * (segment - 1))) & 0xF
        )

    # -- permission-bitmap fast path -------------------------------------------------
    def permission_signature(self) -> tuple:
        """Hashable summary of everything :meth:`check` depends on;
        keys the bus's memoized per-configuration bitmaps."""
        return ("mpu", self.ctl0 & MPUENA, self._b1, self._b2, self.sam)

    def permission_overlay(self) -> Optional[bytes]:
        """Flat per-address allowed-bits map mirroring :meth:`check`
        exactly (the bus ANDs it with the region map).  ``None`` means
        no restriction (MPU disabled)."""
        if not self.ctl0 & MPUENA:
            return None
        overlay = bytearray(b"\x07" * 0x10000)
        # InfoMem: segment 0.  SAM R/W/X bit values equal the bus's
        # PERM_R/W/X bits, so the 3-bit nibbles transfer directly.
        info_bits = (self.sam >> 12) & 0b111
        overlay[MemoryMap.INFOMEM_START:MemoryMap.INFOMEM_END + 1] = \
            bytes([info_bits]) * (MemoryMap.INFOMEM_END + 1
                                  - MemoryMap.INFOMEM_START)
        # Main FRAM: segments 1-3 split at the (clamped) boundaries,
        # replicating check()'s `addr < b1` / `addr < b2` comparisons.
        fram = MemoryMap.FRAM_START
        p1 = min(max(self._b1, fram), 0x10000)
        p2 = min(max(self._b2, p1), 0x10000)
        seg1 = self.sam & 0b111
        seg2 = (self.sam >> 4) & 0b111
        seg3 = (self.sam >> 8) & 0b111
        overlay[fram:p1] = bytes([seg1]) * (p1 - fram)
        overlay[p1:p2] = bytes([seg2]) * (p2 - p1)
        overlay[p2:0x10000] = bytes([seg3]) * (0x10000 - p2)
        return bytes(overlay)

    # -- the enforcement hook called by the bus -------------------------------------
    def check(self, address: int, kind: str) -> None:
        if not self.ctl0 & MPUENA:
            return
        # hot path: resolve the segment with plain comparisons
        if address >= MemoryMap.FRAM_START:         # main FRAM + vectors
            if address < self._b1:
                segment = 1
            elif address < self._b2:
                segment = 2
            else:
                segment = 3
            bits = (self.sam >> (4 * (segment - 1))) & 0xF
        elif MemoryMap.INFOMEM_START <= address <= MemoryMap.INFOMEM_END:
            segment = 0
            bits = (self.sam >> 12) & 0xF
        else:
            return  # uncovered: SRAM, peripherals, BSL — cannot protect
        if bits & _KIND_TO_BIT[kind]:
            return
        self.ctl1 |= (SEGIIFG if segment == 0
                      else (SEG1IFG << (segment - 1)))
        self.violation_address = address
        self.violation_kind = kind
        raise MpuViolationError(address, kind, segment)
