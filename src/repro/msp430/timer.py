"""Timer_A-style measurement timer.

Paper section 4.2: *"a hardware timer on the MSP430FR5969 MCU was used to
measure the time of each iteration (with a precision of 16 cycles)"*.

We model a timer whose counter register (``TA0R``-like, default address
0x0340) increments once every 16 CPU cycles, i.e. sourced from the CPU
clock through a /16 divider.  Firmware reads the port like hardware
would; Python harnesses can additionally use :meth:`measure` for exact
cycle deltas when quantization noise is unwanted.

The counter address is a registered I/O port, so the CPU's superblock
compiler never fuses a timer read into a block — the read handler
always sees the exact per-instruction ``cpu.cycles``, making
measurements bit-identical in block and step mode
(``tests/test_timer_cycles.py::TestTimerBlockMode``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

TA0R_ADDRESS = 0x0340

DIVIDER = 16


class CycleTimer:
    """A read-only counter port mapped into peripheral space."""

    def __init__(self, cpu, address: int = TA0R_ADDRESS,
                 divider: int = DIVIDER):
        self.cpu = cpu
        self.address = address
        self.divider = divider
        #: port reads served (monotonic).  The counter value is a
        #: function of the *absolute* cycle count, so any layer that
        #: memoizes execution (the fleet cohort recorder) must know
        #: whether a stretch of code observed the timer — it compares
        #: this before/after to decide.
        self.reads = 0

    def attach(self, memory=None) -> None:
        mem = memory if memory is not None else self.cpu.memory
        mem.add_io(self.address, read=self.read_counter)

    def read_counter(self) -> int:
        """The quantized hardware view: one tick per ``divider`` cycles."""
        self.reads += 1
        return (self.cpu.cycles // self.divider) & 0xFFFF

    def ticks_to_cycles(self, ticks: int) -> int:
        return ticks * self.divider

    class Measurement:
        """Result holder filled in when the context exits."""

        def __init__(self) -> None:
            self.start_cycles = 0
            self.end_cycles = 0
            self.start_ticks = 0
            self.end_ticks = 0
            self.divider = DIVIDER

        @property
        def cycles(self) -> int:
            """Exact elapsed cycles."""
            return self.end_cycles - self.start_cycles

        @property
        def measured_cycles(self) -> int:
            """What firmware would compute from the 16-cycle-granular
            timer: tick delta times divider.  The 16-bit counter wraps,
            so the delta is taken modulo 2^16 — valid for intervals
            under 2^16 ticks (about one million cycles), like the
            paper's per-iteration measurements."""
            delta = (self.end_ticks - self.start_ticks) & 0xFFFF
            return delta * self.divider

    @contextmanager
    def measure(self) -> Iterator["CycleTimer.Measurement"]:
        m = CycleTimer.Measurement()
        m.divider = self.divider
        m.start_cycles = self.cpu.cycles
        m.start_ticks = self.read_counter()
        try:
            yield m
        finally:
            m.end_cycles = self.cpu.cycles
            m.end_ticks = self.read_counter()
