"""Binary encoding of MSP430 instructions.

Instruction words are little-endian 16-bit values.  Encoding needs the
instruction's own address because symbolic operands (``ADDR``) are stored
PC-relative to their extension word.

The constant generators are used automatically: source immediates of
0, 1, 2, 4, 8 and -1 encode into R3/R2 mode bits with no extension word,
exactly as the hardware assembler would.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import EncodingError
from repro.msp430.isa import (
    AddressingMode,
    Instruction,
    Opcode,
    Operand,
)
from repro.msp430.registers import Reg

_M = AddressingMode

# Immediate value -> (register, As bits) via constant generators.
CG_ENCODINGS = {
    0: (Reg.CG2, 0b00),
    1: (Reg.CG2, 0b01),
    2: (Reg.CG2, 0b10),
    0xFFFF: (Reg.CG2, 0b11),
    4: (Reg.SR, 0b10),
    8: (Reg.SR, 0b11),
}


def _encode_source(op: Operand, ext_addr: int) -> Tuple[int, int, Optional[int]]:
    """Return (As bits, register field, extension word or None)."""
    m = op.mode
    if m is _M.REGISTER:
        return 0b00, op.register, None
    if m is _M.INDEXED:
        return 0b01, op.register, op.value & 0xFFFF
    if m is _M.SYMBOLIC:
        return 0b01, Reg.PC, (op.value - ext_addr) & 0xFFFF
    if m is _M.ABSOLUTE:
        return 0b01, Reg.SR, op.value & 0xFFFF
    if m is _M.INDIRECT:
        return 0b10, op.register, None
    if m is _M.AUTOINCREMENT:
        return 0b11, op.register, None
    # IMMEDIATE
    value = op.value & 0xFFFF
    if op.symbol is None and value in CG_ENCODINGS:
        register, as_bits = CG_ENCODINGS[value]
        return as_bits, register, None
    return 0b11, Reg.PC, value


def _encode_dest(op: Operand, ext_addr: int) -> Tuple[int, int, Optional[int]]:
    """Return (Ad bit, register field, extension word or None)."""
    m = op.mode
    if m is _M.REGISTER:
        return 0, op.register, None
    if m is _M.INDEXED:
        return 1, op.register, op.value & 0xFFFF
    if m is _M.SYMBOLIC:
        return 1, Reg.PC, (op.value - ext_addr) & 0xFFFF
    if m is _M.ABSOLUTE:
        return 1, Reg.SR, op.value & 0xFFFF
    raise EncodingError(f"illegal destination mode {m}")


def encode(insn: Instruction, address: int = 0) -> List[int]:
    """Encode one instruction into a list of 16-bit words.

    ``address`` is where the first word will live; required for correct
    PC-relative (symbolic) extension words.
    """
    op = insn.opcode
    if op.is_jump:
        return [op.value | (insn.offset & 0x3FF)]

    bw = 1 if insn.byte else 0

    if op is Opcode.RETI:
        return [op.value]

    if op.is_format2:
        ext_addr = address + 2
        as_bits, register, ext = _encode_source(insn.src, ext_addr)
        word = op.value | (bw << 6) | (as_bits << 4) | register
        return [word] if ext is None else [word, ext]

    # Format I.  Source extension word (if any) precedes the destination's.
    src_ext_addr = address + 2
    as_bits, src_reg, src_ext = _encode_source(insn.src, src_ext_addr)
    dst_ext_addr = address + 2 + (2 if src_ext is not None else 0)
    ad_bit, dst_reg, dst_ext = _encode_dest(insn.dst, dst_ext_addr)
    word = ((op.value << 12) | (src_reg << 8) | (ad_bit << 7)
            | (bw << 6) | (as_bits << 4) | dst_reg)
    words = [word]
    if src_ext is not None:
        words.append(src_ext)
    if dst_ext is not None:
        words.append(dst_ext)
    return words


def encode_bytes(insn: Instruction, address: int = 0) -> bytes:
    """Encode to little-endian bytes."""
    out = bytearray()
    for word in encode(insn, address):
        out.append(word & 0xFF)
        out.append((word >> 8) & 0xFF)
    return bytes(out)
