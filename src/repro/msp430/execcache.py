"""Process-wide shared execution cache for fleets of MCUs.

A fleet campaign simulates many devices whose firmware images heavily
overlap — devices built from the same app subset share the whole
image, and *every* device shares the OS region bytes the linker lays
down first.  Before this module each :class:`~repro.msp430.cpu.Cpu`
decoded and superblock-compiled that code privately; a population of
N devices paid the translation cost N times.

:class:`SharedExecutionCache` is a content-addressed store, one per
distinct I/O port wiring, holding

* compiled superblocks keyed by entry PC, and
* decoded-instruction entries keyed by 64-byte page then PC,

published by the first CPU to translate them and pulled by every
later CPU attached to the same store.  Each published translation
carries the exact code bytes it was compiled from, so devices running
*different* firmware images still share every translation whose bytes
coincide at the same address — in practice the whole OS region and
every app region two images have in common.

Safety model — *content addressing, verify on every pull*:

* **Publish** is append-only: a translation is stored together with
  the publisher's live code bytes at translation time.  No pristine
  image is consulted — a self-modified device publishes (capped)
  variants of its modified code, which only a device with the *same*
  bytes can ever adopt.
* **Pull** compares the candidate's recorded bytes against the
  puller's own memory; on mismatch the next variant is tried, and a
  device whose code matches nothing published translates privately.
* **Invalidation stays device-local.**  A store into cached code pops
  the translation from that CPU's private view (and bumps its
  ``_code_version`` so in-flight blocks stop at the next store
  boundary); the shared store itself is immutable, so sibling devices
  are unaffected — the copy-on-write direction is "diverged device
  recompiles privately", never "shared entry mutated".

Execute *permission* is not part of the store: a CPU adopting a block
re-validates execute permission over the block's byte range against
its own MPU bitmap first (and adopts a per-device shallow copy, so
the block's ``perm_ok`` cache never ping-pongs between devices with
different MPU configurations).

Correctness rests on the superblock layer's architectural-equivalence
invariant (blocks vs. ``step()`` are bit-identical): sharing only
changes *which* PCs have blocks *when*, so shared-cache runs are
byte-identical to private-cache and step-only runs.
"""

from __future__ import annotations

import hashlib
from typing import Dict

#: variants kept per PC before publishing stops.  A device rewriting
#: its own code (rogue wild-pointer stores) would otherwise grow an
#: unbounded variant list at the rewritten PCs; past the cap it just
#: translates privately.
MAX_VARIANTS = 4


class SharedExecutionCache:
    """One port-wiring's shared translations: superblocks + icache
    entries, content-addressed by the code bytes they translate.

    ``blocks`` maps entry PC to a list of compiled
    :class:`~repro.msp430.cpu._Block` variants (each carrying its
    ``code`` bytes); ``pages`` maps 64-byte page index to
    ``{pc: [(code bytes, icache entry), ...]}``.  Lists are only ever
    appended to (never mutated or reordered), so concurrent readers
    in one process need no locking.
    """

    __slots__ = ("blocks", "pages",
                 "block_pulls", "page_pulls", "publishes", "rejects")

    def __init__(self):
        self.blocks: Dict[int, list] = {}
        self.pages: Dict[int, Dict[int, list]] = {}
        # introspection counters (tests, --profile diagnostics)
        self.block_pulls = 0
        self.page_pulls = 0
        self.publishes = 0
        self.rejects = 0

    def stats(self) -> dict:
        return {"blocks": len(self.blocks), "pages": len(self.pages),
                "block_pulls": self.block_pulls,
                "page_pulls": self.page_pulls,
                "publishes": self.publishes, "rejects": self.rejects}


#: sorted I/O port tuple -> store.  The port set is the store
#: identity because the superblock compiler terminates blocks at
#: instructions addressing registered ports — two machines with the
#: same bytes but different port wiring would disagree on block
#: boundaries.  Everything else is verified per entry, by content.
_REGISTRY: Dict[tuple, SharedExecutionCache] = {}


def image_digest(image: bytes) -> str:
    """sha-256 of a memory image (also the delta-checkpoint base id)."""
    return hashlib.sha256(image).hexdigest()


def shared_execution_cache(io_ports) -> SharedExecutionCache:
    """The process-wide store for this I/O port wiring."""
    key = tuple(sorted(io_ports))
    store = _REGISTRY.get(key)
    if store is None:
        store = SharedExecutionCache()
        _REGISTRY[key] = store
    return store


def clear_registry() -> None:
    """Drop every store (tests that need cold-cache behaviour)."""
    _REGISTRY.clear()
