"""Process-wide shared execution cache for fleets of MCUs.

A fleet campaign simulates many devices whose firmware images heavily
overlap — devices built from the same app subset share the whole
image, and *every* device shares the OS region bytes the linker lays
down first.  Before this module each :class:`~repro.msp430.cpu.Cpu`
decoded and superblock-compiled that code privately; a population of
N devices paid the translation cost N times.

:class:`SharedExecutionCache` is a content-addressed store, one per
distinct I/O port wiring, holding

* compiled superblocks keyed by entry PC, and
* decoded-instruction entries keyed by 64-byte page then PC,

published by the first CPU to translate them and pulled by every
later CPU attached to the same store.  Each published translation
carries the exact code bytes it was compiled from, so devices running
*different* firmware images still share every translation whose bytes
coincide at the same address — in practice the whole OS region and
every app region two images have in common.

Safety model — *content addressing, verify on every pull*:

* **Publish** is append-only: a translation is stored together with
  the publisher's live code bytes at translation time.  No pristine
  image is consulted — a self-modified device publishes (capped)
  variants of its modified code, which only a device with the *same*
  bytes can ever adopt.
* **Pull** compares the candidate's recorded bytes against the
  puller's own memory; on mismatch the next variant is tried, and a
  device whose code matches nothing published translates privately.
* **Invalidation stays device-local.**  A store into cached code pops
  the translation from that CPU's private view (and bumps its
  ``_code_version`` so in-flight blocks stop at the next store
  boundary); the shared store itself is immutable, so sibling devices
  are unaffected — the copy-on-write direction is "diverged device
  recompiles privately", never "shared entry mutated".

Execute *permission* is not part of the store: a CPU adopting a block
re-validates execute permission over the block's byte range against
its own MPU bitmap first (and adopts a per-device shallow copy, so
the block's ``perm_ok`` cache never ping-pongs between devices with
different MPU configurations).

Correctness rests on the superblock layer's architectural-equivalence
invariant (blocks vs. ``step()`` are bit-identical): sharing only
changes *which* PCs have blocks *when*, so shared-cache runs are
byte-identical to private-cache and step-only runs.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import struct
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.safeload import safe_loads

#: variants kept per PC before publishing stops.  A device rewriting
#: its own code (rogue wild-pointer stores) would otherwise grow an
#: unbounded variant list at the rewritten PCs; past the cap it just
#: translates privately.  The same cap bounds the *disk* tier: a
#: self-modifying rogue can append at most MAX_VARIANTS variants of
#: its rewritten PCs per store file, and byte-verification keeps any
#: of them from ever being adopted by a clean device.
MAX_VARIANTS = 4


class SharedExecutionCache:
    """One port-wiring's shared translations: superblocks + icache
    entries, content-addressed by the code bytes they translate.

    ``blocks`` maps entry PC to a list of compiled
    :class:`~repro.msp430.cpu._Block` variants (each carrying its
    ``code`` bytes); ``pages`` maps 64-byte page index to
    ``{pc: [(code bytes, icache entry), ...]}``.  Lists are only ever
    appended to (never mutated or reordered), so concurrent readers
    in one process need no locking.
    """

    __slots__ = ("blocks", "pages", "disk",
                 "block_pulls", "page_pulls", "publishes", "rejects")

    def __init__(self):
        self.blocks: Dict[int, list] = {}
        self.pages: Dict[int, Dict[int, list]] = {}
        #: optional :class:`DiskTier` persisting hot compiled blocks
        #: across processes and runs (attached by
        #: :func:`shared_execution_cache`; plain stores built directly
        #: by tests stay memory-only)
        self.disk: Optional["DiskTier"] = None
        # introspection counters (tests, --profile diagnostics)
        self.block_pulls = 0
        self.page_pulls = 0
        self.publishes = 0
        self.rejects = 0

    def stats(self) -> dict:
        stats = {"blocks": len(self.blocks), "pages": len(self.pages),
                 "block_pulls": self.block_pulls,
                 "page_pulls": self.page_pulls,
                 "publishes": self.publishes, "rejects": self.rejects}
        if self.disk is not None:
            stats["disk"] = self.disk.stats()
        return stats


#: sorted I/O port tuple -> store.  The port set is the store
#: identity because the superblock compiler terminates blocks at
#: instructions addressing registered ports — two machines with the
#: same bytes but different port wiring would disagree on block
#: boundaries.  Everything else is verified per entry, by content.
_REGISTRY: Dict[tuple, SharedExecutionCache] = {}


def image_digest(image: bytes) -> str:
    """sha-256 of a memory image (also the delta-checkpoint base id)."""
    return hashlib.sha256(image).hexdigest()


def shared_execution_cache(io_ports) -> SharedExecutionCache:
    """The process-wide store for this I/O port wiring — with the
    persistent disk tier attached when caching is enabled, so a fresh
    process (a newly spawned fleet worker, a rerun of yesterday's
    campaign) starts from the translations every earlier process
    published instead of re-translating the firmware from scratch."""
    key = tuple(sorted(io_ports))
    store = _REGISTRY.get(key)
    if store is None:
        store = SharedExecutionCache()
        if _disk_enabled():
            try:
                store.disk = DiskTier(_store_path(key))
            except OSError:
                store.disk = None    # unwritable cache dir: memory-only
        _REGISTRY[key] = store
    return store


def clear_registry() -> None:
    """Drop every store (tests that need cold-cache behaviour)."""
    _REGISTRY.clear()


# -- persistent disk tier ---------------------------------------------------
#
# One append-only store file per (port wiring, toolchain version,
# interpreter) — the same identity rule as the in-memory registry,
# with everything version-shaped folded into the *file name* so a
# toolchain edit or a Python upgrade simply starts a new file (the old
# one ages out under the LRU budget).  Records inside the file are
# content-addressed exactly like the in-memory store: each carries the
# code bytes it translates, and adoption byte-verifies against the
# puller's live memory, so the disk tier adds no trust beyond what a
# sibling process already gets.  Framing is self-checking (magic,
# length, payload digest): a torn tail from a killed writer or a
# corrupted record is detected, skipped, and simply re-translated.

#: bump when the record payload layout changes
DISK_FORMAT = 1

_MAGIC = b"SBX1"
_HEADER = struct.Struct("<I16s")     # payload length, sha-256 prefix
#: a single compiled block serializes to a few KB; anything claiming
#: to be bigger is a corrupt length field
_MAX_RECORD = 1 << 24


def _disk_enabled() -> bool:
    if os.environ.get("REPRO_NO_CACHE", "") in ("1", "true"):
        return False
    return os.environ.get("REPRO_EXEC_CACHE", "") not in ("0", "off")


def exec_cache_dir() -> Path:
    """``REPRO_EXEC_CACHE_DIR``, else ``<REPRO_CACHE_DIR>/exec``, else
    ``<repo>/.cache/exec`` (sibling of the firmware build cache)."""
    override = os.environ.get("REPRO_EXEC_CACHE_DIR")
    if override:
        return Path(override)
    shared_root = os.environ.get("REPRO_CACHE_DIR")
    if shared_root:
        return Path(shared_root) / "exec"
    return Path(__file__).resolve().parents[3] / ".cache" / "exec"


def exec_cache_max_bytes() -> int:
    """Disk budget from ``REPRO_EXEC_CACHE_MAX_MB`` (<= 0: unbounded;
    default 64 MB — compiled-block records are a few KB each)."""
    raw = os.environ.get("REPRO_EXEC_CACHE_MAX_MB", "64")
    try:
        return int(float(raw) * 1024 * 1024)
    except ValueError:
        return 64 * 1024 * 1024


def _store_path(port_key: tuple) -> Path:
    from repro.aft.cache import toolchain_version  # lazy: avoids cycle
    digest = hashlib.sha256()
    digest.update(repr((DISK_FORMAT, sys.implementation.cache_tag,
                        toolchain_version(), port_key)).encode())
    return exec_cache_dir() / f"{digest.hexdigest()[:16]}.sbx"


def prune_exec_cache(directory: Optional[Path] = None,
                     max_bytes: Optional[int] = None,
                     keep: Optional[Path] = None) -> int:
    """Evict least-recently-used ``.sbx`` store files until the cache
    fits the budget; returns the number of files removed.  ``keep``
    (the store a live process is appending to) is never evicted —
    its mtime is refreshed by every append anyway."""
    directory = exec_cache_dir() if directory is None else directory
    limit = exec_cache_max_bytes() if max_bytes is None else max_bytes
    if limit <= 0 or not directory.is_dir():
        return 0
    entries = []
    total = 0
    for path in directory.glob("*.sbx"):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, stat.st_size, path))
        total += stat.st_size
    removed = 0
    entries.sort()                     # oldest first
    for _mtime, size, path in entries:
        if total <= limit:
            break
        if keep is not None and path == keep:
            continue
        try:
            path.unlink()
        except OSError:
            continue                   # raced with another process
        total -= size
        removed += 1
    return removed


# -- store export/import (the fleet blob channel) ---------------------------
#
# A remote fleet worker starts translation-cold: its host has never
# run this firmware.  The coordinator offers its ``.sbx`` store files
# over the content-addressed blob channel; the worker imports any it
# doesn't already have and starts warm.  Import is fail-closed in
# exactly the sense ingestion already is: the blob's sha was verified
# at the channel layer, and every frame is then re-walked — magic,
# length bound, payload digest, record shape — with anything invalid
# dropped (never written).  Record payloads are deserialized with the
# restricted :func:`~repro.safeload.safe_loads` (frame digests only
# prove the sender framed its own bytes consistently, so the
# deserializer itself must be non-executing): a payload referencing
# any global raises before anything is called, so a corrupt or
# hostile transfer degrades to "fewer warm frames", never to code
# execution or a poisoned store.  Adoption-time byte-verification
# against the puller's live memory still applies on top, as for any
# locally published frame.

#: store files are named by an identity hash; anything else (path
#: tricks, stray files) is refused on both export and import
_STORE_NAME = re.compile(r"^[0-9a-f]{16}\.sbx$")


def list_store_files() -> List[dict]:
    """Offerable ``.sbx`` stores in this process's cache dir:
    ``[{"name", "sha", "size"}, ...]`` — the coordinator's side of the
    blob-channel handshake."""
    directory = exec_cache_dir()
    offers = []
    if not directory.is_dir():
        return offers
    for path in sorted(directory.glob("*.sbx")):
        if not _STORE_NAME.match(path.name):
            continue
        try:
            data = path.read_bytes()
        except OSError:
            continue
        offers.append({"name": path.name,
                       "sha": hashlib.sha256(data).hexdigest(),
                       "size": len(data)})
    return offers


def read_store_file(name: str) -> Optional[bytes]:
    """The raw bytes of one offerable store, or ``None`` (bad name,
    vanished file)."""
    if not _STORE_NAME.match(name):
        return None
    try:
        return (exec_cache_dir() / name).read_bytes()
    except OSError:
        return None


def have_store_file(name: str) -> bool:
    """Whether this host already has (any version of) the named store
    — an importer skips those; append-only publishing means the local
    copy converges on its own."""
    return bool(_STORE_NAME.match(name)) and \
        (exec_cache_dir() / name).exists()


def scan_frames(data: bytes) -> Tuple[bytes, int, int]:
    """Walk ``data`` as SBX frames and keep only fully valid ones.

    Returns ``(valid frame bytes, records kept, frames rejected)``.
    The walk applies every check ingestion applies — magic, length
    bound, payload digest, globals-free restricted unpickling,
    record shape — and, being an import-time scan of a complete
    transfer, also treats a torn tail as a rejection rather than
    "wait for more"."""
    kept = bytearray()
    records = 0
    rejected = 0
    view = memoryview(data)
    pos = 0
    frame = len(_MAGIC) + _HEADER.size
    while pos + frame <= len(view):
        if bytes(view[pos:pos + len(_MAGIC)]) != _MAGIC:
            rejected += 1
            break                     # lost sync: drop the rest
        length, digest = _HEADER.unpack_from(view, pos + len(_MAGIC))
        if length > _MAX_RECORD:
            rejected += 1
            break
        start = pos + frame
        if start + length > len(view):
            rejected += 1              # torn tail
            break
        payload = bytes(view[start:start + length])
        pos = start + length
        if hashlib.sha256(payload).digest()[:16] != digest:
            rejected += 1
            continue
        try:
            record = safe_loads(payload)
            record["pc"], record["code"]
        except Exception:
            rejected += 1
            continue
        kept += _MAGIC + _HEADER.pack(length, digest) + payload
        records += 1
    if pos < len(view) and pos + frame > len(view) and not rejected:
        rejected += 1                  # trailing fragment shorter
    return bytes(kept), records, rejected


def import_store_file(name: str, data: bytes) -> int:
    """Install a store fetched from a peer; returns records kept.

    No-ops (returns 0) when caching is disabled, the name is not a
    valid store name, the store already exists locally, or no frame
    survives validation.  The validated frames are written atomically
    under the peer's name — the name encodes the (port wiring,
    toolchain, interpreter) identity, so a store from a peer with a
    different environment simply never gets opened here."""
    if not _disk_enabled() or not _STORE_NAME.match(name):
        return 0
    path = exec_cache_dir() / name
    if path.exists():
        return 0
    kept, records, _rejected = scan_frames(data)
    if not records:
        return 0
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".sbx.tmp{os.getpid()}")
        tmp.write_bytes(kept)
        os.replace(tmp, path)
    except OSError:
        return 0                       # unwritable cache dir
    prune_exec_cache(path.parent, keep=path)
    return records


class DiskTier:
    """Append-only persistent block store for one port wiring.

    Concurrency model: every record is appended with a single
    ``O_APPEND`` write, and every frame is self-checking — readers in
    other processes pick up appended frames incrementally (cheap
    ``stat`` + read from the last consumed offset) and skip anything
    torn or corrupt.  No locks, no coordination: the worst race is a
    duplicate record, which the per-``(pc, code)`` dedup set absorbs.

    The tier stores *record dicts* (plain serialized data); turning a
    record back into a live compiled block — decoding thunks from the
    recorded bytes, reviving the marshaled generated code — is the
    CPU layer's job (:func:`repro.msp430.cpu._block_from_record`),
    keyed off :meth:`take` at superblock-compile time.
    """

    __slots__ = ("path", "_offset", "_records", "_seen", "_counts",
                 "loaded", "published", "corrupt")

    def __init__(self, path: Path):
        self.path = path
        self._offset = 0
        #: pc -> not-yet-revived record dicts read from the file
        self._records: Dict[int, List[dict]] = {}
        #: (pc, code bytes) already read or published — the dedup set
        self._seen = set()
        #: pc -> total variants seen (enforces MAX_VARIANTS on disk)
        self._counts: Dict[int, int] = {}
        self.loaded = 0
        self.published = 0
        self.corrupt = 0
        path.parent.mkdir(parents=True, exist_ok=True)
        self.refresh()

    def stats(self) -> dict:
        return {"path": str(self.path), "loaded": self.loaded,
                "published": self.published, "corrupt": self.corrupt,
                "pending": sum(len(v) for v in self._records.values())}

    def refresh(self) -> bool:
        """Read frames appended since the last call (other workers'
        publishes); returns True when anything new arrived."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return False
        if size <= self._offset:
            return False
        try:
            with self.path.open("rb") as fh:
                fh.seek(self._offset)
                data = fh.read(size - self._offset)
        except OSError:
            return False
        return self._ingest(data)

    def _ingest(self, data: bytes) -> bool:
        new = False
        view = memoryview(data)
        pos = 0
        frame = len(_MAGIC) + _HEADER.size
        while pos + frame <= len(view):
            if bytes(view[pos:pos + len(_MAGIC)]) != _MAGIC:
                # lost sync (corrupt length field earlier, or garbage
                # from an interleaved write): stop consuming — the
                # remaining tail is re-examined on the next refresh
                # only if the file grows past it, so count it corrupt
                # and give up on this file's tail
                self.corrupt += 1
                pos = len(view)
                break
            length, digest = _HEADER.unpack_from(
                view, pos + len(_MAGIC))
            if length > _MAX_RECORD:
                self.corrupt += 1
                pos = len(view)
                break
            start = pos + frame
            if start + length > len(view):
                break                  # torn tail: wait for the rest
            payload = bytes(view[start:start + length])
            pos = start + length
            if hashlib.sha256(payload).digest()[:16] != digest:
                self.corrupt += 1      # bit-rot: skip this frame only
                continue
            try:
                record = safe_loads(payload)
                pc = record["pc"]
                code = record["code"]
            except Exception:
                self.corrupt += 1
                continue
            key = (pc, code)
            if key in self._seen:
                continue
            if self._counts.get(pc, 0) >= MAX_VARIANTS:
                continue               # rogue-variant cap, on disk too
            self._seen.add(key)
            self._counts[pc] = self._counts.get(pc, 0) + 1
            self._records.setdefault(pc, []).append(record)
            self.loaded += 1
            new = True
        self._offset += pos
        return new

    def take(self, pc: int) -> Optional[List[dict]]:
        """Pop (and return) the pending records for ``pc`` — each is
        revived at most once per process; the revived block then lives
        in the in-memory store like any other published variant."""
        return self._records.pop(pc, None)

    def publish(self, record: dict) -> None:
        """Append one block record, if its ``(pc, code)`` content is
        new to this store and the per-pc variant cap allows it."""
        pc = record["pc"]
        key = (pc, record["code"])
        if key in self._seen or self._counts.get(pc, 0) >= MAX_VARIANTS:
            return
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).digest()[:16]
        frame = (_MAGIC + _HEADER.pack(len(payload), digest) + payload)
        try:
            with self.path.open("ab") as fh:
                fh.write(frame)
        except OSError:
            return                     # read-only FS: stay memory-only
        self._seen.add(key)
        self._counts[pc] = self._counts.get(pc, 0) + 1
        # (the next refresh re-reads our own frame and dedups it via
        # _seen — offset tracking stays simple and conservative)
        self.published += 1
        prune_exec_cache(self.path.parent, keep=self.path)
