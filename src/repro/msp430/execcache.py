"""Process-wide shared execution cache for fleets of MCUs.

A fleet campaign simulates many devices whose firmware images heavily
overlap — devices built from the same app subset share the whole
image, and *every* device shares the OS region bytes the linker lays
down first.  Before this module each :class:`~repro.msp430.cpu.Cpu`
decoded and superblock-compiled that code privately; a population of
N devices paid the translation cost N times.

:class:`SharedExecutionCache` is a content-addressed store, one per
distinct I/O port wiring, holding

* compiled superblocks keyed by entry PC, and
* decoded-instruction entries keyed by 64-byte page then PC,

published by the first CPU to translate them and pulled by every
later CPU attached to the same store.  Each published translation
carries the exact code bytes it was compiled from, so devices running
*different* firmware images still share every translation whose bytes
coincide at the same address — in practice the whole OS region and
every app region two images have in common.

Safety model — *content addressing, verify on every pull*:

* **Publish** is append-only: a translation is stored together with
  the publisher's live code bytes at translation time.  No pristine
  image is consulted — a self-modified device publishes (capped)
  variants of its modified code, which only a device with the *same*
  bytes can ever adopt.
* **Pull** compares the candidate's recorded bytes against the
  puller's own memory; on mismatch the next variant is tried, and a
  device whose code matches nothing published translates privately.
* **Invalidation stays device-local.**  A store into cached code pops
  the translation from that CPU's private view (and bumps its
  ``_code_version`` so in-flight blocks stop at the next store
  boundary); the shared store itself is immutable, so sibling devices
  are unaffected — the copy-on-write direction is "diverged device
  recompiles privately", never "shared entry mutated".

Execute *permission* is not part of the store: a CPU adopting a block
re-validates execute permission over the block's byte range against
its own MPU bitmap first (and adopts a per-device shallow copy, so
the block's ``perm_ok`` cache never ping-pongs between devices with
different MPU configurations).

Correctness rests on the superblock layer's architectural-equivalence
invariant (blocks vs. ``step()`` are bit-identical): sharing only
changes *which* PCs have blocks *when*, so shared-cache runs are
byte-identical to private-cache and step-only runs.
"""

from __future__ import annotations

import hashlib
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.framestore import AppendStore, FrameFormat, HEADER, \
    StoreLayout, scan_store

#: variants kept per PC before publishing stops.  A device rewriting
#: its own code (rogue wild-pointer stores) would otherwise grow an
#: unbounded variant list at the rewritten PCs; past the cap it just
#: translates privately.  The same cap bounds the *disk* tier: a
#: self-modifying rogue can append at most MAX_VARIANTS variants of
#: its rewritten PCs per store file, and byte-verification keeps any
#: of them from ever being adopted by a clean device.
MAX_VARIANTS = 4


class SharedExecutionCache:
    """One port-wiring's shared translations: superblocks + icache
    entries, content-addressed by the code bytes they translate.

    ``blocks`` maps entry PC to a list of compiled
    :class:`~repro.msp430.cpu._Block` variants (each carrying its
    ``code`` bytes); ``pages`` maps 64-byte page index to
    ``{pc: [(code bytes, icache entry), ...]}``.  Lists are only ever
    appended to (never mutated or reordered), so concurrent readers
    in one process need no locking.
    """

    __slots__ = ("blocks", "pages", "disk",
                 "block_pulls", "page_pulls", "publishes", "rejects")

    def __init__(self):
        self.blocks: Dict[int, list] = {}
        self.pages: Dict[int, Dict[int, list]] = {}
        #: optional :class:`DiskTier` persisting hot compiled blocks
        #: across processes and runs (attached by
        #: :func:`shared_execution_cache`; plain stores built directly
        #: by tests stay memory-only)
        self.disk: Optional["DiskTier"] = None
        # introspection counters (tests, --profile diagnostics)
        self.block_pulls = 0
        self.page_pulls = 0
        self.publishes = 0
        self.rejects = 0

    def stats(self) -> dict:
        stats = {"blocks": len(self.blocks), "pages": len(self.pages),
                 "block_pulls": self.block_pulls,
                 "page_pulls": self.page_pulls,
                 "publishes": self.publishes, "rejects": self.rejects}
        if self.disk is not None:
            stats["disk"] = self.disk.stats()
        return stats


#: sorted I/O port tuple -> store.  The port set is the store
#: identity because the superblock compiler terminates blocks at
#: instructions addressing registered ports — two machines with the
#: same bytes but different port wiring would disagree on block
#: boundaries.  Everything else is verified per entry, by content.
_REGISTRY: Dict[tuple, SharedExecutionCache] = {}


def image_digest(image: bytes) -> str:
    """sha-256 of a memory image (also the delta-checkpoint base id)."""
    return hashlib.sha256(image).hexdigest()


def shared_execution_cache(io_ports) -> SharedExecutionCache:
    """The process-wide store for this I/O port wiring — with the
    persistent disk tier attached when caching is enabled, so a fresh
    process (a newly spawned fleet worker, a rerun of yesterday's
    campaign) starts from the translations every earlier process
    published instead of re-translating the firmware from scratch."""
    key = tuple(sorted(io_ports))
    store = _REGISTRY.get(key)
    if store is None:
        store = SharedExecutionCache()
        if _disk_enabled():
            try:
                store.disk = DiskTier(_store_path(key))
            except OSError:
                store.disk = None    # unwritable cache dir: memory-only
        _REGISTRY[key] = store
    return store


def clear_registry() -> None:
    """Drop every store (tests that need cold-cache behaviour)."""
    _REGISTRY.clear()


# -- persistent disk tier ---------------------------------------------------
#
# One append-only store file per (port wiring, toolchain version,
# interpreter) — the same identity rule as the in-memory registry,
# with everything version-shaped folded into the *file name* so a
# toolchain edit or a Python upgrade simply starts a new file (the old
# one ages out under the LRU budget).  Records inside the file are
# content-addressed exactly like the in-memory store: each carries the
# code bytes it translates, and adoption byte-verifies against the
# puller's live memory, so the disk tier adds no trust beyond what a
# sibling process already gets.  The framing, scanning, pruning and
# env-knob plumbing are the shared :mod:`repro.framestore` machinery
# (the cohort trace tier uses the same grammar under a different
# magic): a torn tail from a killed writer or a corrupted record is
# detected, skipped, and simply re-translated.

#: bump when the record payload layout changes
DISK_FORMAT = 1

#: a single compiled block serializes to a few KB; anything claiming
#: to be bigger is a corrupt length field
_MAX_RECORD = 1 << 24

_FORMAT = FrameFormat(b"SBX1", _MAX_RECORD, ".sbx")
_LAYOUT = StoreLayout(_FORMAT, "EXEC_CACHE", "exec", default_mb=64)

# kept under their historical names: tests (and the wire layer's
# hostile-input fixtures) frame .sbx records by hand with these
_MAGIC = _FORMAT.magic
_HEADER = HEADER


def _disk_enabled() -> bool:
    return _LAYOUT.enabled()


def exec_cache_dir() -> Path:
    """``REPRO_EXEC_CACHE_DIR``, else ``<REPRO_CACHE_DIR>/exec``, else
    ``<repo>/.cache/exec`` (sibling of the firmware build cache)."""
    return _LAYOUT.directory()


def exec_cache_max_bytes() -> int:
    """Disk budget from ``REPRO_EXEC_CACHE_MAX_MB`` (<= 0: unbounded;
    default 64 MB — compiled-block records are a few KB each)."""
    return _LAYOUT.max_bytes()


def _store_path(port_key: tuple) -> Path:
    from repro.aft.cache import toolchain_version  # lazy: avoids cycle
    identity = (DISK_FORMAT, sys.implementation.cache_tag,
                toolchain_version(), port_key)
    return exec_cache_dir() / _LAYOUT.store_name(identity)


def prune_exec_cache(directory: Optional[Path] = None,
                     max_bytes: Optional[int] = None,
                     keep: Optional[Path] = None) -> int:
    """Evict least-recently-used ``.sbx`` store files until the cache
    fits the budget; returns the number of files removed.  ``keep``
    (the store a live process is appending to) is never evicted —
    its mtime is refreshed by every append anyway."""
    return _LAYOUT.prune(directory, max_bytes, keep)


# -- store export/import (the fleet blob channel) ---------------------------
#
# A remote fleet worker starts translation-cold: its host has never
# run this firmware.  The coordinator offers its ``.sbx`` store files
# over the content-addressed blob channel; the worker imports any it
# doesn't already have and starts warm.  Import is fail-closed in
# exactly the sense ingestion already is: the blob's sha was verified
# at the channel layer, and every frame is then re-walked — magic,
# length bound, payload digest, record shape — with anything invalid
# dropped (never written).  Record payloads are deserialized with the
# restricted :func:`~repro.safeload.safe_loads` (frame digests only
# prove the sender framed its own bytes consistently, so the
# deserializer itself must be non-executing): a payload referencing
# any global raises before anything is called, so a corrupt or
# hostile transfer degrades to "fewer warm frames", never to code
# execution or a poisoned store.  Adoption-time byte-verification
# against the puller's live memory still applies on top, as for any
# locally published frame.

def _validate_block_record(record) -> None:
    """Raise unless ``record`` has the shape of a block record."""
    record["pc"], record["code"]


def list_store_files() -> List[dict]:
    """Offerable ``.sbx`` stores in this process's cache dir:
    ``[{"name", "sha", "size"}, ...]`` — the coordinator's side of the
    blob-channel handshake."""
    return _LAYOUT.list_store_files()


def read_store_file(name: str) -> Optional[bytes]:
    """The raw bytes of one offerable store, or ``None`` (bad name,
    vanished file)."""
    return _LAYOUT.read_store_file(name)


def have_store_file(name: str) -> bool:
    """Whether this host already has (any version of) the named store
    — an importer skips those; append-only publishing means the local
    copy converges on its own."""
    return _LAYOUT.have_store_file(name)


def scan_frames(data: bytes) -> Tuple[bytes, int, int]:
    """Walk ``data`` as SBX frames and keep only fully valid ones.

    Returns ``(valid frame bytes, records kept, frames rejected)``.
    The walk applies every check ingestion applies — magic, length
    bound, payload digest, globals-free restricted unpickling,
    record shape — and, being an import-time scan of a complete
    transfer, also treats a torn tail as a rejection rather than
    "wait for more"."""
    return scan_store(data, _FORMAT, _validate_block_record)


def import_store_file(name: str, data: bytes) -> int:
    """Install a store fetched from a peer; returns records kept.

    No-ops (returns 0) when caching is disabled, the name is not a
    valid store name, the store already exists locally, or no frame
    survives validation.  The validated frames are written atomically
    under the peer's name — the name encodes the (port wiring,
    toolchain, interpreter) identity, so a store from a peer with a
    different environment simply never gets opened here."""
    return _LAYOUT.import_store_file(name, data,
                                     _validate_block_record)


class DiskTier(AppendStore):
    """Append-only persistent block store for one port wiring.

    Concurrency model: every record is appended with a single
    ``O_APPEND`` write, and every frame is self-checking — readers in
    other processes pick up appended frames incrementally (cheap
    ``stat`` + read from the last consumed offset) and skip anything
    torn or corrupt.  No locks, no coordination: the worst race is a
    duplicate record, which the per-``(pc, code)`` dedup set absorbs.

    The tier stores *record dicts* (plain serialized data); turning a
    record back into a live compiled block — decoding thunks from the
    recorded bytes, reviving the marshaled generated code — is the
    CPU layer's job (:func:`repro.msp430.cpu._block_from_record`),
    keyed off :meth:`take` at superblock-compile time.
    """

    __slots__ = ("_records", "_seen", "_counts")

    def __init__(self, path: Path):
        #: pc -> not-yet-revived record dicts read from the file
        self._records: Dict[int, List[dict]] = {}
        #: (pc, code bytes) already read or published — the dedup set
        self._seen = set()
        #: pc -> total variants seen (enforces MAX_VARIANTS on disk)
        self._counts: Dict[int, int] = {}
        super().__init__(path, _LAYOUT)

    def stats(self) -> dict:
        return {"path": str(self.path), "loaded": self.loaded,
                "published": self.published, "corrupt": self.corrupt,
                "pending": sum(len(v) for v in self._records.values())}

    def _accept(self, record) -> bool:
        pc = record["pc"]              # wrong shape raises -> corrupt
        code = record["code"]
        key = (pc, code)
        if key in self._seen:
            return False
        if self._counts.get(pc, 0) >= MAX_VARIANTS:
            return False               # rogue-variant cap, on disk too
        self._seen.add(key)
        self._counts[pc] = self._counts.get(pc, 0) + 1
        self._records.setdefault(pc, []).append(record)
        return True

    def take(self, pc: int) -> Optional[List[dict]]:
        """Pop (and return) the pending records for ``pc`` — each is
        revived at most once per process; the revived block then lives
        in the in-memory store like any other published variant."""
        return self._records.pop(pc, None)

    def publish(self, record: dict) -> None:
        """Append one block record, if its ``(pc, code)`` content is
        new to this store and the per-pc variant cap allows it."""
        pc = record["pc"]
        key = (pc, record["code"])
        if key in self._seen or self._counts.get(pc, 0) >= MAX_VARIANTS:
            return
        if not self.publish_record(record):
            return                     # read-only FS: stay memory-only
        self._seen.add(key)
        self._counts[pc] = self._counts.get(pc, 0) + 1
