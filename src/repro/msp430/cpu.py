"""Fetch/decode/execute engine for the 16-bit MSP430 core.

The engine is cycle-counted using the architectural tables in
:mod:`repro.msp430.cycles`.  Memory-protection failures (bus errors on
unmapped holes, MPU violations) surface as :class:`CpuFault`, which the
kernel converts into the paper's ``FAULT()`` path.

Asynchronous interrupts are not modeled: none of the paper's
measurements involve interrupt latency, and the kernel delivers events
by starting the CPU at a dispatch gate instead (see
``repro.kernel.machine``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import (
    DecodeError,
    MemoryAccessError,
    MpuViolationError,
    ReproError,
)
from repro.msp430 import cycles as cyc
from repro.msp430.decoder import decode
from repro.msp430.isa import (
    AddressingMode,
    Instruction,
    Opcode,
    Operand,
)
from repro.msp430.memory import EXECUTE, Memory, READ, WRITE
from repro.msp430.registers import Reg, RegisterFile, SR

_M = AddressingMode


class FaultKind(enum.Enum):
    MPU_VIOLATION = "mpu-violation"
    BUS_ERROR = "bus-error"
    DECODE_ERROR = "decode-error"


class CpuFault(ReproError):
    """A synchronous fault raised while executing an instruction."""

    def __init__(self, kind: FaultKind, pc: int, address: int,
                 detail: str = ""):
        self.kind = kind
        self.pc = pc
        self.address = address
        self.detail = detail
        super().__init__(
            f"{kind.value} at pc=0x{pc:04X} addr=0x{address:04X}"
            + (f": {detail}" if detail else "")
        )


@dataclass
class _Location:
    """Where an operand's result should be written back."""

    kind: str                  # "reg" | "mem" | "none"
    register: int = 0
    address: int = 0


class ExecutionLimitExceeded(ReproError):
    """``run`` hit its cycle or instruction budget without halting."""


class Cpu:
    """The execution engine.

    Attributes of interest:

    * ``cycles`` -- architectural cycle counter (drives the experiments)
    * ``instructions`` -- retired instruction count
    * ``halted`` -- set by the kernel's DONE port or :meth:`halt`
    """

    def __init__(self, memory: Optional[Memory] = None):
        self.memory = memory if memory is not None else Memory()
        self.regs = RegisterFile()
        self.cycles = 0
        self.instructions = 0
        self.halted = False
        self.trace_hook: Optional[Callable[[int, Instruction], None]] = None
        # Raised mid-instruction by service handlers that must stop the
        # world (used by the kernel fault path).
        self._pending_fault: Optional[CpuFault] = None
        # Decoded-instruction cache, keyed by 64-byte block then PC.
        # Any memory write invalidates the blocks it touches (so
        # self-modifying code and re-loads stay correct); firmware
        # never self-modifies, so in practice every instruction decodes
        # once.  Entries: pc -> (insn, size, cycles).
        self._icache: dict = {}
        self.memory.write_hook = self._on_memory_write

    def _on_memory_write(self, address: int, _value: int) -> None:
        if address < 0:
            self._icache.clear()      # bulk load
            return
        # Entries are keyed by the block their *first* word is in, but
        # an instruction can extend into the next block — so a write
        # also invalidates the preceding block.
        block = address >> 6
        self._icache.pop(block, None)
        self._icache.pop(block - 1, None)

    # -- small helpers ------------------------------------------------------
    def reset(self, pc: Optional[int] = None) -> None:
        self.regs = RegisterFile()
        self.cycles = 0
        self.instructions = 0
        self.halted = False
        if pc is None:
            pc = self.memory.read_word(self.memory.map.RESET_VECTOR)
        self.regs.pc = pc

    def halt(self) -> None:
        self.halted = True

    def post_fault(self, fault: CpuFault) -> None:
        """Queue a fault to be raised at the end of the current step."""
        self._pending_fault = fault

    # -- operand evaluation ------------------------------------------------
    def _read_reg(self, n: int, byte: bool) -> int:
        value = self.regs.read(n)
        return value & 0xFF if byte else value

    def _load(self, address: int, byte: bool) -> int:
        if byte:
            return self.memory.read_byte(address)
        return self.memory.read_word(address)

    def _store(self, location: _Location, value: int, byte: bool) -> None:
        if location.kind == "reg":
            # Byte operations clear the destination's high byte.
            self.regs.write(location.register,
                            value & 0xFF if byte else value & 0xFFFF)
        elif location.kind == "mem":
            if byte:
                self.memory.write_byte(location.address, value)
            else:
                self.memory.write_word(location.address, value)

    def _effective_address(self, op: Operand) -> int:
        m = op.mode
        if m is _M.INDEXED:
            return (self.regs.read(op.register) + op.value) & 0xFFFF
        if m in (_M.SYMBOLIC, _M.ABSOLUTE):
            return op.value & 0xFFFF
        if m in (_M.INDIRECT, _M.AUTOINCREMENT):
            return self.regs.read(op.register)
        raise ReproError(f"operand mode {m} has no address")

    def _eval_source(self, op: Operand, byte: bool) -> int:
        m = op.mode
        if m is _M.REGISTER:
            return self._read_reg(op.register, byte)
        if m is _M.IMMEDIATE:
            return op.value & (0xFF if byte else 0xFFFF)
        address = self._effective_address(op)
        value = self._load(address, byte)
        if m is _M.AUTOINCREMENT:
            step = 1 if byte else 2
            self.regs.write(op.register,
                            self.regs.read(op.register) + step)
        return value

    def _eval_dest(self, op: Operand, byte: bool,
                   need_value: bool) -> Tuple[int, _Location]:
        if op.mode is _M.REGISTER:
            value = self._read_reg(op.register, byte) if need_value else 0
            return value, _Location("reg", register=op.register)
        address = self._effective_address(op)
        value = self._load(address, byte) if need_value else 0
        return value, _Location("mem", address=address)

    # -- ALU ----------------------------------------------------------------
    def _flags_add(self, src: int, dst: int, result: int,
                   byte: bool) -> int:
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        out = result & mask
        self.regs.set_flag(SR.C, result > mask)
        self.regs.set_flag(SR.V,
                           bool(~(src ^ dst) & (src ^ out) & sign))
        self.regs.set_nz(out, byte)
        return out

    def _flags_sub(self, src: int, dst: int, carry_in: int,
                   byte: bool) -> int:
        """dst - src (+ carry-1 for SUBC); C means *no borrow*."""
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        result = dst + ((~src) & mask) + carry_in
        out = result & mask
        self.regs.set_flag(SR.C, result > mask)
        self.regs.set_flag(SR.V,
                           bool((dst ^ src) & (dst ^ out) & sign))
        self.regs.set_nz(out, byte)
        return out

    def _logic_flags(self, out: int, byte: bool,
                     overflow: bool = False) -> None:
        self.regs.set_nz(out, byte)
        self.regs.set_flag(SR.C, out != 0)
        self.regs.set_flag(SR.V, overflow)

    @staticmethod
    def _dadd(src: int, dst: int, carry: int, byte: bool) -> Tuple[int, int]:
        digits = 2 if byte else 4
        out = 0
        for i in range(digits):
            d = ((src >> (4 * i)) & 0xF) + ((dst >> (4 * i)) & 0xF) + carry
            if d > 9:
                d -= 10
                carry = 1
            else:
                carry = 0
            out |= d << (4 * i)
        return out, carry

    # -- stack helpers ---------------------------------------------------------
    def _push(self, value: int) -> None:
        self.regs.sp = (self.regs.sp - 2) & 0xFFFF
        self.memory.write_word(self.regs.sp, value)

    def _pop(self) -> int:
        value = self.memory.read_word(self.regs.sp)
        self.regs.sp = (self.regs.sp + 2) & 0xFFFF
        return value

    # -- execution ------------------------------------------------------------
    def step(self) -> Instruction:
        """Execute one instruction; returns it (for tracing)."""
        pc = self.regs.pc
        block = self._icache.get(pc >> 6)
        entry = block.get(pc) if block is not None else None
        try:
            if entry is None:
                insn, size = decode(self.memory.fetch_word, pc)
                insn_cycles = cyc.instruction_cycles(insn)
                self._icache.setdefault(pc >> 6, {})[pc] = \
                    (insn, size, insn_cycles)
            else:
                insn, size, insn_cycles = entry
                # the decode is cached, but execute *permission* must
                # be re-validated — the MPU config changes between
                # context switches
                self.memory._check(pc, EXECUTE)
                if size > 2:
                    self.memory._check(pc + size - 1, EXECUTE)
        except MpuViolationError as exc:
            raise CpuFault(FaultKind.MPU_VIOLATION, pc, exc.address,
                           "instruction fetch") from exc
        except MemoryAccessError as exc:
            raise CpuFault(FaultKind.BUS_ERROR, pc, exc.address,
                           "instruction fetch") from exc
        except DecodeError as exc:
            raise CpuFault(FaultKind.DECODE_ERROR, pc, pc,
                           str(exc)) from exc

        self.regs.pc = (pc + size) & 0xFFFF
        if self.trace_hook is not None:
            self.trace_hook(pc, insn)
        try:
            self._execute(insn)
        except MpuViolationError as exc:
            raise CpuFault(FaultKind.MPU_VIOLATION, pc, exc.address,
                           exc.kind) from exc
        except MemoryAccessError as exc:
            raise CpuFault(FaultKind.BUS_ERROR, pc, exc.address,
                           exc.kind) from exc

        self.cycles += insn_cycles
        self.instructions += 1
        if self._pending_fault is not None:
            fault, self._pending_fault = self._pending_fault, None
            raise fault
        return insn

    def run(self, max_cycles: int = 10_000_000,
            max_instructions: Optional[int] = None) -> int:
        """Run until :attr:`halted`; returns cycles consumed by this call."""
        start = self.cycles
        budget_insns = (max_instructions if max_instructions is not None
                        else max_cycles)  # instructions <= cycles always
        executed = 0
        while not self.halted:
            self.step()
            executed += 1
            if self.cycles - start > max_cycles or executed > budget_insns:
                raise ExecutionLimitExceeded(
                    f"no halt after {self.cycles - start} cycles "
                    f"({executed} instructions) from pc=0x{self.regs.pc:04X}"
                )
        return self.cycles - start

    # -- per-opcode semantics ------------------------------------------------
    def _execute(self, insn: Instruction) -> None:
        value = insn.opcode.value
        if value >= 0x2000:
            self._execute_jump(insn)
        elif value >= 0x1000:
            self._execute_format2(insn)
        else:
            self._execute_format1(insn)

    def _execute_jump(self, insn: Instruction) -> None:
        r = self.regs
        op = insn.opcode
        sr = r.sr
        if op is Opcode.JMP:
            take = True
        elif op is Opcode.JNE:
            take = not sr & SR.Z
        elif op is Opcode.JEQ:
            take = bool(sr & SR.Z)
        elif op is Opcode.JNC:
            take = not sr & SR.C
        elif op is Opcode.JC:
            take = bool(sr & SR.C)
        elif op is Opcode.JN:
            take = bool(sr & SR.N)
        elif op is Opcode.JGE:
            take = bool(sr & SR.N) == bool(sr & SR.V)
        else:  # JL
            take = bool(sr & SR.N) != bool(sr & SR.V)
        if take:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _execute_format2(self, insn: Instruction) -> None:
        op = insn.opcode
        byte = insn.byte
        r = self.regs

        if op is Opcode.RETI:
            r.sr = self._pop()
            r.pc = self._pop()
            return

        if op is Opcode.PUSH:
            value = self._eval_source(insn.src, byte)
            # PUSH.B still decrements SP by 2 (hardware behaviour).
            self._push(value & (0xFF if byte else 0xFFFF))
            return

        if op is Opcode.CALL:
            if insn.src.mode in (_M.REGISTER, _M.IMMEDIATE):
                target = self._eval_source(insn.src, byte=False)
            else:
                target = self._load(self._effective_address(insn.src),
                                    byte=False)
                if insn.src.mode is _M.AUTOINCREMENT:
                    r.write(insn.src.register,
                            r.read(insn.src.register) + 2)
            self._push(r.pc)
            r.pc = target
            return

        # RRA / RRC / SWPB / SXT read-modify-write their operand.
        if insn.src.mode is _M.REGISTER:
            value = self._read_reg(insn.src.register, byte)
            location = _Location("reg", register=insn.src.register)
        else:
            address = self._effective_address(insn.src)
            value = self._load(address, byte)
            if insn.src.mode is _M.AUTOINCREMENT:
                step = 1 if byte else 2
                r.write(insn.src.register, r.read(insn.src.register) + step)
            location = _Location("mem", address=address)

        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        if op is Opcode.RRA:
            out = (value >> 1) | (value & sign)
            r.set_flag(SR.C, bool(value & 1))
            r.set_flag(SR.V, False)
            r.set_nz(out, byte)
        elif op is Opcode.RRC:
            out = (value >> 1) | (sign if r.carry else 0)
            r.set_flag(SR.C, bool(value & 1))
            r.set_flag(SR.V, False)
            r.set_nz(out, byte)
        elif op is Opcode.SWPB:
            out = ((value << 8) | (value >> 8)) & 0xFFFF
        elif op is Opcode.SXT:
            out = value & 0xFF
            if out & 0x80:
                out |= 0xFF00
            r.set_nz(out, byte=False)
            r.set_flag(SR.C, out != 0)
            r.set_flag(SR.V, False)
        else:  # pragma: no cover - decoder guarantees coverage
            raise ReproError(f"unhandled format-II opcode {op}")
        self._store(location, out & mask, byte)

    def _execute_format1(self, insn: Instruction) -> None:
        op = insn.opcode
        byte = insn.byte
        r = self.regs
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000

        src = self._eval_source(insn.src, byte)
        need_dst = op is not Opcode.MOV
        dst, location = self._eval_dest(insn.dst, byte, need_dst)

        if op is Opcode.MOV:
            self._store(location, src, byte)
            return
        if op is Opcode.ADD:
            out = self._flags_add(src, dst, src + dst, byte)
        elif op is Opcode.ADDC:
            out = self._flags_add(src, dst, src + dst + int(r.carry), byte)
        elif op is Opcode.SUB:
            out = self._flags_sub(src, dst, 1, byte)
        elif op is Opcode.SUBC:
            out = self._flags_sub(src, dst, int(r.carry), byte)
        elif op is Opcode.CMP:
            self._flags_sub(src, dst, 1, byte)
            return
        elif op is Opcode.DADD:
            out, carry = self._dadd(src, dst, int(r.carry), byte)
            r.set_flag(SR.C, bool(carry))
            r.set_nz(out, byte)
        elif op is Opcode.BIT:
            out = src & dst
            self._logic_flags(out, byte)
            return
        elif op is Opcode.BIC:
            out = dst & ~src & mask
        elif op is Opcode.BIS:
            out = (dst | src) & mask
        elif op is Opcode.XOR:
            out = (dst ^ src) & mask
            self._logic_flags(out, byte,
                              overflow=bool(src & sign) and bool(dst & sign))
        elif op is Opcode.AND:
            out = dst & src & mask
            self._logic_flags(out, byte)
        else:  # pragma: no cover
            raise ReproError(f"unhandled format-I opcode {op}")
        self._store(location, out, byte)
