"""Fetch/decode/execute engine for the 16-bit MSP430 core.

The engine is cycle-counted using the architectural tables in
:mod:`repro.msp430.cycles`.  Memory-protection failures (bus errors on
unmapped holes, MPU violations) surface as :class:`CpuFault`, which the
kernel converts into the paper's ``FAULT()`` path.

Asynchronous interrupts are not modeled: none of the paper's
measurements involve interrupt latency, and the kernel delivers events
by starting the CPU at a dispatch gate instead (see
``repro.kernel.machine``).

Execution is driven by a precomputed dispatch table keyed by
:class:`~repro.msp430.isa.Opcode` — one handler method per opcode,
bound once per CPU instance — instead of if/elif chains, and operand
writeback uses plain ``(register, address)`` integers (``-1`` meaning
"not this kind") so the register fast path allocates nothing per step.
Decoded instructions are cached per 64-byte block; any memory write
invalidates the blocks it touches, so self-modifying code and
firmware reloads stay correct.

Superblocks
-----------

On top of the per-instruction thunks, :meth:`Cpu.run` compiles
straight-line runs of already-decoded thunks into *superblocks*: one
Python-level dispatch per block instead of one ``step()`` round trip
per instruction.  A block starts at a hot PC and extends until the
first

* jump (included as the block's final instruction), call, return, or
  any other instruction without a specialized thunk,
* instruction whose absolute operand hits a memory-mapped I/O port —
  kernel gates (service/done/fault ports), MPU registers, the cycle
  timer — so gate crossings and MPU reprogramming always run through
  ``step()``, or
* the 64-instruction block-size cap.

Blocks come in two flavours, decided by a compile-time "may touch
memory" summary: **pure** blocks (register-only thunks, optionally a
final jump) skip *all* per-instruction bookkeeping — the PC, cycle and
instruction counters are written once per block — while **memory**
blocks keep the architectural counters and PC exact around every
thunk, so I/O read handlers (the cycle timer), fault PCs, and pending
service faults observe bit-identical state to ``step()``.

``run()`` only dispatches blocks when nothing needs per-instruction
observability: a ``trace_hook`` (debugger), a memory observer
(watchpoints, profilers), a pending fault, or a cycle/instruction
budget within one block of expiring all fall back to ``step()``, as
does setting :attr:`Cpu.block_mode` to ``False`` (the forced step-only
mode the differential tests compare against).  Invalidation rides the
icache write hook — a store into a block's PC range (including
block-straddling writes) kills the block — and MPU reconfiguration is
handled by revalidating each block's execute permission against the
bus's memoized permission bitmap: same bitmap object, no work; new
bitmap, one pass over the block's byte range.
"""

from __future__ import annotations

import enum
import marshal
import types
from typing import Callable, Dict, Optional, Tuple

from repro.errors import (
    DecodeError,
    MemoryAccessError,
    MpuViolationError,
    ReproError,
)
from repro.msp430 import cycles as cyc
from repro.msp430.decoder import decode
from repro.msp430.isa import (
    AddressingMode,
    Instruction,
    Opcode,
    Operand,
)
from repro.msp430.execcache import MAX_VARIANTS
from repro.msp430.memory import EXECUTE, Memory, PERM_X, READ, WRITE
from repro.msp430.registers import Reg, RegisterFile, SR

_M = AddressingMode


class FaultKind(enum.Enum):
    MPU_VIOLATION = "mpu-violation"
    BUS_ERROR = "bus-error"
    DECODE_ERROR = "decode-error"


class CpuFault(ReproError):
    """A synchronous fault raised while executing an instruction."""

    def __init__(self, kind: FaultKind, pc: int, address: int,
                 detail: str = ""):
        self.kind = kind
        self.pc = pc
        self.address = address
        self.detail = detail
        super().__init__(
            f"{kind.value} at pc=0x{pc:04X} addr=0x{address:04X}"
            + (f": {detail}" if detail else "")
        )


class ExecutionLimitExceeded(ReproError):
    """``run`` hit its cycle or instruction budget without halting.

    The message states which budget tripped (cycles vs. instructions);
    the two limits are tracked separately."""


#: superblocks stop growing after this many instructions; ``run``'s
#: budget guard refuses to dispatch a block that could overshoot the
#: remaining budget, so blocks never blur ExecutionLimitExceeded.
_MAX_BLOCK_INSNS = 64

#: zero page-mask template (bulk invalidation resets the code mask)
_ZERO_MASK = bytes(1024)


class _Block:
    """One compiled superblock: a trace of decoded thunks fused into a
    single ``compile()``-generated function ``fn``.

    ``steps`` holds ``(pc, next_pc, thunk, cycles, may_store, jump)``
    per instruction (kept for invalidation tests and diagnostics).
    ``jump`` is ``None`` for straight-line steps and for a final jump
    executed via its thunk; mid-trace conditional jumps carry either
    ``("exit", cond, target)`` — compiled to an inline early return —
    or ``("skip", cond, n, cycles, count, target)`` — a forward jump
    re-joining the trace, compiled to a structured ``if`` around the
    ``n`` skipped steps.  Three flavors of ``fn``:

    * **pure** — register-only thunks (plus inline jumps and an
      optional final jump): ``fn(cpu, r, m)`` sets the PC once, calls
      the thunks back to back, and adds the cycle/instruction totals
      in one batch (skip/exit paths adjust the batch with compile-time
      prefix constants).
    * **loop** — a pure block whose final jump targets its own start:
      ``fn(cpu, r, m, limit)`` iterates the whole block up to ``limit``
      times (the caller derives ``limit`` from the remaining budget),
      exiting as soon as the back-edge falls through or an inline exit
      is taken.
    * **memory** — anything that touches memory: ``fn(cpu, r, m)``
      maintains PC and both counters per instruction (so I/O read
      handlers such as the cycle timer observe exactly the state
      ``step()`` would show) and re-checks halt/pending-fault/
      invalidation/observability after every store.

    ``cycles`` and ``count`` are the *full-path* totals (every step
    executed, nothing skipped) — upper bounds used for budget guards.

    ``perm_ok`` caches the bus permission bitmap (a memoized immutable
    ``bytes`` per MPU configuration, shared process-wide per
    configuration) this block was last execute-validated against —
    same object means the validation still holds, so an MPU
    reconfiguration only costs a re-scan for blocks whose permission
    signature actually changed.  ``pc_map`` maps each instruction's
    advanced PC back to its own PC so a fault raised inside ``fn`` is
    reported at the exact faulting instruction.

    A block is immutable once built (``perm_ok`` is a cache, not
    state), which is what lets the shared execution cache hand one
    block object to every device running the same firmware:
    invalidation is per-device (drop it from that CPU's view and bump
    that CPU's ``_code_version``), never a mutation of the block.
    """

    __slots__ = ("start", "end", "end_pc", "steps", "cycles", "count",
                 "pure", "loop", "perm_ok", "perm_ok2", "fn", "pc_map",
                 "code", "execs", "proto")

    def __init__(self, start: int, end: int, end_pc: int,
                 steps: tuple, pure: bool, loop: bool):
        self.start = start
        self.end = end                  # one past the last code byte
        self.end_pc = end_pc            # pc after the last instruction
        self.steps = steps
        self.cycles = sum(s[3] for s in steps)
        self.count = len(steps)
        self.pure = pure
        self.loop = loop
        self.perm_ok = None
        self.perm_ok2 = None            # previous validation (see run)
        self.pc_map = {s[1]: s[0] for s in steps}
        self.code = None                # bytes compiled from (sharing)
        # Tiered execution: ``fn`` stays None for the first dispatches
        # (run() walks the steps through _interp_block) and is only
        # codegen'd once the block proves hot — code executed once or
        # twice never pays ``compile()``.  ``proto`` points at the
        # published original for adopted copies, so one codegen serves
        # every device sharing the block.
        self.fn = None
        self.execs = 0
        self.proto = None

    def adopt(self) -> "_Block":
        """A per-device shallow copy for shared-cache adoption: every
        heavy member (steps, fn, pc_map, code) is shared by reference;
        only the ``perm_ok`` validation cache is private, so devices
        with different MPU configurations never thrash each other's
        re-validation of one shared block object."""
        nb = _Block.__new__(_Block)
        nb.start = self.start
        nb.end = self.end
        nb.end_pc = self.end_pc
        nb.steps = self.steps
        nb.cycles = self.cycles
        nb.count = self.count
        nb.pure = self.pure
        nb.loop = self.loop
        nb.perm_ok = None
        nb.perm_ok2 = None
        nb.fn = self.fn
        nb.execs = self.execs
        nb.proto = self
        nb.pc_map = self.pc_map
        nb.code = self.code
        return nb


def _codegen(blk: _Block):
    """Fuse a block's steps into one compiled Python function.

    The generated code inlines every PC value and cycle count as a
    constant and binds the thunks as globals, so executing a block
    costs one Python call plus the thunk bodies — the per-instruction
    interpreter loop (tuple unpacking, index bookkeeping, budget and
    halt polling) is gone.

    Conditional jumps inside the trace are emitted *inline* (their
    flag test compiled into the function, no thunk call):

    * an **exit** jump returns with exact cycle/instruction prefix
      bookkeeping and the taken-target PC when taken, and falls
      through into the rest of the trace otherwise;
    * a **diamond** jump (forward skip whose target re-joins the
      trace) guards its skipped arm with a structured ``if``; the
      arm's cycle/instruction share is tracked in ``_sk``/``_skn``
      accumulators so batched bookkeeping stays exact on both paths.

    Jumps that *close* a block (an unconditional JMP, or the loop
    back-edge) still execute via their thunk, which performs the PC
    update relative to the preset ``r[0]``.
    """
    ns = {}
    steps = blk.steps
    has_diamond = any(s[5] is not None and s[5][0] == "skip"
                      for s in steps)
    pre_cyc = []                 # inclusive prefix sums for exits
    acc = 0
    for s in steps:
        acc += s[3]
        pre_cyc.append(acc)
    lines = []
    emit = lines.append
    if blk.pure:
        sk = " - _sk" if has_diamond else ""
        skn = " - _skn" if has_diamond else ""
        if blk.loop:
            # Pure self-loop (division inner loops, delay spins):
            # re-dispatching the same few-instruction block through
            # ``run()`` would cost more than the block body, so
            # iterate in place.  ``limit`` is the number of full
            # iterations the remaining cycle/instruction budget
            # allows (>= 1); the back-edge falling through — or any
            # inline exit taken — ends the loop early.
            emit("def _fn(c, r, m, limit):")
            emit("    n = 0")
            if has_diamond:
                emit("    _sk = 0")
                emit("    _skn = 0")
            emit("    while True:")
            base = "        "
            cyc_n = f"{blk.cycles} * n + "
            cnt_n = f"{blk.count} * n + "
        else:
            # Register-only straight line: no thunk can fault, halt,
            # or observe PC/counters, so set the PC once and batch
            # the bookkeeping after the fact.
            emit("def _fn(c, r, m):")
            if has_diamond:
                emit("    _sk = 0")
                emit("    _skn = 0")
            base = "    "
            cyc_n = cnt_n = ""
        emit(f"{base}r[0] = {blk.end_pc}")
        ind = base
        arm = 0                  # steps left in an open diamond arm
        for i, s in enumerate(steps):
            info = s[5]
            if info is None:
                if s[6] is not None:
                    for ln in s[6]:
                        emit(f"{ind}{ln}")
                else:
                    ns[f"_t{i}"] = s[2]
                    emit(f"{ind}_t{i}(r, m)")
            elif info[0] == "skip":
                _, cond, nskip, skc, sks, _target = info
                emit(f"{ind}if {cond}:")
                emit(f"{ind}    _sk += {skc}")
                emit(f"{ind}    _skn += {sks}")
                emit(f"{ind}else:")
                ind += "    "
                arm = nskip
                continue
            else:                # ("exit", cond, target)
                emit(f"{ind}if {info[1]}:")
                emit(f"{ind}    c.cycles += {cyc_n}{pre_cyc[i]}{sk}")
                emit(f"{ind}    c.instructions += {cnt_n}{i + 1}{skn}")
                emit(f"{ind}    r[0] = {info[2]}")
                emit(f"{ind}    return")
            if arm:
                arm -= 1
                if arm == 0:
                    ind = ind[:-4]
        if blk.loop:
            emit(f"{base}n += 1")
            emit(f"{base}if r[0] != {blk.start} or n >= limit:")
            emit(f"{base}    break")
            emit(f"    c.cycles += {blk.cycles} * n{sk}")
            emit(f"    c.instructions += {blk.count} * n{skn}")
        else:
            emit(f"    c.cycles += {blk.cycles}{sk}")
            emit(f"    c.instructions += {blk.count}{skn}")
    else:
        # Memory-touching block: exact architectural state around
        # every thunk.  A store may halt the machine (DONE port), post
        # a fault (FAULT port / service handler), invalidate cached
        # code — possibly this very block (self-modifying code) —
        # stale the permission bitmap (MPU register), or attach an
        # observer — each check mirrors what ``step()`` + ``run()``
        # would do at that boundary.  Invalidation is detected through
        # the *executing CPU's* ``_code_version`` (sampled on entry)
        # rather than a flag on the block, so one device invalidating
        # a block shared through the execution cache never perturbs a
        # sibling device mid-flight.
        emit("def _fn(c, r, m):")
        emit("    _v = c._code_version")
        ind = "    "
        arm = 0
        # Consecutive register-only inline steps can neither fault,
        # halt, nor read the deferred PC, so their PC updates are
        # unobservable and their cycle/instruction bookkeeping batches
        # into one pending sum, flushed before the next step that can
        # observe it (a memory access, a jump, an arm boundary, the
        # end of the block).
        pend_c = pend_n = 0

        def flush():
            nonlocal pend_c, pend_n
            if pend_n:
                emit(f"{ind}c.cycles += {pend_c}")
                emit(f"{ind}c.instructions += {pend_n}")
                pend_c = pend_n = 0

        for i, s in enumerate(steps):
            pc_i, next_pc, thunk, cyc_i, may_store, info, inline = s
            if info is not None and info[0] == "skip":
                _, cond, nskip, _skc, _sks, target = info
                flush()
                emit(f"{ind}r[0] = {next_pc}")
                emit(f"{ind}c.cycles += {cyc_i}")
                emit(f"{ind}c.instructions += 1")
                emit(f"{ind}if {cond}:")
                emit(f"{ind}    r[0] = {target}")
                emit(f"{ind}else:")
                ind += "    "
                arm = nskip
                continue
            if info is not None:             # ("exit", cond, target)
                flush()
                emit(f"{ind}r[0] = {next_pc}")
                emit(f"{ind}c.cycles += {cyc_i}")
                emit(f"{ind}c.instructions += 1")
                emit(f"{ind}if {info[1]}:")
                emit(f"{ind}    r[0] = {info[2]}")
                emit(f"{ind}    return")
            elif (inline is not None and not may_store
                    and not any("m." in ln or "r[0]" in ln
                                for ln in inline)):
                for ln in inline:
                    emit(f"{ind}{ln}")
                pend_c += cyc_i
                pend_n += 1
            else:
                flush()
                emit(f"{ind}r[0] = {next_pc}")
                if inline is not None:
                    for ln in inline:
                        emit(f"{ind}{ln}")
                else:
                    ns[f"_t{i}"] = thunk
                    emit(f"{ind}_t{i}(r, m)")
                emit(f"{ind}c.cycles += {cyc_i}")
                emit(f"{ind}c.instructions += 1")
                if may_store:
                    # a truthy return tells ``run`` a boundary event
                    # fired; a clean fall-through (None) provably left
                    # every post-dispatch guard unchanged, because
                    # only write handlers have side effects
                    emit(f"{ind}if c.halted: return 1")
                    emit(f"{ind}f = c._pending_fault")
                    emit(f"{ind}if f is not None:")
                    emit(f"{ind}    c._pending_fault = None")
                    emit(f"{ind}    raise f")
                    emit(f"{ind}if (c._code_version != _v"
                         " or m._perm_stale"
                         " or c.trace_hook is not None"
                         " or m._observers): return 1")
            if arm:
                arm -= 1
                if arm == 0:
                    flush()      # arm bookkeeping stays in its arm
                    ind = ind[:-4]
        if pend_n:
            emit(f"{ind}r[0] = {blk.end_pc}")
            flush()
    src = "\n".join(lines) + "\n"
    exec(compile(src, f"<superblock@0x{blk.start:04X}>", "exec"), ns)
    return ns["_fn"]


def _interp_block(c, blk: _Block, r, m) -> None:
    """Tier-0 executor: walk a block's steps one thunk at a time.

    Architecturally identical to the codegen'd function — same thunks,
    same per-instruction bookkeeping, same store-boundary checks — so
    a block's first dispatches can run without paying ``compile()``;
    ``run`` tiers the block up to generated code once it proves hot.
    Jumps execute via their thunks: a taken jump moves ``r[0]`` off
    the recorded fallthrough, which steers the walk (skip the diamond
    arm / return early) exactly like the inline conditions in
    generated code.
    """
    steps = blk.steps
    _v = c._code_version
    i = 0
    n = len(steps)
    while i < n:
        s = steps[i]
        np = s[1]
        r[0] = np
        s[2](r, m)
        c.cycles += s[3]
        c.instructions += 1
        info = s[5]
        if info is not None:
            if r[0] != np:                # jump taken
                if info[0] == "skip":
                    i += info[2] + 1      # hop over the skipped arm
                    continue
                return                    # early exit
        elif s[4]:                        # store boundary: exact checks
            if c.halted:
                return
            f = c._pending_fault
            if f is not None:
                c._pending_fault = None
                raise f
            if (c._code_version != _v or m._perm_stale
                    or c.trace_hook is not None or m._observers):
                return
        i += 1


# -- persistent block records (the execcache disk tier's payload) ----------
#
# A compiled block is mostly *derived* state: the thunks re-specialize
# deterministically from the code bytes, and the codegen'd function is
# a closure-free code object.  So a disk record carries only the code
# bytes, the per-step metadata (everything in a step tuple except the
# thunk), and the marshaled generated code — revival re-decodes the
# thunks from the recorded bytes and rebinds them as the function's
# globals.  Revival is fail-closed: any inconsistency (decode error,
# cycle-count mismatch, marshal rot) rejects the record and the block
# is simply re-translated, exactly as a cache miss would be.

def _block_record(blk: _Block) -> Optional[dict]:
    """Serialize a codegen'd block for the execcache disk tier."""
    if blk.fn is None or blk.code is None:
        return None
    try:
        fn_code = marshal.dumps(blk.fn.__code__)
    except ValueError:
        return None
    return {
        "pc": blk.start,
        "end": blk.end,
        "end_pc": blk.end_pc,
        "pure": blk.pure,
        "loop": blk.loop,
        "code": blk.code,
        "steps": [(s[0], s[1], s[3], s[4], s[5], s[6])
                  for s in blk.steps],
        "fn": fn_code,
    }


def _block_from_record(record: dict) -> Optional[_Block]:
    """Revive a disk record into a live block, or None if the record
    is inconsistent in any way (corrupt, stale semantics, unthunkable
    shape) — the caller then translates from scratch."""
    try:
        code = record["code"]
        start = record["pc"]
        end = record["end"]
        if len(code) != end - start or not record["steps"]:
            return None

        def fetch(addr: int, _c=code, _b=start) -> int:
            i = addr - _b
            if i < 0:
                raise IndexError(addr)
            return _c[i] | (_c[i + 1] << 8)

        steps = []
        for pc, next_pc, cyc_i, may_store, info, inline \
                in record["steps"]:
            insn, size = decode(fetch, pc)
            if cyc.instruction_cycles(insn) != cyc_i:
                return None
            thunk = _specialize(insn)
            if thunk is None:
                return None
            steps.append((pc, next_pc, thunk, cyc_i, may_store,
                          info, inline))
        if steps[-1][1] != record["end_pc"]:
            return None
        ns = {f"_t{i}": s[2] for i, s in enumerate(steps)}
        fn = types.FunctionType(marshal.loads(record["fn"]), ns,
                                "_fn")
        blk = _Block(start, end, record["end_pc"], tuple(steps),
                     record["pure"], record["loop"])
        blk.code = bytes(code)
        blk.fn = fn
        blk.execs = 2          # already hot: skip the interp tier
        return blk
    except Exception:
        return None


class Cpu:
    """The execution engine.

    Attributes of interest:

    * ``cycles`` -- architectural cycle counter (drives the experiments)
    * ``instructions`` -- retired instruction count
    * ``halted`` -- set by the kernel's DONE port or :meth:`halt`
    """

    def __init__(self, memory: Optional[Memory] = None):
        self.memory = memory if memory is not None else Memory()
        self.regs = RegisterFile()
        self.cycles = 0
        self.instructions = 0
        self.halted = False
        self.trace_hook: Optional[Callable[[int, Instruction], None]] = None
        # Raised mid-instruction by service handlers that must stop the
        # world (used by the kernel fault path).
        self._pending_fault: Optional[CpuFault] = None
        # Decoded-instruction cache, keyed by 64-byte page then PC.
        # Any memory write invalidates the entries it touches (so
        # self-modifying code and re-loads stay correct); firmware
        # never self-modifies, so in practice every instruction decodes
        # once.  Entries: pc -> (insn, size, cycles, thunk) where
        # thunk is a specialized closure or None (generic handler).
        # Entries are device-agnostic, so they can be published to and
        # pulled from the shared execution cache.
        self._icache: dict = {}
        # -- superblock layer ----------------------------------------
        #: False forces the pure ``step()`` interpreter; differential
        #: tests flip this to pin block mode against step mode.
        self.block_mode = True
        #: compiled superblocks, keyed by entry PC (this CPU's *view*;
        #: blocks may be private or pulled from the shared cache)
        self._blocks: Dict[int, _Block] = {}
        #: entry PCs where compilation declined (first instruction has
        #: no thunk, hits an I/O port, or the run is too short) — a
        #: negative cache so ``run`` doesn't retry every iteration.
        #: Never shared: some verdicts depend on this device's MPU
        #: permission edges, not on code bytes.
        self._no_block: set = set()
        #: 64-byte page -> entry PCs of blocks (and no-block markers)
        #: whose code bytes intersect that page; drives invalidation
        self._block_pages: Dict[int, set] = {}
        #: process-wide translation store for this firmware identity
        #: (see :meth:`attach_shared_cache`); None = fully private
        self._shared = None
        #: bumped whenever cached code is invalidated; memory-flavor
        #: superblocks sample it on entry and stop at the next store
        #: boundary when it moves (the in-flight half of invalidation)
        self._code_version = 0
        #: one byte per 64-byte page, nonzero when the page holds
        #: cached decoded code; shared by reference with the bus so
        #: plain data writes skip the invalidator call entirely
        self._code_pages = bytearray(1024)
        set_invalidator = getattr(self.memory, "set_invalidator", None)
        if set_invalidator is not None:
            set_invalidator(self._on_memory_write, self._code_pages)
        else:
            # Memory stand-ins without the fast-path slot: chain the
            # invalidator like any other write hook.
            self.memory.add_write_hook(self._on_memory_write)
        # Per-opcode handler methods, bound once.
        self._dispatch: Dict[Opcode, Callable[[Instruction], None]] = {
            opcode: getattr(self, name)
            for opcode, name in _HANDLER_NAMES.items()
        }

    def attach_shared_cache(self, store) -> None:
        """Share translations with sibling CPUs through ``store`` (a
        :class:`~repro.msp430.execcache.SharedExecutionCache` built
        from this machine's pristine firmware image).  Every publish
        and pull is byte-verified against the pristine image, so a
        device whose code has diverged (self-modifying stores,
        debugger pokes) silently falls back to private translation
        without poisoning its siblings."""
        self._shared = store

    def _on_memory_write(self, address: int, _value: int) -> None:
        # Only called (via the bus's mask gate) when the write may
        # touch cached code — or with address < 0 for bulk loads.
        if address < 0:
            self._icache.clear()      # bulk load
            self._blocks.clear()
            self._block_pages.clear()
            self._no_block.clear()
            self._code_version += 1   # stop any in-flight block
            self._code_pages[:] = _ZERO_MASK
            return
        # A write touches [address, address + 1] for word writes
        # (even-aligned, so both bytes share one page) and only
        # [address, address] for byte writes; the odd-address case
        # must stay exact or the range could appear to cross a page.
        lo = address
        hi = address if address & 1 else address + 1
        # Decoded entries are keyed by the page their first word is
        # in, but an instruction can extend into the next page — so
        # the preceding page's entries are candidates too.  Only
        # entries whose byte range actually overlaps the write die;
        # the page-sharing neighbours (the common case: app data
        # packed against the next app's code) survive.
        page = address >> 6
        icache = self._icache
        # an entry indexed under the previous page can reach at most 4
        # bytes into this one, so skip that scan for deeper offsets
        pages = (page - 1, page) if lo & 63 < 4 else (page,)
        for neighbour in pages:
            entries = icache.get(neighbour)
            if entries:
                stale = [pc for pc, entry in entries.items()
                         if pc <= hi and pc + entry[1] > lo]
                for pc in stale:
                    del entries[pc]
        # Superblocks (and no-block markers) are indexed under every
        # page their byte range intersects, so the write's own page
        # finds every candidate; precise range overlap decides.
        pcs = self._block_pages.get(page)
        if pcs:
            blocks = self._blocks
            no_block = self._no_block
            dead = []
            killed = False
            for pc in pcs:
                blk = blocks.get(pc)
                if blk is None:
                    # a no-block marker (or an index entry left behind
                    # by a kill via another page): cheap to re-learn
                    no_block.discard(pc)
                    dead.append(pc)
                elif blk.start <= hi and blk.end > lo:
                    del blocks[pc]
                    dead.append(pc)
                    killed = True
            if killed:
                self._code_version += 1
            for pc in dead:
                pcs.discard(pc)
            if not pcs:
                del self._block_pages[page]

    # -- small helpers ------------------------------------------------------
    def reset(self, pc: Optional[int] = None) -> None:
        self.regs = RegisterFile()
        self.cycles = 0
        self.instructions = 0
        self.halted = False
        if pc is None:
            pc = self.memory.read_word(self.memory.map.RESET_VECTOR)
        self.regs.pc = pc

    def halt(self) -> None:
        self.halted = True

    # -- snapshot/restore ---------------------------------------------------
    def state_dict(self) -> dict:
        """Architectural CPU state: register file plus the cycle and
        instruction counters.  The decoded-instruction cache and the
        compiled superblocks are *derived* state — they rebuild on
        demand after :meth:`load_state` — so they are not captured."""
        return {
            "regs": self.regs.snapshot(),
            "cycles": self.cycles,
            "instructions": self.instructions,
            "halted": self.halted,
        }

    def load_state(self, state: dict) -> None:
        self.regs.restore(state["regs"])
        self.cycles = state["cycles"]
        self.instructions = state["instructions"]
        self.halted = state["halted"]
        self._pending_fault = None

    def post_fault(self, fault: CpuFault) -> None:
        """Queue a fault to be raised at the end of the current step."""
        self._pending_fault = fault

    # -- operand evaluation ------------------------------------------------
    def _read_reg(self, n: int, byte: bool) -> int:
        value = self.regs.read(n)
        return value & 0xFF if byte else value

    def _load(self, address: int, byte: bool) -> int:
        if byte:
            return self.memory.read_byte(address)
        return self.memory.read_word(address)

    def _store(self, register: int, address: int, value: int,
               byte: bool) -> None:
        """Write back to register ``register`` (if >= 0) else memory."""
        if register >= 0:
            # Byte operations clear the destination's high byte.
            self.regs.write(register,
                            value & 0xFF if byte else value & 0xFFFF)
        elif byte:
            self.memory.write_byte(address, value)
        else:
            self.memory.write_word(address, value)

    def _effective_address(self, op: Operand) -> int:
        m = op.mode
        if m is _M.INDEXED:
            return (self.regs.read(op.register) + op.value) & 0xFFFF
        if m in (_M.SYMBOLIC, _M.ABSOLUTE):
            return op.value & 0xFFFF
        if m in (_M.INDIRECT, _M.AUTOINCREMENT):
            return self.regs.read(op.register)
        raise ReproError(f"operand mode {m} has no address")

    def _eval_source(self, op: Operand, byte: bool) -> int:
        m = op.mode
        if m is _M.REGISTER:
            return self._read_reg(op.register, byte)
        if m is _M.IMMEDIATE:
            return op.value & (0xFF if byte else 0xFFFF)
        address = self._effective_address(op)
        value = self._load(address, byte)
        if m is _M.AUTOINCREMENT:
            step = 1 if byte else 2
            self.regs.write(op.register,
                            self.regs.read(op.register) + step)
        return value

    def _eval_dest(self, op: Operand, byte: bool,
                   need_value: bool) -> Tuple[int, int, int]:
        """Returns ``(value, register, address)`` — ``register`` is -1
        for a memory destination, ``address`` is -1 for a register."""
        if op.mode is _M.REGISTER:
            register = op.register
            value = self._read_reg(register, byte) if need_value else 0
            return value, register, -1
        address = self._effective_address(op)
        value = self._load(address, byte) if need_value else 0
        return value, -1, address

    # -- ALU ----------------------------------------------------------------
    def _flags_add(self, src: int, dst: int, result: int,
                   byte: bool) -> int:
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        out = result & mask
        self.regs.set_flag(SR.C, result > mask)
        self.regs.set_flag(SR.V,
                           bool(~(src ^ dst) & (src ^ out) & sign))
        self.regs.set_nz(out, byte)
        return out

    def _flags_sub(self, src: int, dst: int, carry_in: int,
                   byte: bool) -> int:
        """dst - src (+ carry-1 for SUBC); C means *no borrow*."""
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        result = dst + ((~src) & mask) + carry_in
        out = result & mask
        self.regs.set_flag(SR.C, result > mask)
        self.regs.set_flag(SR.V,
                           bool((dst ^ src) & (dst ^ out) & sign))
        self.regs.set_nz(out, byte)
        return out

    def _logic_flags(self, out: int, byte: bool,
                     overflow: bool = False) -> None:
        self.regs.set_nz(out, byte)
        self.regs.set_flag(SR.C, out != 0)
        self.regs.set_flag(SR.V, overflow)

    @staticmethod
    def _dadd(src: int, dst: int, carry: int, byte: bool) -> Tuple[int, int]:
        digits = 2 if byte else 4
        out = 0
        for i in range(digits):
            d = ((src >> (4 * i)) & 0xF) + ((dst >> (4 * i)) & 0xF) + carry
            if d > 9:
                d -= 10
                carry = 1
            else:
                carry = 0
            out |= d << (4 * i)
        return out, carry

    # -- stack helpers ---------------------------------------------------------
    def _push(self, value: int) -> None:
        self.regs.sp = (self.regs.sp - 2) & 0xFFFF
        self.memory.write_word(self.regs.sp, value)

    def _pop(self) -> int:
        value = self.memory.read_word(self.regs.sp)
        self.regs.sp = (self.regs.sp + 2) & 0xFFFF
        return value

    # -- execution ------------------------------------------------------------
    def step(self) -> Instruction:
        """Execute one instruction; returns it (for tracing)."""
        memory = self.memory
        r = self.regs._regs
        pc = r[0]
        page = self._icache.get(pc >> 6)
        entry = page.get(pc) if page is not None else None
        if entry is None and self._shared is not None:
            entry = self._pull_entry(pc)
        try:
            if entry is None:
                insn, size = decode(memory.fetch_word, pc)
                insn_cycles = cyc.instruction_cycles(insn)
                thunk = _specialize(insn)
                self._install_entry(
                    pc, (insn, size, insn_cycles, thunk))
            else:
                insn, size, insn_cycles, thunk = entry
                # the decode is cached (or pulled from the shared
                # store), but execute *permission* must be
                # re-validated — the MPU config changes between
                # context switches.  Probe the flat permission bitmap
                # directly; fall back to the full walk on any miss.
                if not memory._supervisor_depth:
                    if memory._perm_stale:
                        memory._refresh_permissions()
                    perm = memory._perm
                    if perm is None or not perm[pc] & PERM_X:
                        memory._check_slow(pc, EXECUTE)
                    if size > 2:
                        last = pc + size - 1
                        if last > 0xFFFF or perm is None \
                                or not perm[last] & PERM_X:
                            memory._check_slow(last, EXECUTE)
        except MpuViolationError as exc:
            raise CpuFault(FaultKind.MPU_VIOLATION, pc, exc.address,
                           "instruction fetch") from exc
        except MemoryAccessError as exc:
            raise CpuFault(FaultKind.BUS_ERROR, pc, exc.address,
                           "instruction fetch") from exc
        except DecodeError as exc:
            raise CpuFault(FaultKind.DECODE_ERROR, pc, pc,
                           str(exc)) from exc

        r[0] = (pc + size) & 0xFFFF      # pc and size are both even
        if self.trace_hook is not None:
            self.trace_hook(pc, insn)
        try:
            if thunk is not None:
                thunk(r, memory)
            else:
                self._dispatch[insn.opcode](insn)
        except MpuViolationError as exc:
            raise CpuFault(FaultKind.MPU_VIOLATION, pc, exc.address,
                           exc.kind) from exc
        except MemoryAccessError as exc:
            raise CpuFault(FaultKind.BUS_ERROR, pc, exc.address,
                           exc.kind) from exc

        self.cycles += insn_cycles
        self.instructions += 1
        if self._pending_fault is not None:
            fault, self._pending_fault = self._pending_fault, None
            raise fault
        return insn

    def run(self, max_cycles: int = 10_000_000,
            max_instructions: Optional[int] = None) -> int:
        """Run until :attr:`halted`; returns cycles consumed by this call.

        The loop dispatches compiled superblocks whenever exact
        per-instruction observability is not required, and falls back
        to :meth:`step` when a trace hook or memory observer is
        installed, a fault is pending, a budget is within one block of
        expiring, or :attr:`block_mode` is off.  Architectural state —
        cycles, instructions, fault PCs, halt points, budget errors —
        is bit-identical either way.
        """
        start = self.cycles
        start_insns = self.instructions
        cycle_limit = start + max_cycles
        insn_limit = (None if max_instructions is None
                      else start_insns + max_instructions)
        memory = self.memory
        step = self.step
        no_block = self._no_block
        while not self.halted:
            # -- superblock fast path --------------------------------
            # Guards re-checked only here: a *pure* block cannot
            # change any of them, and the post-dispatch check below
            # drops out of the tight loop as soon as a memory block
            # (or an inline step) does.
            if (self.block_mode and self.trace_hook is None
                    and self._pending_fault is None
                    and not memory._observers):
                if memory._perm_stale:
                    memory._refresh_permissions()
                perm = memory._perm
                if perm is not None:
                    regs = self.regs._regs
                    get = self._blocks.get
                    while True:
                        blk = get(regs[0])
                        if blk is None:
                            pc = regs[0]
                            if pc in no_block:
                                break
                            blk = self._compile_block(pc)
                            if blk is None:
                                break
                        if blk.perm_ok is not perm:
                            # MPU configuration changed since the last
                            # execute-validation of this block's range.
                            # Two validation slots: a device alternating
                            # between kernel and app bitmaps (context
                            # switches) revalidates each block twice,
                            # then hits a slot from there on.
                            if blk.perm_ok2 is perm or all(
                                    b & PERM_X
                                    for b in perm[blk.start:blk.end]):
                                blk.perm_ok2 = blk.perm_ok
                                blk.perm_ok = perm
                            else:
                                break        # step() raises the fault
                        if blk.fn is None:
                            if blk.execs < 2:
                                # tier 0: interpret the steps; blocks
                                # executed once or twice never pay
                                # compile()
                                blk.execs += 1
                                if (self.cycles + blk.cycles
                                        > cycle_limit
                                        or (insn_limit is not None
                                            and self.instructions
                                            + blk.count > insn_limit)):
                                    break    # budget: step() raises
                                try:
                                    _interp_block(self, blk, regs,
                                                  memory)
                                except MpuViolationError as exc:
                                    raise CpuFault(
                                        FaultKind.MPU_VIOLATION,
                                        blk.pc_map[regs[0]],
                                        exc.address, exc.kind) from exc
                                except MemoryAccessError as exc:
                                    raise CpuFault(
                                        FaultKind.BUS_ERROR,
                                        blk.pc_map[regs[0]],
                                        exc.address, exc.kind) from exc
                                if (self.halted
                                        or self._pending_fault
                                        is not None
                                        or self.trace_hook is not None
                                        or memory._observers):
                                    break
                                if memory._perm_stale:
                                    memory._refresh_permissions()
                                    perm = memory._perm
                                    if perm is None:
                                        break
                                continue
                            proto = blk.proto
                            if proto is not None \
                                    and proto.fn is not None:
                                blk.fn = proto.fn
                            else:
                                blk.fn = _codegen(blk)
                                if proto is not None:
                                    proto.fn = blk.fn
                                shared = self._shared
                                if shared is not None \
                                        and shared.disk is not None:
                                    # block proved hot enough to pay
                                    # compile(): persist it so future
                                    # processes start with it revived
                                    record = _block_record(
                                        proto if proto is not None
                                        else blk)
                                    if record is not None:
                                        shared.disk.publish(record)
                        if blk.loop:
                            iters = ((cycle_limit - self.cycles)
                                     // blk.cycles)
                            if insn_limit is not None:
                                j = ((insn_limit - self.instructions)
                                     // blk.count)
                                if j < iters:
                                    iters = j
                            if iters < 1:
                                break        # budget: step() raises
                            blk.fn(self, regs, memory, iters)
                            continue
                        if (self.cycles + blk.cycles > cycle_limit
                                or (insn_limit is not None
                                    and self.instructions + blk.count
                                    > insn_limit)):
                            break            # budget: step() raises
                        if blk.pure:
                            blk.fn(self, regs, memory)
                            continue
                        try:
                            if not blk.fn(self, regs, memory):
                                # no store-boundary event fired: reads
                                # have no side effects, so every
                                # post-dispatch guard is provably
                                # unchanged
                                continue
                        except MpuViolationError as exc:
                            raise CpuFault(
                                FaultKind.MPU_VIOLATION,
                                blk.pc_map[regs[0]],
                                exc.address, exc.kind) from exc
                        except MemoryAccessError as exc:
                            raise CpuFault(
                                FaultKind.BUS_ERROR,
                                blk.pc_map[regs[0]],
                                exc.address, exc.kind) from exc
                        if (self.halted
                                or self._pending_fault is not None
                                or self.trace_hook is not None
                                or memory._observers):
                            break
                        if memory._perm_stale:
                            # MPU reconfigured (context switch):
                            # rebind the permission bitmap and stay
                            # on the fast path — the block above
                            # retired instructions, so progress is
                            # guaranteed.
                            memory._refresh_permissions()
                            perm = memory._perm
                            if perm is None:
                                break
                    if self.halted:
                        break
            # -- exact per-instruction path --------------------------
            step()
            if self.cycles > cycle_limit:
                raise ExecutionLimitExceeded(
                    f"cycle budget: no halt after "
                    f"{self.cycles - start} cycles "
                    f"({self.instructions - start_insns} instructions) "
                    f"from pc=0x{self.regs.pc:04X}"
                )
            if insn_limit is not None and self.instructions > insn_limit:
                raise ExecutionLimitExceeded(
                    f"instruction budget: no halt after "
                    f"{self.instructions - start_insns} instructions "
                    f"({self.cycles - start} cycles) "
                    f"from pc=0x{self.regs.pc:04X}"
                )
        return self.cycles - start

    # -- shared execution cache ---------------------------------------------
    def _pull_entry(self, pc: int):
        """Adopt a decoded entry from the shared store, if some
        published variant's bytes match this device's memory; returns
        the entry or None."""
        shared = self._shared
        page = pc >> 6
        page_entries = shared.pages.get(page)
        if page_entries is None:
            return None
        variants = page_entries.get(pc)
        if variants is None:
            return None
        mem = self.memory._bytes
        for code, entry in variants:
            if mem[pc:pc + len(code)] == code:
                entries = self._icache.get(page)
                if entries is None:
                    entries = {}
                    self._icache[page] = entries
                    self._code_pages[page] = 1
                entries[pc] = entry
                shared.page_pulls += 1
                return entry
        shared.rejects += 1
        return None

    def _install_entry(self, pc: int, entry: tuple) -> None:
        """Cache a freshly decoded entry locally, and publish it
        (with the bytes it decodes) to the shared store.  Only called
        after :meth:`_pull_entry` missed, so a published variant is
        always new content."""
        page = pc >> 6
        entries = self._icache.get(page)
        if entries is None:
            entries = {}
            self._icache[page] = entries
            self._code_pages[page] = 1
        entries[pc] = entry
        shared = self._shared
        if shared is not None:
            variants = shared.pages.setdefault(page, {}) \
                .setdefault(pc, [])
            if len(variants) < MAX_VARIANTS:
                code = bytes(self.memory._bytes[pc:pc + entry[1]])
                variants.append((code, entry))
                shared.publishes += 1
            else:
                shared.rejects += 1

    def _revive_disk_variants(self, shared, pc: int):
        """Bring any persisted block variants for ``pc`` into the
        in-memory store (reviving thunks and generated code from the
        records), so the normal byte-verified adoption scan can use
        them.  Returns the variant list, or None when the disk tier
        has nothing for this pc either."""
        disk = shared.disk
        records = disk.take(pc)
        if records is None:
            # maybe a sibling worker published since our last read:
            # one cheap stat, and an incremental read only if the
            # store file actually grew
            if not disk.refresh():
                return None
            records = disk.take(pc)
            if records is None:
                return None
        variants = shared.blocks.setdefault(pc, [])
        for record in records:
            if len(variants) >= MAX_VARIANTS:
                break
            blk = _block_from_record(record)
            if blk is not None:
                variants.append(blk)
        return variants

    # -- superblock compilation and execution -------------------------------
    def _compile_block(self, pc: int) -> Optional[_Block]:
        """Chain decoded thunks from ``pc`` into a superblock, or mark
        ``pc`` uncompilable.  Straight-line only: a jump ends the block
        (inclusive); a call/return/unthunked instruction, an absolute
        operand on a registered I/O port (kernel gates, MPU registers,
        the cycle timer), or a non-executable byte ends it exclusive.
        All fetches run under ``supervisor`` after probing the
        permission bitmap, so speculative compilation has no
        architecturally visible side effects (no MPU violation flags).
        """
        memory = self.memory
        shared = self._shared
        perm = memory._perm           # caller refreshed; never None here
        if shared is not None:
            # adopt a compiled block from the shared store when some
            # variant's recorded bytes match this device's memory AND
            # this device's MPU config marks the whole range
            # executable (otherwise a private, shorter compile honours
            # the permission edge).  The adopted object is a shallow
            # per-device copy: see _Block.adopt.
            variants = shared.blocks.get(pc)
            if not variants and shared.disk is not None:
                # nothing in memory yet: revive any persisted variants
                # for this pc (earlier processes' publishes) into the
                # in-memory store, then adopt through the normal
                # byte-verified path below
                variants = self._revive_disk_variants(shared, pc)
            if variants:
                mem = memory._bytes
                for sb in variants:
                    if mem[sb.start:sb.end] == sb.code and \
                            all(b & PERM_X
                                for b in perm[sb.start:sb.end]):
                        blk = sb.adopt()
                        blk.perm_ok = perm
                        shared.block_pulls += 1
                        self._blocks[pc] = blk
                        mask = self._code_pages
                        for page in range(pc >> 6,
                                          (blk.end - 1 >> 6) + 1):
                            self._block_pages.setdefault(
                                page, set()).add(pc)
                            mask[page] = 1
                        return blk
        icache = self._icache
        io_ports = memory.io_addresses()
        steps = []
        pure = True
        loop = False
        cursor = pc
        end = pc
        diamond = None          # (step index, rejoin pc) while open
        while len(steps) < _MAX_BLOCK_INSNS:
            if diamond is not None:
                di, rejoin = diamond
                if cursor == rejoin:
                    # forward jump's target reached on an instruction
                    # boundary: the steps since the jump are its
                    # skipped arm — rewrite the jump step into a
                    # structured skip with the arm's exact size
                    arm = steps[di + 1:]
                    p = steps[di]
                    steps[di] = (p[0], p[1], p[2], p[3], p[4],
                                 ("skip", p[5][1], len(arm),
                                  sum(s[3] for s in arm), len(arm),
                                  rejoin), None)
                    diamond = None
                elif cursor > rejoin:
                    break        # target inside an instruction: bail
            if cursor > 0xFFFE or not perm[cursor] & PERM_X:
                break
            page = icache.get(cursor >> 6)
            entry = page.get(cursor) if page is not None else None
            if entry is None and shared is not None:
                entry = self._pull_entry(cursor)
            if entry is None:
                try:
                    with memory.supervisor():
                        insn, size = decode(memory.fetch_word, cursor)
                except (DecodeError, MemoryAccessError):
                    break
                insn_cycles = cyc.instruction_cycles(insn)
                thunk = _specialize(insn)
                entry = (insn, size, insn_cycles, thunk)
                self._install_entry(cursor, entry)
            else:
                insn, size, insn_cycles, thunk = entry
            if thunk is None:         # call/return/rare shape: step()
                break
            last = cursor + size - 1
            if last > 0xFFFF or not perm[last] & PERM_X:
                break
            src, dst = insn.src, insn.dst
            next_pc = (cursor + size) & 0xFFFF
            if _hits_io(src, io_ports) or _hits_io(dst, io_ports):
                # Gate/MPU/timer port operand: absorb it as the
                # block's *final* instruction.  Marking it a store
                # boundary makes the generated code emit the full
                # halt/pending-fault check suite right after the
                # access, and ending the block here hands control back
                # to ``run``'s guard re-checks — exactly the boundary
                # ``step()`` would give.  (Syscall gates and timer
                # polls dominate the step fallback otherwise.)
                pure = False
                steps.append((cursor, next_pc, thunk, insn_cycles,
                              True, None, None))
                end = cursor + size
                break
            opcode = insn.opcode
            is_jump = opcode in _JUMP_OPCODES
            # PUSH and CALL store through SP even though dst is None;
            # CMP and BIT only *read* their memory destination, so
            # they never need the post-store check suite
            stores = (opcode is Opcode.PUSH or opcode is Opcode.CALL
                      or (not is_jump and dst is not None
                          and dst.mode is not _M.REGISTER
                          and opcode is not Opcode.CMP
                          and opcode is not Opcode.BIT))
            # CALL / RETI / MOV-to-PC redirect control flow: keep them
            # as the block's final step, like jumps
            writes_pc = (opcode is Opcode.CALL or opcode is Opcode.RETI
                         or (dst is not None
                             and dst.mode is _M.REGISTER
                             and dst.register == 0))
            # register-only shapes that never touch memory nor read
            # the deferred PC are eligible for the pure
            # (batch-bookkeeping) executor
            if not is_jump:
                if stores or writes_pc:
                    pure = False
                elif not (dst is None
                          or (dst.mode is _M.REGISTER
                              and src.mode in (_M.REGISTER,
                                               _M.IMMEDIATE))):
                    pure = False
                elif (src is not None and src.mode is _M.REGISTER
                      and src.register == 0):
                    pure = False
            if is_jump:
                target = (next_pc + 2 * insn.offset) & 0xFFFF
                if opcode is not Opcode.JMP and diamond is None:
                    if pure and target == pc:
                        # back-edge to the block's own start: close as
                        # an in-place loop (the generated function
                        # iterates until the jump falls through or the
                        # budget share is spent)
                        steps.append((cursor, next_pc, thunk,
                                      insn_cycles, False, None, None))
                        end = cursor + size
                        loop = True
                        break
                    if (target > next_pc
                            and len(steps) + 1 < _MAX_BLOCK_INSNS):
                        # forward skip: tentatively keep compiling the
                        # fallthrough as the jump's arm; resolved to a
                        # structured diamond when the target is
                        # reached, truncated otherwise
                        diamond = (len(steps), target)
                        steps.append((cursor, next_pc, thunk,
                                      insn_cycles, False,
                                      ("open", _JUMP_CONDS[opcode]),
                                      None))
                        end = cursor + size
                        cursor = next_pc
                        continue
                if opcode is not Opcode.JMP:
                    # backward / degenerate target (or a jump nested
                    # inside an open arm): inline early exit — taken
                    # returns with exact bookkeeping, fallthrough
                    # continues the trace
                    steps.append((cursor, next_pc, thunk, insn_cycles,
                                  False,
                                  ("exit", _JUMP_CONDS[opcode],
                                   target), None))
                    end = cursor + size
                    cursor = next_pc
                    continue
                # unconditional JMP closes the block inclusively; the
                # branch target is a compile-time constant
                steps.append((cursor, next_pc, thunk, insn_cycles,
                              False, None, [f"r[0] = {target}"]))
                end = cursor + size
                loop = pure and target == pc
                break
            steps.append((cursor, next_pc, thunk, insn_cycles,
                          stores, None, _inline_step(insn)))
            end = cursor + size
            cursor = next_pc
            if writes_pc or next_pc < pc:    # redirect / wrapped
                break
        if diamond is not None:
            # the trace ended before the forward jump's target: drop
            # the tentative arm and keep the jump as a plain final
            # step (its thunk performs the branch)
            di = diamond[0]
            p = steps[di]
            del steps[di + 1:]
            steps[di] = (p[0], p[1], p[2], p[3], p[4], None, None)
            end = p[0] + 2      # jump instructions are 2 bytes
            loop = False
        mask = self._code_pages
        if not steps:
            # nothing compilable at this pc (unthunked shape, I/O
            # port, or permission edge); remember the verdict and
            # index it so code writes re-enable compilation.  Even a
            # single-instruction block beats the step() fallback: the
            # tight dispatch loop skips the per-step guard checks.
            self._no_block.add(pc)
            for page in range(pc >> 6, (max(end, pc + 1) - 1 >> 6) + 1):
                self._block_pages.setdefault(page, set()).add(pc)
                mask[page] = 1
            return None
        blk = _Block(pc, end, steps[-1][1], tuple(steps), pure, loop)
        blk.perm_ok = perm     # every byte was execute-probed above
        blk.code = bytes(memory._bytes[pc:end])
        self._blocks[pc] = blk
        for page in range(pc >> 6, (end - 1 >> 6) + 1):
            self._block_pages.setdefault(page, set()).add(pc)
            mask[page] = 1
        if shared is not None:
            # append-only content-addressed publish: adoption above
            # missed, so this block's (range, bytes) — or the
            # permission edge it honours — is new content
            variants = shared.blocks.setdefault(pc, [])
            if len(variants) < MAX_VARIANTS:
                variants.append(blk)
                shared.publishes += 1
            else:
                shared.rejects += 1
        return blk

    # -- per-opcode semantics ------------------------------------------------
    def _execute(self, insn: Instruction) -> None:
        """Dispatch one decoded instruction (tests / tools entry)."""
        self._dispatch[insn.opcode](insn)

    # jumps -------------------------------------------------------------------
    def _op_jmp(self, insn: Instruction) -> None:
        r = self.regs
        r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jne(self, insn: Instruction) -> None:
        r = self.regs
        if not r.sr & SR.Z:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jeq(self, insn: Instruction) -> None:
        r = self.regs
        if r.sr & SR.Z:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jnc(self, insn: Instruction) -> None:
        r = self.regs
        if not r.sr & SR.C:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jc(self, insn: Instruction) -> None:
        r = self.regs
        if r.sr & SR.C:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jn(self, insn: Instruction) -> None:
        r = self.regs
        if r.sr & SR.N:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jge(self, insn: Instruction) -> None:
        r = self.regs
        sr = r.sr
        if bool(sr & SR.N) == bool(sr & SR.V):
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jl(self, insn: Instruction) -> None:
        r = self.regs
        sr = r.sr
        if bool(sr & SR.N) != bool(sr & SR.V):
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    # format II ----------------------------------------------------------------
    def _op_reti(self, insn: Instruction) -> None:
        r = self.regs
        r.sr = self._pop()
        r.pc = self._pop()

    def _op_push(self, insn: Instruction) -> None:
        byte = insn.byte
        value = self._eval_source(insn.src, byte)
        # PUSH.B still decrements SP by 2 (hardware behaviour).
        self._push(value & (0xFF if byte else 0xFFFF))

    def _op_call(self, insn: Instruction) -> None:
        r = self.regs
        if insn.src.mode in (_M.REGISTER, _M.IMMEDIATE):
            target = self._eval_source(insn.src, byte=False)
        else:
            target = self._load(self._effective_address(insn.src),
                                byte=False)
            if insn.src.mode is _M.AUTOINCREMENT:
                r.write(insn.src.register,
                        r.read(insn.src.register) + 2)
        self._push(r.pc)
        r.pc = target

    def _eval_rmw(self, insn: Instruction) -> Tuple[int, int, int]:
        """RRA / RRC / SWPB / SXT operand: value + writeback target."""
        byte = insn.byte
        if insn.src.mode is _M.REGISTER:
            register = insn.src.register
            return self._read_reg(register, byte), register, -1
        address = self._effective_address(insn.src)
        value = self._load(address, byte)
        if insn.src.mode is _M.AUTOINCREMENT:
            r = self.regs
            step = 1 if byte else 2
            r.write(insn.src.register, r.read(insn.src.register) + step)
        return value, -1, address

    def _op_rra(self, insn: Instruction) -> None:
        byte = insn.byte
        value, register, address = self._eval_rmw(insn)
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        out = (value >> 1) | (value & sign)
        r = self.regs
        r.set_flag(SR.C, bool(value & 1))
        r.set_flag(SR.V, False)
        r.set_nz(out, byte)
        self._store(register, address, out & mask, byte)

    def _op_rrc(self, insn: Instruction) -> None:
        byte = insn.byte
        value, register, address = self._eval_rmw(insn)
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        r = self.regs
        out = (value >> 1) | (sign if r.carry else 0)
        r.set_flag(SR.C, bool(value & 1))
        r.set_flag(SR.V, False)
        r.set_nz(out, byte)
        self._store(register, address, out & mask, byte)

    def _op_swpb(self, insn: Instruction) -> None:
        value, register, address = self._eval_rmw(insn)
        out = ((value << 8) | (value >> 8)) & 0xFFFF
        self._store(register, address, out, insn.byte)

    def _op_sxt(self, insn: Instruction) -> None:
        value, register, address = self._eval_rmw(insn)
        out = value & 0xFF
        if out & 0x80:
            out |= 0xFF00
        r = self.regs
        r.set_nz(out, byte=False)
        r.set_flag(SR.C, out != 0)
        r.set_flag(SR.V, False)
        self._store(register, address, out, insn.byte)

    # format I -----------------------------------------------------------------
    def _op_mov(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        op = insn.dst
        if op.mode is _M.REGISTER:
            # register fast path: no writeback bookkeeping at all
            self.regs.write(op.register,
                            src & 0xFF if byte else src & 0xFFFF)
            return
        address = self._effective_address(op)
        if byte:
            self.memory.write_byte(address, src)
        else:
            self.memory.write_word(address, src)

    def _op_add(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = self._flags_add(src, dst, src + dst, byte)
        self._store(register, address, out, byte)

    def _op_addc(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = self._flags_add(src, dst, src + dst + int(self.regs.carry),
                              byte)
        self._store(register, address, out, byte)

    def _op_sub(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = self._flags_sub(src, dst, 1, byte)
        self._store(register, address, out, byte)

    def _op_subc(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = self._flags_sub(src, dst, int(self.regs.carry), byte)
        self._store(register, address, out, byte)

    def _op_cmp(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, _register, _address = self._eval_dest(insn.dst, byte, True)
        self._flags_sub(src, dst, 1, byte)

    def _op_dadd(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        r = self.regs
        out, carry = self._dadd(src, dst, int(r.carry), byte)
        r.set_flag(SR.C, bool(carry))
        r.set_nz(out, byte)
        self._store(register, address, out, byte)

    def _op_bit(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, _register, _address = self._eval_dest(insn.dst, byte, True)
        self._logic_flags(src & dst, byte)

    def _op_bic(self, insn: Instruction) -> None:
        byte = insn.byte
        mask = 0xFF if byte else 0xFFFF
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        self._store(register, address, dst & ~src & mask, byte)

    def _op_bis(self, insn: Instruction) -> None:
        byte = insn.byte
        mask = 0xFF if byte else 0xFFFF
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        self._store(register, address, (dst | src) & mask, byte)

    def _op_xor(self, insn: Instruction) -> None:
        byte = insn.byte
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = (dst ^ src) & mask
        self._logic_flags(out, byte,
                          overflow=bool(src & sign) and bool(dst & sign))
        self._store(register, address, out, byte)

    def _op_and(self, insn: Instruction) -> None:
        byte = insn.byte
        mask = 0xFF if byte else 0xFFFF
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = dst & src & mask
        self._logic_flags(out, byte)
        self._store(register, address, out, byte)


# -- specialized execution thunks -------------------------------------------
#
# For the hottest instruction shapes — ALU ops on registers/immediates,
# all jumps, and the dominant MOV/ADD memory forms — the icache entry
# carries a closure that performs the whole instruction on the raw
# register list (and the bus, for the memory forms): no Operand
# re-interpretation, no property lookups, no flag-helper calls.
# Shapes with a PC/SP/SR/CG2 destination or a rare opcode keep
# ``thunk=None`` and go through the generic per-opcode handler;
# semantics are identical either way, including fault behaviour
# (memory thunks run inside the same try/except in ``step``).

_SRM = 0xFEF8            # SR with C, Z, N, V cleared


def _spec_jump(opcode: Opcode, offset: int):
    d = 2 * offset        # applied after the pc += size in step()
    if opcode is Opcode.JMP:
        def thunk(r, m, d=d):
            r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JNE:
        def thunk(r, m, d=d):
            if not r[2] & 2:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JEQ:
        def thunk(r, m, d=d):
            if r[2] & 2:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JNC:
        def thunk(r, m, d=d):
            if not r[2] & 1:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JC:
        def thunk(r, m, d=d):
            if r[2] & 1:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JN:
        def thunk(r, m, d=d):
            if r[2] & 4:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JGE:
        def thunk(r, m, d=d):
            sr = r[2]
            if not ((sr >> 2) ^ (sr >> 8)) & 1:     # N == V
                r[0] = (r[0] + d) & 0xFFFF
    else:                                           # JL
        def thunk(r, m, d=d):
            sr = r[2]
            if ((sr >> 2) ^ (sr >> 8)) & 1:         # N != V
                r[0] = (r[0] + d) & 0xFFFF
    return thunk


def _th_mov(s, k, d, mask, sign):
    if s < 0:
        def thunk(r, m, k=k, d=d):
            r[d] = k
    else:
        def thunk(r, m, s=s, d=d, mask=mask):
            r[d] = r[s] & mask
    return thunk


def _make_addsub(subtract: bool, use_carry: bool, store: bool):
    """ADD/ADDC/SUB/SUBC/CMP share one arithmetic skeleton."""
    def factory(s, k, d, mask, sign):
        def thunk(r, m, s=s, k=k, d=d, mask=mask, sign=sign):
            if s >= 0:
                k = r[s] & mask
            dst = r[d] & mask
            if subtract:
                result = dst + ((~k) & mask) \
                    + ((r[2] & 1) if use_carry else 1)
                ovf = (dst ^ k) & (dst ^ (result & mask)) & sign
            else:
                result = dst + k + ((r[2] & 1) if use_carry else 0)
                ovf = ~(k ^ dst) & (k ^ (result & mask)) & sign
            out = result & mask
            sr = r[2] & _SRM
            if result > mask:
                sr |= 1                              # C
            if out & sign:
                sr |= 4                              # N
            elif out == 0:
                sr |= 2                              # Z
            if ovf:
                sr |= 0x100                          # V
            r[2] = sr
            if store:
                r[d] = out
        return thunk
    return factory


def _make_logic(op: str, store: bool):
    """AND/BIT/XOR (flag-setting) and BIS/BIC (flag-preserving)."""
    def factory(s, k, d, mask, sign):
        def thunk(r, m, s=s, k=k, d=d, mask=mask, sign=sign):
            if s >= 0:
                k = r[s] & mask
            dst = r[d] & mask
            if op == "and":
                out = dst & k
            elif op == "xor":
                out = dst ^ k
            elif op == "bis":
                r[d] = dst | k
                return
            else:                                    # bic
                r[d] = dst & ((~k) & mask)
                return
            sr = r[2] & _SRM
            if out:
                sr |= 1                              # C = result != 0
            if out & sign:
                sr |= 4
            elif out == 0:
                sr |= 2
            if op == "xor" and k & sign and dst & sign:
                sr |= 0x100
            r[2] = sr
            if store:
                r[d] = out
        return thunk
    return factory


_FMT1_FACTORIES = {
    Opcode.MOV: _th_mov,
    Opcode.ADD: _make_addsub(subtract=False, use_carry=False, store=True),
    Opcode.ADDC: _make_addsub(subtract=False, use_carry=True, store=True),
    Opcode.SUB: _make_addsub(subtract=True, use_carry=False, store=True),
    Opcode.SUBC: _make_addsub(subtract=True, use_carry=True, store=True),
    Opcode.CMP: _make_addsub(subtract=True, use_carry=False, store=False),
    Opcode.AND: _make_logic("and", store=True),
    Opcode.BIT: _make_logic("and", store=False),
    Opcode.XOR: _make_logic("xor", store=True),
    Opcode.BIS: _make_logic("bis", store=True),
    Opcode.BIC: _make_logic("bic", store=True),
}


def _spec_format2(insn: Instruction):
    opcode = insn.opcode
    src = insn.src
    if src is None:
        return None
    if opcode is Opcode.PUSH:
        # SP is decremented *before* the store (hardware order), so a
        # faulting push leaves SP moved — same as the generic handler.
        # PUSH.B still writes a word with the value masked to 8 bits.
        mask = 0xFF if insn.byte else 0xFFFF
        if src.mode is _M.REGISTER:
            s = src.register

            def thunk(r, m, s=s, mask=mask):
                r[1] = sp = (r[1] - 2) & 0xFFFF
                m.write_word(sp, r[s] & mask)
            return thunk
        if src.mode is _M.IMMEDIATE:
            k = src.value & mask

            def thunk(r, m, k=k):
                r[1] = sp = (r[1] - 2) & 0xFFFF
                m.write_word(sp, k)
            return thunk
        return None
    if opcode is Opcode.CALL:
        # target is evaluated before the push; PC writes are forced
        # even (RegisterFile semantics)
        if src.mode is _M.IMMEDIATE:
            t = src.value & 0xFFFE

            def thunk(r, m, t=t):
                r[1] = sp = (r[1] - 2) & 0xFFFF
                m.write_word(sp, r[0])
                r[0] = t
            return thunk
        if src.mode is _M.REGISTER:
            s = src.register

            def thunk(r, m, s=s):
                t = r[s] & 0xFFFE
                r[1] = sp = (r[1] - 2) & 0xFFFF
                m.write_word(sp, r[0])
                r[0] = t
            return thunk
        return None
    if src.mode is not _M.REGISTER or src.register < 4:
        return None
    byte = insn.byte
    mask = 0xFF if byte else 0xFFFF
    sign = 0x80 if byte else 0x8000
    d = src.register
    if opcode is Opcode.RRA:
        def thunk(r, m, d=d, mask=mask, sign=sign):
            v = r[d] & mask
            out = (v >> 1) | (v & sign)
            sr = r[2] & _SRM
            if v & 1:
                sr |= 1
            if out & sign:
                sr |= 4
            elif out == 0:
                sr |= 2
            r[2] = sr
            r[d] = out
        return thunk
    if opcode is Opcode.RRC:
        def thunk(r, m, d=d, mask=mask, sign=sign):
            v = r[d] & mask
            out = (v >> 1) | (sign if r[2] & 1 else 0)
            sr = r[2] & _SRM
            if v & 1:
                sr |= 1
            if out & sign:
                sr |= 4
            elif out == 0:
                sr |= 2
            r[2] = sr
            r[d] = out
        return thunk
    if opcode is Opcode.SWPB and not byte:
        def thunk(r, m, d=d):
            v = r[d]
            r[d] = ((v << 8) | (v >> 8)) & 0xFFFF
        return thunk
    if opcode is Opcode.SXT and not byte:
        def thunk(r, m, d=d):
            out = r[d] & 0xFF
            if out & 0x80:
                out |= 0xFF00
            sr = r[2] & _SRM
            if out:
                sr |= 1
            if out & 0x8000:
                sr |= 4
            elif out == 0:
                sr |= 2
            r[2] = sr
            r[d] = out
        return thunk
    return None


_JUMP_OPCODES = frozenset((
    Opcode.JMP, Opcode.JNE, Opcode.JEQ, Opcode.JNC,
    Opcode.JC, Opcode.JN, Opcode.JGE, Opcode.JL,
))


_ADDSUB_OPS = frozenset((Opcode.ADD, Opcode.ADDC, Opcode.SUB,
                         Opcode.SUBC, Opcode.CMP))
_SUB_OPS = frozenset((Opcode.SUB, Opcode.SUBC, Opcode.CMP))
_CARRY_OPS = frozenset((Opcode.ADDC, Opcode.SUBC))


def _inline_mov_mem_to_reg(src: Operand, d: int, byte: bool):
    """Inline twin of :func:`_spec_mov_mem_to_reg` (same modes, same
    read/increment order)."""
    rd = "m.read_byte" if byte else "m.read_word"
    sm = src.mode
    if sm is _M.INDEXED:
        return [f"r[{d}] = {rd}((r[{src.register}]"
                f" + {src.value}) & 0xFFFF)"]
    if sm is _M.ABSOLUTE or sm is _M.SYMBOLIC:
        return [f"r[{d}] = {rd}({src.value & 0xFFFF})"]
    if sm is _M.INDIRECT:
        return [f"r[{d}] = {rd}(r[{src.register}])"]
    if sm is _M.AUTOINCREMENT and src.register >= 1:
        # read first, increment second — a faulting read leaves the
        # pointer untouched, exactly like the thunk
        s = src.register
        return [f"_ia = r[{s}]",
                f"_iv = {rd}(_ia)",
                f"r[{s}] = (_ia + {1 if byte else 2}) & 0xFFFF",
                f"r[{d}] = _iv"]
    return None


def _inline_mov_to_pc(src: Operand):
    """Inline twin of :func:`_spec_mov_to_pc` (BR #imm / BR Rn / RET):
    PC writes forced even, pop reads before it bumps SP."""
    sm = src.mode
    if sm is _M.IMMEDIATE:
        return [f"r[0] = {src.value & 0xFFFE}"]
    if sm is _M.REGISTER:
        return [f"r[0] = r[{src.register}] & 0xFFFE"]
    if sm is _M.AUTOINCREMENT:
        s = src.register
        return [f"_ia = r[{s}]",
                "_iv = m.read_word(_ia)",
                f"r[{s}] = (_ia + 2) & 0xFFFF",
                "r[0] = _iv & 0xFFFE"]
    if sm is _M.ABSOLUTE or sm is _M.SYMBOLIC:
        return [f"r[0] = m.read_word({src.value & 0xFFFF}) & 0xFFFE"]
    if sm is _M.INDEXED:
        return [f"r[0] = m.read_word((r[{src.register}]"
                f" + {src.value}) & 0xFFFF) & 0xFFFE"]
    if sm is _M.INDIRECT:
        return [f"r[0] = m.read_word(r[{src.register}]) & 0xFFFE"]
    return None


def _inline_mem_dst(insn: Instruction):
    """Inline twins of :func:`_spec_mov_to_mem` and
    :func:`_spec_add_to_mem` — register/immediate source into indexed
    or absolute memory."""
    src, dst = insn.src, insn.dst
    byte = insn.byte
    mask = 0xFF if byte else 0xFFFF
    if src.mode is _M.REGISTER:
        s = src.register
    elif src.mode is _M.IMMEDIATE:
        s = -1
        k = src.value & mask
    else:
        return None                       # memory-to-memory
    dm = dst.mode
    if dm is _M.INDEXED:
        addr = f"(r[{dst.register}] + {dst.value}) & 0xFFFF"
    elif dm is _M.ABSOLUTE or dm is _M.SYMBOLIC:
        addr = str(dst.value & 0xFFFF)
    else:
        return None
    opcode = insn.opcode
    if opcode is Opcode.MOV:
        wr = "m.write_byte" if byte else "m.write_word"
        if s >= 0:
            val = f"r[{s}] & 0xFF" if byte else f"r[{s}]"
        else:
            val = str(k)
        return [f"{wr}({addr}, {val})"]
    if opcode is Opcode.ADD and not byte:
        lines = [f"_ia = {addr}" if dm is _M.INDEXED else None]
        ia = "_ia" if dm is _M.INDEXED else addr
        lines = [ln for ln in lines if ln is not None]
        if s >= 0:
            lines.append(f"_ik = r[{s}]")
            kx = "_ik"
        else:
            kx = str(k)
        lines += [f"_id = m.read_word({ia})",
                  f"_ix = _id + {kx}",
                  "_io = _ix & 0xFFFF",
                  f"_isr = r[2] & {_SRM}",
                  "if _ix > 0xFFFF: _isr |= 1",
                  "if _io & 0x8000: _isr |= 4",
                  "elif _io == 0: _isr |= 2",
                  f"if ~({kx} ^ _id) & ({kx} ^ _io) & 0x8000:"
                  " _isr |= 0x100",
                  "r[2] = _isr",
                  f"m.write_word({ia}, _io)"]
        return lines
    return None


def _inline_step(insn: Instruction):
    """Source lines executing ``insn`` directly on the raw register
    list — the codegen twin of the thunk skeletons above (identical
    arithmetic, flag updates, and memory-call order, with the thunk's
    Python call frame compiled away).  Covers the register/immediate
    ALU shapes plus the hot memory shapes (PUSH, MOV to/from memory,
    ADD into memory); memory accesses still go through the
    ``m.read_*``/``m.write_*`` bus methods, so permissions, I/O
    dispatch, and invalidation behave exactly as in the thunk.
    Returns None for any shape that keeps its thunk call.
    Temporaries use the ``_i*`` prefix so they never collide with the
    block executors' own locals.
    """
    opcode = insn.opcode
    if opcode in _JUMP_OPCODES:
        return None
    dst = insn.dst
    byte = insn.byte
    mask = 0xFF if byte else 0xFFFF
    sign = 0x80 if byte else 0x8000
    src = insn.src
    if dst is None:                       # format 2, register operand
        if opcode is Opcode.PUSH and src is not None:
            # SP moves before the store, exactly like the thunk: a
            # faulting push leaves SP decremented
            if src.mode is _M.REGISTER:
                return ["_ia = r[1] = (r[1] - 2) & 0xFFFF",
                        f"m.write_word(_ia, r[{src.register}]"
                        f" & {mask})"]
            if src.mode is _M.IMMEDIATE:
                return ["_ia = r[1] = (r[1] - 2) & 0xFFFF",
                        f"m.write_word(_ia, {src.value & mask})"]
            return None
        if opcode is Opcode.CALL and src is not None:
            # target evaluated before the push; the pushed return
            # address is the deferred PC (r[0] == next_pc here)
            if src.mode is _M.IMMEDIATE:
                return ["_ia = r[1] = (r[1] - 2) & 0xFFFF",
                        "m.write_word(_ia, r[0])",
                        f"r[0] = {src.value & 0xFFFE}"]
            if src.mode is _M.REGISTER:
                return [f"_it = r[{src.register}] & 0xFFFE",
                        "_ia = r[1] = (r[1] - 2) & 0xFFFF",
                        "m.write_word(_ia, r[0])",
                        "r[0] = _it"]
            return None
        if (src is None or src.mode is not _M.REGISTER
                or src.register < 4):
            return None
        d = src.register
        if opcode is Opcode.SWPB and not byte:
            return [f"_iv = r[{d}]",
                    f"r[{d}] = (_iv << 8 | _iv >> 8) & 0xFFFF"]
        if opcode is Opcode.RRA:
            return [f"_iv = r[{d}] & {mask}",
                    f"_io = (_iv >> 1) | (_iv & {sign})",
                    f"_isr = r[2] & {_SRM} | (_iv & 1)",
                    f"if _io & {sign}: _isr |= 4",
                    "elif _io == 0: _isr |= 2",
                    "r[2] = _isr",
                    f"r[{d}] = _io"]
        if opcode is Opcode.RRC:
            return [f"_iv = r[{d}] & {mask}",
                    f"_io = (_iv >> 1) | ({sign} if r[2] & 1 else 0)",
                    f"_isr = r[2] & {_SRM} | (_iv & 1)",
                    f"if _io & {sign}: _isr |= 4",
                    "elif _io == 0: _isr |= 2",
                    "r[2] = _isr",
                    f"r[{d}] = _io"]
        if opcode is Opcode.SXT and not byte:
            return [f"_io = r[{d}] & 0xFF",
                    "if _io & 0x80: _io |= 0xFF00",
                    f"_isr = r[2] & {_SRM}",
                    "if _io: _isr |= 1",
                    "if _io & 0x8000: _isr |= 4",
                    "elif _io == 0: _isr |= 2",
                    "r[2] = _isr",
                    f"r[{d}] = _io"]
        return None
    if dst.mode is not _M.REGISTER:
        return _inline_mem_dst(insn)      # memory destination
    if dst.register == 0 and opcode is Opcode.MOV and not byte:
        return _inline_mov_to_pc(src)     # BR / RET shapes
    if dst.register < 4:
        return None                       # SP/SR/CG2 destination
    d = dst.register
    if src.mode is _M.REGISTER:
        const = None
        ks = f"(r[{src.register}] & {mask})"
    elif src.mode is _M.IMMEDIATE:
        const = src.value & mask
        ks = str(const)
    elif opcode is Opcode.MOV:
        return _inline_mov_mem_to_reg(src, d, byte)
    else:
        return None                       # non-MOV memory source
    if opcode is Opcode.MOV:
        return [f"r[{d}] = {ks}"]
    if opcode in _ADDSUB_OPS:
        subtract = opcode in _SUB_OPS
        use_carry = opcode in _CARRY_OPS
        lines = [f"_id = r[{d}] & {mask}"]
        if const is None:
            lines.append(f"_ik = {ks}")
            kx = "_ik"
        else:
            kx = str(const)
        if subtract:
            inv = f"(~_ik & {mask})" if const is None \
                else str((~const) & mask)
            if use_carry:
                lines.append(f"_ix = _id + {inv} + (r[2] & 1)")
            elif const is None:
                lines.append(f"_ix = _id + {inv} + 1")
            else:
                lines.append(f"_ix = _id + {((~const) & mask) + 1}")
            ovf = f"(_id ^ {kx}) & (_id ^ _io) & {sign}"
        else:
            if use_carry:
                lines.append(f"_ix = _id + {kx} + (r[2] & 1)")
            else:
                lines.append(f"_ix = _id + {kx}")
            ovf = f"~({kx} ^ _id) & ({kx} ^ _io) & {sign}"
        lines += [f"_io = _ix & {mask}",
                  f"_isr = r[2] & {_SRM}",
                  f"if _ix > {mask}: _isr |= 1",
                  f"if _io & {sign}: _isr |= 4",
                  "elif _io == 0: _isr |= 2",
                  f"if {ovf}: _isr |= 0x100",
                  "r[2] = _isr"]
        if opcode is not Opcode.CMP:
            lines.append(f"r[{d}] = _io")
        return lines
    if opcode is Opcode.BIS:
        return [f"r[{d}] = (r[{d}] & {mask}) | {ks}"]
    if opcode is Opcode.BIC:
        if const is None:
            return [f"r[{d}] = (r[{d}] & {mask}) & ~{ks} & {mask}"]
        return [f"r[{d}] = (r[{d}] & {mask}) & {(~const) & mask}"]
    if opcode in (Opcode.AND, Opcode.BIT, Opcode.XOR):
        lines = [f"_id = r[{d}] & {mask}"]
        if const is None:
            lines.append(f"_ik = {ks}")
            kx = "_ik"
        else:
            kx = str(const)
        op = "^" if opcode is Opcode.XOR else "&"
        lines += [f"_io = _id {op} {kx}",
                  f"_isr = r[2] & {_SRM}",
                  "if _io: _isr |= 1",
                  f"if _io & {sign}: _isr |= 4",
                  "elif _io == 0: _isr |= 2"]
        if opcode is Opcode.XOR:
            lines.append(
                f"if {kx} & {sign} and _id & {sign}: _isr |= 0x100")
        lines.append("r[2] = _isr")
        if opcode is not Opcode.BIT:
            lines.append(f"r[{d}] = _io")
        return lines
    return None


#: taken-condition expression per conditional jump, over the live SR
#: in ``r[2]`` — the exact tests _spec_jump compiles into its thunks.
#: Used to inline mid-trace jumps into generated block code.
_JUMP_CONDS = {
    Opcode.JNE: "not r[2] & 2",
    Opcode.JEQ: "r[2] & 2",
    Opcode.JNC: "not r[2] & 1",
    Opcode.JC: "r[2] & 1",
    Opcode.JN: "r[2] & 4",
    Opcode.JGE: "not ((r[2] >> 2) ^ (r[2] >> 8)) & 1",
    Opcode.JL: "((r[2] >> 2) ^ (r[2] >> 8)) & 1",
}


def _hits_io(op: Optional[Operand], io_ports: frozenset) -> bool:
    """Does this operand statically address a registered I/O port?
    Used by the superblock compiler to terminate blocks at kernel
    gates, MPU registers, and timer reads — those instructions always
    execute through ``step()``.  (I/O is word-registered, so compare
    the word-aligned address, matching the bus's dispatch.)"""
    return (op is not None
            and (op.mode is _M.ABSOLUTE or op.mode is _M.SYMBOLIC)
            and (op.value & 0xFFFE) in io_ports)


def _spec_mov_mem_to_reg(src: Operand, d: int, byte: bool):
    """MOV with a memory-mode source into a general register."""
    sm = src.mode
    if sm is _M.INDEXED:
        s, off = src.register, src.value
        if byte:
            def thunk(r, m, s=s, off=off, d=d):
                r[d] = m.read_byte((r[s] + off) & 0xFFFF)
        else:
            def thunk(r, m, s=s, off=off, d=d):
                r[d] = m.read_word((r[s] + off) & 0xFFFF)
        return thunk
    if sm is _M.ABSOLUTE or sm is _M.SYMBOLIC:
        a = src.value & 0xFFFF
        if byte:
            def thunk(r, m, a=a, d=d):
                r[d] = m.read_byte(a)
        else:
            def thunk(r, m, a=a, d=d):
                r[d] = m.read_word(a)
        return thunk
    if sm is _M.INDIRECT:
        s = src.register
        if byte:
            def thunk(r, m, s=s, d=d):
                r[d] = m.read_byte(r[s])
        else:
            def thunk(r, m, s=s, d=d):
                r[d] = m.read_word(r[s])
        return thunk
    if sm is _M.AUTOINCREMENT and src.register >= 1:
        # read first, increment second — a faulting read must leave
        # the pointer untouched, exactly like the generic path.
        # Register 1 (SP) is allowed: POP Rn is ``MOV @SP+, Rn`` and
        # an even SP stays even under +2.  (R0 autoincrement decodes
        # as IMMEDIATE, R2/R3 as constant-generator immediates, so
        # they never reach this shape.)
        s = src.register
        if byte:
            def thunk(r, m, s=s, d=d):
                a = r[s]
                v = m.read_byte(a)
                r[s] = (a + 1) & 0xFFFF
                r[d] = v
        else:
            def thunk(r, m, s=s, d=d):
                a = r[s]
                v = m.read_word(a)
                r[s] = (a + 2) & 0xFFFF
                r[d] = v
        return thunk
    return None


def _spec_mov_to_mem(s: int, k: int, dst: Operand, byte: bool):
    """MOV from a register (s >= 0) or immediate into memory."""
    dm = dst.mode
    if dm is _M.INDEXED:
        dreg, off = dst.register, dst.value
        if byte:
            def thunk(r, m, s=s, k=k, dreg=dreg, off=off):
                m.write_byte((r[dreg] + off) & 0xFFFF,
                             (r[s] & 0xFF) if s >= 0 else k)
        else:
            def thunk(r, m, s=s, k=k, dreg=dreg, off=off):
                m.write_word((r[dreg] + off) & 0xFFFF,
                             r[s] if s >= 0 else k)
        return thunk
    if dm is _M.ABSOLUTE or dm is _M.SYMBOLIC:
        a = dst.value & 0xFFFF
        if byte:
            def thunk(r, m, s=s, k=k, a=a):
                m.write_byte(a, (r[s] & 0xFF) if s >= 0 else k)
        else:
            def thunk(r, m, s=s, k=k, a=a):
                m.write_word(a, r[s] if s >= 0 else k)
        return thunk
    return None


def _spec_add_to_mem(s: int, k: int, dst: Operand):
    """Word ADD from a register/immediate into indexed or absolute
    memory (the global-counter increment idiom)."""
    dm = dst.mode
    if dm is _M.INDEXED:
        dreg, off = dst.register, dst.value

        def thunk(r, m, s=s, k=k, dreg=dreg, off=off):
            a = (r[dreg] + off) & 0xFFFF
            if s >= 0:
                k = r[s]
            dstv = m.read_word(a)
            result = dstv + k
            out = result & 0xFFFF
            sr = r[2] & _SRM
            if result > 0xFFFF:
                sr |= 1
            if out & 0x8000:
                sr |= 4
            elif out == 0:
                sr |= 2
            if ~(k ^ dstv) & (k ^ out) & 0x8000:
                sr |= 0x100
            r[2] = sr
            m.write_word(a, out)
        return thunk
    if dm is _M.ABSOLUTE or dm is _M.SYMBOLIC:
        a0 = dst.value & 0xFFFF

        def thunk(r, m, s=s, k=k, a=a0):
            if s >= 0:
                k = r[s]
            dstv = m.read_word(a)
            result = dstv + k
            out = result & 0xFFFF
            sr = r[2] & _SRM
            if result > 0xFFFF:
                sr |= 1
            if out & 0x8000:
                sr |= 4
            elif out == 0:
                sr |= 2
            if ~(k ^ dstv) & (k ^ out) & 0x8000:
                sr |= 0x100
            r[2] = sr
            m.write_word(a, out)
        return thunk
    return None


def _spec_cmp_mem(s: int, k: int, dst: Operand, byte: bool):
    """CMP against an indexed or absolute memory destination: flags
    only, no write-back (the poll-a-variable idiom).  The source is
    evaluated before the destination read, like the generic handler."""
    mask = 0xFF if byte else 0xFFFF
    sign = 0x80 if byte else 0x8000
    dm = dst.mode
    if dm is _M.INDEXED:
        dreg, off = dst.register, dst.value

        def thunk(r, m, s=s, k=k, dreg=dreg, off=off,
                  mask=mask, sign=sign, byte=byte):
            if s >= 0:
                k = r[s] & mask
            a = (r[dreg] + off) & 0xFFFF
            dstv = m.read_byte(a) if byte else m.read_word(a)
            result = dstv + ((~k) & mask) + 1
            out = result & mask
            sr = r[2] & _SRM
            if result > mask:
                sr |= 1
            if out & sign:
                sr |= 4
            elif out == 0:
                sr |= 2
            if (dstv ^ k) & (dstv ^ out) & sign:
                sr |= 0x100
            r[2] = sr
        return thunk
    if dm is _M.ABSOLUTE or dm is _M.SYMBOLIC:
        a0 = dst.value & 0xFFFF

        def thunk(r, m, s=s, k=k, a=a0,
                  mask=mask, sign=sign, byte=byte):
            if s >= 0:
                k = r[s] & mask
            dstv = m.read_byte(a) if byte else m.read_word(a)
            result = dstv + ((~k) & mask) + 1
            out = result & mask
            sr = r[2] & _SRM
            if result > mask:
                sr |= 1
            if out & sign:
                sr |= 4
            elif out == 0:
                sr |= 2
            if (dstv ^ k) & (dstv ^ out) & sign:
                sr |= 0x100
            r[2] = sr
        return thunk
    return None


def _spec_sp_dest(opcode: Opcode, s: int, k: int):
    """Word MOV/ADD/SUB into SP — the stack adjust idioms of every
    prologue and epilogue.  Flags (for ADD/SUB) are computed from the
    unmasked result first; the SP write forces bit 0 clear afterwards,
    exactly like ``RegisterFile.write``."""
    if opcode is Opcode.MOV:
        if s < 0:
            t = k & 0xFFFE

            def thunk(r, m, t=t):
                r[1] = t
        else:
            def thunk(r, m, s=s):
                r[1] = r[s] & 0xFFFE
        return thunk
    subtract = opcode is Opcode.SUB

    def thunk(r, m, s=s, k=k, subtract=subtract):
        if s >= 0:
            k = r[s]
        dst = r[1]
        if subtract:
            result = dst + ((~k) & 0xFFFF) + 1
            ovf = (dst ^ k) & (dst ^ (result & 0xFFFF)) & 0x8000
        else:
            result = dst + k
            ovf = ~(k ^ dst) & (k ^ (result & 0xFFFF)) & 0x8000
        out = result & 0xFFFF
        sr = r[2] & _SRM
        if result > 0xFFFF:
            sr |= 1
        if out & 0x8000:
            sr |= 4
        elif out == 0:
            sr |= 2
        if ovf:
            sr |= 0x100
        r[2] = sr
        r[1] = out & 0xFFFE
    return thunk


def _spec_mov_mem_to_sp(src: Operand):
    """Word MOV from memory into SP (stack switch in the dispatcher).
    The SP write forces bit 0 clear, like ``RegisterFile.write``."""
    sm = src.mode
    if sm is _M.ABSOLUTE or sm is _M.SYMBOLIC:
        a = src.value & 0xFFFF

        def thunk(r, m, a=a):
            r[1] = m.read_word(a) & 0xFFFE
        return thunk
    if sm is _M.INDEXED:
        sreg, off = src.register, src.value

        def thunk(r, m, sreg=sreg, off=off):
            r[1] = m.read_word((r[sreg] + off) & 0xFFFF) & 0xFFFE
        return thunk
    return None


def _spec_mov_to_pc(src: Operand):
    """Word MOV into PC: BR #imm / BR Rn / RET (``MOV @SP+, PC``).

    PC writes are forced even; the autoincrement form reads before it
    bumps the pointer, so a faulting pop leaves SP untouched — both
    matching the generic handler exactly.
    """
    sm = src.mode
    if sm is _M.IMMEDIATE:
        t = src.value & 0xFFFE

        def thunk(r, m, t=t):
            r[0] = t
        return thunk
    if sm is _M.REGISTER:
        s = src.register

        def thunk(r, m, s=s):
            r[0] = r[s] & 0xFFFE
        return thunk
    if sm is _M.AUTOINCREMENT:
        s = src.register

        def thunk(r, m, s=s):
            a = r[s]
            v = m.read_word(a)
            r[s] = (a + 2) & 0xFFFF
            r[0] = v & 0xFFFE
        return thunk
    if sm is _M.ABSOLUTE or sm is _M.SYMBOLIC:
        a = src.value & 0xFFFF

        def thunk(r, m, a=a):
            r[0] = m.read_word(a) & 0xFFFE
        return thunk
    if sm is _M.INDEXED:
        sreg, off = src.register, src.value

        def thunk(r, m, sreg=sreg, off=off):
            r[0] = m.read_word((r[sreg] + off) & 0xFFFF) & 0xFFFE
        return thunk
    if sm is _M.INDIRECT:
        s = src.register

        def thunk(r, m, s=s):
            r[0] = m.read_word(r[s]) & 0xFFFE
        return thunk
    return None


def _specialize(insn: Instruction):
    """Return a fast closure ``thunk(regs_list, memory)`` for ``insn``,
    or None to use the generic per-opcode handler."""
    opcode = insn.opcode
    if opcode in _JUMP_OPCODES:
        return _spec_jump(opcode, insn.offset)
    dst = insn.dst
    if dst is None:
        return _spec_format2(insn)
    src = insn.src
    byte = insn.byte
    mask = 0xFF if byte else 0xFFFF
    if src.mode is _M.REGISTER:
        s, k = src.register, 0
    elif src.mode is _M.IMMEDIATE:
        s, k = -1, src.value & mask
    else:
        s, k = -2, 0                                  # memory source
    if dst.mode is _M.REGISTER:
        if dst.register < 4:                          # PC/SP/SR/CG2
            if opcode is Opcode.MOV and not byte and dst.register == 0:
                return _spec_mov_to_pc(src)           # BR / RET shapes
            if dst.register == 1 and not byte:        # stack adjusts
                if s == -2:
                    if opcode is Opcode.MOV:
                        return _spec_mov_mem_to_sp(src)
                elif opcode in (Opcode.MOV, Opcode.ADD, Opcode.SUB):
                    return _spec_sp_dest(opcode, s, k)
            if (dst.register == 2 and not byte and s != -2
                    and (opcode is Opcode.BIC or opcode is Opcode.BIS)):
                # CLRC/SETC-style flag twiddling: BIC/BIS don't update
                # flags, so the SR write is the entire effect
                if opcode is Opcode.BIC:
                    if s < 0:
                        nk = (~k) & 0xFFFF

                        def thunk(r, m, nk=nk):
                            r[2] = r[2] & nk
                    else:
                        def thunk(r, m, s=s):
                            r[2] = r[2] & ~r[s] & 0xFFFF
                else:
                    if s < 0:
                        def thunk(r, m, k=k):
                            r[2] = r[2] | k
                    else:
                        def thunk(r, m, s=s):
                            r[2] = (r[2] | r[s]) & 0xFFFF
                return thunk
            return None
        if s == -2:
            if opcode is Opcode.MOV:
                return _spec_mov_mem_to_reg(src, dst.register, byte)
            return None
        factory = _FMT1_FACTORIES.get(opcode)
        if factory is None:                           # DADD
            return None
        return factory(s, k, d=dst.register, mask=mask,
                       sign=0x80 if byte else 0x8000)
    # memory destination
    if s == -2:
        return None                                   # mem -> mem
    if opcode is Opcode.MOV:
        return _spec_mov_to_mem(s, k, dst, byte)
    if opcode is Opcode.ADD and not byte:
        return _spec_add_to_mem(s, k, dst)
    if opcode is Opcode.CMP:
        return _spec_cmp_mem(s, k, dst, byte)
    return None


#: Opcode -> Cpu handler method name; resolved to bound methods once
#: per instance in ``Cpu.__init__`` (the precomputed dispatch table).
_HANDLER_NAMES: Dict[Opcode, str] = {
    Opcode.JMP: "_op_jmp", Opcode.JNE: "_op_jne",
    Opcode.JEQ: "_op_jeq", Opcode.JNC: "_op_jnc",
    Opcode.JC: "_op_jc", Opcode.JN: "_op_jn",
    Opcode.JGE: "_op_jge", Opcode.JL: "_op_jl",
    Opcode.RETI: "_op_reti", Opcode.PUSH: "_op_push",
    Opcode.CALL: "_op_call", Opcode.RRA: "_op_rra",
    Opcode.RRC: "_op_rrc", Opcode.SWPB: "_op_swpb",
    Opcode.SXT: "_op_sxt",
    Opcode.MOV: "_op_mov", Opcode.ADD: "_op_add",
    Opcode.ADDC: "_op_addc", Opcode.SUB: "_op_sub",
    Opcode.SUBC: "_op_subc", Opcode.CMP: "_op_cmp",
    Opcode.DADD: "_op_dadd", Opcode.BIT: "_op_bit",
    Opcode.BIC: "_op_bic", Opcode.BIS: "_op_bis",
    Opcode.XOR: "_op_xor", Opcode.AND: "_op_and",
}
