"""Fetch/decode/execute engine for the 16-bit MSP430 core.

The engine is cycle-counted using the architectural tables in
:mod:`repro.msp430.cycles`.  Memory-protection failures (bus errors on
unmapped holes, MPU violations) surface as :class:`CpuFault`, which the
kernel converts into the paper's ``FAULT()`` path.

Asynchronous interrupts are not modeled: none of the paper's
measurements involve interrupt latency, and the kernel delivers events
by starting the CPU at a dispatch gate instead (see
``repro.kernel.machine``).

Execution is driven by a precomputed dispatch table keyed by
:class:`~repro.msp430.isa.Opcode` — one handler method per opcode,
bound once per CPU instance — instead of if/elif chains, and operand
writeback uses plain ``(register, address)`` integers (``-1`` meaning
"not this kind") so the register fast path allocates nothing per step.
Decoded instructions are cached per 64-byte block; any memory write
invalidates the blocks it touches, so self-modifying code and
firmware reloads stay correct.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional, Tuple

from repro.errors import (
    DecodeError,
    MemoryAccessError,
    MpuViolationError,
    ReproError,
)
from repro.msp430 import cycles as cyc
from repro.msp430.decoder import decode
from repro.msp430.isa import (
    AddressingMode,
    Instruction,
    Opcode,
    Operand,
)
from repro.msp430.memory import EXECUTE, Memory, PERM_X, READ, WRITE
from repro.msp430.registers import Reg, RegisterFile, SR

_M = AddressingMode


class FaultKind(enum.Enum):
    MPU_VIOLATION = "mpu-violation"
    BUS_ERROR = "bus-error"
    DECODE_ERROR = "decode-error"


class CpuFault(ReproError):
    """A synchronous fault raised while executing an instruction."""

    def __init__(self, kind: FaultKind, pc: int, address: int,
                 detail: str = ""):
        self.kind = kind
        self.pc = pc
        self.address = address
        self.detail = detail
        super().__init__(
            f"{kind.value} at pc=0x{pc:04X} addr=0x{address:04X}"
            + (f": {detail}" if detail else "")
        )


class ExecutionLimitExceeded(ReproError):
    """``run`` hit its cycle or instruction budget without halting."""


class Cpu:
    """The execution engine.

    Attributes of interest:

    * ``cycles`` -- architectural cycle counter (drives the experiments)
    * ``instructions`` -- retired instruction count
    * ``halted`` -- set by the kernel's DONE port or :meth:`halt`
    """

    def __init__(self, memory: Optional[Memory] = None):
        self.memory = memory if memory is not None else Memory()
        self.regs = RegisterFile()
        self.cycles = 0
        self.instructions = 0
        self.halted = False
        self.trace_hook: Optional[Callable[[int, Instruction], None]] = None
        # Raised mid-instruction by service handlers that must stop the
        # world (used by the kernel fault path).
        self._pending_fault: Optional[CpuFault] = None
        # Decoded-instruction cache, keyed by 64-byte block then PC.
        # Any memory write invalidates the blocks it touches (so
        # self-modifying code and re-loads stay correct); firmware
        # never self-modifies, so in practice every instruction decodes
        # once.  Entries: pc -> (insn, size, cycles, handler, thunk)
        # where thunk is a specialized register-only closure or None.
        self._icache: dict = {}
        # Chained (not clobbered): the profiler's and debugger's own
        # write hooks coexist with the icache invalidator.
        self.memory.add_write_hook(self._on_memory_write)
        # Per-opcode handler methods, bound once.
        self._dispatch: Dict[Opcode, Callable[[Instruction], None]] = {
            opcode: getattr(self, name)
            for opcode, name in _HANDLER_NAMES.items()
        }

    def _on_memory_write(self, address: int, _value: int) -> None:
        if address < 0:
            self._icache.clear()      # bulk load
            return
        # Entries are keyed by the block their *first* word is in, but
        # an instruction can extend into the next block — so a write
        # also invalidates the preceding block.
        block = address >> 6
        self._icache.pop(block, None)
        self._icache.pop(block - 1, None)

    # -- small helpers ------------------------------------------------------
    def reset(self, pc: Optional[int] = None) -> None:
        self.regs = RegisterFile()
        self.cycles = 0
        self.instructions = 0
        self.halted = False
        if pc is None:
            pc = self.memory.read_word(self.memory.map.RESET_VECTOR)
        self.regs.pc = pc

    def halt(self) -> None:
        self.halted = True

    def post_fault(self, fault: CpuFault) -> None:
        """Queue a fault to be raised at the end of the current step."""
        self._pending_fault = fault

    # -- operand evaluation ------------------------------------------------
    def _read_reg(self, n: int, byte: bool) -> int:
        value = self.regs.read(n)
        return value & 0xFF if byte else value

    def _load(self, address: int, byte: bool) -> int:
        if byte:
            return self.memory.read_byte(address)
        return self.memory.read_word(address)

    def _store(self, register: int, address: int, value: int,
               byte: bool) -> None:
        """Write back to register ``register`` (if >= 0) else memory."""
        if register >= 0:
            # Byte operations clear the destination's high byte.
            self.regs.write(register,
                            value & 0xFF if byte else value & 0xFFFF)
        elif byte:
            self.memory.write_byte(address, value)
        else:
            self.memory.write_word(address, value)

    def _effective_address(self, op: Operand) -> int:
        m = op.mode
        if m is _M.INDEXED:
            return (self.regs.read(op.register) + op.value) & 0xFFFF
        if m in (_M.SYMBOLIC, _M.ABSOLUTE):
            return op.value & 0xFFFF
        if m in (_M.INDIRECT, _M.AUTOINCREMENT):
            return self.regs.read(op.register)
        raise ReproError(f"operand mode {m} has no address")

    def _eval_source(self, op: Operand, byte: bool) -> int:
        m = op.mode
        if m is _M.REGISTER:
            return self._read_reg(op.register, byte)
        if m is _M.IMMEDIATE:
            return op.value & (0xFF if byte else 0xFFFF)
        address = self._effective_address(op)
        value = self._load(address, byte)
        if m is _M.AUTOINCREMENT:
            step = 1 if byte else 2
            self.regs.write(op.register,
                            self.regs.read(op.register) + step)
        return value

    def _eval_dest(self, op: Operand, byte: bool,
                   need_value: bool) -> Tuple[int, int, int]:
        """Returns ``(value, register, address)`` — ``register`` is -1
        for a memory destination, ``address`` is -1 for a register."""
        if op.mode is _M.REGISTER:
            register = op.register
            value = self._read_reg(register, byte) if need_value else 0
            return value, register, -1
        address = self._effective_address(op)
        value = self._load(address, byte) if need_value else 0
        return value, -1, address

    # -- ALU ----------------------------------------------------------------
    def _flags_add(self, src: int, dst: int, result: int,
                   byte: bool) -> int:
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        out = result & mask
        self.regs.set_flag(SR.C, result > mask)
        self.regs.set_flag(SR.V,
                           bool(~(src ^ dst) & (src ^ out) & sign))
        self.regs.set_nz(out, byte)
        return out

    def _flags_sub(self, src: int, dst: int, carry_in: int,
                   byte: bool) -> int:
        """dst - src (+ carry-1 for SUBC); C means *no borrow*."""
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        result = dst + ((~src) & mask) + carry_in
        out = result & mask
        self.regs.set_flag(SR.C, result > mask)
        self.regs.set_flag(SR.V,
                           bool((dst ^ src) & (dst ^ out) & sign))
        self.regs.set_nz(out, byte)
        return out

    def _logic_flags(self, out: int, byte: bool,
                     overflow: bool = False) -> None:
        self.regs.set_nz(out, byte)
        self.regs.set_flag(SR.C, out != 0)
        self.regs.set_flag(SR.V, overflow)

    @staticmethod
    def _dadd(src: int, dst: int, carry: int, byte: bool) -> Tuple[int, int]:
        digits = 2 if byte else 4
        out = 0
        for i in range(digits):
            d = ((src >> (4 * i)) & 0xF) + ((dst >> (4 * i)) & 0xF) + carry
            if d > 9:
                d -= 10
                carry = 1
            else:
                carry = 0
            out |= d << (4 * i)
        return out, carry

    # -- stack helpers ---------------------------------------------------------
    def _push(self, value: int) -> None:
        self.regs.sp = (self.regs.sp - 2) & 0xFFFF
        self.memory.write_word(self.regs.sp, value)

    def _pop(self) -> int:
        value = self.memory.read_word(self.regs.sp)
        self.regs.sp = (self.regs.sp + 2) & 0xFFFF
        return value

    # -- execution ------------------------------------------------------------
    def step(self) -> Instruction:
        """Execute one instruction; returns it (for tracing)."""
        memory = self.memory
        r = self.regs._regs
        pc = r[0]
        block = self._icache.get(pc >> 6)
        entry = block.get(pc) if block is not None else None
        try:
            if entry is None:
                insn, size = decode(memory.fetch_word, pc)
                insn_cycles = cyc.instruction_cycles(insn)
                handler = self._dispatch[insn.opcode]
                thunk = _specialize(insn)
                self._icache.setdefault(pc >> 6, {})[pc] = \
                    (insn, size, insn_cycles, handler, thunk)
            else:
                insn, size, insn_cycles, handler, thunk = entry
                # the decode is cached, but execute *permission* must
                # be re-validated — the MPU config changes between
                # context switches.  Probe the flat permission bitmap
                # directly; fall back to the full walk on any miss.
                if not memory._supervisor_depth:
                    if memory._perm_stale:
                        memory._refresh_permissions()
                    perm = memory._perm
                    if perm is None or not perm[pc] & PERM_X:
                        memory._check_slow(pc, EXECUTE)
                    if size > 2:
                        last = pc + size - 1
                        if last > 0xFFFF or perm is None \
                                or not perm[last] & PERM_X:
                            memory._check_slow(last, EXECUTE)
        except MpuViolationError as exc:
            raise CpuFault(FaultKind.MPU_VIOLATION, pc, exc.address,
                           "instruction fetch") from exc
        except MemoryAccessError as exc:
            raise CpuFault(FaultKind.BUS_ERROR, pc, exc.address,
                           "instruction fetch") from exc
        except DecodeError as exc:
            raise CpuFault(FaultKind.DECODE_ERROR, pc, pc,
                           str(exc)) from exc

        r[0] = (pc + size) & 0xFFFF      # pc and size are both even
        if self.trace_hook is not None:
            self.trace_hook(pc, insn)
        try:
            if thunk is not None:
                thunk(r, memory)
            else:
                handler(insn)
        except MpuViolationError as exc:
            raise CpuFault(FaultKind.MPU_VIOLATION, pc, exc.address,
                           exc.kind) from exc
        except MemoryAccessError as exc:
            raise CpuFault(FaultKind.BUS_ERROR, pc, exc.address,
                           exc.kind) from exc

        self.cycles += insn_cycles
        self.instructions += 1
        if self._pending_fault is not None:
            fault, self._pending_fault = self._pending_fault, None
            raise fault
        return insn

    def run(self, max_cycles: int = 10_000_000,
            max_instructions: Optional[int] = None) -> int:
        """Run until :attr:`halted`; returns cycles consumed by this call."""
        start = self.cycles
        budget_insns = (max_instructions if max_instructions is not None
                        else max_cycles)  # instructions <= cycles always
        # tight inner loop: hoist attribute lookups out of the loop
        step = self.step
        cycle_limit = start + max_cycles
        executed = 0
        while not self.halted:
            step()
            executed += 1
            if self.cycles > cycle_limit or executed > budget_insns:
                raise ExecutionLimitExceeded(
                    f"no halt after {self.cycles - start} cycles "
                    f"({executed} instructions) from pc=0x{self.regs.pc:04X}"
                )
        return self.cycles - start

    # -- per-opcode semantics ------------------------------------------------
    def _execute(self, insn: Instruction) -> None:
        """Dispatch one decoded instruction (tests / tools entry)."""
        self._dispatch[insn.opcode](insn)

    # jumps -------------------------------------------------------------------
    def _op_jmp(self, insn: Instruction) -> None:
        r = self.regs
        r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jne(self, insn: Instruction) -> None:
        r = self.regs
        if not r.sr & SR.Z:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jeq(self, insn: Instruction) -> None:
        r = self.regs
        if r.sr & SR.Z:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jnc(self, insn: Instruction) -> None:
        r = self.regs
        if not r.sr & SR.C:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jc(self, insn: Instruction) -> None:
        r = self.regs
        if r.sr & SR.C:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jn(self, insn: Instruction) -> None:
        r = self.regs
        if r.sr & SR.N:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jge(self, insn: Instruction) -> None:
        r = self.regs
        sr = r.sr
        if bool(sr & SR.N) == bool(sr & SR.V):
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jl(self, insn: Instruction) -> None:
        r = self.regs
        sr = r.sr
        if bool(sr & SR.N) != bool(sr & SR.V):
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    # format II ----------------------------------------------------------------
    def _op_reti(self, insn: Instruction) -> None:
        r = self.regs
        r.sr = self._pop()
        r.pc = self._pop()

    def _op_push(self, insn: Instruction) -> None:
        byte = insn.byte
        value = self._eval_source(insn.src, byte)
        # PUSH.B still decrements SP by 2 (hardware behaviour).
        self._push(value & (0xFF if byte else 0xFFFF))

    def _op_call(self, insn: Instruction) -> None:
        r = self.regs
        if insn.src.mode in (_M.REGISTER, _M.IMMEDIATE):
            target = self._eval_source(insn.src, byte=False)
        else:
            target = self._load(self._effective_address(insn.src),
                                byte=False)
            if insn.src.mode is _M.AUTOINCREMENT:
                r.write(insn.src.register,
                        r.read(insn.src.register) + 2)
        self._push(r.pc)
        r.pc = target

    def _eval_rmw(self, insn: Instruction) -> Tuple[int, int, int]:
        """RRA / RRC / SWPB / SXT operand: value + writeback target."""
        byte = insn.byte
        if insn.src.mode is _M.REGISTER:
            register = insn.src.register
            return self._read_reg(register, byte), register, -1
        address = self._effective_address(insn.src)
        value = self._load(address, byte)
        if insn.src.mode is _M.AUTOINCREMENT:
            r = self.regs
            step = 1 if byte else 2
            r.write(insn.src.register, r.read(insn.src.register) + step)
        return value, -1, address

    def _op_rra(self, insn: Instruction) -> None:
        byte = insn.byte
        value, register, address = self._eval_rmw(insn)
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        out = (value >> 1) | (value & sign)
        r = self.regs
        r.set_flag(SR.C, bool(value & 1))
        r.set_flag(SR.V, False)
        r.set_nz(out, byte)
        self._store(register, address, out & mask, byte)

    def _op_rrc(self, insn: Instruction) -> None:
        byte = insn.byte
        value, register, address = self._eval_rmw(insn)
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        r = self.regs
        out = (value >> 1) | (sign if r.carry else 0)
        r.set_flag(SR.C, bool(value & 1))
        r.set_flag(SR.V, False)
        r.set_nz(out, byte)
        self._store(register, address, out & mask, byte)

    def _op_swpb(self, insn: Instruction) -> None:
        value, register, address = self._eval_rmw(insn)
        out = ((value << 8) | (value >> 8)) & 0xFFFF
        self._store(register, address, out, insn.byte)

    def _op_sxt(self, insn: Instruction) -> None:
        value, register, address = self._eval_rmw(insn)
        out = value & 0xFF
        if out & 0x80:
            out |= 0xFF00
        r = self.regs
        r.set_nz(out, byte=False)
        r.set_flag(SR.C, out != 0)
        r.set_flag(SR.V, False)
        self._store(register, address, out, insn.byte)

    # format I -----------------------------------------------------------------
    def _op_mov(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        op = insn.dst
        if op.mode is _M.REGISTER:
            # register fast path: no writeback bookkeeping at all
            self.regs.write(op.register,
                            src & 0xFF if byte else src & 0xFFFF)
            return
        address = self._effective_address(op)
        if byte:
            self.memory.write_byte(address, src)
        else:
            self.memory.write_word(address, src)

    def _op_add(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = self._flags_add(src, dst, src + dst, byte)
        self._store(register, address, out, byte)

    def _op_addc(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = self._flags_add(src, dst, src + dst + int(self.regs.carry),
                              byte)
        self._store(register, address, out, byte)

    def _op_sub(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = self._flags_sub(src, dst, 1, byte)
        self._store(register, address, out, byte)

    def _op_subc(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = self._flags_sub(src, dst, int(self.regs.carry), byte)
        self._store(register, address, out, byte)

    def _op_cmp(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, _register, _address = self._eval_dest(insn.dst, byte, True)
        self._flags_sub(src, dst, 1, byte)

    def _op_dadd(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        r = self.regs
        out, carry = self._dadd(src, dst, int(r.carry), byte)
        r.set_flag(SR.C, bool(carry))
        r.set_nz(out, byte)
        self._store(register, address, out, byte)

    def _op_bit(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, _register, _address = self._eval_dest(insn.dst, byte, True)
        self._logic_flags(src & dst, byte)

    def _op_bic(self, insn: Instruction) -> None:
        byte = insn.byte
        mask = 0xFF if byte else 0xFFFF
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        self._store(register, address, dst & ~src & mask, byte)

    def _op_bis(self, insn: Instruction) -> None:
        byte = insn.byte
        mask = 0xFF if byte else 0xFFFF
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        self._store(register, address, (dst | src) & mask, byte)

    def _op_xor(self, insn: Instruction) -> None:
        byte = insn.byte
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = (dst ^ src) & mask
        self._logic_flags(out, byte,
                          overflow=bool(src & sign) and bool(dst & sign))
        self._store(register, address, out, byte)

    def _op_and(self, insn: Instruction) -> None:
        byte = insn.byte
        mask = 0xFF if byte else 0xFFFF
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = dst & src & mask
        self._logic_flags(out, byte)
        self._store(register, address, out, byte)


# -- specialized execution thunks -------------------------------------------
#
# For the hottest instruction shapes — ALU ops on registers/immediates,
# all jumps, and the dominant MOV/ADD memory forms — the icache entry
# carries a closure that performs the whole instruction on the raw
# register list (and the bus, for the memory forms): no Operand
# re-interpretation, no property lookups, no flag-helper calls.
# Shapes with a PC/SP/SR/CG2 destination or a rare opcode keep
# ``thunk=None`` and go through the generic per-opcode handler;
# semantics are identical either way, including fault behaviour
# (memory thunks run inside the same try/except in ``step``).

_SRM = 0xFEF8            # SR with C, Z, N, V cleared


def _spec_jump(opcode: Opcode, offset: int):
    d = 2 * offset        # applied after the pc += size in step()
    if opcode is Opcode.JMP:
        def thunk(r, m, d=d):
            r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JNE:
        def thunk(r, m, d=d):
            if not r[2] & 2:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JEQ:
        def thunk(r, m, d=d):
            if r[2] & 2:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JNC:
        def thunk(r, m, d=d):
            if not r[2] & 1:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JC:
        def thunk(r, m, d=d):
            if r[2] & 1:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JN:
        def thunk(r, m, d=d):
            if r[2] & 4:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JGE:
        def thunk(r, m, d=d):
            sr = r[2]
            if not ((sr >> 2) ^ (sr >> 8)) & 1:     # N == V
                r[0] = (r[0] + d) & 0xFFFF
    else:                                           # JL
        def thunk(r, m, d=d):
            sr = r[2]
            if ((sr >> 2) ^ (sr >> 8)) & 1:         # N != V
                r[0] = (r[0] + d) & 0xFFFF
    return thunk


def _th_mov(s, k, d, mask, sign):
    if s < 0:
        def thunk(r, m, k=k, d=d):
            r[d] = k
    else:
        def thunk(r, m, s=s, d=d, mask=mask):
            r[d] = r[s] & mask
    return thunk


def _make_addsub(subtract: bool, use_carry: bool, store: bool):
    """ADD/ADDC/SUB/SUBC/CMP share one arithmetic skeleton."""
    def factory(s, k, d, mask, sign):
        def thunk(r, m, s=s, k=k, d=d, mask=mask, sign=sign):
            if s >= 0:
                k = r[s] & mask
            dst = r[d] & mask
            if subtract:
                result = dst + ((~k) & mask) \
                    + ((r[2] & 1) if use_carry else 1)
                ovf = (dst ^ k) & (dst ^ (result & mask)) & sign
            else:
                result = dst + k + ((r[2] & 1) if use_carry else 0)
                ovf = ~(k ^ dst) & (k ^ (result & mask)) & sign
            out = result & mask
            sr = r[2] & _SRM
            if result > mask:
                sr |= 1                              # C
            if out & sign:
                sr |= 4                              # N
            elif out == 0:
                sr |= 2                              # Z
            if ovf:
                sr |= 0x100                          # V
            r[2] = sr
            if store:
                r[d] = out
        return thunk
    return factory


def _make_logic(op: str, store: bool):
    """AND/BIT/XOR (flag-setting) and BIS/BIC (flag-preserving)."""
    def factory(s, k, d, mask, sign):
        def thunk(r, m, s=s, k=k, d=d, mask=mask, sign=sign):
            if s >= 0:
                k = r[s] & mask
            dst = r[d] & mask
            if op == "and":
                out = dst & k
            elif op == "xor":
                out = dst ^ k
            elif op == "bis":
                r[d] = dst | k
                return
            else:                                    # bic
                r[d] = dst & ((~k) & mask)
                return
            sr = r[2] & _SRM
            if out:
                sr |= 1                              # C = result != 0
            if out & sign:
                sr |= 4
            elif out == 0:
                sr |= 2
            if op == "xor" and k & sign and dst & sign:
                sr |= 0x100
            r[2] = sr
            if store:
                r[d] = out
        return thunk
    return factory


_FMT1_FACTORIES = {
    Opcode.MOV: _th_mov,
    Opcode.ADD: _make_addsub(subtract=False, use_carry=False, store=True),
    Opcode.ADDC: _make_addsub(subtract=False, use_carry=True, store=True),
    Opcode.SUB: _make_addsub(subtract=True, use_carry=False, store=True),
    Opcode.SUBC: _make_addsub(subtract=True, use_carry=True, store=True),
    Opcode.CMP: _make_addsub(subtract=True, use_carry=False, store=False),
    Opcode.AND: _make_logic("and", store=True),
    Opcode.BIT: _make_logic("and", store=False),
    Opcode.XOR: _make_logic("xor", store=True),
    Opcode.BIS: _make_logic("bis", store=True),
    Opcode.BIC: _make_logic("bic", store=True),
}


def _spec_format2(insn: Instruction):
    opcode = insn.opcode
    src = insn.src
    if src is None or src.mode is not _M.REGISTER or src.register < 4:
        return None
    byte = insn.byte
    mask = 0xFF if byte else 0xFFFF
    sign = 0x80 if byte else 0x8000
    d = src.register
    if opcode is Opcode.RRA:
        def thunk(r, m, d=d, mask=mask, sign=sign):
            v = r[d] & mask
            out = (v >> 1) | (v & sign)
            sr = r[2] & _SRM
            if v & 1:
                sr |= 1
            if out & sign:
                sr |= 4
            elif out == 0:
                sr |= 2
            r[2] = sr
            r[d] = out
        return thunk
    if opcode is Opcode.RRC:
        def thunk(r, m, d=d, mask=mask, sign=sign):
            v = r[d] & mask
            out = (v >> 1) | (sign if r[2] & 1 else 0)
            sr = r[2] & _SRM
            if v & 1:
                sr |= 1
            if out & sign:
                sr |= 4
            elif out == 0:
                sr |= 2
            r[2] = sr
            r[d] = out
        return thunk
    if opcode is Opcode.SWPB and not byte:
        def thunk(r, m, d=d):
            v = r[d]
            r[d] = ((v << 8) | (v >> 8)) & 0xFFFF
        return thunk
    if opcode is Opcode.SXT and not byte:
        def thunk(r, m, d=d):
            out = r[d] & 0xFF
            if out & 0x80:
                out |= 0xFF00
            sr = r[2] & _SRM
            if out:
                sr |= 1
            if out & 0x8000:
                sr |= 4
            elif out == 0:
                sr |= 2
            r[2] = sr
            r[d] = out
        return thunk
    return None


_JUMP_OPCODES = frozenset((
    Opcode.JMP, Opcode.JNE, Opcode.JEQ, Opcode.JNC,
    Opcode.JC, Opcode.JN, Opcode.JGE, Opcode.JL,
))


def _spec_mov_mem_to_reg(src: Operand, d: int, byte: bool):
    """MOV with a memory-mode source into a general register."""
    sm = src.mode
    if sm is _M.INDEXED:
        s, off = src.register, src.value
        if byte:
            def thunk(r, m, s=s, off=off, d=d):
                r[d] = m.read_byte((r[s] + off) & 0xFFFF)
        else:
            def thunk(r, m, s=s, off=off, d=d):
                r[d] = m.read_word((r[s] + off) & 0xFFFF)
        return thunk
    if sm is _M.ABSOLUTE or sm is _M.SYMBOLIC:
        a = src.value & 0xFFFF
        if byte:
            def thunk(r, m, a=a, d=d):
                r[d] = m.read_byte(a)
        else:
            def thunk(r, m, a=a, d=d):
                r[d] = m.read_word(a)
        return thunk
    if sm is _M.INDIRECT:
        s = src.register
        if byte:
            def thunk(r, m, s=s, d=d):
                r[d] = m.read_byte(r[s])
        else:
            def thunk(r, m, s=s, d=d):
                r[d] = m.read_word(r[s])
        return thunk
    if sm is _M.AUTOINCREMENT and src.register >= 4:
        # read first, increment second — a faulting read must leave
        # the pointer untouched, exactly like the generic path
        s = src.register
        if byte:
            def thunk(r, m, s=s, d=d):
                a = r[s]
                v = m.read_byte(a)
                r[s] = (a + 1) & 0xFFFF
                r[d] = v
        else:
            def thunk(r, m, s=s, d=d):
                a = r[s]
                v = m.read_word(a)
                r[s] = (a + 2) & 0xFFFF
                r[d] = v
        return thunk
    return None


def _spec_mov_to_mem(s: int, k: int, dst: Operand, byte: bool):
    """MOV from a register (s >= 0) or immediate into memory."""
    dm = dst.mode
    if dm is _M.INDEXED:
        dreg, off = dst.register, dst.value
        if byte:
            def thunk(r, m, s=s, k=k, dreg=dreg, off=off):
                m.write_byte((r[dreg] + off) & 0xFFFF,
                             (r[s] & 0xFF) if s >= 0 else k)
        else:
            def thunk(r, m, s=s, k=k, dreg=dreg, off=off):
                m.write_word((r[dreg] + off) & 0xFFFF,
                             r[s] if s >= 0 else k)
        return thunk
    if dm is _M.ABSOLUTE or dm is _M.SYMBOLIC:
        a = dst.value & 0xFFFF
        if byte:
            def thunk(r, m, s=s, k=k, a=a):
                m.write_byte(a, (r[s] & 0xFF) if s >= 0 else k)
        else:
            def thunk(r, m, s=s, k=k, a=a):
                m.write_word(a, r[s] if s >= 0 else k)
        return thunk
    return None


def _spec_add_to_mem(s: int, k: int, dst: Operand):
    """Word ADD from a register/immediate into indexed memory."""
    if dst.mode is not _M.INDEXED:
        return None
    dreg, off = dst.register, dst.value

    def thunk(r, m, s=s, k=k, dreg=dreg, off=off):
        a = (r[dreg] + off) & 0xFFFF
        if s >= 0:
            k = r[s]
        dstv = m.read_word(a)
        result = dstv + k
        out = result & 0xFFFF
        sr = r[2] & _SRM
        if result > 0xFFFF:
            sr |= 1
        if out & 0x8000:
            sr |= 4
        elif out == 0:
            sr |= 2
        if ~(k ^ dstv) & (k ^ out) & 0x8000:
            sr |= 0x100
        r[2] = sr
        m.write_word(a, out)
    return thunk


def _specialize(insn: Instruction):
    """Return a fast closure ``thunk(regs_list, memory)`` for ``insn``,
    or None to use the generic per-opcode handler."""
    opcode = insn.opcode
    if opcode in _JUMP_OPCODES:
        return _spec_jump(opcode, insn.offset)
    dst = insn.dst
    if dst is None:
        return _spec_format2(insn)
    src = insn.src
    byte = insn.byte
    mask = 0xFF if byte else 0xFFFF
    if src.mode is _M.REGISTER:
        s, k = src.register, 0
    elif src.mode is _M.IMMEDIATE:
        s, k = -1, src.value & mask
    else:
        s, k = -2, 0                                  # memory source
    if dst.mode is _M.REGISTER:
        if dst.register < 4:                          # PC/SP/SR/CG2
            return None
        if s == -2:
            if opcode is Opcode.MOV:
                return _spec_mov_mem_to_reg(src, dst.register, byte)
            return None
        factory = _FMT1_FACTORIES.get(opcode)
        if factory is None:                           # DADD
            return None
        return factory(s, k, d=dst.register, mask=mask,
                       sign=0x80 if byte else 0x8000)
    # memory destination
    if s == -2:
        return None                                   # mem -> mem
    if opcode is Opcode.MOV:
        return _spec_mov_to_mem(s, k, dst, byte)
    if opcode is Opcode.ADD and not byte:
        return _spec_add_to_mem(s, k, dst)
    return None


#: Opcode -> Cpu handler method name; resolved to bound methods once
#: per instance in ``Cpu.__init__`` (the precomputed dispatch table).
_HANDLER_NAMES: Dict[Opcode, str] = {
    Opcode.JMP: "_op_jmp", Opcode.JNE: "_op_jne",
    Opcode.JEQ: "_op_jeq", Opcode.JNC: "_op_jnc",
    Opcode.JC: "_op_jc", Opcode.JN: "_op_jn",
    Opcode.JGE: "_op_jge", Opcode.JL: "_op_jl",
    Opcode.RETI: "_op_reti", Opcode.PUSH: "_op_push",
    Opcode.CALL: "_op_call", Opcode.RRA: "_op_rra",
    Opcode.RRC: "_op_rrc", Opcode.SWPB: "_op_swpb",
    Opcode.SXT: "_op_sxt",
    Opcode.MOV: "_op_mov", Opcode.ADD: "_op_add",
    Opcode.ADDC: "_op_addc", Opcode.SUB: "_op_sub",
    Opcode.SUBC: "_op_subc", Opcode.CMP: "_op_cmp",
    Opcode.DADD: "_op_dadd", Opcode.BIT: "_op_bit",
    Opcode.BIC: "_op_bic", Opcode.BIS: "_op_bis",
    Opcode.XOR: "_op_xor", Opcode.AND: "_op_and",
}
