"""Fetch/decode/execute engine for the 16-bit MSP430 core.

The engine is cycle-counted using the architectural tables in
:mod:`repro.msp430.cycles`.  Memory-protection failures (bus errors on
unmapped holes, MPU violations) surface as :class:`CpuFault`, which the
kernel converts into the paper's ``FAULT()`` path.

Asynchronous interrupts are not modeled: none of the paper's
measurements involve interrupt latency, and the kernel delivers events
by starting the CPU at a dispatch gate instead (see
``repro.kernel.machine``).

Execution is driven by a precomputed dispatch table keyed by
:class:`~repro.msp430.isa.Opcode` — one handler method per opcode,
bound once per CPU instance — instead of if/elif chains, and operand
writeback uses plain ``(register, address)`` integers (``-1`` meaning
"not this kind") so the register fast path allocates nothing per step.
Decoded instructions are cached per 64-byte block; any memory write
invalidates the blocks it touches, so self-modifying code and
firmware reloads stay correct.

Superblocks
-----------

On top of the per-instruction thunks, :meth:`Cpu.run` compiles
straight-line runs of already-decoded thunks into *superblocks*: one
Python-level dispatch per block instead of one ``step()`` round trip
per instruction.  A block starts at a hot PC and extends until the
first

* jump (included as the block's final instruction), call, return, or
  any other instruction without a specialized thunk,
* instruction whose absolute operand hits a memory-mapped I/O port —
  kernel gates (service/done/fault ports), MPU registers, the cycle
  timer — so gate crossings and MPU reprogramming always run through
  ``step()``, or
* the 64-instruction block-size cap.

Blocks come in two flavours, decided by a compile-time "may touch
memory" summary: **pure** blocks (register-only thunks, optionally a
final jump) skip *all* per-instruction bookkeeping — the PC, cycle and
instruction counters are written once per block — while **memory**
blocks keep the architectural counters and PC exact around every
thunk, so I/O read handlers (the cycle timer), fault PCs, and pending
service faults observe bit-identical state to ``step()``.

``run()`` only dispatches blocks when nothing needs per-instruction
observability: a ``trace_hook`` (debugger), a memory observer
(watchpoints, profilers), a pending fault, or a cycle/instruction
budget within one block of expiring all fall back to ``step()``, as
does setting :attr:`Cpu.block_mode` to ``False`` (the forced step-only
mode the differential tests compare against).  Invalidation rides the
icache write hook — a store into a block's PC range (including
block-straddling writes) kills the block — and MPU reconfiguration is
handled by revalidating each block's execute permission against the
bus's memoized permission bitmap: same bitmap object, no work; new
bitmap, one pass over the block's byte range.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional, Tuple

from repro.errors import (
    DecodeError,
    MemoryAccessError,
    MpuViolationError,
    ReproError,
)
from repro.msp430 import cycles as cyc
from repro.msp430.decoder import decode
from repro.msp430.isa import (
    AddressingMode,
    Instruction,
    Opcode,
    Operand,
)
from repro.msp430.memory import EXECUTE, Memory, PERM_X, READ, WRITE
from repro.msp430.registers import Reg, RegisterFile, SR

_M = AddressingMode


class FaultKind(enum.Enum):
    MPU_VIOLATION = "mpu-violation"
    BUS_ERROR = "bus-error"
    DECODE_ERROR = "decode-error"


class CpuFault(ReproError):
    """A synchronous fault raised while executing an instruction."""

    def __init__(self, kind: FaultKind, pc: int, address: int,
                 detail: str = ""):
        self.kind = kind
        self.pc = pc
        self.address = address
        self.detail = detail
        super().__init__(
            f"{kind.value} at pc=0x{pc:04X} addr=0x{address:04X}"
            + (f": {detail}" if detail else "")
        )


class ExecutionLimitExceeded(ReproError):
    """``run`` hit its cycle or instruction budget without halting.

    The message states which budget tripped (cycles vs. instructions);
    the two limits are tracked separately."""


#: superblocks stop growing after this many instructions; ``run``'s
#: budget guard refuses to dispatch a block that could overshoot the
#: remaining budget, so blocks never blur ExecutionLimitExceeded.
_MAX_BLOCK_INSNS = 64


class _Block:
    """One compiled superblock: a straight-line run of decoded thunks
    fused into a single ``compile()``-generated function ``fn``.

    ``steps`` holds ``(pc, next_pc, thunk, cycles, may_store)`` per
    instruction (kept for invalidation tests and diagnostics).  Three
    flavors of ``fn``:

    * **pure** — register-only thunks (plus an optional final jump):
      ``fn(cpu, r, m)`` sets the PC once, calls the thunks back to
      back, and adds the cycle/instruction totals in one batch.
    * **loop** — a pure block whose final jump targets its own start:
      ``fn(cpu, r, m, limit)`` iterates the whole block up to ``limit``
      times (the caller derives ``limit`` from the remaining budget),
      exiting as soon as the jump falls through.
    * **memory** — anything that touches memory: ``fn(cpu, r, m)``
      maintains PC and both counters per instruction (so I/O read
      handlers such as the cycle timer observe exactly the state
      ``step()`` would show) and re-checks halt/pending-fault/
      invalidation/observability after every store.

    ``perm_ok`` caches the bus permission bitmap (a memoized immutable
    ``bytes`` per MPU configuration) this block was last
    execute-validated against — same object means the validation still
    holds, so an MPU reconfiguration only costs a re-scan for blocks
    whose permission signature actually changed.  ``pc_map`` maps each
    instruction's advanced PC back to its own PC so a fault raised
    inside ``fn`` is reported at the exact faulting instruction.
    """

    __slots__ = ("start", "end", "end_pc", "steps", "cycles", "count",
                 "pure", "loop", "valid", "perm_ok", "fn", "pc_map")

    def __init__(self, start: int, end: int, end_pc: int,
                 steps: tuple, pure: bool, loop: bool):
        self.start = start
        self.end = end                  # one past the last code byte
        self.end_pc = end_pc            # pc after the last instruction
        self.steps = steps
        self.cycles = sum(s[3] for s in steps)
        self.count = len(steps)
        self.pure = pure
        self.loop = loop
        self.valid = True
        self.perm_ok = None
        self.pc_map = {s[1]: s[0] for s in steps}
        self.fn = _codegen(self)


def _codegen(blk: _Block):
    """Fuse a block's thunks into one compiled Python function.

    The generated code inlines every PC value and cycle count as a
    constant and binds the thunks as globals, so executing a block
    costs one Python call plus the thunk bodies — the per-instruction
    interpreter loop (tuple unpacking, index bookkeeping, budget and
    halt polling) is gone.
    """
    ns = {}
    lines = []
    if blk.loop:
        # Pure self-loop: re-dispatching the same two-or-three
        # instruction block through ``run()`` would cost more than the
        # block body, so iterate in place.  ``limit`` is the number of
        # full iterations the remaining cycle/instruction budget
        # allows (>= 1); the jump falling through ends the loop early.
        for i, s in enumerate(blk.steps):
            ns[f"_t{i}"] = s[2]
        body = "".join(f"        _t{i}(r, m)\n"
                       for i in range(blk.count))
        src = (
            "def _fn(c, r, m, limit):\n"
            "    n = 0\n"
            "    while True:\n"
            f"        r[0] = {blk.end_pc}\n"
            f"{body}"
            "        n += 1\n"
            f"        if r[0] != {blk.start} or n >= limit:\n"
            "            break\n"
            f"    c.cycles += {blk.cycles} * n\n"
            f"    c.instructions += {blk.count} * n\n"
        )
    elif blk.pure:
        # Register-only straight line: no thunk can fault, halt, or
        # observe PC/counters, so set the PC once and batch the
        # bookkeeping after the fact.
        lines.append("def _fn(c, r, m):")
        lines.append(f"    r[0] = {blk.end_pc}")
        for i, s in enumerate(blk.steps):
            ns[f"_t{i}"] = s[2]
            lines.append(f"    _t{i}(r, m)")
        lines.append(f"    c.cycles += {blk.cycles}")
        lines.append(f"    c.instructions += {blk.count}")
        src = "\n".join(lines) + "\n"
    else:
        # Memory-touching block: exact architectural state around
        # every thunk.  A store may halt the machine (DONE port), post
        # a fault (FAULT port / service handler), invalidate this very
        # block (self-modifying code), stale the permission bitmap
        # (MPU register), or attach an observer — each check mirrors
        # what ``step()`` + ``run()`` would do at that boundary.
        lines.append("def _fn(c, r, m):")
        for i, (pc_i, next_pc, thunk, cyc_i, may_store) \
                in enumerate(blk.steps):
            ns[f"_t{i}"] = thunk
            lines.append(f"    r[0] = {next_pc}")
            lines.append(f"    _t{i}(r, m)")
            lines.append(f"    c.cycles += {cyc_i}")
            lines.append("    c.instructions += 1")
            if may_store:
                lines.append("    if c.halted: return")
                lines.append("    f = c._pending_fault")
                lines.append("    if f is not None:")
                lines.append("        c._pending_fault = None")
                lines.append("        raise f")
                lines.append("    if (not _B.valid or m._perm_stale"
                             " or c.trace_hook is not None"
                             " or m._observers): return")
        ns["_B"] = blk
        src = "\n".join(lines) + "\n"
    exec(compile(src, f"<superblock@0x{blk.start:04X}>", "exec"), ns)
    return ns["_fn"]


class Cpu:
    """The execution engine.

    Attributes of interest:

    * ``cycles`` -- architectural cycle counter (drives the experiments)
    * ``instructions`` -- retired instruction count
    * ``halted`` -- set by the kernel's DONE port or :meth:`halt`
    """

    def __init__(self, memory: Optional[Memory] = None):
        self.memory = memory if memory is not None else Memory()
        self.regs = RegisterFile()
        self.cycles = 0
        self.instructions = 0
        self.halted = False
        self.trace_hook: Optional[Callable[[int, Instruction], None]] = None
        # Raised mid-instruction by service handlers that must stop the
        # world (used by the kernel fault path).
        self._pending_fault: Optional[CpuFault] = None
        # Decoded-instruction cache, keyed by 64-byte block then PC.
        # Any memory write invalidates the blocks it touches (so
        # self-modifying code and re-loads stay correct); firmware
        # never self-modifies, so in practice every instruction decodes
        # once.  Entries: pc -> (insn, size, cycles, handler, thunk)
        # where thunk is a specialized register-only closure or None.
        self._icache: dict = {}
        # -- superblock layer ----------------------------------------
        #: False forces the pure ``step()`` interpreter; differential
        #: tests flip this to pin block mode against step mode.
        self.block_mode = True
        #: compiled superblocks, keyed by entry PC
        self._blocks: Dict[int, _Block] = {}
        #: entry PCs where compilation declined (first instruction has
        #: no thunk, hits an I/O port, or the run is too short) — a
        #: negative cache so ``run`` doesn't retry every iteration
        self._no_block: set = set()
        #: 64-byte page -> entry PCs of blocks (and no-block markers)
        #: whose code bytes intersect that page; drives invalidation
        self._block_pages: Dict[int, set] = {}
        # Chained (not clobbered): the profiler's and debugger's own
        # write hooks coexist with the icache invalidator.
        self.memory.add_write_hook(self._on_memory_write)
        # Per-opcode handler methods, bound once.
        self._dispatch: Dict[Opcode, Callable[[Instruction], None]] = {
            opcode: getattr(self, name)
            for opcode, name in _HANDLER_NAMES.items()
        }

    def _on_memory_write(self, address: int, _value: int) -> None:
        if address < 0:
            self._icache.clear()      # bulk load
            if self._blocks:
                for blk in self._blocks.values():
                    blk.valid = False     # stop an in-flight block
                self._blocks.clear()
            self._block_pages.clear()
            self._no_block.clear()
            return
        # Entries are keyed by the block their *first* word is in, but
        # an instruction can extend into the next block — so a write
        # also invalidates the preceding block.
        block = address >> 6
        self._icache.pop(block, None)
        self._icache.pop(block - 1, None)
        # Superblocks (and no-block markers) are indexed under *every*
        # page their byte range intersects, so the write's own page is
        # enough — block-straddling writes hit the straddled page.
        pcs = self._block_pages.pop(block, None)
        if pcs:
            blocks = self._blocks
            no_block = self._no_block
            for pc in pcs:
                blk = blocks.pop(pc, None)
                if blk is not None:
                    blk.valid = False     # stop an in-flight block
                no_block.discard(pc)

    # -- small helpers ------------------------------------------------------
    def reset(self, pc: Optional[int] = None) -> None:
        self.regs = RegisterFile()
        self.cycles = 0
        self.instructions = 0
        self.halted = False
        if pc is None:
            pc = self.memory.read_word(self.memory.map.RESET_VECTOR)
        self.regs.pc = pc

    def halt(self) -> None:
        self.halted = True

    # -- snapshot/restore ---------------------------------------------------
    def state_dict(self) -> dict:
        """Architectural CPU state: register file plus the cycle and
        instruction counters.  The decoded-instruction cache and the
        compiled superblocks are *derived* state — they rebuild on
        demand after :meth:`load_state` — so they are not captured."""
        return {
            "regs": self.regs.snapshot(),
            "cycles": self.cycles,
            "instructions": self.instructions,
            "halted": self.halted,
        }

    def load_state(self, state: dict) -> None:
        self.regs.restore(state["regs"])
        self.cycles = state["cycles"]
        self.instructions = state["instructions"]
        self.halted = state["halted"]
        self._pending_fault = None

    def post_fault(self, fault: CpuFault) -> None:
        """Queue a fault to be raised at the end of the current step."""
        self._pending_fault = fault

    # -- operand evaluation ------------------------------------------------
    def _read_reg(self, n: int, byte: bool) -> int:
        value = self.regs.read(n)
        return value & 0xFF if byte else value

    def _load(self, address: int, byte: bool) -> int:
        if byte:
            return self.memory.read_byte(address)
        return self.memory.read_word(address)

    def _store(self, register: int, address: int, value: int,
               byte: bool) -> None:
        """Write back to register ``register`` (if >= 0) else memory."""
        if register >= 0:
            # Byte operations clear the destination's high byte.
            self.regs.write(register,
                            value & 0xFF if byte else value & 0xFFFF)
        elif byte:
            self.memory.write_byte(address, value)
        else:
            self.memory.write_word(address, value)

    def _effective_address(self, op: Operand) -> int:
        m = op.mode
        if m is _M.INDEXED:
            return (self.regs.read(op.register) + op.value) & 0xFFFF
        if m in (_M.SYMBOLIC, _M.ABSOLUTE):
            return op.value & 0xFFFF
        if m in (_M.INDIRECT, _M.AUTOINCREMENT):
            return self.regs.read(op.register)
        raise ReproError(f"operand mode {m} has no address")

    def _eval_source(self, op: Operand, byte: bool) -> int:
        m = op.mode
        if m is _M.REGISTER:
            return self._read_reg(op.register, byte)
        if m is _M.IMMEDIATE:
            return op.value & (0xFF if byte else 0xFFFF)
        address = self._effective_address(op)
        value = self._load(address, byte)
        if m is _M.AUTOINCREMENT:
            step = 1 if byte else 2
            self.regs.write(op.register,
                            self.regs.read(op.register) + step)
        return value

    def _eval_dest(self, op: Operand, byte: bool,
                   need_value: bool) -> Tuple[int, int, int]:
        """Returns ``(value, register, address)`` — ``register`` is -1
        for a memory destination, ``address`` is -1 for a register."""
        if op.mode is _M.REGISTER:
            register = op.register
            value = self._read_reg(register, byte) if need_value else 0
            return value, register, -1
        address = self._effective_address(op)
        value = self._load(address, byte) if need_value else 0
        return value, -1, address

    # -- ALU ----------------------------------------------------------------
    def _flags_add(self, src: int, dst: int, result: int,
                   byte: bool) -> int:
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        out = result & mask
        self.regs.set_flag(SR.C, result > mask)
        self.regs.set_flag(SR.V,
                           bool(~(src ^ dst) & (src ^ out) & sign))
        self.regs.set_nz(out, byte)
        return out

    def _flags_sub(self, src: int, dst: int, carry_in: int,
                   byte: bool) -> int:
        """dst - src (+ carry-1 for SUBC); C means *no borrow*."""
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        result = dst + ((~src) & mask) + carry_in
        out = result & mask
        self.regs.set_flag(SR.C, result > mask)
        self.regs.set_flag(SR.V,
                           bool((dst ^ src) & (dst ^ out) & sign))
        self.regs.set_nz(out, byte)
        return out

    def _logic_flags(self, out: int, byte: bool,
                     overflow: bool = False) -> None:
        self.regs.set_nz(out, byte)
        self.regs.set_flag(SR.C, out != 0)
        self.regs.set_flag(SR.V, overflow)

    @staticmethod
    def _dadd(src: int, dst: int, carry: int, byte: bool) -> Tuple[int, int]:
        digits = 2 if byte else 4
        out = 0
        for i in range(digits):
            d = ((src >> (4 * i)) & 0xF) + ((dst >> (4 * i)) & 0xF) + carry
            if d > 9:
                d -= 10
                carry = 1
            else:
                carry = 0
            out |= d << (4 * i)
        return out, carry

    # -- stack helpers ---------------------------------------------------------
    def _push(self, value: int) -> None:
        self.regs.sp = (self.regs.sp - 2) & 0xFFFF
        self.memory.write_word(self.regs.sp, value)

    def _pop(self) -> int:
        value = self.memory.read_word(self.regs.sp)
        self.regs.sp = (self.regs.sp + 2) & 0xFFFF
        return value

    # -- execution ------------------------------------------------------------
    def step(self) -> Instruction:
        """Execute one instruction; returns it (for tracing)."""
        memory = self.memory
        r = self.regs._regs
        pc = r[0]
        block = self._icache.get(pc >> 6)
        entry = block.get(pc) if block is not None else None
        try:
            if entry is None:
                insn, size = decode(memory.fetch_word, pc)
                insn_cycles = cyc.instruction_cycles(insn)
                handler = self._dispatch[insn.opcode]
                thunk = _specialize(insn)
                self._icache.setdefault(pc >> 6, {})[pc] = \
                    (insn, size, insn_cycles, handler, thunk)
            else:
                insn, size, insn_cycles, handler, thunk = entry
                # the decode is cached, but execute *permission* must
                # be re-validated — the MPU config changes between
                # context switches.  Probe the flat permission bitmap
                # directly; fall back to the full walk on any miss.
                if not memory._supervisor_depth:
                    if memory._perm_stale:
                        memory._refresh_permissions()
                    perm = memory._perm
                    if perm is None or not perm[pc] & PERM_X:
                        memory._check_slow(pc, EXECUTE)
                    if size > 2:
                        last = pc + size - 1
                        if last > 0xFFFF or perm is None \
                                or not perm[last] & PERM_X:
                            memory._check_slow(last, EXECUTE)
        except MpuViolationError as exc:
            raise CpuFault(FaultKind.MPU_VIOLATION, pc, exc.address,
                           "instruction fetch") from exc
        except MemoryAccessError as exc:
            raise CpuFault(FaultKind.BUS_ERROR, pc, exc.address,
                           "instruction fetch") from exc
        except DecodeError as exc:
            raise CpuFault(FaultKind.DECODE_ERROR, pc, pc,
                           str(exc)) from exc

        r[0] = (pc + size) & 0xFFFF      # pc and size are both even
        if self.trace_hook is not None:
            self.trace_hook(pc, insn)
        try:
            if thunk is not None:
                thunk(r, memory)
            else:
                handler(insn)
        except MpuViolationError as exc:
            raise CpuFault(FaultKind.MPU_VIOLATION, pc, exc.address,
                           exc.kind) from exc
        except MemoryAccessError as exc:
            raise CpuFault(FaultKind.BUS_ERROR, pc, exc.address,
                           exc.kind) from exc

        self.cycles += insn_cycles
        self.instructions += 1
        if self._pending_fault is not None:
            fault, self._pending_fault = self._pending_fault, None
            raise fault
        return insn

    def run(self, max_cycles: int = 10_000_000,
            max_instructions: Optional[int] = None) -> int:
        """Run until :attr:`halted`; returns cycles consumed by this call.

        The loop dispatches compiled superblocks whenever exact
        per-instruction observability is not required, and falls back
        to :meth:`step` when a trace hook or memory observer is
        installed, a fault is pending, a budget is within one block of
        expiring, or :attr:`block_mode` is off.  Architectural state —
        cycles, instructions, fault PCs, halt points, budget errors —
        is bit-identical either way.
        """
        start = self.cycles
        start_insns = self.instructions
        cycle_limit = start + max_cycles
        insn_limit = (None if max_instructions is None
                      else start_insns + max_instructions)
        memory = self.memory
        step = self.step
        no_block = self._no_block
        while not self.halted:
            # -- superblock fast path --------------------------------
            # Guards re-checked only here: a *pure* block cannot
            # change any of them, and the post-dispatch check below
            # drops out of the tight loop as soon as a memory block
            # (or an inline step) does.
            if (self.block_mode and self.trace_hook is None
                    and self._pending_fault is None
                    and not memory._observers):
                if memory._perm_stale:
                    memory._refresh_permissions()
                perm = memory._perm
                if perm is not None:
                    regs = self.regs._regs
                    get = self._blocks.get
                    while True:
                        blk = get(regs[0])
                        if blk is None:
                            pc = regs[0]
                            if pc in no_block:
                                break
                            blk = self._compile_block(pc)
                            if blk is None:
                                break
                        if blk.perm_ok is not perm:
                            # MPU configuration changed since the last
                            # execute-validation of this block's range
                            if all(b & PERM_X
                                   for b in perm[blk.start:blk.end]):
                                blk.perm_ok = perm
                            else:
                                break        # step() raises the fault
                        if blk.loop:
                            iters = ((cycle_limit - self.cycles)
                                     // blk.cycles)
                            if insn_limit is not None:
                                j = ((insn_limit - self.instructions)
                                     // blk.count)
                                if j < iters:
                                    iters = j
                            if iters < 1:
                                break        # budget: step() raises
                            blk.fn(self, regs, memory, iters)
                            continue
                        if (self.cycles + blk.cycles > cycle_limit
                                or (insn_limit is not None
                                    and self.instructions + blk.count
                                    > insn_limit)):
                            break            # budget: step() raises
                        if blk.pure:
                            blk.fn(self, regs, memory)
                            continue
                        try:
                            blk.fn(self, regs, memory)
                        except MpuViolationError as exc:
                            raise CpuFault(
                                FaultKind.MPU_VIOLATION,
                                blk.pc_map[regs[0]],
                                exc.address, exc.kind) from exc
                        except MemoryAccessError as exc:
                            raise CpuFault(
                                FaultKind.BUS_ERROR,
                                blk.pc_map[regs[0]],
                                exc.address, exc.kind) from exc
                        if (self.halted
                                or self._pending_fault is not None
                                or memory._perm_stale
                                or self.trace_hook is not None
                                or memory._observers):
                            break
                    if self.halted:
                        break
            # -- exact per-instruction path --------------------------
            step()
            if self.cycles > cycle_limit:
                raise ExecutionLimitExceeded(
                    f"cycle budget: no halt after "
                    f"{self.cycles - start} cycles "
                    f"({self.instructions - start_insns} instructions) "
                    f"from pc=0x{self.regs.pc:04X}"
                )
            if insn_limit is not None and self.instructions > insn_limit:
                raise ExecutionLimitExceeded(
                    f"instruction budget: no halt after "
                    f"{self.instructions - start_insns} instructions "
                    f"({self.cycles - start} cycles) "
                    f"from pc=0x{self.regs.pc:04X}"
                )
        return self.cycles - start

    # -- superblock compilation and execution -------------------------------
    def _compile_block(self, pc: int) -> Optional[_Block]:
        """Chain decoded thunks from ``pc`` into a superblock, or mark
        ``pc`` uncompilable.  Straight-line only: a jump ends the block
        (inclusive); a call/return/unthunked instruction, an absolute
        operand on a registered I/O port (kernel gates, MPU registers,
        the cycle timer), or a non-executable byte ends it exclusive.
        All fetches run under ``supervisor`` after probing the
        permission bitmap, so speculative compilation has no
        architecturally visible side effects (no MPU violation flags).
        """
        memory = self.memory
        perm = memory._perm           # caller refreshed; never None here
        icache = self._icache
        io_ports = memory.io_addresses()
        steps = []
        pure = True
        loop = False
        cursor = pc
        end = pc
        while len(steps) < _MAX_BLOCK_INSNS:
            if cursor > 0xFFFE or not perm[cursor] & PERM_X:
                break
            page = icache.get(cursor >> 6)
            entry = page.get(cursor) if page is not None else None
            if entry is None:
                try:
                    with memory.supervisor():
                        insn, size = decode(memory.fetch_word, cursor)
                except (DecodeError, MemoryAccessError):
                    break
                insn_cycles = cyc.instruction_cycles(insn)
                handler = self._dispatch[insn.opcode]
                thunk = _specialize(insn)
                icache.setdefault(cursor >> 6, {})[cursor] = \
                    (insn, size, insn_cycles, handler, thunk)
            else:
                insn, size, insn_cycles, handler, thunk = entry
            if thunk is None:         # call/return/rare shape: step()
                break
            last = cursor + size - 1
            if last > 0xFFFF or not perm[last] & PERM_X:
                break
            src, dst = insn.src, insn.dst
            if _hits_io(src, io_ports) or _hits_io(dst, io_ports):
                break                 # gate/MPU/timer port: step()
            next_pc = (cursor + size) & 0xFFFF
            opcode = insn.opcode
            is_jump = opcode in _JUMP_OPCODES
            # PUSH and CALL store through SP even though dst is None
            stores = (opcode is Opcode.PUSH or opcode is Opcode.CALL
                      or (not is_jump and dst is not None
                          and dst.mode is not _M.REGISTER))
            # CALL / RETI / MOV-to-PC redirect control flow: keep them
            # as the block's final step, like jumps
            writes_pc = (opcode is Opcode.CALL or opcode is Opcode.RETI
                         or (dst is not None
                             and dst.mode is _M.REGISTER
                             and dst.register == 0))
            # register-only shapes that never touch memory nor read
            # the deferred PC are eligible for the pure
            # (batch-bookkeeping) executor
            if not is_jump:
                if stores or writes_pc:
                    pure = False
                elif not (dst is None
                          or (dst.mode is _M.REGISTER
                              and src.mode in (_M.REGISTER,
                                               _M.IMMEDIATE))):
                    pure = False
                elif (src is not None and src.mode is _M.REGISTER
                      and src.register == 0):
                    pure = False
            steps.append((cursor, next_pc, thunk, insn_cycles,
                          stores))
            end = cursor + size
            cursor = next_pc
            if is_jump:
                # a pure block whose final jump targets its own start
                # can iterate in place (the generated function loops
                # until the jump falls through or the budget share is
                # spent)
                loop = (pure
                        and (next_pc + 2 * insn.offset) & 0xFFFF == pc)
                break
            if writes_pc or next_pc < pc:    # redirect / wrapped
                break
        if not steps:
            # nothing compilable at this pc (unthunked shape, I/O
            # port, or permission edge); remember the verdict and
            # index it so code writes re-enable compilation.  Even a
            # single-instruction block beats the step() fallback: the
            # tight dispatch loop skips the per-step guard checks.
            self._no_block.add(pc)
            for page in range(pc >> 6, (max(end, pc + 1) - 1 >> 6) + 1):
                self._block_pages.setdefault(page, set()).add(pc)
            return None
        blk = _Block(pc, end, steps[-1][1], tuple(steps), pure, loop)
        blk.perm_ok = perm     # every byte was execute-probed above
        self._blocks[pc] = blk
        for page in range(pc >> 6, (end - 1 >> 6) + 1):
            self._block_pages.setdefault(page, set()).add(pc)
        return blk

    # -- per-opcode semantics ------------------------------------------------
    def _execute(self, insn: Instruction) -> None:
        """Dispatch one decoded instruction (tests / tools entry)."""
        self._dispatch[insn.opcode](insn)

    # jumps -------------------------------------------------------------------
    def _op_jmp(self, insn: Instruction) -> None:
        r = self.regs
        r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jne(self, insn: Instruction) -> None:
        r = self.regs
        if not r.sr & SR.Z:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jeq(self, insn: Instruction) -> None:
        r = self.regs
        if r.sr & SR.Z:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jnc(self, insn: Instruction) -> None:
        r = self.regs
        if not r.sr & SR.C:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jc(self, insn: Instruction) -> None:
        r = self.regs
        if r.sr & SR.C:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jn(self, insn: Instruction) -> None:
        r = self.regs
        if r.sr & SR.N:
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jge(self, insn: Instruction) -> None:
        r = self.regs
        sr = r.sr
        if bool(sr & SR.N) == bool(sr & SR.V):
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    def _op_jl(self, insn: Instruction) -> None:
        r = self.regs
        sr = r.sr
        if bool(sr & SR.N) != bool(sr & SR.V):
            r.pc = (r.pc + 2 * insn.offset) & 0xFFFF

    # format II ----------------------------------------------------------------
    def _op_reti(self, insn: Instruction) -> None:
        r = self.regs
        r.sr = self._pop()
        r.pc = self._pop()

    def _op_push(self, insn: Instruction) -> None:
        byte = insn.byte
        value = self._eval_source(insn.src, byte)
        # PUSH.B still decrements SP by 2 (hardware behaviour).
        self._push(value & (0xFF if byte else 0xFFFF))

    def _op_call(self, insn: Instruction) -> None:
        r = self.regs
        if insn.src.mode in (_M.REGISTER, _M.IMMEDIATE):
            target = self._eval_source(insn.src, byte=False)
        else:
            target = self._load(self._effective_address(insn.src),
                                byte=False)
            if insn.src.mode is _M.AUTOINCREMENT:
                r.write(insn.src.register,
                        r.read(insn.src.register) + 2)
        self._push(r.pc)
        r.pc = target

    def _eval_rmw(self, insn: Instruction) -> Tuple[int, int, int]:
        """RRA / RRC / SWPB / SXT operand: value + writeback target."""
        byte = insn.byte
        if insn.src.mode is _M.REGISTER:
            register = insn.src.register
            return self._read_reg(register, byte), register, -1
        address = self._effective_address(insn.src)
        value = self._load(address, byte)
        if insn.src.mode is _M.AUTOINCREMENT:
            r = self.regs
            step = 1 if byte else 2
            r.write(insn.src.register, r.read(insn.src.register) + step)
        return value, -1, address

    def _op_rra(self, insn: Instruction) -> None:
        byte = insn.byte
        value, register, address = self._eval_rmw(insn)
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        out = (value >> 1) | (value & sign)
        r = self.regs
        r.set_flag(SR.C, bool(value & 1))
        r.set_flag(SR.V, False)
        r.set_nz(out, byte)
        self._store(register, address, out & mask, byte)

    def _op_rrc(self, insn: Instruction) -> None:
        byte = insn.byte
        value, register, address = self._eval_rmw(insn)
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        r = self.regs
        out = (value >> 1) | (sign if r.carry else 0)
        r.set_flag(SR.C, bool(value & 1))
        r.set_flag(SR.V, False)
        r.set_nz(out, byte)
        self._store(register, address, out & mask, byte)

    def _op_swpb(self, insn: Instruction) -> None:
        value, register, address = self._eval_rmw(insn)
        out = ((value << 8) | (value >> 8)) & 0xFFFF
        self._store(register, address, out, insn.byte)

    def _op_sxt(self, insn: Instruction) -> None:
        value, register, address = self._eval_rmw(insn)
        out = value & 0xFF
        if out & 0x80:
            out |= 0xFF00
        r = self.regs
        r.set_nz(out, byte=False)
        r.set_flag(SR.C, out != 0)
        r.set_flag(SR.V, False)
        self._store(register, address, out, insn.byte)

    # format I -----------------------------------------------------------------
    def _op_mov(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        op = insn.dst
        if op.mode is _M.REGISTER:
            # register fast path: no writeback bookkeeping at all
            self.regs.write(op.register,
                            src & 0xFF if byte else src & 0xFFFF)
            return
        address = self._effective_address(op)
        if byte:
            self.memory.write_byte(address, src)
        else:
            self.memory.write_word(address, src)

    def _op_add(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = self._flags_add(src, dst, src + dst, byte)
        self._store(register, address, out, byte)

    def _op_addc(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = self._flags_add(src, dst, src + dst + int(self.regs.carry),
                              byte)
        self._store(register, address, out, byte)

    def _op_sub(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = self._flags_sub(src, dst, 1, byte)
        self._store(register, address, out, byte)

    def _op_subc(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = self._flags_sub(src, dst, int(self.regs.carry), byte)
        self._store(register, address, out, byte)

    def _op_cmp(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, _register, _address = self._eval_dest(insn.dst, byte, True)
        self._flags_sub(src, dst, 1, byte)

    def _op_dadd(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        r = self.regs
        out, carry = self._dadd(src, dst, int(r.carry), byte)
        r.set_flag(SR.C, bool(carry))
        r.set_nz(out, byte)
        self._store(register, address, out, byte)

    def _op_bit(self, insn: Instruction) -> None:
        byte = insn.byte
        src = self._eval_source(insn.src, byte)
        dst, _register, _address = self._eval_dest(insn.dst, byte, True)
        self._logic_flags(src & dst, byte)

    def _op_bic(self, insn: Instruction) -> None:
        byte = insn.byte
        mask = 0xFF if byte else 0xFFFF
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        self._store(register, address, dst & ~src & mask, byte)

    def _op_bis(self, insn: Instruction) -> None:
        byte = insn.byte
        mask = 0xFF if byte else 0xFFFF
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        self._store(register, address, (dst | src) & mask, byte)

    def _op_xor(self, insn: Instruction) -> None:
        byte = insn.byte
        mask = 0xFF if byte else 0xFFFF
        sign = 0x80 if byte else 0x8000
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = (dst ^ src) & mask
        self._logic_flags(out, byte,
                          overflow=bool(src & sign) and bool(dst & sign))
        self._store(register, address, out, byte)

    def _op_and(self, insn: Instruction) -> None:
        byte = insn.byte
        mask = 0xFF if byte else 0xFFFF
        src = self._eval_source(insn.src, byte)
        dst, register, address = self._eval_dest(insn.dst, byte, True)
        out = dst & src & mask
        self._logic_flags(out, byte)
        self._store(register, address, out, byte)


# -- specialized execution thunks -------------------------------------------
#
# For the hottest instruction shapes — ALU ops on registers/immediates,
# all jumps, and the dominant MOV/ADD memory forms — the icache entry
# carries a closure that performs the whole instruction on the raw
# register list (and the bus, for the memory forms): no Operand
# re-interpretation, no property lookups, no flag-helper calls.
# Shapes with a PC/SP/SR/CG2 destination or a rare opcode keep
# ``thunk=None`` and go through the generic per-opcode handler;
# semantics are identical either way, including fault behaviour
# (memory thunks run inside the same try/except in ``step``).

_SRM = 0xFEF8            # SR with C, Z, N, V cleared


def _spec_jump(opcode: Opcode, offset: int):
    d = 2 * offset        # applied after the pc += size in step()
    if opcode is Opcode.JMP:
        def thunk(r, m, d=d):
            r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JNE:
        def thunk(r, m, d=d):
            if not r[2] & 2:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JEQ:
        def thunk(r, m, d=d):
            if r[2] & 2:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JNC:
        def thunk(r, m, d=d):
            if not r[2] & 1:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JC:
        def thunk(r, m, d=d):
            if r[2] & 1:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JN:
        def thunk(r, m, d=d):
            if r[2] & 4:
                r[0] = (r[0] + d) & 0xFFFF
    elif opcode is Opcode.JGE:
        def thunk(r, m, d=d):
            sr = r[2]
            if not ((sr >> 2) ^ (sr >> 8)) & 1:     # N == V
                r[0] = (r[0] + d) & 0xFFFF
    else:                                           # JL
        def thunk(r, m, d=d):
            sr = r[2]
            if ((sr >> 2) ^ (sr >> 8)) & 1:         # N != V
                r[0] = (r[0] + d) & 0xFFFF
    return thunk


def _th_mov(s, k, d, mask, sign):
    if s < 0:
        def thunk(r, m, k=k, d=d):
            r[d] = k
    else:
        def thunk(r, m, s=s, d=d, mask=mask):
            r[d] = r[s] & mask
    return thunk


def _make_addsub(subtract: bool, use_carry: bool, store: bool):
    """ADD/ADDC/SUB/SUBC/CMP share one arithmetic skeleton."""
    def factory(s, k, d, mask, sign):
        def thunk(r, m, s=s, k=k, d=d, mask=mask, sign=sign):
            if s >= 0:
                k = r[s] & mask
            dst = r[d] & mask
            if subtract:
                result = dst + ((~k) & mask) \
                    + ((r[2] & 1) if use_carry else 1)
                ovf = (dst ^ k) & (dst ^ (result & mask)) & sign
            else:
                result = dst + k + ((r[2] & 1) if use_carry else 0)
                ovf = ~(k ^ dst) & (k ^ (result & mask)) & sign
            out = result & mask
            sr = r[2] & _SRM
            if result > mask:
                sr |= 1                              # C
            if out & sign:
                sr |= 4                              # N
            elif out == 0:
                sr |= 2                              # Z
            if ovf:
                sr |= 0x100                          # V
            r[2] = sr
            if store:
                r[d] = out
        return thunk
    return factory


def _make_logic(op: str, store: bool):
    """AND/BIT/XOR (flag-setting) and BIS/BIC (flag-preserving)."""
    def factory(s, k, d, mask, sign):
        def thunk(r, m, s=s, k=k, d=d, mask=mask, sign=sign):
            if s >= 0:
                k = r[s] & mask
            dst = r[d] & mask
            if op == "and":
                out = dst & k
            elif op == "xor":
                out = dst ^ k
            elif op == "bis":
                r[d] = dst | k
                return
            else:                                    # bic
                r[d] = dst & ((~k) & mask)
                return
            sr = r[2] & _SRM
            if out:
                sr |= 1                              # C = result != 0
            if out & sign:
                sr |= 4
            elif out == 0:
                sr |= 2
            if op == "xor" and k & sign and dst & sign:
                sr |= 0x100
            r[2] = sr
            if store:
                r[d] = out
        return thunk
    return factory


_FMT1_FACTORIES = {
    Opcode.MOV: _th_mov,
    Opcode.ADD: _make_addsub(subtract=False, use_carry=False, store=True),
    Opcode.ADDC: _make_addsub(subtract=False, use_carry=True, store=True),
    Opcode.SUB: _make_addsub(subtract=True, use_carry=False, store=True),
    Opcode.SUBC: _make_addsub(subtract=True, use_carry=True, store=True),
    Opcode.CMP: _make_addsub(subtract=True, use_carry=False, store=False),
    Opcode.AND: _make_logic("and", store=True),
    Opcode.BIT: _make_logic("and", store=False),
    Opcode.XOR: _make_logic("xor", store=True),
    Opcode.BIS: _make_logic("bis", store=True),
    Opcode.BIC: _make_logic("bic", store=True),
}


def _spec_format2(insn: Instruction):
    opcode = insn.opcode
    src = insn.src
    if src is None:
        return None
    if opcode is Opcode.PUSH:
        # SP is decremented *before* the store (hardware order), so a
        # faulting push leaves SP moved — same as the generic handler.
        # PUSH.B still writes a word with the value masked to 8 bits.
        mask = 0xFF if insn.byte else 0xFFFF
        if src.mode is _M.REGISTER:
            s = src.register

            def thunk(r, m, s=s, mask=mask):
                r[1] = sp = (r[1] - 2) & 0xFFFF
                m.write_word(sp, r[s] & mask)
            return thunk
        if src.mode is _M.IMMEDIATE:
            k = src.value & mask

            def thunk(r, m, k=k):
                r[1] = sp = (r[1] - 2) & 0xFFFF
                m.write_word(sp, k)
            return thunk
        return None
    if opcode is Opcode.CALL:
        # target is evaluated before the push; PC writes are forced
        # even (RegisterFile semantics)
        if src.mode is _M.IMMEDIATE:
            t = src.value & 0xFFFE

            def thunk(r, m, t=t):
                r[1] = sp = (r[1] - 2) & 0xFFFF
                m.write_word(sp, r[0])
                r[0] = t
            return thunk
        if src.mode is _M.REGISTER:
            s = src.register

            def thunk(r, m, s=s):
                t = r[s] & 0xFFFE
                r[1] = sp = (r[1] - 2) & 0xFFFF
                m.write_word(sp, r[0])
                r[0] = t
            return thunk
        return None
    if src.mode is not _M.REGISTER or src.register < 4:
        return None
    byte = insn.byte
    mask = 0xFF if byte else 0xFFFF
    sign = 0x80 if byte else 0x8000
    d = src.register
    if opcode is Opcode.RRA:
        def thunk(r, m, d=d, mask=mask, sign=sign):
            v = r[d] & mask
            out = (v >> 1) | (v & sign)
            sr = r[2] & _SRM
            if v & 1:
                sr |= 1
            if out & sign:
                sr |= 4
            elif out == 0:
                sr |= 2
            r[2] = sr
            r[d] = out
        return thunk
    if opcode is Opcode.RRC:
        def thunk(r, m, d=d, mask=mask, sign=sign):
            v = r[d] & mask
            out = (v >> 1) | (sign if r[2] & 1 else 0)
            sr = r[2] & _SRM
            if v & 1:
                sr |= 1
            if out & sign:
                sr |= 4
            elif out == 0:
                sr |= 2
            r[2] = sr
            r[d] = out
        return thunk
    if opcode is Opcode.SWPB and not byte:
        def thunk(r, m, d=d):
            v = r[d]
            r[d] = ((v << 8) | (v >> 8)) & 0xFFFF
        return thunk
    if opcode is Opcode.SXT and not byte:
        def thunk(r, m, d=d):
            out = r[d] & 0xFF
            if out & 0x80:
                out |= 0xFF00
            sr = r[2] & _SRM
            if out:
                sr |= 1
            if out & 0x8000:
                sr |= 4
            elif out == 0:
                sr |= 2
            r[2] = sr
            r[d] = out
        return thunk
    return None


_JUMP_OPCODES = frozenset((
    Opcode.JMP, Opcode.JNE, Opcode.JEQ, Opcode.JNC,
    Opcode.JC, Opcode.JN, Opcode.JGE, Opcode.JL,
))


def _hits_io(op: Optional[Operand], io_ports: frozenset) -> bool:
    """Does this operand statically address a registered I/O port?
    Used by the superblock compiler to terminate blocks at kernel
    gates, MPU registers, and timer reads — those instructions always
    execute through ``step()``.  (I/O is word-registered, so compare
    the word-aligned address, matching the bus's dispatch.)"""
    return (op is not None
            and (op.mode is _M.ABSOLUTE or op.mode is _M.SYMBOLIC)
            and (op.value & 0xFFFE) in io_ports)


def _spec_mov_mem_to_reg(src: Operand, d: int, byte: bool):
    """MOV with a memory-mode source into a general register."""
    sm = src.mode
    if sm is _M.INDEXED:
        s, off = src.register, src.value
        if byte:
            def thunk(r, m, s=s, off=off, d=d):
                r[d] = m.read_byte((r[s] + off) & 0xFFFF)
        else:
            def thunk(r, m, s=s, off=off, d=d):
                r[d] = m.read_word((r[s] + off) & 0xFFFF)
        return thunk
    if sm is _M.ABSOLUTE or sm is _M.SYMBOLIC:
        a = src.value & 0xFFFF
        if byte:
            def thunk(r, m, a=a, d=d):
                r[d] = m.read_byte(a)
        else:
            def thunk(r, m, a=a, d=d):
                r[d] = m.read_word(a)
        return thunk
    if sm is _M.INDIRECT:
        s = src.register
        if byte:
            def thunk(r, m, s=s, d=d):
                r[d] = m.read_byte(r[s])
        else:
            def thunk(r, m, s=s, d=d):
                r[d] = m.read_word(r[s])
        return thunk
    if sm is _M.AUTOINCREMENT and src.register >= 1:
        # read first, increment second — a faulting read must leave
        # the pointer untouched, exactly like the generic path.
        # Register 1 (SP) is allowed: POP Rn is ``MOV @SP+, Rn`` and
        # an even SP stays even under +2.  (R0 autoincrement decodes
        # as IMMEDIATE, R2/R3 as constant-generator immediates, so
        # they never reach this shape.)
        s = src.register
        if byte:
            def thunk(r, m, s=s, d=d):
                a = r[s]
                v = m.read_byte(a)
                r[s] = (a + 1) & 0xFFFF
                r[d] = v
        else:
            def thunk(r, m, s=s, d=d):
                a = r[s]
                v = m.read_word(a)
                r[s] = (a + 2) & 0xFFFF
                r[d] = v
        return thunk
    return None


def _spec_mov_to_mem(s: int, k: int, dst: Operand, byte: bool):
    """MOV from a register (s >= 0) or immediate into memory."""
    dm = dst.mode
    if dm is _M.INDEXED:
        dreg, off = dst.register, dst.value
        if byte:
            def thunk(r, m, s=s, k=k, dreg=dreg, off=off):
                m.write_byte((r[dreg] + off) & 0xFFFF,
                             (r[s] & 0xFF) if s >= 0 else k)
        else:
            def thunk(r, m, s=s, k=k, dreg=dreg, off=off):
                m.write_word((r[dreg] + off) & 0xFFFF,
                             r[s] if s >= 0 else k)
        return thunk
    if dm is _M.ABSOLUTE or dm is _M.SYMBOLIC:
        a = dst.value & 0xFFFF
        if byte:
            def thunk(r, m, s=s, k=k, a=a):
                m.write_byte(a, (r[s] & 0xFF) if s >= 0 else k)
        else:
            def thunk(r, m, s=s, k=k, a=a):
                m.write_word(a, r[s] if s >= 0 else k)
        return thunk
    return None


def _spec_add_to_mem(s: int, k: int, dst: Operand):
    """Word ADD from a register/immediate into indexed memory."""
    if dst.mode is not _M.INDEXED:
        return None
    dreg, off = dst.register, dst.value

    def thunk(r, m, s=s, k=k, dreg=dreg, off=off):
        a = (r[dreg] + off) & 0xFFFF
        if s >= 0:
            k = r[s]
        dstv = m.read_word(a)
        result = dstv + k
        out = result & 0xFFFF
        sr = r[2] & _SRM
        if result > 0xFFFF:
            sr |= 1
        if out & 0x8000:
            sr |= 4
        elif out == 0:
            sr |= 2
        if ~(k ^ dstv) & (k ^ out) & 0x8000:
            sr |= 0x100
        r[2] = sr
        m.write_word(a, out)
    return thunk


def _spec_mov_to_pc(src: Operand):
    """Word MOV into PC: BR #imm / BR Rn / RET (``MOV @SP+, PC``).

    PC writes are forced even; the autoincrement form reads before it
    bumps the pointer, so a faulting pop leaves SP untouched — both
    matching the generic handler exactly.
    """
    sm = src.mode
    if sm is _M.IMMEDIATE:
        t = src.value & 0xFFFE

        def thunk(r, m, t=t):
            r[0] = t
        return thunk
    if sm is _M.REGISTER:
        s = src.register

        def thunk(r, m, s=s):
            r[0] = r[s] & 0xFFFE
        return thunk
    if sm is _M.AUTOINCREMENT:
        s = src.register

        def thunk(r, m, s=s):
            a = r[s]
            v = m.read_word(a)
            r[s] = (a + 2) & 0xFFFF
            r[0] = v & 0xFFFE
        return thunk
    return None


def _specialize(insn: Instruction):
    """Return a fast closure ``thunk(regs_list, memory)`` for ``insn``,
    or None to use the generic per-opcode handler."""
    opcode = insn.opcode
    if opcode in _JUMP_OPCODES:
        return _spec_jump(opcode, insn.offset)
    dst = insn.dst
    if dst is None:
        return _spec_format2(insn)
    src = insn.src
    byte = insn.byte
    mask = 0xFF if byte else 0xFFFF
    if src.mode is _M.REGISTER:
        s, k = src.register, 0
    elif src.mode is _M.IMMEDIATE:
        s, k = -1, src.value & mask
    else:
        s, k = -2, 0                                  # memory source
    if dst.mode is _M.REGISTER:
        if dst.register < 4:                          # PC/SP/SR/CG2
            if opcode is Opcode.MOV and not byte and dst.register == 0:
                return _spec_mov_to_pc(src)           # BR / RET shapes
            if (dst.register == 2 and not byte and s != -2
                    and (opcode is Opcode.BIC or opcode is Opcode.BIS)):
                # CLRC/SETC-style flag twiddling: BIC/BIS don't update
                # flags, so the SR write is the entire effect
                if opcode is Opcode.BIC:
                    if s < 0:
                        nk = (~k) & 0xFFFF

                        def thunk(r, m, nk=nk):
                            r[2] = r[2] & nk
                    else:
                        def thunk(r, m, s=s):
                            r[2] = r[2] & ~r[s] & 0xFFFF
                else:
                    if s < 0:
                        def thunk(r, m, k=k):
                            r[2] = r[2] | k
                    else:
                        def thunk(r, m, s=s):
                            r[2] = (r[2] | r[s]) & 0xFFFF
                return thunk
            return None
        if s == -2:
            if opcode is Opcode.MOV:
                return _spec_mov_mem_to_reg(src, dst.register, byte)
            return None
        factory = _FMT1_FACTORIES.get(opcode)
        if factory is None:                           # DADD
            return None
        return factory(s, k, d=dst.register, mask=mask,
                       sign=0x80 if byte else 0x8000)
    # memory destination
    if s == -2:
        return None                                   # mem -> mem
    if opcode is Opcode.MOV:
        return _spec_mov_to_mem(s, k, dst, byte)
    if opcode is Opcode.ADD and not byte:
        return _spec_add_to_mem(s, k, dst)
    return None


#: Opcode -> Cpu handler method name; resolved to bound methods once
#: per instance in ``Cpu.__init__`` (the precomputed dispatch table).
_HANDLER_NAMES: Dict[Opcode, str] = {
    Opcode.JMP: "_op_jmp", Opcode.JNE: "_op_jne",
    Opcode.JEQ: "_op_jeq", Opcode.JNC: "_op_jnc",
    Opcode.JC: "_op_jc", Opcode.JN: "_op_jn",
    Opcode.JGE: "_op_jge", Opcode.JL: "_op_jl",
    Opcode.RETI: "_op_reti", Opcode.PUSH: "_op_push",
    Opcode.CALL: "_op_call", Opcode.RRA: "_op_rra",
    Opcode.RRC: "_op_rrc", Opcode.SWPB: "_op_swpb",
    Opcode.SXT: "_op_sxt",
    Opcode.MOV: "_op_mov", Opcode.ADD: "_op_add",
    Opcode.ADDC: "_op_addc", Opcode.SUB: "_op_sub",
    Opcode.SUBC: "_op_subc", Opcode.CMP: "_op_cmp",
    Opcode.DADD: "_op_dadd", Opcode.BIT: "_op_bit",
    Opcode.BIC: "_op_bic", Opcode.BIS: "_op_bis",
    Opcode.XOR: "_op_xor", Opcode.AND: "_op_and",
}
