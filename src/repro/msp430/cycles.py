"""CPU cycle counts per instruction format and addressing mode.

The tables follow the MSP430 family user's guide (format I/II cycle
tables).  The FR-series CPU executes MOV/BIT/CMP with a memory
destination in one fewer cycle; we model that refinement because the
paper's overhead numbers come from exactly such short sequences.

FRAM wait states are *not* modeled (see DESIGN.md, fidelity notes): the
counts here are the architectural CPU cycles, which preserve the relative
costs the paper reports.
"""

from __future__ import annotations

from typing import Optional

from repro.msp430.isa import (
    AddressingMode,
    Instruction,
    Opcode,
    Operand,
)
from repro.msp430.registers import Reg

_M = AddressingMode

# Format I: (src mode) -> (dst is register, dst is PC, dst is memory).
_FORMAT1_CYCLES = {
    _M.REGISTER:      (1, 2, 4),
    _M.INDIRECT:      (2, 2, 5),
    _M.AUTOINCREMENT: (2, 3, 5),
    _M.IMMEDIATE:     (2, 3, 5),
    _M.INDEXED:       (3, 3, 6),
    _M.SYMBOLIC:      (3, 3, 6),
    _M.ABSOLUTE:      (3, 3, 6),
}

# Format II single-operand tables: mode -> cycles.
_SHIFT_CYCLES = {  # RRA, RRC, SWPB, SXT
    _M.REGISTER: 1,
    _M.INDIRECT: 3,
    _M.AUTOINCREMENT: 3,
    _M.INDEXED: 4,
    _M.SYMBOLIC: 4,
    _M.ABSOLUTE: 4,
}

_PUSH_CYCLES = {
    _M.REGISTER: 3,
    _M.INDIRECT: 4,
    _M.AUTOINCREMENT: 5,
    _M.IMMEDIATE: 4,
    _M.INDEXED: 5,
    _M.SYMBOLIC: 5,
    _M.ABSOLUTE: 5,
}

_CALL_CYCLES = {
    _M.REGISTER: 4,
    _M.INDIRECT: 4,
    _M.AUTOINCREMENT: 5,
    _M.IMMEDIATE: 5,
    _M.INDEXED: 5,
    _M.SYMBOLIC: 5,
    _M.ABSOLUTE: 5,
}

JUMP_CYCLES = 2          # taken or not
RETI_CYCLES = 5
INTERRUPT_ENTRY_CYCLES = 6

# MOV/BIT/CMP to a memory destination save one cycle on this CPU family.
_ONE_LESS_TO_MEMORY = frozenset({Opcode.MOV, Opcode.BIT, Opcode.CMP})

# Immediates the constant generators provide without an extension word.
# They execute with register-source timing (no extra fetch).
_CG_VALUES = frozenset({0, 1, 2, 4, 8, 0xFFFF})


def _source_mode(op: Operand) -> AddressingMode:
    """Addressing mode for timing purposes: constant-generator
    immediates behave like register sources."""
    if op.mode is _M.IMMEDIATE and op.symbol is None \
            and (op.value & 0xFFFF) in _CG_VALUES:
        return _M.REGISTER
    return op.mode


def _dst_column(dst: Operand) -> int:
    """Column index into the format-I table for this destination."""
    if dst.mode is _M.REGISTER:
        return 1 if dst.register == Reg.PC else 0
    return 2


def instruction_cycles(insn: Instruction) -> int:
    """Architectural cycle count for one executed instruction."""
    op = insn.opcode
    if op.is_jump:
        return JUMP_CYCLES
    if op is Opcode.RETI:
        return RETI_CYCLES
    if op is Opcode.PUSH:
        return _PUSH_CYCLES[insn.src.mode]
    if op is Opcode.CALL:
        return _CALL_CYCLES[insn.src.mode]
    if op.is_format2:
        return _SHIFT_CYCLES[insn.src.mode]

    column = _dst_column(insn.dst)
    cycles = _FORMAT1_CYCLES[_source_mode(insn.src)][column]
    if column == 2 and op in _ONE_LESS_TO_MEMORY:
        cycles -= 1
    return cycles


def sequence_cycles(instructions, taken_jumps: Optional[int] = None) -> int:
    """Sum of cycle counts for a straight-line sequence.

    Useful for static cost estimates (the profiler uses it); jumps cost
    the same taken or not, so ``taken_jumps`` exists only for clarity at
    call sites and is ignored.
    """
    return sum(instruction_cycles(i) for i in instructions)
