"""Simulated TI MSP430FR5969-class microcontroller.

The paper's prototype runs on an MSP430FR5969: a 16 MHz, 16-bit MCU with
2 KB SRAM, ~48 KB FRAM, and the limited FRAM-family Memory Protection
Unit.  This package provides a cycle-counted simulator of that part:

* :mod:`repro.msp430.registers` -- register file and status flags
* :mod:`repro.msp430.memory`    -- 64 KB bus with the FR5969 region map
* :mod:`repro.msp430.mpu`       -- the 3-segment FRAM MPU
* :mod:`repro.msp430.isa`       -- instruction and operand model
* :mod:`repro.msp430.encoding`  -- binary instruction encoding
* :mod:`repro.msp430.decoder`   -- binary decoding
* :mod:`repro.msp430.cycles`    -- per-addressing-mode CPU cycle table
* :mod:`repro.msp430.cpu`       -- fetch/decode/execute engine
* :mod:`repro.msp430.timer`     -- Timer_A-style measurement timer
"""

from repro.msp430.registers import RegisterFile, Reg, SR
from repro.msp430.memory import Memory, MemoryMap, Region
from repro.msp430.mpu import Mpu, MpuConfig, SegmentPermissions
from repro.msp430.isa import (
    AddressingMode,
    Operand,
    Instruction,
    Opcode,
    reg,
    imm,
    indexed,
    absolute,
    symbolic,
    indirect,
    autoincrement,
)
from repro.msp430.cpu import Cpu, CpuFault, FaultKind
from repro.msp430.timer import CycleTimer

__all__ = [
    "RegisterFile", "Reg", "SR",
    "Memory", "MemoryMap", "Region",
    "Mpu", "MpuConfig", "SegmentPermissions",
    "AddressingMode", "Operand", "Instruction", "Opcode",
    "reg", "imm", "indexed", "absolute", "symbolic", "indirect",
    "autoincrement",
    "Cpu", "CpuFault", "FaultKind",
    "CycleTimer",
]
