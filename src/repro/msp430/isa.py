"""Instruction-set model for the 16-bit MSP430 CPU core.

Three instruction formats exist:

* **Format I** (double operand): ``MOV``, ``ADD``, ``ADDC``, ``SUBC``,
  ``SUB``, ``CMP``, ``DADD``, ``BIT``, ``BIC``, ``BIS``, ``XOR``, ``AND``.
* **Format II** (single operand): ``RRC``, ``SWPB``, ``RRA``, ``SXT``,
  ``PUSH``, ``CALL``, ``RETI``.
* **Jumps**: ``JNE/JNZ``, ``JEQ/JZ``, ``JNC/JLO``, ``JC/JHS``, ``JN``,
  ``JGE``, ``JL``, ``JMP`` with a signed 10-bit word offset.

Everything else (``RET``, ``POP``, ``BR``, ``NOP``, ``CLR``, ``INC``, ...)
is an *emulated* instruction: an assembler-level alias that expands to one
of the above, usually exploiting the constant generators.  The assembler in
:mod:`repro.asm.assembler` performs that expansion; the core ISA model here
only knows the real formats.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import EncodingError
from repro.msp430.registers import Reg


class Opcode(enum.Enum):
    """All genuine (non-emulated) MSP430 instructions."""

    # Format I -- value is the 4-bit major opcode.
    MOV = 0x4
    ADD = 0x5
    ADDC = 0x6
    SUBC = 0x7
    SUB = 0x8
    CMP = 0x9
    DADD = 0xA
    BIT = 0xB
    BIC = 0xC
    BIS = 0xD
    XOR = 0xE
    AND = 0xF

    # Format II -- value is 0x1000 | (3-bit opcode << 7).
    RRC = 0x1000
    SWPB = 0x1080
    RRA = 0x1100
    SXT = 0x1180
    PUSH = 0x1200
    CALL = 0x1280
    RETI = 0x1300

    # Jumps -- value is 0x2000 | (3-bit condition << 10).
    JNE = 0x2000
    JEQ = 0x2400
    JNC = 0x2800
    JC = 0x2C00
    JN = 0x3000
    JGE = 0x3400
    JL = 0x3800
    JMP = 0x3C00

    @property
    def is_format1(self) -> bool:
        return self.value <= 0xF

    @property
    def is_format2(self) -> bool:
        return 0x1000 <= self.value < 0x2000

    @property
    def is_jump(self) -> bool:
        return self.value >= 0x2000


FORMAT1_OPCODES = frozenset(op for op in Opcode if op.is_format1)
FORMAT2_OPCODES = frozenset(op for op in Opcode if op.is_format2)
JUMP_OPCODES = frozenset(op for op in Opcode if op.is_jump)

# Format-II instructions that never write their operand back.
NO_WRITEBACK = frozenset({Opcode.PUSH, Opcode.CALL, Opcode.RETI})
# Format-I instructions that only set flags (no destination write).
FLAG_ONLY = frozenset({Opcode.CMP, Opcode.BIT})


class AddressingMode(enum.Enum):
    """The seven source / four destination addressing modes.

    ``SYMBOLIC`` (``ADDR``, i.e. ``X(PC)``) and ``ABSOLUTE`` (``&ADDR``)
    and ``IMMEDIATE`` (``#N``) are encodings of indexed / autoincrement
    modes on PC/SR, but it is far clearer to model them distinctly.
    """

    REGISTER = "Rn"
    INDEXED = "X(Rn)"
    SYMBOLIC = "ADDR"
    ABSOLUTE = "&ADDR"
    INDIRECT = "@Rn"
    AUTOINCREMENT = "@Rn+"
    IMMEDIATE = "#N"


# Modes legal as a Format-I destination (Ad is a single bit).
DEST_MODES = frozenset({
    AddressingMode.REGISTER,
    AddressingMode.INDEXED,
    AddressingMode.SYMBOLIC,
    AddressingMode.ABSOLUTE,
})

# Immediates encodable via the constant generators (no extension word).
CG_CONSTANTS = frozenset({0, 1, 2, 4, 8, 0xFFFF, -1})


@dataclass(frozen=True)
class Operand:
    """One instruction operand.

    ``register`` is meaningful for register-relative modes; ``value``
    holds the index offset, absolute address, symbolic target address, or
    immediate constant.  ``symbol`` optionally names an unresolved symbol
    whose address will be patched into ``value`` by the linker.
    """

    mode: AddressingMode
    register: int = 0
    value: int = 0
    symbol: Optional[str] = None

    def needs_extension_word(self, is_source: bool = True) -> bool:
        """Does this operand occupy an extra instruction word?"""
        m = self.mode
        if m in (AddressingMode.INDEXED, AddressingMode.SYMBOLIC,
                 AddressingMode.ABSOLUTE):
            return True
        if m is AddressingMode.IMMEDIATE:
            # Constant-generator values encode without an extension word,
            # but only when the operand is a source and has no relocation.
            if not is_source:
                raise EncodingError("immediate cannot be a destination")
            if self.symbol is not None:
                return True
            return (self.value & 0xFFFF if self.value >= 0 else self.value) \
                not in _cg_values()
        return False

    def render(self) -> str:
        m = self.mode
        if m is AddressingMode.REGISTER:
            return Reg.name(self.register)
        if m is AddressingMode.INDEXED:
            base = self.symbol if self.symbol else str(_signed(self.value))
            return f"{base}({Reg.name(self.register)})"
        if m is AddressingMode.SYMBOLIC:
            return self.symbol if self.symbol else f"0x{self.value:04X}"
        if m is AddressingMode.ABSOLUTE:
            inner = self.symbol if self.symbol else f"0x{self.value:04X}"
            return f"&{inner}"
        if m is AddressingMode.INDIRECT:
            return f"@{Reg.name(self.register)}"
        if m is AddressingMode.AUTOINCREMENT:
            return f"@{Reg.name(self.register)}+"
        inner = self.symbol if self.symbol else str(_signed(self.value))
        return f"#{inner}"


def _cg_values() -> frozenset:
    return frozenset({0, 1, 2, 4, 8, 0xFFFF})


def _signed(v: int) -> int:
    v &= 0xFFFF
    return v - 0x10000 if v & 0x8000 else v


# -- operand constructors -------------------------------------------------

def reg(n: int) -> Operand:
    """Register direct: ``Rn``."""
    return Operand(AddressingMode.REGISTER, register=n)


def imm(value: int, symbol: Optional[str] = None) -> Operand:
    """Immediate: ``#N``."""
    return Operand(AddressingMode.IMMEDIATE, value=value & 0xFFFF
                   if symbol is None else value, symbol=symbol)


def indexed(offset: int, base: int, symbol: Optional[str] = None) -> Operand:
    """Indexed: ``X(Rn)``."""
    return Operand(AddressingMode.INDEXED, register=base,
                   value=offset & 0xFFFF, symbol=symbol)


def symbolic(address: int, symbol: Optional[str] = None) -> Operand:
    """Symbolic (PC-relative encoded): ``ADDR``."""
    return Operand(AddressingMode.SYMBOLIC, register=Reg.PC,
                   value=address & 0xFFFF, symbol=symbol)


def absolute(address: int, symbol: Optional[str] = None) -> Operand:
    """Absolute: ``&ADDR``."""
    return Operand(AddressingMode.ABSOLUTE, register=Reg.SR,
                   value=address & 0xFFFF, symbol=symbol)


def indirect(base: int) -> Operand:
    """Register indirect: ``@Rn``."""
    return Operand(AddressingMode.INDIRECT, register=base)


def autoincrement(base: int) -> Operand:
    """Register indirect with autoincrement: ``@Rn+``."""
    return Operand(AddressingMode.AUTOINCREMENT, register=base)


@dataclass(frozen=True)
class Instruction:
    """A decoded / to-be-encoded instruction.

    For jumps, ``offset`` is the signed word offset (target = PC + 2 +
    2*offset) and ``symbol`` optionally names the label it came from.
    """

    opcode: Opcode
    byte: bool = False
    src: Optional[Operand] = None
    dst: Optional[Operand] = None
    offset: int = 0
    symbol: Optional[str] = None

    def __post_init__(self) -> None:
        op = self.opcode
        if op.is_format1:
            if self.src is None or self.dst is None:
                raise EncodingError(f"{op.name} needs src and dst")
            if self.dst.mode not in DEST_MODES:
                raise EncodingError(
                    f"{op.name}: illegal destination mode {self.dst.mode}"
                )
        elif op.is_format2:
            if op is Opcode.RETI:
                if self.src is not None or self.dst is not None:
                    raise EncodingError("RETI takes no operands")
            elif self.src is None or self.dst is not None:
                raise EncodingError(f"{op.name} takes exactly one operand")
            if (self.byte and op in
                    (Opcode.SWPB, Opcode.SXT, Opcode.CALL, Opcode.RETI)):
                raise EncodingError(f"{op.name} has no byte form")
        else:
            if self.src is not None or self.dst is not None:
                raise EncodingError(f"{op.name} takes only a jump offset")
            if not -512 <= self.offset <= 511:
                raise EncodingError(
                    f"jump offset {self.offset} out of 10-bit range"
                )

    def size_words(self) -> int:
        """Total encoded size in 16-bit words (1..3)."""
        words = 1
        if self.src is not None:
            words += int(self.src.needs_extension_word(is_source=True))
        if self.dst is not None:
            words += int(self.dst.needs_extension_word(is_source=False))
        return words

    def size_bytes(self) -> int:
        return 2 * self.size_words()

    def render(self) -> str:
        """Assembly text for listings and the disassembler."""
        suffix = ".B" if self.byte else ""
        name = f"{self.opcode.name}{suffix}"
        if self.opcode.is_jump:
            target = self.symbol if self.symbol else f"$%+d" % (
                2 + 2 * self.offset)
            return f"{name} {target}"
        if self.opcode is Opcode.RETI:
            return name
        if self.opcode.is_format2:
            return f"{name} {self.src.render()}"
        return f"{name} {self.src.render()}, {self.dst.render()}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
