"""MSP430 register file.

The CPU has sixteen 16-bit registers.  Four have dedicated roles:

* R0 / PC  -- program counter (always even)
* R1 / SP  -- stack pointer (always even)
* R2 / SR  -- status register, doubles as constant generator CG1
* R3 / CG2 -- constant generator only; reads as 0 in register mode

Status-register flag layout follows the MSP430 family user's guide:
C (bit 0), Z (bit 1), N (bit 2), GIE (bit 3), CPUOFF (bit 4), V (bit 8).
"""

from __future__ import annotations

from typing import Iterator, List


class Reg:
    """Symbolic register numbers."""

    PC = 0
    SP = 1
    SR = 2
    CG2 = 3
    R0, R1, R2, R3 = 0, 1, 2, 3
    R4, R5, R6, R7 = 4, 5, 6, 7
    R8, R9, R10, R11 = 8, 9, 10, 11
    R12, R13, R14, R15 = 12, 13, 14, 15

    NAMES = (
        "PC", "SP", "SR", "CG2",
        "R4", "R5", "R6", "R7",
        "R8", "R9", "R10", "R11",
        "R12", "R13", "R14", "R15",
    )

    @staticmethod
    def name(number: int) -> str:
        return Reg.NAMES[number]


class SR:
    """Status-register flag bits."""

    C = 1 << 0
    Z = 1 << 1
    N = 1 << 2
    GIE = 1 << 3
    CPUOFF = 1 << 4
    V = 1 << 8

    ALL_FLAGS = C | Z | N | V


MASK16 = 0xFFFF
MASK8 = 0xFF


class RegisterFile:
    """Sixteen 16-bit registers with flag helpers.

    Values are always stored masked to 16 bits.  PC and SP writes are
    forced even, matching hardware (bit 0 of PC/SP is not implemented).
    """

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs: List[int] = [0] * 16

    def read(self, n: int) -> int:
        return self._regs[n]

    def write(self, n: int, value: int) -> None:
        value &= MASK16
        if n in (Reg.PC, Reg.SP):
            value &= ~1
        self._regs[n] = value

    # -- dedicated-register conveniences ---------------------------------
    @property
    def pc(self) -> int:
        return self._regs[Reg.PC]

    @pc.setter
    def pc(self, value: int) -> None:
        self.write(Reg.PC, value)

    @property
    def sp(self) -> int:
        return self._regs[Reg.SP]

    @sp.setter
    def sp(self, value: int) -> None:
        self.write(Reg.SP, value)

    @property
    def sr(self) -> int:
        return self._regs[Reg.SR]

    @sr.setter
    def sr(self, value: int) -> None:
        self._regs[Reg.SR] = value & MASK16

    # -- flags ------------------------------------------------------------
    def get_flag(self, bit: int) -> bool:
        return bool(self._regs[Reg.SR] & bit)

    def set_flag(self, bit: int, on: bool) -> None:
        if on:
            self._regs[Reg.SR] |= bit
        else:
            self._regs[Reg.SR] &= ~bit & MASK16

    @property
    def carry(self) -> bool:
        return self.get_flag(SR.C)

    @property
    def zero(self) -> bool:
        return self.get_flag(SR.Z)

    @property
    def negative(self) -> bool:
        return self.get_flag(SR.N)

    @property
    def overflow(self) -> bool:
        return self.get_flag(SR.V)

    def set_nz(self, value: int, byte: bool = False) -> None:
        """Set N and Z from a result value (already masked)."""
        sign = 0x80 if byte else 0x8000
        self.set_flag(SR.N, bool(value & sign))
        self.set_flag(SR.Z, value == 0)

    # -- misc ---------------------------------------------------------------
    def snapshot(self) -> List[int]:
        return list(self._regs)

    def restore(self, values: List[int]) -> None:
        if len(values) != 16:
            raise ValueError("register snapshot must have 16 entries")
        # in-place so the list object stays identical (the CPU's fast
        # path indexes it directly)
        self._regs[:] = [v & MASK16 for v in values]

    def __iter__(self) -> Iterator[int]:
        return iter(self._regs)

    def __repr__(self) -> str:
        cells = ", ".join(
            f"{Reg.name(i)}=0x{v:04X}" for i, v in enumerate(self._regs)
        )
        return f"RegisterFile({cells})"
