"""repro — reproduction of "Application Memory Isolation on
Ultra-Low-Power MCUs" (Hardin et al., USENIX ATC 2018).

Quick start::

    from repro import AftPipeline, AppSource, IsolationModel
    from repro.kernel.machine import AmuletMachine

    src = '''
    int total = 0;
    int on_tick(int step) { total += step; return total; }
    '''
    firmware = AftPipeline(IsolationModel.MPU).build(
        [AppSource("demo", src, handlers=["on_tick"])])
    machine = AmuletMachine(firmware)
    print(machine.dispatch("demo", "on_tick", [5]).return_value)

Layers (bottom-up):

* :mod:`repro.msp430` — cycle-counted MSP430FR5969 simulator with the
  FRAM-family MPU
* :mod:`repro.asm` — assembler, disassembler, linker
* :mod:`repro.cc` — the MiniC compiler (full C subset with pointers,
  function pointers, recursion) and a reference interpreter
* :mod:`repro.aft` — the four-phase Amulet Firmware Toolchain and the
  four memory-isolation models
* :mod:`repro.kernel` — AmuletOS analogue: gates, services, scheduler
* :mod:`repro.profiler` — ARP, ARP-view and the energy model
* :mod:`repro.apps` — the nine Amulet apps plus benchmark apps
* :mod:`repro.experiments` — regenerate Table 1, Figure 2, Figure 3
"""

from repro.aft import AftPipeline, AppSource, Firmware, IsolationModel

__version__ = "1.0.0"

__all__ = [
    "AftPipeline", "AppSource", "Firmware", "IsolationModel",
    "__version__",
]
