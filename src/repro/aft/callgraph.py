"""Call-graph construction and recursion detection (AFT phase 1).

Paper: *"Examination of the application call graph and the stack frame
for each function determines the maximum stack size for each app.  In
the event of recursion, the maximum stack size cannot be determined
and the AFT cannot guarantee a large enough stack."*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cc.sema import SemaResult


@dataclass
class CallGraph:
    """Direct-call edges between functions defined in one app."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    functions: Set[str] = field(default_factory=set)
    #: functions whose address is taken / reachable via fn pointers —
    #: conservatively treated as callable from anywhere in the app
    address_taken: Set[str] = field(default_factory=set)

    def callees(self, name: str) -> Set[str]:
        return self.edges.get(name, set())

    def find_cycle(self) -> Optional[List[str]]:
        """Returns one recursion cycle as a path, or None."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.functions}
        stack: List[str] = []

        def visit(node: str) -> Optional[List[str]]:
            color[node] = GRAY
            stack.append(node)
            for callee in sorted(self.callees(node)):
                if callee not in color:
                    continue
                if color[callee] == GRAY:
                    start = stack.index(callee)
                    return stack[start:] + [callee]
                if color[callee] == WHITE:
                    cycle = visit(callee)
                    if cycle is not None:
                        return cycle
            stack.pop()
            color[node] = BLACK
            return None

        for name in sorted(self.functions):
            if color[name] == WHITE:
                cycle = visit(name)
                if cycle is not None:
                    return cycle
        return None

    @property
    def has_recursion(self) -> bool:
        if self.find_cycle() is not None:
            return True
        # A function-pointer call whose target set includes a function
        # that (transitively) reaches the call site is also recursion;
        # we conservatively flag any address-taken function reachable
        # from itself through indirect call sites.
        return False

    def reachable_from(self, roots: Sequence[str]) -> Set[str]:
        seen: Set[str] = set()
        work = [r for r in roots if r in self.functions]
        while work:
            node = work.pop()
            if node in seen:
                continue
            seen.add(node)
            for callee in self.callees(node):
                if callee in self.functions and callee not in seen:
                    work.append(callee)
        return seen


def build_call_graph(sema: SemaResult) -> CallGraph:
    graph = CallGraph()
    graph.functions = {f.name for f in sema.unit.functions
                       if f.body is not None}
    for caller, callee in sema.call_edges:
        graph.edges.setdefault(caller, set()).add(callee)

    # Conservative handling of function pointers: any function whose
    # address is taken (outside the callee slot of a direct call) may be
    # the target of any indirect call site.
    from repro.cc import ast as cast
    direct_callee_idents = {
        id(expr.func) for function in sema.unit.functions
        if function.body is not None
        for expr in cast.walk_expressions(function.body)
        if isinstance(expr, cast.Call) and isinstance(expr.func,
                                                      cast.Ident)
    }
    for function in sema.unit.functions:
        if function.body is None:
            continue
        for expr in cast.walk_expressions(function.body):
            if (isinstance(expr, cast.Ident)
                    and id(expr) not in direct_callee_idents
                    and expr.symbol is not None
                    and expr.symbol.is_function):
                graph.address_taken.add(expr.name)

    indirect_sites = {id(call) for call in sema.fn_pointer_calls}
    for function in sema.unit.functions:
        if function.body is None:
            continue
        has_indirect = any(
            id(expr) in indirect_sites
            for expr in cast.walk_expressions(function.body)
            if isinstance(expr, cast.Call))
        if has_indirect:
            for target in graph.address_taken:
                if target in graph.functions:
                    graph.edges.setdefault(function.name,
                                           set()).add(target)
    return graph
