"""Per-app access enumeration (AFT phase 1).

Paper: *"the AFT enumerates each memory access and OS API call on an
app by app basis"*.  These static counts tell the AFT (and the
profiler) how many checks each memory model will insert, and where.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cc import ast
from repro.cc.sema import SemaResult


@dataclass
class FunctionAccessProfile:
    name: str
    pointer_derefs: int = 0
    array_accesses: int = 0
    fn_pointer_calls: int = 0
    direct_calls: int = 0
    api_calls: int = 0
    returns: int = 0

    @property
    def checked_sites(self) -> int:
        """Static count of sites that receive a check under the
        Software-Only / MPU models."""
        return (self.pointer_derefs + self.fn_pointer_calls
                + self.returns)


@dataclass
class AccessReport:
    functions: Dict[str, FunctionAccessProfile] = field(
        default_factory=dict)
    api_call_names: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def total_pointer_derefs(self) -> int:
        return sum(f.pointer_derefs for f in self.functions.values())

    @property
    def total_array_accesses(self) -> int:
        return sum(f.array_accesses for f in self.functions.values())

    @property
    def total_api_calls(self) -> int:
        return sum(f.api_calls for f in self.functions.values())


def enumerate_accesses(sema: SemaResult) -> AccessReport:
    report = AccessReport()
    deref_ids = {id(node) for node in sema.pointer_derefs}
    array_ids = {id(node) for node in sema.array_accesses}
    indirect_ids = {id(node) for node in sema.fn_pointer_calls}
    api_ids = {id(call): name for name, call in sema.api_calls}

    for function in sema.unit.functions:
        if function.body is None:
            continue
        profile = FunctionAccessProfile(function.name)
        for node in ast.walk(function.body):
            node_id = id(node)
            if node_id in deref_ids:
                profile.pointer_derefs += 1
            if node_id in array_ids:
                profile.array_accesses += 1
            if isinstance(node, ast.Call):
                if node_id in indirect_ids:
                    profile.fn_pointer_calls += 1
                elif node_id in api_ids:
                    profile.api_calls += 1
                    report.api_call_names.append(
                        (function.name, api_ids[node_id]))
                else:
                    profile.direct_calls += 1
            if isinstance(node, ast.Return):
                profile.returns += 1
        report.functions[function.name] = profile
    return report
