"""The four-phase AFT pipeline (paper section 3, "AFT Implementation").

Usage::

    pipeline = AftPipeline(IsolationModel.MPU)
    firmware = pipeline.build([AppSource("pedometer", src, ["on_accel"])])

Phase mapping (see the package docstring for the paper's wording):

1. :meth:`_phase1_analyze` — parse + sema under the model's language
   profile (rejects goto/asm always; pointers/recursion under Feature
   Limited), call graph, access enumeration.
2. :meth:`_phase2_generate` — MiniC → assembly with the model's check
   policy; checks reference placeholder boundary symbols.
3. :meth:`_phase3_sections` — per-app section layout (code < stack <
   data), stack-size estimation, gate/stack-pointer assembly, assembly
   of every translation unit.
4. :meth:`_phase4_link` — placement in high FRAM, boundary-symbol
   computation, relocation patching, final image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import RestrictionError, ToolchainError
from repro.aft.access import AccessReport, enumerate_accesses
from repro.aft.callgraph import CallGraph, build_call_graph
from repro.aft.firmware import AppLayout, Firmware
from repro.aft.models import (
    IsolationModel,
    ModelConfig,
    boundary_symbols,
    model_config,
)
from repro.aft.stackdepth import StackEstimate, estimate_stack
from repro.asm.assembler import assemble
from repro.asm.linker import Linker, LinkScript
from repro.asm.objfile import ObjectFile
from repro.cc.codegen import CodeGenerator, CompiledUnit
from repro.cc.parser import parse
from repro.cc.runtime import runtime_asm
from repro.cc.sema import SemaResult, analyze
from repro.cc.symbols import ApiTable
from repro.kernel.api import amulet_api_table
from repro.kernel.gates import generate_os_asm, mpu_value_symbols
from repro.kernel.layout import DEFAULT_LAYOUT, KernelLayout
from repro.msp430.memory import MemoryMap
from repro.msp430.mpu import MpuConfig, SegmentPermissions


@dataclass
class AppSource:
    """One application handed to the AFT."""

    name: str
    source: str
    handlers: List[str] = field(default_factory=list)
    #: default stack when recursion defeats analysis (bytes)
    recursive_stack: int = 512

    def __post_init__(self) -> None:
        if not self.name.isidentifier() or self.name.startswith("__"):
            raise ToolchainError(f"bad app name {self.name!r}")


@dataclass
class AppBuild:
    """Intermediate per-app state threaded through the phases."""

    source: AppSource
    sema: Optional[SemaResult] = None
    graph: Optional[CallGraph] = None
    access: Optional[AccessReport] = None
    unit: Optional[CompiledUnit] = None
    stack: Optional[StackEstimate] = None
    obj: Optional[ObjectFile] = None

    @property
    def name(self) -> str:
        return self.source.name

    @property
    def prefix(self) -> str:
        return f"app_{self.source.name}_"


@dataclass
class AftReport:
    """What the AFT learned; feeds the profiler and the experiments."""

    model: IsolationModel
    apps: Dict[str, AppBuild] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [f"AFT report (model={self.model.display})"]
        for build in self.apps.values():
            access = build.access
            stack = build.stack
            lines.append(
                f"  {build.name}: derefs={access.total_pointer_derefs} "
                f"arrays={access.total_array_accesses} "
                f"api={access.total_api_calls} "
                f"stack={stack.bytes_needed}B"
                f"{' (recursive: default)' if stack.recursive else ''}")
        return "\n".join(lines)


class AftPipeline:
    def __init__(self, model: IsolationModel,
                 api: Optional[ApiTable] = None,
                 layout: Optional[KernelLayout] = None,
                 policy_factory=None,
                 shadow_stack: bool = False,
                 optimize: bool = False):
        """``policy_factory(app_name, entry_points) -> CheckPolicy``
        overrides the model's check policy; the profiler uses this to
        build counting instrumentation instead of checks.

        ``shadow_stack`` enables the section-5 shadow return-address
        stack in InfoMem (see :mod:`repro.aft.shadowstack`).

        ``optimize`` runs the AST optimizer over each app before
        analysis (see :mod:`repro.cc.optimize`)."""
        self.config: ModelConfig = model_config(model)
        self.api = api if api is not None else amulet_api_table()
        self.layout = layout if layout is not None else DEFAULT_LAYOUT
        self.layout.validate()
        self.policy_factory = policy_factory
        self.shadow_stack = shadow_stack
        self.optimize = optimize
        self.report: Optional[AftReport] = None

    # -- public ------------------------------------------------------------
    def build(self, apps: Sequence[AppSource]) -> Firmware:
        if not apps:
            raise ToolchainError("no applications to build")
        names = [a.name for a in apps]
        if len(set(names)) != len(names):
            raise ToolchainError(f"duplicate app names in {names}")
        builds = [AppBuild(a) for a in apps]
        for build in builds:
            self._phase1_analyze(build)
            self._phase2_generate(build)
        objects = self._phase3_sections(builds)
        firmware = self._phase4_link(builds, objects)
        self.report = AftReport(
            self.config.model, {b.name: b for b in builds})
        return firmware

    # -- phase 1 ----------------------------------------------------------------
    def _phase1_analyze(self, build: AppBuild) -> None:
        unit = parse(build.source.source, filename=build.name)
        if self.optimize:
            from repro.cc.optimize import optimize_unit
            unit = optimize_unit(unit)
        sema = analyze(unit, self.config.profile, self.api,
                       filename=build.name)
        build.sema = sema
        build.graph = build_call_graph(sema)
        build.access = enumerate_accesses(sema)

        for handler in build.source.handlers:
            if handler not in build.graph.functions:
                raise ToolchainError(
                    f"app {build.name!r}: handler {handler!r} is not "
                    f"defined")

        cycle = build.graph.find_cycle()
        if cycle is not None and not self.config.profile.allow_recursion:
            raise RestrictionError(
                f"recursion ({' -> '.join(cycle)}) is not allowed in "
                f"{self.config.profile.name}", 0, 0, build.name)

    # -- phase 2 -----------------------------------------------------------------
    def _phase2_generate(self, build: AppBuild) -> None:
        if self.policy_factory is not None:
            policy = self.policy_factory(
                build.name, set(build.source.handlers))
        else:
            policy = self.config.make_policy(
                build.name, entry_points=set(build.source.handlers))
        if self.shadow_stack:
            from repro.aft.shadowstack import ShadowStackPolicy
            policy = ShadowStackPolicy(policy)
        generator = CodeGenerator(
            checks=policy,
            text_section=f".app.{build.name}.text",
            data_section=f".app.{build.name}.data",
            label_prefix=build.prefix)
        build.unit = generator.generate(build.sema)

    # -- phase 3 ------------------------------------------------------------------
    def _phase3_sections(self, builds: List[AppBuild]) -> List[ObjectFile]:
        objects: List[ObjectFile] = [
            assemble(runtime_asm(with_fault_stub=False), "runtime")
        ]
        os_asm = generate_os_asm(
            [b.name for b in builds], self.config, self.api, self.layout)
        objects.append(assemble(os_asm, "os"))

        for build in builds:
            build.stack = estimate_stack(
                build.graph, build.unit.frame_sizes,
                build.source.handlers,
                default_recursive=build.source.recursive_stack)
            obj = assemble(build.unit.asm, build.name)

            text_name = f".app.{build.name}.text"
            stack_name = f".app.{build.name}.stack"
            data_name = f".app.{build.name}.data"
            stack_section = obj.section(stack_name)
            if self.config.separate_stacks:
                stack_bytes = build.stack.bytes_needed
            else:
                # Shared-stack models keep a zero-size placeholder so
                # the boundary math stays uniform.
                stack_bytes = 0
            stack_section.append_bytes(bytes(stack_bytes))
            stack_section.align = 16
            obj.define(f"__app_{build.name}_stack_top", stack_name,
                       stack_bytes, is_global=True)

            # Enforce placement order: code below stack below data
            # (paper: stack tops out just under the data and grows down
            # into execute-only code on overflow).
            text = obj.section(text_name)
            text.align = 16
            data = obj.section(data_name)
            ordered = {text_name: text, stack_name: stack_section,
                       data_name: data}
            for name, section in obj.sections.items():
                if name not in ordered:
                    ordered[name] = section
            obj.sections = ordered
            build.obj = obj
            objects.append(obj)
        return objects

    # -- phase 4 --------------------------------------------------------------------
    def _phase4_link(self, builds: List[AppBuild],
                     objects: List[ObjectFile]) -> Firmware:
        script = LinkScript()
        script.region("sram_data", MemoryMap.SRAM_START,
                      MemoryMap.SRAM_START + 0x3FF)
        script.region("fram_os", self.layout.os_base,
                      self.layout.os_limit)
        script.region("fram_apps", self.layout.app_base,
                      self.layout.app_limit)
        script.place_rule(".os.sram", "sram_data")
        script.place_rule(".app.*", "fram_apps")
        script.place_rule("*", "fram_os")

        linker = Linker(script).place(objects)

        # Compute the boundary symbols from the placement.
        extra: Dict[str, int] = {}
        app_layouts: Dict[str, AppLayout] = {}
        for app_id, build in enumerate(builds):
            name = build.name
            obj = build.obj
            text = obj.sections[f".app.{name}.text"]
            stack = obj.sections[f".app.{name}.stack"]
            data = obj.sections[f".app.{name}.data"]
            code_lo = text.address
            code_hi = text.address + text.size
            seg_lo = stack.address
            stack_top = stack.address + stack.size
            seg_hi = (data.address + data.size + 15) & ~15

            bounds = boundary_symbols(name)
            extra[bounds.code_lo] = code_lo
            extra[bounds.code_hi] = code_hi
            extra[bounds.seg_lo] = seg_lo
            extra[bounds.seg_hi] = seg_hi

            mpu_cfg = None
            if self.config.uses_mpu or self.config.advanced_mpu:
                # With the shadow stack enabled, InfoMem (segment 0)
                # must be writable from app-inserted code; stray app
                # pointers into it are still caught by the compiler's
                # lower-bound check.
                info = (SegmentPermissions.parse("RW-")
                        if self.shadow_stack
                        else SegmentPermissions())
                mpu_cfg = MpuConfig(
                    b1=seg_lo, b2=seg_hi,
                    seg1=SegmentPermissions.parse("--X"),
                    seg2=SegmentPermissions.parse("RW-"),
                    seg3=SegmentPermissions.parse("---"),
                    info=info)
                b1_sym, b2_sym, sam_sym = mpu_value_symbols(name)
                extra[b1_sym] = seg_lo >> 4
                extra[b2_sym] = seg_hi >> 4
                extra[sam_sym] = mpu_cfg.sam_value()

            app_layouts[name] = AppLayout(
                name=name, app_id=app_id,
                code_lo=code_lo, code_hi=code_hi, seg_lo=seg_lo,
                stack_top=stack_top, seg_hi=seg_hi,
                stack_bytes=stack.size,
                mpu_config=mpu_cfg,
                stack_estimate=build.stack,
                access=build.access)

        # OS MPU configuration: code execute-only, everything writable
        # above it read-write (paper section 3).
        os_mpu = None
        os_text_end = max(
            (s.address + s.size for o in objects[:2]
             for s in o.sections.values()
             if s.name in (".text",)), default=self.layout.os_base)
        os_b1 = (os_text_end + 15) & ~15
        if self.config.uses_mpu or self.config.advanced_mpu:
            os_mpu = MpuConfig(
                b1=os_b1, b2=self.layout.app_base,
                seg1=SegmentPermissions.parse("--X"),
                seg2=SegmentPermissions.parse("RW-"),
                seg3=SegmentPermissions.parse("RW-"))
            extra["__mpu_os_segb1"] = os_b1 >> 4
            extra["__mpu_os_segb2"] = self.layout.app_base >> 4
            extra["__mpu_os_sam"] = os_mpu.sam_value()

        image = linker.resolve(extra)

        # Resolve handler addresses now that symbols exist.
        for build in builds:
            layout = app_layouts[build.name]
            for handler in build.source.handlers:
                layout.handlers[handler] = image.symbol(
                    f"{build.prefix}{handler}")

        return Firmware(image=image, config=self.config,
                        layout=self.layout, api=self.api,
                        apps=app_layouts, os_mpu_config=os_mpu)
