"""The four memory models the paper compares, as check policies.

=================  ==========  ============================================
Model              Language    Inserted checks
=================  ==========  ============================================
No Isolation       full C      none (baseline)
Feature Limited    AmuletC     out-of-line array-index check per access
Software Only      full C      lower **and** upper inline bound check per
                               pointer dereference / fn-pointer call /
                               return; no MPU
MPU (contribution) full C      lower inline bound check only — the MPU's
                               segment 3 enforces the upper bound in
                               hardware; MPU reconfigured per context
                               switch
=================  ==========  ============================================

Check shapes (paper Figure 1)::

    If App_i dereferences a data pointer:      if (address < D_i) FAULT();
    If App_i dereferences a function pointer:  if (address < C_i) FAULT();

where ``C_i`` / ``D_i`` are the bottom of app i's code and data/stack
regions.  ``D_i`` equals MPU boundary B1; the end of the data region is
B2.  The Software-Only model adds the symmetric upper checks.

The Feature-Limited model reproduces the original Amulet toolchain's
*out-of-line* array check (a helper call), which is why its per-access
cost in Table 1 (41 cycles) exceeds the inlined checks of the other
models (29/32).

Checks are emitted as a compare against a *symbol* immediate; the
linker patches the real boundary during AFT phase 4.  Fault branches
use the "skip over a BR #__fault" shape so the 10-bit conditional-jump
range can never overflow no matter how large the app is.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Set

from repro.cc.codegen import CheckPolicy
from repro.cc.sema import AMULET_C, FULL_C, LanguageProfile


class IsolationModel(enum.Enum):
    NO_ISOLATION = "NoIsolation"
    FEATURE_LIMITED = "FeatureLimited"
    SOFTWARE_ONLY = "SoftwareOnly"
    MPU = "MPU"
    #: Ablation (paper section 5, future work): a hypothetical advanced
    #: MPU with 4+ regions and full coverage — no compiler checks at all,
    #: both bounds enforced in "hardware".
    ADVANCED_MPU = "AdvancedMPU"

    @property
    def display(self) -> str:
        return {
            IsolationModel.NO_ISOLATION: "No Isolation",
            IsolationModel.FEATURE_LIMITED: "Feature Limited",
            IsolationModel.SOFTWARE_ONLY: "Software Only",
            IsolationModel.MPU: "MPU",
            IsolationModel.ADVANCED_MPU: "Advanced MPU (ablation)",
        }[self]


@dataclass(frozen=True)
class BoundarySymbols:
    """Linker-defined per-app boundary symbol names."""

    code_lo: str
    code_hi: str
    seg_lo: str          # D_i: bottom of data/stack region (== B1)
    seg_hi: str          # end of data region (== B2)


def boundary_symbols(app_name: str) -> BoundarySymbols:
    prefix = f"__app_{app_name}"
    return BoundarySymbols(
        code_lo=f"{prefix}_code_lo",
        code_hi=f"{prefix}_code_hi",
        seg_lo=f"{prefix}_seg_lo",
        seg_hi=f"{prefix}_seg_hi",
    )


class _AppCheckPolicy(CheckPolicy):
    """Common scaffolding for per-app check policies."""

    def __init__(self, app_name: str,
                 entry_points: Optional[Set[str]] = None):
        self.app = app_name
        self.bounds = boundary_symbols(app_name)
        #: event handlers return to the OS gate, so their return-address
        #: check must be skipped (their legitimate return target lies
        #: below the app's code region by design).
        self.entry_points: FrozenSet[str] = frozenset(entry_points or ())

    # -- shared emission shapes --------------------------------------------
    def _lower_check(self, gen, operand: str, bound: str) -> None:
        """FAULT if operand value < bound."""
        ok = gen._new_label("cklo")
        gen.emit(f"CMP #{bound}, {operand}")
        gen.emit(f"JHS {ok}")
        gen.emit("BR #__fault")
        gen.emit_label(ok)

    def _upper_check(self, gen, operand: str, bound: str) -> None:
        """FAULT if operand value >= bound."""
        ok = gen._new_label("ckhi")
        gen.emit(f"CMP #{bound}, {operand}")
        gen.emit(f"JLO {ok}")
        gen.emit("BR #__fault")
        gen.emit_label(ok)


class NoChecksPolicy(_AppCheckPolicy):
    """No Isolation and Advanced-MPU: nothing inserted."""

    name = "none"


class FeatureLimitedPolicy(_AppCheckPolicy):
    """The original Amulet approach: array accesses call the
    out-of-line bounds-check helper; pointers never reach codegen
    (sema rejects them under the AmuletC profile)."""

    name = "feature-limited"

    def array_index_check(self, gen, reg: str, length: int) -> None:
        gen.emit(f"MOV {reg}, R12")
        gen.emit(f"MOV #{length}, R13")
        gen.emit("CALL #__aft_check_index")


class SoftwareOnlyPolicy(_AppCheckPolicy):
    """Full software isolation: both bounds checked inline on every
    pointer dereference, function-pointer call, and function return."""

    name = "software-only"

    def data_pointer_check(self, gen, reg: str, is_write: bool) -> None:
        self._lower_check(gen, reg, self.bounds.seg_lo)
        self._upper_check(gen, reg, self.bounds.seg_hi)

    def fn_pointer_check(self, gen, reg: str) -> None:
        self._lower_check(gen, reg, self.bounds.code_lo)
        self._upper_check(gen, reg, self.bounds.code_hi)

    def return_check(self, gen) -> None:
        if gen.function.name in self.entry_points:
            return
        self._lower_check(gen, "2(R4)", self.bounds.code_lo)
        self._upper_check(gen, "2(R4)", self.bounds.code_hi)


class MpuPolicy(_AppCheckPolicy):
    """The paper's contribution: the MPU protects everything *above*
    the current app (segment 3 no-access, segment 2 no-execute), so the
    compiler only inserts the *lower*-bound half of each check."""

    name = "mpu"

    def data_pointer_check(self, gen, reg: str, is_write: bool) -> None:
        self._lower_check(gen, reg, self.bounds.seg_lo)

    def fn_pointer_check(self, gen, reg: str) -> None:
        self._lower_check(gen, reg, self.bounds.code_lo)

    def return_check(self, gen) -> None:
        if gen.function.name in self.entry_points:
            return
        self._lower_check(gen, "2(R4)", self.bounds.code_lo)


@dataclass(frozen=True)
class ModelConfig:
    """Everything the AFT needs to know about a memory model."""

    model: IsolationModel
    profile: LanguageProfile
    uses_mpu: bool               # reconfigure the real MPU per switch
    separate_stacks: bool        # per-app stacks (vs the shared stack)
    policy_class: type
    #: ablation flag: enforce both bounds with a hypothetical MPU
    advanced_mpu: bool = False

    def make_policy(self, app_name: str,
                    entry_points: Optional[Set[str]] = None
                    ) -> CheckPolicy:
        return self.policy_class(app_name, entry_points)


_CONFIGS = {
    IsolationModel.NO_ISOLATION: ModelConfig(
        IsolationModel.NO_ISOLATION, FULL_C, uses_mpu=False,
        separate_stacks=False, policy_class=NoChecksPolicy),
    IsolationModel.FEATURE_LIMITED: ModelConfig(
        IsolationModel.FEATURE_LIMITED, AMULET_C, uses_mpu=False,
        separate_stacks=False, policy_class=FeatureLimitedPolicy),
    IsolationModel.SOFTWARE_ONLY: ModelConfig(
        IsolationModel.SOFTWARE_ONLY, FULL_C, uses_mpu=False,
        separate_stacks=True, policy_class=SoftwareOnlyPolicy),
    IsolationModel.MPU: ModelConfig(
        IsolationModel.MPU, FULL_C, uses_mpu=True,
        separate_stacks=True, policy_class=MpuPolicy),
    IsolationModel.ADVANCED_MPU: ModelConfig(
        IsolationModel.ADVANCED_MPU, FULL_C, uses_mpu=False,
        separate_stacks=True, policy_class=NoChecksPolicy,
        advanced_mpu=True),
}


def model_config(model: IsolationModel) -> ModelConfig:
    return _CONFIGS[model]
