"""Content-addressed firmware build cache.

Running the paper's experiment suite rebuilds the same handful of
(application set, isolation model) firmwares dozens of times — the AFT
is deterministic, so every rebuild after the first is wasted work.
:func:`build_firmware` keys each build by a SHA-256 over

* every app's name, source text, handler list, and recursive-stack
  default,
* the isolation model plus the pipeline flags that change codegen
  (``shadow_stack``, ``optimize``), and
* the **toolchain version** — a content hash over the toolchain's own
  Python sources, so editing the compiler, assembler, linker, or
  kernel templates invalidates every cached image automatically.

Two layers:

* an in-process dict returning the *same* :class:`Firmware` object
  (machines only read firmware, so sharing is safe), and
* an optional on-disk pickle layer under ``.cache/firmware/`` at the
  repo root, shared across processes — this is what makes the
  parallel experiment runner's worker processes cheap.

Environment knobs: ``REPRO_NO_CACHE=1`` disables both layers,
``REPRO_CACHE_DIR`` overrides the on-disk location, and
``REPRO_CACHE_MAX_MB`` bounds the on-disk layer (default 256 MB; 0 or
negative disables pruning).  The disk layer is LRU: reads touch the
entry's mtime, and after each write the oldest entries are evicted
until the total size fits the bound.  Builds that use a custom
``policy_factory`` (e.g. the ARP profiler's counting policies) must
not use this module — the factory is arbitrary code and cannot be part
of a content key.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.aft.firmware import Firmware
from repro.aft.models import IsolationModel
from repro.aft.phases import AftPipeline, AppSource

#: packages whose sources constitute "the toolchain" for cache keying
_TOOLCHAIN_PACKAGES = ("aft", "asm", "cc", "kernel", "msp430")

_memory_cache: Dict[str, Firmware] = {}


@lru_cache(maxsize=1)
def toolchain_version() -> str:
    """Content hash of the toolchain's own sources, once per process."""
    digest = hashlib.sha256()
    root = Path(__file__).resolve().parent.parent
    for package in _TOOLCHAIN_PACKAGES:
        for path in sorted((root / package).glob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def cache_key(model: IsolationModel, apps: Sequence[AppSource],
              shadow_stack: bool = False,
              optimize: bool = False) -> str:
    digest = hashlib.sha256()
    digest.update(toolchain_version().encode())
    digest.update(repr((model.name, shadow_stack, optimize)).encode())
    for app in apps:
        digest.update(repr((app.name, app.source, tuple(app.handlers),
                            app.recursive_stack)).encode())
    return digest.hexdigest()


def cache_dir() -> Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    # src/repro/aft/cache.py -> repo root is three levels above src/
    return Path(__file__).resolve().parents[3] / ".cache" / "firmware"


def _cache_enabled() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "") not in ("1", "true")


def cache_max_bytes() -> int:
    """On-disk budget from ``REPRO_CACHE_MAX_MB`` (<= 0: unbounded)."""
    raw = os.environ.get("REPRO_CACHE_MAX_MB", "256")
    try:
        return int(float(raw) * 1024 * 1024)
    except ValueError:
        return 256 * 1024 * 1024


def prune_cache(directory: Optional[Path] = None,
                max_bytes: Optional[int] = None) -> int:
    """Evict least-recently-used ``.pkl`` entries until the cache fits
    ``max_bytes``; returns the number of entries removed.

    "Recently used" is mtime: :func:`build_firmware` touches an entry
    on every disk hit, so hot firmwares survive sweeps.  Concurrent
    workers may race us to a file — a vanished entry is not an error.
    """
    directory = cache_dir() if directory is None else directory
    limit = cache_max_bytes() if max_bytes is None else max_bytes
    if limit <= 0 or not directory.is_dir():
        return 0
    entries = []
    total = 0
    for path in directory.glob("*.pkl"):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, stat.st_size, path))
        total += stat.st_size
    removed = 0
    entries.sort()                     # oldest first
    for _mtime, size, path in entries:
        if total <= limit:
            break
        try:
            path.unlink()
        except OSError:
            continue                   # raced with another worker
        total -= size
        removed += 1
    return removed


def build_firmware(model: IsolationModel,
                   apps: Sequence[AppSource],
                   shadow_stack: bool = False,
                   optimize: bool = False,
                   persist: bool = True) -> Firmware:
    """Build (or fetch a cached) firmware for ``apps`` under ``model``.

    Byte-identical to ``AftPipeline(model, ...).build(apps)`` — the
    pipeline is deterministic and the key covers all of its inputs.
    ``persist=False`` keeps the result out of the on-disk layer.
    """
    if not _cache_enabled():
        return AftPipeline(model, shadow_stack=shadow_stack,
                           optimize=optimize).build(apps)

    key = cache_key(model, apps, shadow_stack, optimize)
    firmware = _memory_cache.get(key)
    if firmware is not None:
        return firmware

    disk_path = cache_dir() / f"{key}.pkl"
    if persist and disk_path.exists():
        try:
            with disk_path.open("rb") as fh:
                firmware = pickle.load(fh)
            os.utime(disk_path)       # LRU touch: mark recently used
        except Exception:
            firmware = None           # stale/corrupt entry: rebuild
    if firmware is None:
        firmware = AftPipeline(model, shadow_stack=shadow_stack,
                               optimize=optimize).build(apps)
        if persist:
            try:
                disk_path.parent.mkdir(parents=True, exist_ok=True)
                tmp = disk_path.with_suffix(".tmp%d" % os.getpid())
                with tmp.open("wb") as fh:
                    pickle.dump(firmware, fh)
                tmp.replace(disk_path)  # atomic: safe under fan-out
                prune_cache(disk_path.parent)
            except Exception:
                pass                  # unpicklable or read-only FS
    _memory_cache[key] = firmware
    return firmware


def clear_memory_cache() -> None:
    """Drop the in-process layer (tests use this)."""
    _memory_cache.clear()
