"""The Amulet Firmware Toolchain (AFT).

Paper section 3, "AFT Implementation": a four-phase pipeline that
analyzes, transforms, and links application code with the OS into a
single firmware image, injecting the memory-isolation machinery the
selected memory model requires:

* **Phase 1** — language-feature checking (reject inline asm / goto;
  reject pointers and recursion under Feature Limited), enumeration of
  memory accesses and API calls per app, call-graph construction.
* **Phase 2** — code generation with the model's check policy: MPU
  configuration code and bounds checks against *placeholder* boundary
  symbols.
* **Phase 3** — section attributes for the linker (per-app code/stack/
  data sections), stack-size estimation, stack-pointer manipulation
  code (the context-switch gates).
* **Phase 4** — placement of each app in high FRAM, computation of the
  real app boundaries, patching of every check via relocation, and the
  final link.
"""

from repro.aft.models import (
    IsolationModel,
    ModelConfig,
    model_config,
    boundary_symbols,
)
from repro.aft.phases import AftPipeline, AppSource, AftReport
from repro.aft.firmware import Firmware, AppLayout
from repro.aft.cache import build_firmware

__all__ = [
    "IsolationModel", "ModelConfig", "model_config", "boundary_symbols",
    "AftPipeline", "AppSource", "AftReport",
    "Firmware", "AppLayout", "build_firmware",
]
