"""Shadow return-address stack (paper section 5, future work).

*"We may also explore ... the use of a shadow return-address stack to
prevent applications from jumping outside their code bounds."*  And
footnote 3: *"We anticipate using the InfoMem in future revisions, for
a return-address stack that protects the return address from stack
overflow bugs and attacks."*

Implementation, exactly as the footnotes sketch it:

* The 512-byte InfoMem (0x1800-0x19FF) holds the shadow stack; its
  first word is the shadow stack pointer, the pushes grow upward from
  0x1802 (room for ~250 nested calls).
* Every non-entry function's prologue copies its return address to the
  shadow stack; its epilogue pops the copy and compares — any
  corruption of the on-stack return address (overflow, stray pointer)
  faults before the ``RET`` executes.
* Under the MPU model the InfoMem segment (MPU segment 0) is opened
  read-write while an app runs so the instrumented code can maintain
  the shadow; stray *pointers* into InfoMem are still caught by the
  compiler's lower-bound check (InfoMem lies far below any app's
  ``D_i``), so only the inserted prologue/epilogue code can touch it.

The policy composes with any base model: it *replaces* the cheap
return-address bounds check with the exact-match shadow comparison and
keeps the base model's data/function-pointer checks.
"""

from __future__ import annotations

from repro.cc.codegen import CheckPolicy
from repro.msp430.memory import MemoryMap

#: the shadow stack pointer lives in the first InfoMem word
SHADOW_SP_ADDRESS = MemoryMap.INFOMEM_START
#: first shadow slot
SHADOW_BASE = MemoryMap.INFOMEM_START + 2


class ShadowStackPolicy(CheckPolicy):
    """Wraps a base model policy, adding the shadow return stack."""

    name = "shadow-stack"

    def __init__(self, base: CheckPolicy):
        self.base = base
        self.entry_points = getattr(base, "entry_points", frozenset())

    # -- delegated checks ---------------------------------------------------
    def data_pointer_check(self, gen, reg: str, is_write: bool) -> None:
        self.base.data_pointer_check(gen, reg, is_write)

    def fn_pointer_check(self, gen, reg: str) -> None:
        self.base.fn_pointer_check(gen, reg)

    def array_index_check(self, gen, reg: str, length: int) -> None:
        self.base.array_index_check(gen, reg, length)

    # -- the shadow stack ----------------------------------------------------
    def stack_entry_check(self, gen) -> None:
        """Push the return address onto the shadow stack.

        Runs right after the frame is established, before parameter
        homing — so it must preserve R12-R15 (live arguments) and
        restore R11 (callee-saved by our private ABI)."""
        if gen.function.name in self.entry_points:
            return
        gen.emit("PUSH R11")
        gen.emit(f"MOV &0x{SHADOW_SP_ADDRESS:04X}, R11")
        gen.emit("MOV 2(R4), 0(R11)")     # frame-relative: ret addr
        gen.emit(f"ADD #2, &0x{SHADOW_SP_ADDRESS:04X}")
        gen.emit("POP R11")

    def return_check(self, gen) -> None:
        """Pop the shadow copy and require an exact match."""
        if gen.function.name in self.entry_points:
            return
        ok = gen._new_label("shadow_ok")
        gen.emit("PUSH R11")
        gen.emit(f"SUB #2, &0x{SHADOW_SP_ADDRESS:04X}")
        gen.emit(f"MOV &0x{SHADOW_SP_ADDRESS:04X}, R11")
        gen.emit("MOV @R11, R11")
        gen.emit("CMP R11, 2(R4)")        # frame-relative: ret addr
        gen.emit(f"JEQ {ok}")
        gen.emit("BR #__fault")
        gen.emit_label(ok)
        gen.emit("POP R11")


def initialize_shadow_stack(memory) -> None:
    """Reset the shadow stack pointer (machine boot / fault recovery)."""
    with memory.supervisor():
        memory.write_word(SHADOW_SP_ADDRESS, SHADOW_BASE)
