"""Maximum-stack-depth estimation (AFT phases 1/3).

The estimate is a safe upper bound for non-recursive apps: each
function contributes its fixed frame (saved FP, locals, saved callee
registers) plus the 2-byte return address of the deepest call it makes,
plus headroom for runtime-helper calls (``__udivmod`` pushes at most 4
bytes and calls one level deep) and temporary spills.

When the call graph is recursive the bound does not exist (the paper:
"the AFT cannot guarantee a large enough stack") and a configurable
default is used instead — under the MPU model a stack overflow then
lands in the execute-only code segment and faults in hardware, which
is exactly the paper's overflow story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set

from repro.aft.callgraph import CallGraph

#: default app stack when recursion defeats static analysis
DEFAULT_RECURSIVE_STACK = 512
#: worst-case extra bytes any function may use transiently
#: (helper call: 2 ret + 2 push; expression spills: 7 words)
TRANSIENT_SLACK = 4 + 2 + 14
#: safety margin added to every estimate
MARGIN = 16


@dataclass
class StackEstimate:
    bytes_needed: int
    recursive: bool
    per_function: Dict[str, int]

    @property
    def exact(self) -> bool:
        return not self.recursive


def estimate_stack(graph: CallGraph,
                   frame_sizes: Dict[str, int],
                   entry_points: Sequence[str],
                   default_recursive: int = DEFAULT_RECURSIVE_STACK
                   ) -> StackEstimate:
    """Upper-bound the stack for an app entered via ``entry_points``."""
    if graph.find_cycle() is not None:
        return StackEstimate(
            bytes_needed=default_recursive, recursive=True,
            per_function={})

    memo: Dict[str, int] = {}

    def depth(name: str) -> int:
        if name in memo:
            return memo[name]
        frame = frame_sizes.get(name, 0)
        deepest_call = 0
        for callee in graph.callees(name):
            if callee in graph.functions:
                # 2 bytes of return address plus the callee's own needs
                deepest_call = max(deepest_call, 2 + depth(callee))
            else:
                deepest_call = max(deepest_call, 2)  # API gate / helper
        memo[name] = frame + TRANSIENT_SLACK + deepest_call
        return memo[name]

    total = 0
    for entry in entry_points:
        if entry in graph.functions:
            total = max(total, 2 + depth(entry))
    # Unreachable-but-address-taken functions might still run.
    for name in graph.address_taken:
        if name in graph.functions:
            total = max(total, 2 + depth(name))
    needed = total + MARGIN
    # MPU boundary granularity: round to 16 bytes.
    needed = (needed + 15) & ~15
    return StackEstimate(bytes_needed=max(needed, 32), recursive=False,
                         per_function=memo)
