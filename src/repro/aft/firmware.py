"""Firmware image container produced by the AFT pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.aft.access import AccessReport
from repro.aft.models import IsolationModel, ModelConfig
from repro.aft.stackdepth import StackEstimate
from repro.asm.linker import Image
from repro.cc.symbols import ApiTable
from repro.kernel.layout import KernelLayout
from repro.msp430.mpu import MpuConfig


@dataclass
class AppLayout:
    """Where one app landed in high FRAM, and its isolation metadata."""

    name: str
    app_id: int
    code_lo: int
    code_hi: int
    seg_lo: int           # D_i == B1: bottom of the data/stack region
    stack_top: int        # initial SP (data starts here)
    seg_hi: int           # B2: end of the data region (16-aligned)
    stack_bytes: int
    handlers: Dict[str, int] = field(default_factory=dict)
    mpu_config: Optional[MpuConfig] = None
    stack_estimate: Optional[StackEstimate] = None
    access: Optional[AccessReport] = None

    @property
    def code_bytes(self) -> int:
        return self.code_hi - self.code_lo

    @property
    def data_bytes(self) -> int:
        return self.seg_hi - self.stack_top

    def contains(self, address: int) -> bool:
        return self.code_lo <= address < self.seg_hi

    def summary(self) -> str:
        return (f"{self.name}: code 0x{self.code_lo:04X}-0x"
                f"{self.code_hi:04X} stack {self.stack_bytes}B "
                f"data/stack 0x{self.seg_lo:04X}-0x{self.seg_hi:04X}")


@dataclass
class Firmware:
    """A linked firmware image plus everything the kernel needs."""

    image: Image
    config: ModelConfig
    layout: KernelLayout
    api: ApiTable
    apps: Dict[str, AppLayout]
    os_mpu_config: Optional[MpuConfig] = None

    @property
    def model(self) -> IsolationModel:
        return self.config.model

    def symbol(self, name: str) -> int:
        return self.image.symbol(name)

    def dispatch_symbol(self, app: str) -> int:
        return self.image.symbol(f"__dispatch_{app}")

    def handler_address(self, app: str, handler: str) -> int:
        layout = self.apps[app]
        if handler not in layout.handlers:
            raise KeyError(
                f"app {app!r} has no handler {handler!r} "
                f"(have {sorted(layout.handlers)})")
        return layout.handlers[handler]

    def app_of_address(self, address: int) -> Optional[str]:
        for name, app in self.apps.items():
            if app.contains(address):
                return name
        return None

    def app_list(self) -> List[AppLayout]:
        return sorted(self.apps.values(), key=lambda a: a.app_id)
