"""AmuletMachine: firmware + CPU + MPU + services, ready to dispatch.

The machine is the kernel's hardware-facing half: it loads a linked
firmware image, wires the MPU and the service/done/fault ports, and
exposes :meth:`dispatch` — deliver one event to one app handler by
running the app's context-switch gate on the simulated CPU, exactly as
the paper's AmuletOS does.

Everything an experiment needs comes back in a :class:`DispatchResult`:
cycles consumed (gate + handler + checks + services), fault records,
and the CPU for further inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import KernelError
from repro.aft.firmware import AppLayout, Firmware
from repro.aft.shadowstack import initialize_shadow_stack
from repro.kernel.advanced_mpu import AdvancedMpu
from repro.kernel.fault import FaultLog, FaultOrigin, FaultRecord
from repro.kernel.services import SensorEnvironment, ServiceRegistry
from repro.msp430.cpu import Cpu, CpuFault, ExecutionLimitExceeded
from repro.msp430.execcache import image_digest, shared_execution_cache
from repro.msp430.memory import MemoryMap
from repro.msp430.mpu import Mpu
from repro.msp430.timer import CycleTimer
from repro.ports import DONE_PORT, FAULT_PORT, SVC_PORT

#: machine prototypes: id(firmware) -> (firmware, pristine 64 KB
#: post-load image, its sha-256).  The first machine built from a
#: firmware runs the assembler-output loader + shadow-stack init and
#: captures the resulting image; every later machine for the same
#: firmware object *clones* that image with one bytearray blit.  The
#: strong firmware reference keeps ids stable; the guard against a
#: recycled id makes a stale hit impossible.
_PROTOTYPES: Dict[int, tuple] = {}


@dataclass
class DispatchResult:
    app: str
    handler: str
    cycles: int
    instructions: int
    faulted: bool
    fault: Optional[FaultRecord] = None
    return_value: int = 0


@dataclass
class AppRuntimeState:
    dispatches: int = 0
    cycles: int = 0
    faults: int = 0
    disabled: bool = False


class AmuletMachine:
    def __init__(self, firmware: Firmware,
                 env: Optional[SensorEnvironment] = None,
                 step_only: bool = False,
                 shared_cache: bool = True):
        self.firmware = firmware
        self.cpu = Cpu()
        # step_only disables superblock dispatch — every instruction
        # goes through Cpu.step(); results are bit-identical, only
        # slower (benchmarks and differential tests use this).
        self.cpu.block_mode = not step_only
        self.timer = CycleTimer(self.cpu)
        self.timer.attach()
        self.fault_log = FaultLog()
        self.current_app: Optional[str] = None
        self.scheduler = None            # set by Scheduler on attach
        self.app_state: Dict[str, AppRuntimeState] = {
            name: AppRuntimeState() for name in firmware.apps
        }
        self._pending_fault: Optional[FaultRecord] = None

        # Prototype/clone construction: segment-by-segment loading and
        # shadow-stack init run once per distinct firmware; sibling
        # machines clone the captured image in one blit.  The clone is
        # byte-for-byte what the loader would have produced, so device
        # results are independent of which path built the machine.
        prototype = _PROTOTYPES.get(id(firmware))
        if prototype is None or prototype[0] is not firmware:
            firmware.image.load_into(self.cpu.memory)
            # Reset the InfoMem shadow return-address stack (used when
            # the firmware was built with shadow_stack=True; harmless
            # otherwise — InfoMem is unused by default, paper
            # footnote 3).
            initialize_shadow_stack(self.cpu.memory)
            image = bytes(self.cpu.memory._bytes)
            prototype = (firmware, image, image_digest(image))
            _PROTOTYPES[id(firmware)] = prototype
        else:
            self.cpu.memory.load(0, prototype[1])
        #: pristine post-load image; the delta-checkpoint base and the
        #: shared execution cache's verification reference
        self.base_image: bytes = prototype[1]
        self.base_sha: str = prototype[2]

        config = firmware.config
        self.mpu: Optional[object] = None
        if config.uses_mpu:
            mpu = Mpu()
            mpu.attach(self.cpu.memory)
            if firmware.os_mpu_config is not None:
                mpu.configure(firmware.os_mpu_config)
            self.mpu = mpu
        elif config.advanced_mpu:
            advanced = AdvancedMpu()
            advanced.attach(self.cpu.memory)
            advanced.sysvar_window = self._sysvar_window()
            self.mpu = advanced

        self.services = ServiceRegistry(self, env)
        self.cpu.memory.add_io(SVC_PORT, write=self._on_service)
        self.cpu.memory.add_io(DONE_PORT, write=self._on_done)
        self.cpu.memory.add_io(FAULT_PORT, write=self._on_fault)

        # Attach the process-wide execution cache for this I/O port
        # wiring so sibling devices — including devices running
        # *different* firmware with overlapping bytes (the OS region,
        # shared apps) — share decoded instructions and compiled
        # superblocks, verified by content on every pull.  Done after
        # all port wiring: the port set is the store identity (blocks
        # terminate at port-addressing instructions).  step_only
        # machines stay private — they are the differential tests'
        # pristine reference interpreter.
        if shared_cache and not step_only:
            self.cpu.attach_shared_cache(shared_execution_cache(
                self.cpu.memory.io_addresses()))

    # -- wiring ---------------------------------------------------------------
    def _sysvar_window(self) -> Optional[tuple]:
        names = [self.firmware.api.sysvar_symbol(n)
                 for n in self.firmware.api.sysvars]
        addresses = [self.firmware.symbol(n) for n in names
                     if self.firmware.image.has_symbol(n)]
        if not addresses:
            return None
        return (min(addresses), max(addresses) + 2)

    def _on_service(self, _addr: int, value: int) -> None:
        self.services.dispatch(value)

    def _on_done(self, _addr: int, _value: int) -> None:
        self.cpu.halt()

    def _on_fault(self, _addr: int, _value: int) -> None:
        if self._pending_fault is None:
            self._pending_fault = FaultRecord(
                app=self.current_app, origin=FaultOrigin.SOFTWARE_CHECK,
                pc=self.cpu.regs.pc, address=0, cycle=self.cpu.cycles,
                detail="compiler-inserted check fired")
        self.cpu.halt()

    # -- fault reporting --------------------------------------------------------
    def report_api_pointer_fault(self, address: int) -> None:
        self._pending_fault = FaultRecord(
            app=self.current_app, origin=FaultOrigin.API_POINTER,
            pc=self.cpu.regs.pc, address=address,
            cycle=self.cpu.cycles,
            detail="app-provided pointer outside app region")
        self.cpu.halt()

    def current_app_layout(self) -> Optional[AppLayout]:
        if self.current_app is None:
            return None
        return self.firmware.apps.get(self.current_app)

    # -- snapshot/restore --------------------------------------------------------
    def state_dict(self) -> dict:
        """Dispatch-boundary snapshot of everything architectural: CPU
        registers/counters, the 64 KB memory image, MPU registers
        (lock state included), the fault log, per-app runtime state,
        and OS service state (display/log/storage plus the sensor
        environment's LCG position).

        Only valid *between* dispatches — mid-handler state would also
        need the Python call stack, which is not serializable."""
        if self.current_app is not None or self._pending_fault is not None:
            raise KernelError(
                "machine snapshots are only valid at a dispatch boundary")
        state = {
            "cpu": self.cpu.state_dict(),
            "memory": self.cpu.memory.state_dict(),
            "fault_log": self.fault_log.state_dict(),
            "services": self.services.state_dict(),
            "app_state": {
                name: [s.dispatches, s.cycles, s.faults, s.disabled]
                for name, s in self.app_state.items()},
        }
        if self.mpu is not None:
            state["mpu"] = self.mpu.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this machine.

        The machine must have been constructed from the *same firmware*
        (the fleet layer guarantees that by rebuilding it from the
        deterministic device spec); loading clears every derived cache
        (decoded instructions, superblocks, permission bitmaps), so a
        resumed run is byte-identical to an uninterrupted one."""
        if set(state["app_state"]) != set(self.firmware.apps):
            raise KernelError(
                "snapshot app set does not match this firmware "
                f"(snapshot: {sorted(state['app_state'])}, "
                f"firmware: {sorted(self.firmware.apps)})")
        self.cpu.memory.load_state(state["memory"])
        self.cpu.load_state(state["cpu"])
        if self.mpu is not None:
            self.mpu.load_state(state["mpu"])
        self.fault_log.load_state(state["fault_log"])
        self.services.load_state(state["services"])
        for name, packed in state["app_state"].items():
            app = self.app_state[name]
            app.dispatches, app.cycles, app.faults, app.disabled = packed
        self.current_app = None
        self._pending_fault = None

    # -- sysvar maintenance --------------------------------------------------------
    def set_sysvar(self, name: str, value: int) -> None:
        symbol = self.firmware.api.sysvar_symbol(name)
        address = self.firmware.symbol(symbol)
        with self.cpu.memory.supervisor():
            self.cpu.memory.write_word(address, value & 0xFFFF)

    def read_sysvar(self, name: str) -> int:
        symbol = self.firmware.api.sysvar_symbol(name)
        address = self.firmware.symbol(symbol)
        blob = self.cpu.memory.dump(address, 2)
        return blob[0] | (blob[1] << 8)

    # -- dispatch --------------------------------------------------------------------
    def dispatch(self, app: str, handler: str,
                 args: Sequence[int] = (),
                 max_cycles: int = 20_000_000) -> DispatchResult:
        if app not in self.firmware.apps:
            raise KernelError(f"unknown app {app!r}")
        state = self.app_state[app]
        if state.disabled:
            raise KernelError(f"app {app!r} is disabled after a fault")
        if len(args) > 3:
            raise KernelError("handlers take at most 3 arguments")

        handler_address = self.firmware.handler_address(app, handler)
        gate = self.firmware.dispatch_symbol(app)

        self.current_app = app
        self._pending_fault = None
        cpu = self.cpu
        cpu.halted = False
        cpu.regs.pc = gate
        cpu.regs.sp = self.firmware.layout.os_stack_top
        cpu.regs.write(12, handler_address)
        for index, value in enumerate(args):
            cpu.regs.write(13 + index, value & 0xFFFF)

        start_cycles = cpu.cycles
        start_instructions = cpu.instructions
        fault: Optional[FaultRecord] = None
        try:
            cpu.run(max_cycles=max_cycles)
        except CpuFault as exc:
            origin = (FaultOrigin.MPU
                      if exc.kind.name == "MPU_VIOLATION"
                      else FaultOrigin.BUS)
            fault = FaultRecord(app=app, origin=origin, pc=exc.pc,
                                address=exc.address, cycle=cpu.cycles,
                                detail=exc.detail)
            self.fault_log.log(fault)
            self._recover_to_os()
        except ExecutionLimitExceeded as exc:
            fault = FaultRecord(app=app, origin=FaultOrigin.RUNAWAY,
                                pc=cpu.regs.pc, address=0,
                                cycle=cpu.cycles, detail=str(exc))
            self.fault_log.log(fault)
            self._recover_to_os()

        if self._pending_fault is not None and fault is None:
            fault = self._pending_fault
            self.fault_log.log(fault)
            self._recover_to_os()
        self._pending_fault = None

        cycles = cpu.cycles - start_cycles
        state.dispatches += 1
        state.cycles += cycles
        if fault is not None:
            state.faults += 1
        self.current_app = None
        return DispatchResult(
            app=app, handler=handler, cycles=cycles,
            instructions=cpu.instructions - start_instructions,
            faulted=fault is not None, fault=fault,
            return_value=cpu.regs.read(12))

    def _recover_to_os(self) -> None:
        """After a fault the gate's exit path never ran; restore the OS
        view (MPU config) so the next dispatch starts clean."""
        if isinstance(self.mpu, Mpu) and \
                self.firmware.os_mpu_config is not None:
            self.mpu.configure(self.firmware.os_mpu_config)
        elif isinstance(self.mpu, AdvancedMpu):
            self.mpu.force_os_mode()
        # a fault mid-function leaves unbalanced shadow entries behind
        initialize_shadow_stack(self.cpu.memory)
        self.cpu.halted = True
