"""AmuletOS analogue: event-driven kernel for the simulated MCU.

The kernel's *gate* code (register save/restore, stack switching, MPU
reprogramming) is genuine simulated assembly so the paper's context-
switch costs are measured in executed instructions; service *semantics*
(what a sensor read returns) run in Python behind the memory-mapped
service port, with a fixed modeled cycle cost per service.

Import :class:`repro.kernel.machine.AmuletMachine` directly for the
firmware + CPU + scheduler bundle (kept out of this namespace to avoid
import cycles with the AFT, which builds kernel gates into firmware).
"""

from repro.kernel.layout import KernelLayout
from repro.kernel.api import amulet_api_table, SERVICE_COSTS
from repro.kernel.events import Event, EventType, EventQueue
from repro.kernel.fault import FaultRecord, FaultLog

__all__ = [
    "KernelLayout", "amulet_api_table", "SERVICE_COSTS",
    "Event", "EventType", "EventQueue",
    "FaultRecord", "FaultLog",
]
