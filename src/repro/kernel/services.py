"""Python-side service handlers behind the service port.

The gate assembly does the measured work (MPU/stack switching); these
handlers implement what the service *returns*.  Each costs its modeled
``SERVICE_COSTS`` cycles, added to the CPU's counter by the machine.

Application-provided pointers (``amulet_read_accel``'s buffer, the
display/log/storage buffers) are validated against the calling app's
region before the OS touches them — paper section 3: *"we need to
carefully handle application-provided pointers passed through API
calls to the OS"*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import KernelError
from repro.kernel import api as api_ids
from repro.kernel.fault import FaultOrigin
from repro.msp430.memory import MemoryMap


class SensorEnvironment:
    """Deterministic synthetic sensor world.

    The paper's workloads come from real wearables; we substitute
    seeded synthetic signals that exercise the same code paths (see
    DESIGN.md).  A linear congruential generator keeps runs reproducible
    without Python's global RNG state.
    """

    def __init__(self, seed: int = 0xC0FFEE):
        self._state = seed & 0x7FFFFFFF or 1
        self.time_ms = 0
        self.battery_percent = 87
        self.base_heart_rate = 72
        self.base_temperature = 215     # tenths of a degree C
        self.base_light = 300
        self.steps = 0

    def _rand(self) -> int:
        self._state = (1103515245 * self._state + 12345) & 0x7FFFFFFF
        return self._state >> 16

    def rand16(self) -> int:
        return self._rand() & 0xFFFF

    def heart_rate(self) -> int:
        return self.base_heart_rate + self._rand() % 9 - 4

    def temperature(self) -> int:
        return self.base_temperature + self._rand() % 7 - 3

    def light(self) -> int:
        return max(0, self.base_light + self._rand() % 101 - 50)

    # -- snapshot/restore --------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "state": self._state,
            "time_ms": self.time_ms,
            "battery_percent": self.battery_percent,
            "base_heart_rate": self.base_heart_rate,
            "base_temperature": self.base_temperature,
            "base_light": self.base_light,
            "steps": self.steps,
        }

    def load_state(self, state: dict) -> None:
        self._state = state["state"]
        self.time_ms = state["time_ms"]
        self.battery_percent = state["battery_percent"]
        self.base_heart_rate = state["base_heart_rate"]
        self.base_temperature = state["base_temperature"]
        self.base_light = state["base_light"]
        self.steps = state["steps"]

    def accel_sample(self) -> Tuple[int, int, int]:
        """Milli-g triple around 1 g on Z with noise, occasional spikes
        (so activity/fall-detection code has something to chew on)."""
        noise = lambda: self._rand() % 121 - 60
        x, y, z = noise(), noise(), 1000 + noise()
        if self._rand() % 50 == 0:       # movement burst
            x += 900
            z -= 700
        return (x & 0xFFFF, y & 0xFFFF, z & 0xFFFF)


@dataclass
class DisplayState:
    digits: List[int] = field(default_factory=list)
    texts: List[str] = field(default_factory=list)

    @property
    def last_digits(self) -> Optional[int]:
        return self.digits[-1] if self.digits else None


@dataclass
class LogState:
    words: List[int] = field(default_factory=list)
    buffers: List[bytes] = field(default_factory=list)


class ServiceRegistry:
    """Dispatches service-port writes to handlers."""

    def __init__(self, machine, env: Optional[SensorEnvironment] = None):
        self.machine = machine
        self.env = env if env is not None else SensorEnvironment()
        self.display = DisplayState()
        self.log = LogState()
        self.storage: Dict[int, bytes] = {}
        self.vibrations = 0
        self.app_timers: List[Tuple[str, int, int]] = []
        self.calls: Dict[int, int] = {}
        self._handlers: Dict[int, Callable[[], Optional[int]]] = {
            api_ids.SVC_GET_BATTERY: self._get_battery,
            api_ids.SVC_GET_HEART_RATE: self._get_heart_rate,
            api_ids.SVC_READ_ACCEL: self._read_accel,
            api_ids.SVC_GET_TEMPERATURE: self._get_temperature,
            api_ids.SVC_GET_LIGHT: self._get_light,
            api_ids.SVC_DISPLAY_DIGITS: self._display_digits,
            api_ids.SVC_DISPLAY_TEXT: self._display_text,
            api_ids.SVC_LOG_WORD: self._log_word,
            api_ids.SVC_LOG_BUFFER: self._log_buffer,
            api_ids.SVC_TIMER_SET: self._timer_set,
            api_ids.SVC_GET_TIME: self._get_time,
            api_ids.SVC_RAND: self._rand,
            api_ids.SVC_GET_STEPS: self._get_steps,
            api_ids.SVC_VIBRATE: self._vibrate,
            api_ids.SVC_STORAGE_WRITE: self._storage_write,
            api_ids.SVC_STORAGE_READ: self._storage_read,
        }

    # -- plumbing ------------------------------------------------------------
    def _arg(self, index: int) -> int:
        return self.machine.cpu.regs.read(12 + index)

    def dispatch(self, service_id: int) -> None:
        handler = self._handlers.get(service_id)
        if handler is None:
            raise KernelError(f"unknown service id {service_id}")
        self.calls[service_id] = self.calls.get(service_id, 0) + 1
        result = handler()
        self.machine.cpu.cycles += api_ids.SERVICE_COSTS[service_id]
        if result is not None:
            self.machine.cpu.regs.write(12, result & 0xFFFF)

    def _validate_pointer(self, address: int, size: int) -> bool:
        """Is [address, address+size) inside the calling app's writable
        region?  Shared-stack models also accept the (shared) SRAM
        stack, where such buffers legitimately live."""
        app = self.machine.current_app_layout()
        if app is None:
            return False
        end = address + size
        if app.seg_lo <= address and end <= app.seg_hi:
            return True
        if not self.machine.firmware.config.separate_stacks:
            # Shared-stack models: app locals live on the SRAM stack.
            if MemoryMap.SRAM_START <= address and \
                    end <= MemoryMap.SRAM_END + 1:
                return True
        return False

    def _checked_pointer(self, address: int, size: int) -> bool:
        if self._validate_pointer(address, size):
            return True
        self.machine.report_api_pointer_fault(address)
        return False

    # -- snapshot/restore -----------------------------------------------------
    def state_dict(self) -> dict:
        """OS-side service state: display/log/storage contents, call
        counters, the armed-timer log, and the sensor environment
        (including its LCG position, so resumed runs draw the same
        sample stream)."""
        return {
            "display_digits": list(self.display.digits),
            "display_texts": list(self.display.texts),
            "log_words": list(self.log.words),
            "log_buffers": [bytes(b) for b in self.log.buffers],
            "storage": {k: bytes(v) for k, v in self.storage.items()},
            "vibrations": self.vibrations,
            "app_timers": [list(t) for t in self.app_timers],
            "calls": dict(self.calls),
            "env": self.env.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.display.digits = list(state["display_digits"])
        self.display.texts = list(state["display_texts"])
        self.log.words = list(state["log_words"])
        self.log.buffers = [bytes(b) for b in state["log_buffers"]]
        self.storage = {k: bytes(v) for k, v in state["storage"].items()}
        self.vibrations = state["vibrations"]
        self.app_timers = [tuple(t) for t in state["app_timers"]]
        self.calls = dict(state["calls"])
        self.env.load_state(state["env"])

    # -- handlers -------------------------------------------------------------
    def _get_battery(self) -> int:
        return self.env.battery_percent

    def _get_heart_rate(self) -> int:
        return self.env.heart_rate()

    def _read_accel(self) -> None:
        buffer = self._arg(0)
        if not self._checked_pointer(buffer, 6):
            return
        x, y, z = self.env.accel_sample()
        memory = self.machine.cpu.memory
        with memory.supervisor():
            memory.write_word(buffer, x)
            memory.write_word(buffer + 2, y)
            memory.write_word(buffer + 4, z)

    def _get_temperature(self) -> int:
        return self.env.temperature()

    def _get_light(self) -> int:
        return self.env.light()

    def _display_digits(self) -> None:
        self.display.digits.append(self._arg(0))

    def _display_text(self) -> None:
        address = self._arg(0)
        text = self._read_cstring(address, limit=64)
        if text is not None:
            self.display.texts.append(text)

    def _read_cstring(self, address: int, limit: int) -> Optional[str]:
        memory = self.machine.cpu.memory
        chars = []
        for offset in range(limit):
            if not self._validate_pointer(address + offset, 1):
                self.machine.report_api_pointer_fault(address + offset)
                return None
            byte = memory.dump(address + offset, 1)[0]
            if byte == 0:
                break
            chars.append(chr(byte))
        return "".join(chars)

    def _log_word(self) -> None:
        self.log.words.append(self._arg(0))

    def _log_buffer(self) -> None:
        address, length = self._arg(0), self._arg(1)
        length = min(length, 128)
        if not self._checked_pointer(address, max(length, 1)):
            return
        self.log.buffers.append(
            self.machine.cpu.memory.dump(address, length))

    def _timer_set(self) -> int:
        event_id, ticks = self._arg(0), self._arg(1)
        app = self.machine.current_app
        self.app_timers.append((app, event_id, ticks))
        if self.machine.scheduler is not None:
            self.machine.scheduler.arm_app_timer(app, event_id, ticks)
        return 0

    def _get_time(self) -> int:
        return self.env.time_ms & 0xFFFF

    def _rand(self) -> int:
        return self.env.rand16() & 0x7FFF

    def _get_steps(self) -> int:
        return self.env.steps & 0xFFFF

    def _vibrate(self) -> None:
        self.vibrations += 1

    def _storage_write(self) -> int:
        key, address, length = self._arg(0), self._arg(1), self._arg(2)
        length = min(length, 128)
        if not self._checked_pointer(address, max(length, 1)):
            return 0xFFFF
        self.storage[key] = self.machine.cpu.memory.dump(address, length)
        return 0

    def _storage_read(self) -> int:
        key, address, length = self._arg(0), self._arg(1), self._arg(2)
        blob = self.storage.get(key)
        if blob is None:
            return 0xFFFF
        length = min(length, len(blob))
        if not self._checked_pointer(address, max(length, 1)):
            return 0xFFFF
        memory = self.machine.cpu.memory
        with memory.supervisor():
            for offset in range(length):
                memory.write_byte(address + offset, blob[offset])
        return length
