"""Context-switch gate generation (paper section 3, "Context Switches").

*"We need to swap MPU configurations and change stacks on each
transition, and we need to carefully handle application-provided
pointers passed through API calls to the OS.  Furthermore, because each
app, and the OS, has a separate stack segment, we need to change the
stack pointer on every transition between the OS and an app."*

Three gate flavours are generated per memory model:

* ``__dispatch_<app>`` — OS→app event delivery: save the OS register
  context, (separate-stack models) switch to the app's stack,
  (MPU model) program the MPU with the app's segment config, call the
  handler, then undo everything.  This is the "context switch" the
  experiments measure.
* ``__api_<fn>`` — app→OS API call: (MPU model) switch the MPU to the
  OS config *first* (OS data is execute-only under the app config),
  swap to the OS stack, ring the service port, and restore.
* ``__fault`` — the software-check landing pad: force the OS MPU
  config, report through the fault port, halt.

The per-app MPU register values (``__mpu_<app>_segb1`` etc.) are
absolute symbols defined by AFT phase 4 after placement — the gate code
is emitted with placeholders exactly as the paper describes for its
phase 2, and the linker patches them.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.aft.models import ModelConfig
from repro.cc.symbols import ApiTable
from repro.kernel.layout import KernelLayout
from repro.msp430.mpu import (
    MPUCTL0,
    MPUSAM,
    MPUSEGB1,
    MPUSEGB2,
    MPU_PASSWORD,
    MPUENA,
)
from repro.ports import DONE_PORT, FAULT_PORT, SVC_PORT

_MPU_ENABLE_WORD = (MPU_PASSWORD << 8) | MPUENA

#: registers the dispatch gate saves/restores around a handler run
_SAVED_REGS = ("R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11")


def mpu_value_symbols(app_name: str) -> List[str]:
    prefix = f"__mpu_{app_name}"
    return [f"{prefix}_segb1", f"{prefix}_segb2", f"{prefix}_sam"]


def _emit_mpu_config(lines: List[str], segb1: str, segb2: str,
                     sam: str, via_memory: bool = False) -> None:
    """Program the MPU.  ``via_memory`` reads the three values from OS
    data slots instead of immediates (used on the API return path, which
    is shared across apps)."""
    amp = "&" if via_memory else "#"
    lines.append(f"        MOV #{_MPU_ENABLE_WORD}, &0x{MPUCTL0:04X}")
    lines.append(f"        MOV {amp}{segb1}, &0x{MPUSEGB1:04X}")
    lines.append(f"        MOV {amp}{segb2}, &0x{MPUSEGB2:04X}")
    lines.append(f"        MOV {amp}{sam}, &0x{MPUSAM:04X}")


def generate_os_asm(app_names: Sequence[str], config: ModelConfig,
                    api: ApiTable,
                    layout: KernelLayout) -> str:
    """The OS translation unit: gates, API stubs, fault sink, OS data."""
    lines: List[str] = ["        .text"]
    emits_mpu = config.uses_mpu or config.advanced_mpu

    # ------------------------------------------------------------------ text
    for app_id, app in enumerate(app_names):
        lines.append(f"        .global __dispatch_{app}")
        lines.append(f"__dispatch_{app}:")
        for reg in _SAVED_REGS:
            lines.append(f"        PUSH {reg}")
        # Event bookkeeping a real AmuletOS scheduler performs: current
        # app id, handler pointer, dispatch counter.
        lines.append(f"        MOV #{app_id}, &__cur_app_id")
        lines.append("        MOV R12, &__cur_handler")
        lines.append("        ADD #1, &__dispatch_count")
        if config.separate_stacks:
            if emits_mpu:
                # Record this app's MPU values so the shared API-return
                # path can restore them.
                b1, b2, sam = mpu_value_symbols(app)
                lines.append(f"        MOV #{b1}, &__cur_segb1")
                lines.append(f"        MOV #{b2}, &__cur_segb2")
                lines.append(f"        MOV #{sam}, &__cur_sam")
            lines.append("        MOV SP, &__os_sp_save")
            lines.append(f"        MOV &__app_{app}_sp, SP")
        if emits_mpu:
            b1, b2, sam = mpu_value_symbols(app)
            _emit_mpu_config(lines, b1, b2, sam)
        # Handler arrives in R12, its arguments in R13-R15.
        lines.append("        MOV R12, R11")
        lines.append("        MOV R13, R12")
        lines.append("        MOV R14, R13")
        lines.append("        MOV R15, R14")
        lines.append("        CALL R11")
        if emits_mpu:
            # Back to the OS config *before* touching OS data.
            _emit_mpu_config(lines, "__mpu_os_segb1", "__mpu_os_segb2",
                             "__mpu_os_sam")
        if config.separate_stacks:
            lines.append(f"        MOV SP, &__app_{app}_sp")
            lines.append("        MOV &__os_sp_save, SP")
        for reg in reversed(_SAVED_REGS):
            lines.append(f"        POP {reg}")
        lines.append(f"        MOV #1, &0x{DONE_PORT:04X}")
        lines.append("        BR #__park")
        lines.append("")

    # API gate stubs, one per approved function.
    for api_fn in api.functions.values():
        stub = api.gate_symbol(api_fn.name)
        lines.append(f"        .global {stub}")
        lines.append(f"{stub}:")
        if emits_mpu:
            _emit_mpu_config(lines, "__mpu_os_segb1", "__mpu_os_segb2",
                             "__mpu_os_sam")
        if config.separate_stacks:
            lines.append("        MOV SP, &__svc_app_sp")
            lines.append("        MOV &__os_sp_save, SP")
        lines.append(f"        MOV #{api_fn.service_id}, "
                     f"&0x{SVC_PORT:04X}")
        if config.separate_stacks:
            lines.append("        MOV &__svc_app_sp, SP")
        if emits_mpu:
            _emit_mpu_config(lines, "__cur_segb1", "__cur_segb2",
                             "__cur_sam", via_memory=True)
        lines.append("        RET")
        lines.append("")

    # Fault sink for the compiler-inserted checks.
    lines.append("        .global __fault")
    lines.append("__fault:")
    if emits_mpu:
        _emit_mpu_config(lines, "__mpu_os_segb1", "__mpu_os_segb2",
                         "__mpu_os_sam")
    lines.append(f"        MOV #1, &0x{FAULT_PORT:04X}")
    lines.append(f"        MOV #1, &0x{DONE_PORT:04X}")
    lines.append("        .global __park")
    lines.append("__park:")
    lines.append("        JMP __park")
    lines.append("")

    # --------------------------------------------------------------- OS data
    # Kernel slots and the approved system globals live in SRAM: the
    # MPU cannot protect SRAM (a documented hardware limitation the
    # paper lists), which here is a *feature* — apps can read approved
    # sysvars under their own MPU configuration, where all of FRAM
    # below them is execute-only.
    lines.append("        .section .os.sram")
    for slot in ("__os_sp_save", "__svc_app_sp", "__cur_app_id",
                 "__cur_handler", "__dispatch_count", "__cur_segb1",
                 "__cur_segb2", "__cur_sam"):
        lines.append(f"        .global {slot}")
        lines.append(f"{slot}:")
        lines.append("        .word 0")
    if config.separate_stacks:
        for app in app_names:
            lines.append(f"        .global __app_{app}_sp")
            lines.append(f"__app_{app}_sp:")
            lines.append(f"        .word __app_{app}_stack_top")

    # Approved system globals, readable by every app.
    for name in api.sysvars:
        symbol = api.sysvar_symbol(name)
        lines.append(f"        .global {symbol}")
        lines.append(f"{symbol}:")
        lines.append("        .word 0")

    return "\n".join(lines) + "\n"
