"""Event-driven scheduler with fault-handling policies.

Drives app state machines by delivering events from periodic sources
(sensor samples, clock ticks) and app-armed timers, in timestamp order.
Tracks per-app statistics the profiler consumes, and implements the
restart policies the paper's section 5 floats as future work
("restart policies for applications that trigger a memory access
fault").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import KernelError
from repro.kernel.events import Event, EventQueue, EventType, \
    PeriodicSource
from repro.kernel.machine import AmuletMachine, DispatchResult


class RestartPolicy(enum.Enum):
    #: faulted app is disabled until reboot (the paper's default: the
    #: FAULT handler logs and the app stops)
    DISABLE = "disable"
    #: faulted app keeps receiving events (log-and-continue)
    CONTINUE = "continue"
    #: faulted app is suspended for a cooldown, then resumes
    RESTART_AFTER = "restart-after"


@dataclass
class AppSchedule:
    """An app's event subscriptions."""

    app: str
    sources: List[PeriodicSource] = field(default_factory=list)
    #: handler for app-armed timers (amulet_timer_set)
    timer_handler: Optional[str] = None


@dataclass
class SchedulerStats:
    events_delivered: int = 0
    events_dropped: int = 0
    faults: int = 0
    #: times a suspended app was re-enabled under RESTART_AFTER
    restarts: int = 0
    per_app_cycles: Dict[str, int] = field(default_factory=dict)
    per_app_events: Dict[str, int] = field(default_factory=dict)
    per_app_faults: Dict[str, int] = field(default_factory=dict)
    per_app_restarts: Dict[str, int] = field(default_factory=dict)

    def record(self, result: DispatchResult) -> None:
        self.events_delivered += 1
        self.per_app_cycles[result.app] = \
            self.per_app_cycles.get(result.app, 0) + result.cycles
        self.per_app_events[result.app] = \
            self.per_app_events.get(result.app, 0) + 1
        if result.faulted:
            self.faults += 1
            self.per_app_faults[result.app] = \
                self.per_app_faults.get(result.app, 0) + 1


class Scheduler:
    def __init__(self, machine: AmuletMachine,
                 policy: RestartPolicy = RestartPolicy.DISABLE,
                 restart_cooldown_ms: int = 1000):
        self.machine = machine
        machine.scheduler = self
        self.policy = policy
        self.restart_cooldown_ms = restart_cooldown_ms
        self.queue = EventQueue()
        self.schedules: Dict[str, AppSchedule] = {}
        self.stats = SchedulerStats()
        self.now_ms = 0
        self._suspended_until: Dict[str, int] = {}
        self.trace: List[DispatchResult] = []
        self.keep_trace = False
        #: optional dispatch interposer ``(app, handler, args) ->
        #: DispatchResult`` used by :meth:`step` in place of
        #: ``machine.dispatch`` while set.  The fleet cohort layer
        #: installs a recorder (leader) or replayer (follower) here for
        #: the duration of one segment; it must be behaviorally
        #: indistinguishable from ``machine.dispatch``.  Note the hook
        #: runs *after* ``_sample_args`` — sensor argument draws have
        #: already advanced the environment's LCG.
        self.dispatch_fn = None

    # -- configuration ----------------------------------------------------------
    def add_app(self, schedule: AppSchedule) -> None:
        if schedule.app not in self.machine.firmware.apps:
            raise KernelError(f"unknown app {schedule.app!r}")
        self.schedules[schedule.app] = schedule

    def seed_events(self, horizon_ms: int, start_ms: int = 0) -> int:
        """Queue every periodic event in ``[start_ms, horizon_ms)``.

        Window-by-window seeding inserts the same events in the same
        relative (schedule, source, time) order as one full-horizon
        call, so same-timestamp tie-breaks are stable either way."""
        count = 0
        for schedule in self.schedules.values():
            for source in schedule.sources:
                for event in source.events_until(horizon_ms, start_ms):
                    self.queue.push(event)
                    count += 1
        return count

    def arm_app_timer(self, app: str, event_id: int, ticks: int) -> None:
        """Called by the timer service: deliver an APP_TIMER event
        ``ticks`` milliseconds from now."""
        schedule = self.schedules.get(app)
        handler = schedule.timer_handler if schedule else None
        if handler is None:
            return
        self.queue.push(Event(self.now_ms + max(ticks, 1), app, handler,
                              EventType.APP_TIMER, (event_id,)))

    # -- execution ----------------------------------------------------------------
    def _app_available(self, app: str) -> bool:
        state = self.machine.app_state[app]
        if not state.disabled:
            return True
        if self.policy is RestartPolicy.CONTINUE:
            return True
        if self.policy is RestartPolicy.RESTART_AFTER:
            until = self._suspended_until.get(app, 0)
            if self.now_ms >= until:
                state.disabled = False
                self.stats.restarts += 1
                self.stats.per_app_restarts[app] = \
                    self.stats.per_app_restarts.get(app, 0) + 1
                return True
        return False

    def _handle_fault(self, result: DispatchResult) -> None:
        state = self.machine.app_state[result.app]
        if self.policy is RestartPolicy.DISABLE:
            state.disabled = True
        elif self.policy is RestartPolicy.RESTART_AFTER:
            state.disabled = True
            self._suspended_until[result.app] = \
                self.now_ms + self.restart_cooldown_ms

    def _sample_args(self, event: Event) -> Sequence[int]:
        """Sensor events carry live sample values in their arguments
        (delivered to the handler in R13-R15 by the dispatch gate)."""
        if event.args:
            return event.args
        env = self.machine.services.env
        if event.event_type is EventType.ACCEL_SAMPLE:
            return env.accel_sample()
        if event.event_type is EventType.HR_SAMPLE:
            return (env.heart_rate(),)
        if event.event_type is EventType.TEMP_SAMPLE:
            return (env.temperature(),)
        if event.event_type is EventType.LIGHT_SAMPLE:
            return (env.light(),)
        if event.event_type is EventType.BATTERY:
            return (env.battery_percent,)
        if event.event_type is EventType.CLOCK_TICK:
            return ((self.now_ms // 1000) & 0xFFFF,)
        return ()

    def step(self, before_ms: Optional[int] = None
             ) -> Optional[DispatchResult]:
        """Deliver the next queued event; None when the queue is dry.

        With ``before_ms``, events timestamped at or after it stay
        queued and None is returned once no deliverable event remains
        before the boundary — the fleet driver drains one checkpoint
        segment at a time this way."""
        while self.queue:
            if before_ms is not None and \
                    self.queue.peek_time() >= before_ms:
                return None
            event = self.queue.pop()
            self.now_ms = max(self.now_ms, event.time)
            self.machine.services.env.time_ms = self.now_ms
            if not self._app_available(event.app):
                self.stats.events_dropped += 1
                continue
            args = self._sample_args(event)
            dispatch = self.dispatch_fn or self.machine.dispatch
            result = dispatch(event.app, event.handler, args)
            self.stats.record(result)
            if self.keep_trace:
                self.trace.append(result)
            if result.faulted:
                self._handle_fault(result)
            return result
        return None

    # -- snapshot/restore --------------------------------------------------
    def state_dict(self) -> dict:
        """Dynamic scheduler state: clock, pending events, suspension
        deadlines, and statistics.  Configuration (policy, schedules,
        cooldown) is reconstructed alongside the machine, and the
        optional dispatch trace is diagnostic-only — neither is
        captured."""
        stats = self.stats
        return {
            "now_ms": self.now_ms,
            "queue": self.queue.state_dict(),
            "suspended_until": dict(self._suspended_until),
            "stats": {
                "events_delivered": stats.events_delivered,
                "events_dropped": stats.events_dropped,
                "faults": stats.faults,
                "restarts": stats.restarts,
                "per_app_cycles": dict(stats.per_app_cycles),
                "per_app_events": dict(stats.per_app_events),
                "per_app_faults": dict(stats.per_app_faults),
                "per_app_restarts": dict(stats.per_app_restarts),
            },
        }

    def load_state(self, state: dict) -> None:
        self.now_ms = state["now_ms"]
        self.queue.load_state(state["queue"])
        self._suspended_until = dict(state["suspended_until"])
        s = state["stats"]
        self.stats = SchedulerStats(
            events_delivered=s["events_delivered"],
            events_dropped=s["events_dropped"],
            faults=s["faults"],
            restarts=s["restarts"],
            per_app_cycles=dict(s["per_app_cycles"]),
            per_app_events=dict(s["per_app_events"]),
            per_app_faults=dict(s["per_app_faults"]),
            per_app_restarts=dict(s["per_app_restarts"]),
        )
        self.machine.services.env.time_ms = self.now_ms

    def run(self, horizon_ms: int,
            max_events: Optional[int] = None) -> SchedulerStats:
        """Seed periodic events up to ``horizon_ms`` and drain them."""
        self.seed_events(horizon_ms)
        delivered = 0
        while self.queue:
            if max_events is not None and delivered >= max_events:
                break
            if self.step() is not None:
                delivered += 1
        return self.stats
