"""Event model for the AmuletOS scheduler.

AmuletOS "provides the core system services and an event-based
scheduler that drives the apps' state machines, delivering events by
calling the appropriate event-handler function with parameters
representing the details of the event" (paper section 3).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple


class EventType(enum.Enum):
    TIMER = "timer"
    CLOCK_TICK = "clock-tick"
    ACCEL_SAMPLE = "accel-sample"
    HR_SAMPLE = "hr-sample"
    TEMP_SAMPLE = "temp-sample"
    LIGHT_SAMPLE = "light-sample"
    BUTTON = "button"
    BATTERY = "battery"
    APP_TIMER = "app-timer"       # armed via amulet_timer_set


@dataclass(frozen=True)
class Event:
    """One deliverable event.

    ``time`` is in milliseconds of simulated wall-clock.  ``args`` are
    the (at most three) integer parameters passed to the handler in
    R13-R15 by the dispatch gate.
    """

    time: int
    app: str
    handler: str
    event_type: EventType
    args: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(self.args) > 3:
            raise ValueError("events carry at most 3 arguments")


class EventQueue:
    """A time-ordered queue; stable for same-timestamp events."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._seq = 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, self._seq, event))
        self._seq += 1

    def pop(self) -> Event:
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    # -- snapshot/restore --------------------------------------------------
    def state_dict(self) -> dict:
        """Pending events in canonical (time, seq) order.  Pop order is
        fully determined by the (time, seq) keys, so restoring from the
        sorted list reproduces the exact delivery sequence regardless
        of the original heap's internal array layout."""
        entries = sorted(self._heap, key=lambda e: (e[0], e[1]))
        return {
            "seq": self._seq,
            "events": [
                [t, n, [e.time, e.app, e.handler, e.event_type.value,
                        list(e.args)]]
                for t, n, e in entries],
        }

    def load_state(self, state: dict) -> None:
        self._seq = state["seq"]
        # a (time, seq)-sorted list is a valid heap as-is
        self._heap = [
            (t, n, Event(ev[0], ev[1], ev[2], EventType(ev[3]),
                         tuple(ev[4])))
            for t, n, ev in state["events"]]


@dataclass(frozen=True)
class PeriodicSource:
    """A recurring event source (sensor sample, clock tick...)."""

    app: str
    handler: str
    event_type: EventType
    period_ms: int
    args: Tuple[int, ...] = ()
    phase_ms: int = 0

    def events_until(self, end_ms: int,
                     start_ms: int = 0) -> Iterator[Event]:
        """Events in ``[start_ms, end_ms)``.  Seeding a horizon window
        by window (``[0, a)`` then ``[a, b)``) yields exactly the same
        events as seeding ``[0, b)`` in one call — the fleet driver's
        checkpoint segments depend on that."""
        time = self.phase_ms
        if start_ms > time:
            periods = -((time - start_ms) // self.period_ms)
            time += periods * self.period_ms
        while time < end_ms:
            yield Event(time, self.app, self.handler, self.event_type,
                        self.args)
            time += self.period_ms
