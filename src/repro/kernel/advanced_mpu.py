"""Hypothetical "advanced MPU" for the paper's future-work ablation.

Paper section 5: *"We envision extending our approach to work with more
advanced MPUs ... MPUs that can protect all of memory and support 4 or
more regions would negate the need for our compiler-inserted bounds
checks."*

This model covers **all** of memory (including SRAM and InfoMem) and
expresses four effective regions while the current app runs:

* below the app's code — no access (except the read-only OS-sysvar
  window in SRAM)
* app code — execute-only
* app data/stack — read/write
* above the app — no access

It listens on the same MPU register addresses the gates already write,
so context-switch cost is identical to the real-MPU configuration; only
the *coverage* is idealized.  Configuration writes are not privileged
in this model (a real part would gate them behind a privilege level);
see DESIGN.md.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import MpuViolationError
from repro.msp430.memory import EXECUTE, MemoryMap, READ, WRITE
from repro.msp430.mpu import (
    MPUCTL0,
    MPUSAM,
    MPUSEGB1,
    MPUSEGB2,
    MPUENA,
    MPU_PASSWORD,
)

#: SAM value the gates write for an app configuration
#: (seg1 --X, seg2 RW-, seg3 ---)
_APP_SAM = 0b0100 | (0b0011 << 4) | (0b0000 << 8)


class AdvancedMpu:
    """Drop-in for :class:`repro.msp430.mpu.Mpu` with ideal coverage."""

    def __init__(self) -> None:
        self.ctl0 = 0
        self.segb1 = 0
        self.segb2 = 0
        self.sam = 0xFFFF
        #: the app's code base; provided by the machine at dispatch so
        #: the fourth region (below-code no-access) is expressible.
        self.code_lo = 0
        #: read-only OS sysvar window (SRAM) the app may read
        self._sysvar_window: Optional[Tuple[int, int]] = None
        self.violation_address: Optional[int] = None
        self.violation_kind: Optional[str] = None
        self._memory = None

    @property
    def sysvar_window(self) -> Optional[Tuple[int, int]]:
        return self._sysvar_window

    @sysvar_window.setter
    def sysvar_window(self, window: Optional[Tuple[int, int]]) -> None:
        self._sysvar_window = window
        self._config_changed()

    def _config_changed(self) -> None:
        if self._memory is not None:
            self._memory.invalidate_permissions()

    def attach(self, memory) -> None:
        memory.mpu = self
        self._memory = memory
        memory.invalidate_permissions()
        memory.add_io(MPUCTL0, read=lambda: self.ctl0,
                      write=self._write_ctl0)
        memory.add_io(MPUSEGB1, read=lambda: self.segb1,
                      write=lambda a, v: self._write_config(
                          a, v, "segb1"))
        memory.add_io(MPUSEGB2, read=lambda: self.segb2,
                      write=lambda a, v: self._write_config(
                          a, v, "segb2"))
        memory.add_io(MPUSAM, read=lambda: self.sam,
                      write=lambda a, v: self._write_config(a, v,
                                                            "sam"))
        self._config_unlocked = False

    def _write_ctl0(self, _addr: int, value: int) -> None:
        if (value >> 8) == MPU_PASSWORD:
            self.ctl0 = value & 0xFFFF
            self._config_unlocked = True
            self._config_changed()
        elif self.enabled and self.app_mode:
            # Unlike the real FR58xx MPU, this hypothetical part keeps
            # its configuration privileged: a config write without the
            # password from app context is itself a violation.
            self.violation_address = _addr
            self.violation_kind = WRITE
            raise MpuViolationError(_addr, WRITE, segment=4)

    def _write_config(self, addr: int, value: int, field: str) -> None:
        if self.enabled and self.app_mode and not self._config_unlocked:
            self.violation_address = addr
            self.violation_kind = WRITE
            raise MpuViolationError(addr, WRITE, segment=4)
        setattr(self, field, value)
        if field == "sam":
            # a full reconfiguration ends the unlocked window
            self._config_unlocked = False
        self._config_changed()

    def force_os_mode(self) -> None:
        """Fault recovery: the gate's exit path never ran, so the
        machine resets the MPU view directly (mirroring what its fault
        handler would do on real hardware)."""
        self.sam = 0xFFFF
        self._config_unlocked = False
        self._config_changed()

    # -- snapshot/restore ---------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "ctl0": self.ctl0,
            "segb1": self.segb1,
            "segb2": self.segb2,
            "sam": self.sam,
            "config_unlocked": self._config_unlocked,
            "violation_address": self.violation_address,
            "violation_kind": self.violation_kind,
        }

    def load_state(self, state: dict) -> None:
        self.ctl0 = state["ctl0"] & 0xFFFF
        self.segb1 = state["segb1"] & 0xFFFF
        self.segb2 = state["segb2"] & 0xFFFF
        self.sam = state["sam"] & 0xFFFF
        self._config_unlocked = state["config_unlocked"]
        self.violation_address = state["violation_address"]
        self.violation_kind = state["violation_kind"]
        self._config_changed()

    @property
    def enabled(self) -> bool:
        return bool(self.ctl0 & MPUENA)

    @property
    def app_mode(self) -> bool:
        return (self.sam & 0x0FFF) == _APP_SAM

    @property
    def b1(self) -> int:
        return (self.segb1 << 4) & 0xFFFF

    @property
    def b2(self) -> int:
        return (self.segb2 << 4) & 0xFFFF

    def permission_signature(self) -> tuple:
        """Hashable summary of everything :meth:`check` depends on;
        keys the bus's memoized per-configuration bitmaps."""
        return ("advanced", self.ctl0 & MPUENA, self.sam & 0x0FFF,
                self.segb1, self.segb2, self._sysvar_window)

    def permission_overlay(self):
        """Flat per-address allowed-bits map mirroring :meth:`check`:
        deny everywhere, then OR in each grant the check logic has
        (ports, configuration registers, X-only code, RW data, the
        read-only sysvar window)."""
        if not self.enabled or not self.app_mode:
            return None
        from repro.msp430.memory import (
            OR_TABLES, PERM_R, PERM_W, PERM_X, MemoryMap as _Map,
        )
        overlay = bytearray(0x10000)

        def grant(start: int, end: int, bits: int) -> None:
            start = min(max(start, 0), 0x10000)
            end = min(max(end, start), 0x10000)
            if end > start:
                overlay[start:end] = \
                    overlay[start:end].translate(OR_TABLES[bits])

        # kernel ports and the MPU's own registers pass every kind
        grant(0x01F0, 0x01F8, PERM_R | PERM_W | PERM_X)
        grant(MPUCTL0, MPUSAM + 2, PERM_R | PERM_W | PERM_X)
        # code region (plus OS gates below it): execute-only
        grant(_Map.FRAM_START, self.b1, PERM_X)
        # data/stack region: read/write
        grant(self.b1, self.b2, PERM_R | PERM_W)
        # OS sysvar window: read-only
        if self._sysvar_window is not None:
            grant(self._sysvar_window[0], self._sysvar_window[1],
                  PERM_R)
        return bytes(overlay)

    def check(self, address: int, kind: str) -> None:
        if not self.enabled or not self.app_mode:
            return
        # Always let the configuration and kernel ports through: the
        # gate instructions that *leave* app mode execute in app mode.
        if 0x01F0 <= address <= 0x01F7 or MPUCTL0 <= address <= MPUSAM + 1:
            return
        allowed = self._allowed(address, kind)
        if allowed:
            return
        self.violation_address = address
        self.violation_kind = kind
        raise MpuViolationError(address, kind, segment=4)

    def _allowed(self, address: int, kind: str) -> bool:
        b1, b2 = self.b1, self.b2
        if kind == EXECUTE:
            # code region plus the OS gates below it (a real advanced
            # MPU would make the gate pages a fifth, X-only region).
            return MemoryMap.FRAM_START <= address < b1
        if kind == READ:
            if b1 <= address < b2:
                return True
            window = self.sysvar_window
            return window is not None and window[0] <= address < window[1]
        # WRITE
        return b1 <= address < b2
