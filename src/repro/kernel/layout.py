"""Kernel memory-layout constants (paper Figure 1).

* SRAM holds the AmuletOS stack.
* Low FRAM holds OS code and data (and the context-switch gates).
* High FRAM holds the apps, grouped per app: code, then stack, then
  data, so one MPU boundary (B1) separates executable from writable
  memory and a stack overflow walks into execute-only code and faults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.msp430.memory import MemoryMap


@dataclass(frozen=True)
class KernelLayout:
    """Addresses carving up the FR5969 map for the firmware build."""

    #: OS stack: top of SRAM, growing down.
    os_stack_top: int = MemoryMap.SRAM_END + 1
    #: OS (code + data) region in low FRAM.
    os_base: int = MemoryMap.FRAM_START
    os_limit: int = 0x6FFF             # inclusive; apps start above
    #: Application region in high FRAM.
    app_base: int = 0x7000
    app_limit: int = MemoryMap.FRAM_END

    def validate(self) -> None:
        if self.os_base % 16 or self.app_base % 16:
            raise ValueError("region bases must be 16-byte aligned "
                             "(MPU boundary granularity)")
        if not (MemoryMap.FRAM_START <= self.os_base < self.os_limit
                < self.app_base < self.app_limit
                <= MemoryMap.FRAM_END):
            raise ValueError("inconsistent kernel layout")


DEFAULT_LAYOUT = KernelLayout()
