"""Fault records and the FAULT log.

Paper section 3, "Memory accesses": *"when the app attempts an invalid
memory access, it jumps to a FAULT function to log app-specific
information about the fault."*  Hardware (MPU) violations arrive as CPU
faults; software-check violations arrive through the fault port.  Both
end up here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class FaultOrigin(enum.Enum):
    SOFTWARE_CHECK = "software-check"     # compiler-inserted check
    MPU = "mpu-violation"                 # hardware segment violation
    BUS = "bus-error"                     # unmapped / illegal access
    API_POINTER = "api-pointer"           # bad pointer passed to the OS
    RUNAWAY = "runaway"                   # cycle budget exhausted


@dataclass(frozen=True)
class FaultRecord:
    app: Optional[str]
    origin: FaultOrigin
    pc: int
    address: int
    cycle: int
    detail: str = ""

    def describe(self) -> str:
        who = self.app if self.app else "<unknown app>"
        return (f"FAULT[{self.origin.value}] app={who} "
                f"pc=0x{self.pc:04X} addr=0x{self.address:04X} "
                f"cycle={self.cycle}"
                + (f" ({self.detail})" if self.detail else ""))


@dataclass
class FaultLog:
    records: List[FaultRecord] = field(default_factory=list)

    def log(self, record: FaultRecord) -> None:
        self.records.append(record)

    def for_app(self, app: str) -> List[FaultRecord]:
        return [r for r in self.records if r.app == app]

    # -- snapshot/restore ---------------------------------------------------
    def state_dict(self) -> dict:
        return {"records": [
            {"app": r.app, "origin": r.origin.value, "pc": r.pc,
             "address": r.address, "cycle": r.cycle, "detail": r.detail}
            for r in self.records]}

    def load_state(self, state: dict) -> None:
        self.records = [
            FaultRecord(app=d["app"], origin=FaultOrigin(d["origin"]),
                        pc=d["pc"], address=d["address"],
                        cycle=d["cycle"], detail=d["detail"])
            for d in state["records"]]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
