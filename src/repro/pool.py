"""Shared process fan-out helper.

Both parallel front-ends — ``repro experiments --jobs N`` and
``repro fleet run --jobs N`` — decompose their work into *cells* that
share nothing with each other and submit them to a worker pool.  This
module owns the pool so the two don't each reimplement it:

* ``worker_pool(jobs)`` returns a context-managed pool with the
  ``submit(fn, *args) -> future`` surface of
  :class:`~concurrent.futures.ProcessPoolExecutor`.  For ``jobs <= 1``
  it returns a :class:`SerialPool` whose ``submit`` runs the function
  *immediately, inline, in submission order* — no ``multiprocessing``
  import, no worker processes, no pickling — so the serial path of
  every caller stays byte-identical to a plain loop.
* Submitted functions must live at module level (picklable under any
  start method) and take/return picklable values, exactly as the
  experiment cell workers always have.

Exceptions raised by a cell surface from ``future.result()`` in both
modes.  A worker process dying outright (crash injection, OOM, kill)
surfaces as :class:`concurrent.futures.process.BrokenProcessPool`;
callers that checkpoint (the fleet executor) treat that as "resume me
later", callers that don't (experiments) let it propagate.
"""

from __future__ import annotations

from typing import Any, Callable


class SerialFuture:
    """An already-resolved future: ``result()`` returns or re-raises."""

    def __init__(self, value: Any = None,
                 error: BaseException = None):
        self._value = value
        self._error = error

    def result(self, timeout: float = None) -> Any:
        if self._error is not None:
            raise self._error
        return self._value

    def done(self) -> bool:
        return True


class SerialPool:
    """Pool stand-in that runs every submission inline.

    Submission order *is* execution order, so results are produced
    exactly as a plain serial loop would produce them.
    """

    def submit(self, fn: Callable, *args: Any,
               **kwargs: Any) -> SerialFuture:
        try:
            return SerialFuture(value=fn(*args, **kwargs))
        except BaseException as error:      # re-raised at result()
            return SerialFuture(error=error)

    def __enter__(self) -> "SerialPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


def completed(futures):
    """Yield futures in completion order — the primitive behind the
    fleet coordinator's work-stealing fold (results are consumed the
    moment a worker finishes a unit, not in submission order).

    Serial futures are already resolved at submission, so submission
    order *is* completion order and the serial path stays a plain
    loop; process-pool futures go through
    :func:`concurrent.futures.as_completed`.
    """
    futures = list(futures)
    if any(isinstance(future, SerialFuture) for future in futures):
        yield from futures
        return
    from concurrent.futures import as_completed
    yield from as_completed(futures)


def worker_pool(jobs: int):
    """A context-managed pool: processes for ``jobs > 1``, else serial.

    Workers are forked where the platform allows it, so they inherit
    the parent's warm in-process state copy-on-write — the shared
    execution cache and machine prototypes built during earlier
    serial work (or a prior model's campaign) come along for free
    instead of every worker re-translating from scratch.  Platforms
    without ``fork`` (Windows, some macOS configs) fall back to the
    default start method; only warm-up speed differs, never results.
    """
    if jobs <= 1:
        return SerialPool()
    from concurrent.futures import ProcessPoolExecutor
    try:
        import multiprocessing
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = None
    return ProcessPoolExecutor(max_workers=jobs, mp_context=context)
