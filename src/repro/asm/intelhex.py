"""Intel HEX encoding of firmware images.

MSP430 toolchains ship firmware as Intel HEX (``.hex``) files — TI's
FET programmers, ``mspdebug`` and the BSL all consume it.  The AFT's
:class:`~repro.asm.linker.Image` exports to the same format, so a
firmware built here is byte-comparable with real toolchain output and
can be diffed, archived, or inspected with standard tools.

Only the record types a 64 KB part needs are implemented:
``00`` (data) and ``01`` (end of file).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import ReproError


class HexFormatError(ReproError):
    """Malformed Intel HEX input."""


def _record(address: int, record_type: int, payload: bytes) -> str:
    body = bytes([len(payload), (address >> 8) & 0xFF, address & 0xFF,
                  record_type]) + payload
    checksum = (-sum(body)) & 0xFF
    return ":" + (body + bytes([checksum])).hex().upper()


def encode(segments: Iterable[Tuple[int, bytes]],
           record_size: int = 16) -> str:
    """Encode (address, blob) segments as Intel HEX text."""
    lines: List[str] = []
    for address, blob in sorted(segments, key=lambda s: s[0]):
        if not blob:
            continue
        if address + len(blob) > 0x10000:
            raise HexFormatError(
                f"segment at 0x{address:04X} exceeds 64 KB space")
        for offset in range(0, len(blob), record_size):
            chunk = blob[offset:offset + record_size]
            lines.append(_record(address + offset, 0x00, chunk))
    lines.append(_record(0, 0x01, b""))
    return "\n".join(lines) + "\n"


def encode_image(image, record_size: int = 16) -> str:
    """Encode a linked :class:`~repro.asm.linker.Image`."""
    return encode(image.segments, record_size)


def decode(text: str) -> Dict[int, int]:
    """Decode Intel HEX text into an {address: byte} map."""
    memory: Dict[int, int] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if not line.startswith(":"):
            raise HexFormatError(
                f"line {line_number}: missing ':' start code")
        try:
            body = bytes.fromhex(line[1:])
        except ValueError as exc:
            raise HexFormatError(
                f"line {line_number}: bad hex digits") from exc
        if len(body) < 5:
            raise HexFormatError(f"line {line_number}: truncated record")
        count, high, low, record_type = body[0], body[1], body[2], body[3]
        payload = body[4:-1]
        if len(payload) != count:
            raise HexFormatError(
                f"line {line_number}: length field mismatch")
        if sum(body) & 0xFF:
            raise HexFormatError(
                f"line {line_number}: checksum mismatch")
        if record_type == 0x01:
            return memory
        if record_type != 0x00:
            raise HexFormatError(
                f"line {line_number}: unsupported record type "
                f"{record_type:02X}")
        address = (high << 8) | low
        for index, value in enumerate(payload):
            memory[address + index] = value
    raise HexFormatError("missing end-of-file record")


def decode_to_segments(text: str) -> List[Tuple[int, bytes]]:
    """Decode into contiguous (address, blob) segments."""
    memory = decode(text)
    segments: List[Tuple[int, bytes]] = []
    current_start = None
    current: List[int] = []
    for address in sorted(memory):
        if current_start is not None and \
                address == current_start + len(current):
            current.append(memory[address])
        else:
            if current_start is not None:
                segments.append((current_start, bytes(current)))
            current_start = address
            current = [memory[address]]
    if current_start is not None:
        segments.append((current_start, bytes(current)))
    return segments


def load_hex_into(memory, text: str) -> int:
    """Load Intel HEX text into simulated memory; returns byte count."""
    total = 0
    for address, blob in decode_to_segments(text):
        memory.load(address, blob)
        total += len(blob)
    return total
