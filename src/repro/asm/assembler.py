"""Two-pass MSP430 assembler.

Accepts the classic TI/GNU-flavoured syntax the MiniC compiler emits::

    ; comment
            .text
            .global main
    main:   PUSH R4
            MOV  SP, R4
            MOV  #42, R12
            CMP  #__app_data_lo, R12   ; symbol immediate -> ABS16 reloc
            JLO  .Lfault
            MOV  @SP+, PC              ; emulated RET

Emulated instructions (RET, POP, BR, NOP, CLR, INC, DEC, TST, ...) expand
to their real encodings using the constant generators, exactly as the TI
assembler does — so their cycle counts come out right automatically.

All symbol references become relocations; the linker resolves them.  The
paper's AFT phase 2 inserts checks against *placeholder* app-boundary
symbols and phase 4 patches the real values — in this implementation that
naturally falls out of symbols + relocations.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.msp430.encoding import encode
from repro.msp430.isa import (
    AddressingMode,
    Instruction,
    Opcode,
    Operand,
    absolute,
    autoincrement,
    imm,
    indexed,
    indirect,
    reg,
    symbolic,
)
from repro.msp430.registers import Reg
from repro.asm.objfile import ObjectFile, Relocation, RelocType, Section

_M = AddressingMode

_REGISTER_NAMES = {
    "PC": 0, "SP": 1, "SR": 2, "CG2": 3,
    **{f"R{i}": i for i in range(16)},
}

# mnemonic -> (real opcode, canned source operand or None, byte_allowed)
_EMULATED_ONE_OPERAND = {
    # name: (opcode, fixed source, operand goes to dst?)
    "POP": (Opcode.MOV, "sp+", True),
    "BR": (Opcode.MOV, None, "pc"),
    "CLR": (Opcode.MOV, 0, True),
    "INC": (Opcode.ADD, 1, True),
    "INCD": (Opcode.ADD, 2, True),
    "DEC": (Opcode.SUB, 1, True),
    "DECD": (Opcode.SUB, 2, True),
    "TST": (Opcode.CMP, 0, True),
    "INV": (Opcode.XOR, 0xFFFF, True),
    "RLA": (Opcode.ADD, "dup", True),
    "RLC": (Opcode.ADDC, "dup", True),
    "ADC": (Opcode.ADDC, 0, True),
    "SBC": (Opcode.SUBC, 0, True),
    "DADC": (Opcode.DADD, 0, True),
}

_EMULATED_NO_OPERAND = {
    "NOP": (Opcode.MOV, reg(Reg.CG2), reg(Reg.CG2)),
    "RET": (Opcode.MOV, autoincrement(Reg.SP), reg(Reg.PC)),
    "CLRC": (Opcode.BIC, imm(1), reg(Reg.SR)),
    "SETC": (Opcode.BIS, imm(1), reg(Reg.SR)),
    "CLRZ": (Opcode.BIC, imm(2), reg(Reg.SR)),
    "SETZ": (Opcode.BIS, imm(2), reg(Reg.SR)),
    "CLRN": (Opcode.BIC, imm(4), reg(Reg.SR)),
    "SETN": (Opcode.BIS, imm(4), reg(Reg.SR)),
    "DINT": (Opcode.BIC, imm(8), reg(Reg.SR)),
    "EINT": (Opcode.BIS, imm(8), reg(Reg.SR)),
}

_JUMP_ALIASES = {
    "JZ": Opcode.JEQ, "JNZ": Opcode.JNE,
    "JLO": Opcode.JNC, "JHS": Opcode.JC,
    "JNE": Opcode.JNE, "JEQ": Opcode.JEQ,
    "JNC": Opcode.JNC, "JC": Opcode.JC,
    "JN": Opcode.JN, "JGE": Opcode.JGE,
    "JL": Opcode.JL, "JMP": Opcode.JMP,
}

_FORMAT1_NAMES = {op.name: op for op in Opcode if op.is_format1}
_FORMAT2_NAMES = {op.name: op for op in Opcode if op.is_format2}

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_NUMBER_RE = re.compile(r"^-?(0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)$")


class _Expr:
    """A resolved operand expression: constant and/or symbol+addend."""

    __slots__ = ("value", "symbol")

    def __init__(self, value: int = 0, symbol: Optional[str] = None):
        self.value = value
        self.symbol = symbol


class Assembler:
    """Assembles one translation unit into an :class:`ObjectFile`."""

    def __init__(self, name: str = "<asm>"):
        self.name = name
        self.obj = ObjectFile(name)
        self.current: Section = self.obj.section(".text")
        self.equs: Dict[str, int] = {}
        self.globals_pending: List[str] = []
        self.line_number = 0

    # -- errors --------------------------------------------------------------
    def _error(self, message: str) -> AssemblerError:
        return AssemblerError(message, self.line_number, self.name)

    # -- expression/operand parsing --------------------------------------------
    def _parse_number(self, text: str) -> Optional[int]:
        text = text.strip()
        if len(text) >= 3 and text[0] == "'" and text[-1] == "'":
            body = text[1:-1]
            unescaped = {"\\n": "\n", "\\t": "\t", "\\0": "\0",
                         "\\'": "'", "\\\\": "\\"}.get(body, body)
            if len(unescaped) != 1:
                raise self._error(f"bad character literal {text}")
            return ord(unescaped)
        if _NUMBER_RE.match(text):
            return int(text, 0)
        return None

    def _parse_expr(self, text: str) -> _Expr:
        text = text.strip()
        number = self._parse_number(text)
        if number is not None:
            return _Expr(number & 0xFFFF)
        # symbol, symbol+N, symbol-N
        m = re.match(r"^([A-Za-z_.$][\w.$]*)\s*([+-]\s*\d+|[+-]\s*0[xX][0-9a-fA-F]+)?$",
                     text)
        if not m:
            raise self._error(f"bad expression {text!r}")
        symbol, addend_text = m.group(1), m.group(2)
        addend = int(addend_text.replace(" ", ""), 0) if addend_text else 0
        if symbol in self.equs:
            return _Expr((self.equs[symbol] + addend) & 0xFFFF)
        return _Expr(addend & 0xFFFF, symbol)

    def _parse_register(self, text: str) -> Optional[int]:
        return _REGISTER_NAMES.get(text.strip().upper())

    def _parse_operand(self, text: str) -> Operand:
        text = text.strip()
        if not text:
            raise self._error("empty operand")
        if text.startswith("#"):
            e = self._parse_expr(text[1:])
            return imm(e.value, e.symbol)
        if text.startswith("&"):
            e = self._parse_expr(text[1:])
            return absolute(e.value, e.symbol)
        if text.startswith("@"):
            body = text[1:].strip()
            auto = body.endswith("+")
            if auto:
                body = body[:-1].strip()
            register = self._parse_register(body)
            if register is None:
                raise self._error(f"bad indirect register {text!r}")
            return autoincrement(register) if auto else indirect(register)
        m = re.match(r"^(.*)\(\s*([A-Za-z0-9]+)\s*\)$", text)
        if m:
            register = self._parse_register(m.group(2))
            if register is None:
                raise self._error(f"bad index register in {text!r}")
            e = self._parse_expr(m.group(1)) if m.group(1).strip() \
                else _Expr(0)
            return indexed(e.value, register, e.symbol)
        register = self._parse_register(text)
        if register is not None:
            return reg(register)
        e = self._parse_expr(text)
        return symbolic(e.value, e.symbol)

    @staticmethod
    def _split_operands(text: str) -> List[str]:
        """Split on commas that are not inside quotes or parentheses."""
        parts, depth, quote, cur = [], 0, None, []
        for ch in text:
            if quote:
                cur.append(ch)
                if ch == quote and (len(cur) < 2 or cur[-2] != "\\"):
                    quote = None
                continue
            if ch in "'\"":
                quote = ch
                cur.append(ch)
            elif ch == "(":
                depth += 1
                cur.append(ch)
            elif ch == ")":
                depth -= 1
                cur.append(ch)
            elif ch == "," and depth == 0:
                parts.append("".join(cur))
                cur = []
            else:
                cur.append(ch)
        if cur:
            parts.append("".join(cur))
        return [p.strip() for p in parts if p.strip()]

    # -- emission --------------------------------------------------------------
    def _emit_instruction(self, insn: Instruction) -> None:
        section = self.current
        base = len(section.data)
        words = encode(insn, address=0)

        # Jump with a symbolic target: reloc patches the whole word offset.
        if insn.opcode.is_jump and insn.symbol is not None:
            section.relocations.append(
                Relocation(base, RelocType.JUMP10, insn.symbol, 0)
            )

        # Figure out extension-word slots: src ext precedes dst ext.
        slot = base + 2
        if insn.src is not None and insn.src.needs_extension_word(True):
            if insn.src.symbol is not None:
                rtype = (RelocType.PCREL16
                         if insn.src.mode is _M.SYMBOLIC
                         else RelocType.ABS16)
                section.relocations.append(
                    Relocation(slot, rtype, insn.src.symbol, insn.src.value)
                )
            slot += 2
        if insn.dst is not None and insn.dst.needs_extension_word(False):
            if insn.dst.symbol is not None:
                rtype = (RelocType.PCREL16
                         if insn.dst.mode is _M.SYMBOLIC
                         else RelocType.ABS16)
                section.relocations.append(
                    Relocation(slot, rtype, insn.dst.symbol, insn.dst.value)
                )
            slot += 2

        for word in words:
            section.append_word(word)

    def _assemble_mnemonic(self, mnemonic: str, operand_text: str) -> None:
        upper = mnemonic.upper()
        byte = False
        if upper.endswith(".B"):
            byte, upper = True, upper[:-2]
        elif upper.endswith(".W"):
            upper = upper[:-2]

        operands = self._split_operands(operand_text)

        if upper in _JUMP_ALIASES:
            if len(operands) != 1:
                raise self._error(f"{mnemonic} takes one target")
            target = operands[0]
            number = self._parse_number(target)
            if number is not None:
                insn = Instruction(_JUMP_ALIASES[upper], offset=number)
            else:
                e = self._parse_expr(target)
                if e.symbol is None:
                    raise self._error(f"bad jump target {target!r}")
                insn = Instruction(_JUMP_ALIASES[upper], offset=0,
                                   symbol=e.symbol)
            self._emit_instruction(insn)
            return

        if upper in _EMULATED_NO_OPERAND:
            opcode, src, dst = _EMULATED_NO_OPERAND[upper]
            if operands:
                raise self._error(f"{mnemonic} takes no operands")
            self._emit_instruction(Instruction(opcode, src=src, dst=dst))
            return

        if upper in _EMULATED_ONE_OPERAND:
            opcode, fixed, _ = _EMULATED_ONE_OPERAND[upper]
            if len(operands) != 1:
                raise self._error(f"{mnemonic} takes one operand")
            operand = self._parse_operand(operands[0])
            if upper == "BR":
                insn = Instruction(opcode, src=operand, dst=reg(Reg.PC))
            elif fixed == "sp+":
                insn = Instruction(opcode, byte=byte,
                                   src=autoincrement(Reg.SP), dst=operand)
            elif fixed == "dup":
                insn = Instruction(opcode, byte=byte, src=operand,
                                   dst=operand)
            else:
                insn = Instruction(opcode, byte=byte, src=imm(fixed),
                                   dst=operand)
            self._emit_instruction(insn)
            return

        if upper in _FORMAT2_NAMES:
            opcode = _FORMAT2_NAMES[upper]
            if opcode is Opcode.RETI:
                if operands:
                    raise self._error("RETI takes no operands")
                self._emit_instruction(Instruction(opcode))
                return
            if len(operands) != 1:
                raise self._error(f"{mnemonic} takes one operand")
            operand = self._parse_operand(operands[0])
            self._emit_instruction(Instruction(opcode, byte=byte,
                                               src=operand))
            return

        if upper in _FORMAT1_NAMES:
            if len(operands) != 2:
                raise self._error(f"{mnemonic} takes two operands")
            src = self._parse_operand(operands[0])
            dst = self._parse_operand(operands[1])
            self._emit_instruction(
                Instruction(_FORMAT1_NAMES[upper], byte=byte,
                            src=src, dst=dst)
            )
            return

        raise self._error(f"unknown mnemonic {mnemonic!r}")

    # -- directives -------------------------------------------------------------
    def _directive(self, name: str, rest: str) -> None:
        lower = name.lower()
        if lower in (".text", ".data", ".bss"):
            self.current = self.obj.section(lower)
        elif lower == ".section":
            section_name = rest.strip().split()[0].rstrip(",")
            self.current = self.obj.section(section_name)
        elif lower in (".global", ".globl"):
            for symbol in self._split_operands(rest):
                self.globals_pending.append(symbol)
        elif lower == ".equ" or lower == ".set":
            parts = self._split_operands(rest)
            if len(parts) != 2:
                raise self._error(f"{name} needs NAME, VALUE")
            value = self._parse_number(parts[1])
            if value is None:
                if parts[1] in self.equs:
                    value = self.equs[parts[1]]
                else:
                    raise self._error(
                        f"{name} value must be a known constant"
                    )
            self.equs[parts[0]] = value & 0xFFFF
        elif lower == ".word":
            for part in self._split_operands(rest):
                e = self._parse_expr(part)
                offset = self.current.append_word(e.value)
                if e.symbol is not None:
                    self.current.relocations.append(
                        Relocation(offset, RelocType.ABS16, e.symbol,
                                   e.value)
                    )
        elif lower == ".byte":
            for part in self._split_operands(rest):
                value = self._parse_number(part)
                if value is None:
                    raise self._error(".byte needs numeric values")
                self.current.append_byte(value)
        elif lower == ".space" or lower == ".skip":
            parts = self._split_operands(rest)
            count = self._parse_number(parts[0])
            fill = self._parse_number(parts[1]) if len(parts) > 1 else 0
            if count is None:
                raise self._error(".space needs a size")
            self.current.append_bytes(bytes([fill or 0]) * count)
        elif lower == ".align":
            value = self._parse_number(rest.strip() or "2")
            self.current.align_to(value or 2)
        elif lower in (".ascii", ".asciz", ".string"):
            text = rest.strip()
            if not (text.startswith('"') and text.endswith('"')):
                raise self._error(f"{name} needs a quoted string")
            body = (text[1:-1].encode("ascii")
                    .decode("unicode_escape").encode("latin1"))
            self.current.append_bytes(body)
            if lower in (".asciz", ".string"):
                self.current.append_byte(0)
        else:
            raise self._error(f"unknown directive {name!r}")

    # -- driver ----------------------------------------------------------------
    def assemble(self, text: str) -> ObjectFile:
        for raw_line in text.splitlines():
            self.line_number += 1
            line = self._strip_comment(raw_line).strip()
            while True:
                m = _LABEL_RE.match(line)
                if not m:
                    break
                label = m.group(1)
                self.obj.define(label, self.current.name,
                                len(self.current.data))
                line = line[m.end():].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            head = parts[0]
            rest = parts[1] if len(parts) > 1 else ""
            if head.startswith("."):
                self._directive(head, rest)
            else:
                self._assemble_mnemonic(head, rest)

        for name in self.globals_pending:
            if name in self.obj.symbols:
                self.obj.symbols[name].is_global = True
            else:
                # Declaring an external as global is a no-op for us.
                pass
        for name, value in self.equs.items():
            if name not in self.obj.symbols:
                self.obj.define(name, None, value)
        return self.obj

    @staticmethod
    def _strip_comment(line: str) -> str:
        out = []
        quote = None
        i = 0
        while i < len(line):
            ch = line[i]
            if quote:
                out.append(ch)
                if ch == quote and line[i - 1] != "\\":
                    quote = None
            elif ch in "'\"":
                quote = ch
                out.append(ch)
            elif ch == ";":
                break
            elif ch == "/" and i + 1 < len(line) and line[i + 1] == "/":
                break
            else:
                out.append(ch)
            i += 1
        return "".join(out)


def assemble(text: str, name: str = "<asm>") -> ObjectFile:
    """Convenience one-shot assembly."""
    return Assembler(name).assemble(text)
