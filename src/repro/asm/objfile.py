"""Relocatable object files.

A deliberately small format with just what the AFT needs:

* **Sections** hold bytes plus relocations.  Section names are free-form;
  the AFT uses ``.text``/``.data``/``.bss`` for the OS and
  ``.app.<name>.text`` / ``.app.<name>.data`` / ``.app.<name>.stack``
  for applications so the linker script can place each app's code below
  its data, as Figure 1 requires.
* **Symbols** are (section, offset) pairs or absolute constants.
* **Relocations** come in three flavours:

  - ``ABS16``  -- store ``S + A`` into the word at the patch site
  - ``PCREL16``-- store ``S + A - P`` (symbolic addressing extension words)
  - ``JUMP10`` -- patch the signed 10-bit word offset of a jump whose
    instruction word sits at the patch site
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import LinkError


class RelocType(enum.Enum):
    ABS16 = "abs16"
    PCREL16 = "pcrel16"
    JUMP10 = "jump10"


@dataclass
class Relocation:
    offset: int          # byte offset of the patch site within the section
    type: RelocType
    symbol: str
    addend: int = 0

    def __repr__(self) -> str:
        return (f"Relocation({self.type.value} @+0x{self.offset:04X} -> "
                f"{self.symbol}{self.addend:+d})")


@dataclass
class Symbol:
    """A defined symbol.  ``section`` is ``None`` for absolute symbols
    (``.equ`` constants, linker-defined bounds)."""

    name: str
    section: Optional[str]
    offset: int
    is_global: bool = False

    @property
    def is_absolute(self) -> bool:
        return self.section is None


@dataclass
class Section:
    name: str
    data: bytearray = field(default_factory=bytearray)
    relocations: List[Relocation] = field(default_factory=list)
    align: int = 2
    # Assigned by the linker during placement:
    address: Optional[int] = None

    @property
    def size(self) -> int:
        return len(self.data)

    def append_word(self, value: int) -> int:
        """Append a little-endian word; returns its byte offset."""
        offset = len(self.data)
        self.data.append(value & 0xFF)
        self.data.append((value >> 8) & 0xFF)
        return offset

    def append_byte(self, value: int) -> int:
        offset = len(self.data)
        self.data.append(value & 0xFF)
        return offset

    def append_bytes(self, blob: bytes) -> int:
        offset = len(self.data)
        self.data.extend(blob)
        return offset

    def align_to(self, alignment: int) -> None:
        while len(self.data) % alignment:
            self.data.append(0)

    def read_word(self, offset: int) -> int:
        return self.data[offset] | (self.data[offset + 1] << 8)

    def write_word(self, offset: int, value: int) -> None:
        self.data[offset] = value & 0xFF
        self.data[offset + 1] = (value >> 8) & 0xFF


class ObjectFile:
    """A collection of sections and symbols from one assembly unit."""

    def __init__(self, name: str = "<obj>"):
        self.name = name
        self.sections: Dict[str, Section] = {}
        self.symbols: Dict[str, Symbol] = {}

    def section(self, name: str) -> Section:
        if name not in self.sections:
            self.sections[name] = Section(name)
        return self.sections[name]

    def define(self, name: str, section: Optional[str], offset: int,
               is_global: bool = False) -> Symbol:
        if name in self.symbols:
            raise LinkError(f"{self.name}: duplicate symbol {name!r}")
        symbol = Symbol(name, section, offset, is_global)
        self.symbols[name] = symbol
        return symbol

    def globals(self) -> List[Symbol]:
        return [s for s in self.symbols.values() if s.is_global]

    def undefined_symbols(self) -> List[str]:
        """Symbols referenced by relocations but not defined here."""
        seen = set()
        missing = []
        for section in self.sections.values():
            for reloc in section.relocations:
                if reloc.symbol not in self.symbols \
                        and reloc.symbol not in seen:
                    seen.add(reloc.symbol)
                    missing.append(reloc.symbol)
        return missing

    def total_size(self) -> int:
        return sum(s.size for s in self.sections.values())

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}:{s.size}B" for n, s in self.sections.items())
        return f"ObjectFile({self.name}: {parts})"
