"""Assembler toolchain: object files, two-pass assembler, disassembler,
and a linker-script driven linker.

The MiniC compiler emits assembly text; the AFT assembles each app and
the OS gates into object files, places app sections in high FRAM per the
paper's memory map, and links a final firmware image with the boundary
symbols the isolation checks compare against.
"""

from repro.asm.objfile import (
    ObjectFile,
    Section,
    Symbol,
    Relocation,
    RelocType,
)
from repro.asm.assembler import Assembler, assemble
from repro.asm.disassembler import disassemble, disassemble_range
from repro.asm.linker import Linker, LinkScript, MemoryRegion, Image

__all__ = [
    "ObjectFile", "Section", "Symbol", "Relocation", "RelocType",
    "Assembler", "assemble",
    "disassemble", "disassemble_range",
    "Linker", "LinkScript", "MemoryRegion", "Image",
]
