"""Linear-sweep disassembler.

Used by tests (encode/decode round trips), by the AFT for listings, and
by debugging helpers.  Data mixed into code will decode as garbage or
raise; callers point it at known code ranges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import DecodeError
from repro.msp430.decoder import decode_bytes
from repro.msp430.isa import Instruction


def disassemble(blob: bytes, address: int = 0
                ) -> List[Tuple[int, Instruction]]:
    """Decode an entire buffer into (address, instruction) pairs."""
    out: List[Tuple[int, Instruction]] = []
    offset = 0
    while offset + 1 < len(blob):
        insn, size = decode_bytes(blob[offset:], address + offset)
        out.append((address + offset, insn))
        offset += size
    return out


def disassemble_range(memory, start: int, end: int
                      ) -> List[Tuple[int, Instruction]]:
    """Decode instructions from simulated memory in [start, end)."""
    blob = memory.dump(start, end - start)
    return disassemble(blob, start)


def listing(blob: bytes, address: int = 0,
            symbols: Optional[Dict[str, int]] = None) -> str:
    """Human-readable listing with optional symbol annotations."""
    by_address: Dict[int, str] = {}
    if symbols:
        for name, value in symbols.items():
            by_address.setdefault(value, name)
    lines = []
    for addr, insn in disassemble(blob, address):
        if addr in by_address:
            lines.append(f"{by_address[addr]}:")
        lines.append(f"    0x{addr:04X}:  {insn.render()}")
    return "\n".join(lines)
