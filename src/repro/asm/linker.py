"""Linker: places sections into memory regions and resolves relocations.

The AFT builds a :class:`LinkScript` that mirrors the paper's Figure 1:
OS code/data in low FRAM, the OS stack in SRAM, and each app's sections
in high FRAM with code *below* data/stack so a single MPU boundary (B1)
separates the current app's executable region from its writable region.

Linking is two-stage on purpose:

1. :meth:`Linker.place` assigns every section an address.
2. The caller may then compute *boundary symbols* from the placement
   (``__app_<n>_code_lo``, ``__app_<n>_data_lo``, ...) — this is exactly
   AFT phase 4 — and passes them to :meth:`Linker.resolve`.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import LinkError
from repro.asm.objfile import ObjectFile, RelocType, Section


class MemoryRegion:
    """A placement region with a bump-pointer cursor."""

    def __init__(self, name: str, start: int, end: int):
        self.name = name
        self.start = start
        self.end = end          # inclusive
        self.cursor = start

    def allocate(self, size: int, align: int = 2) -> int:
        cursor = self.cursor
        if align > 1 and cursor % align:
            cursor += align - cursor % align
        if cursor + size - 1 > self.end:
            raise LinkError(
                f"region {self.name!r} overflow: need {size} bytes at "
                f"0x{cursor:04X}, region ends at 0x{self.end:04X}"
            )
        self.cursor = cursor + size
        return cursor

    @property
    def used(self) -> int:
        return self.cursor - self.start

    @property
    def free(self) -> int:
        return self.end + 1 - self.cursor


class LinkScript:
    """Ordered (glob pattern -> region) placement rules."""

    def __init__(self) -> None:
        self.regions: Dict[str, MemoryRegion] = {}
        self.rules: List[Tuple[str, str]] = []

    def region(self, name: str, start: int, end: int) -> MemoryRegion:
        region = MemoryRegion(name, start, end)
        self.regions[name] = region
        return region

    def place_rule(self, pattern: str, region_name: str) -> None:
        if region_name not in self.regions:
            raise LinkError(f"unknown region {region_name!r}")
        self.rules.append((pattern, region_name))

    def region_for(self, section_name: str) -> MemoryRegion:
        for pattern, region_name in self.rules:
            if fnmatchcase(section_name, pattern):
                return self.regions[region_name]
        raise LinkError(f"no placement rule matches section "
                        f"{section_name!r}")


class Image:
    """A linked firmware image."""

    def __init__(self) -> None:
        self.segments: List[Tuple[int, bytes]] = []
        self.symbols: Dict[str, int] = {}
        # (object name, section) in placement order
        self.placed: List[Tuple[str, Section]] = []

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise LinkError(f"undefined symbol {name!r}") from None

    def has_symbol(self, name: str) -> bool:
        return name in self.symbols

    def section_bounds(self, predicate: Callable[[str], bool]
                       ) -> Tuple[int, int]:
        """(lowest address, highest address+1) over matching sections."""
        lo, hi = None, None
        for _owner, section in self.placed:
            if not predicate(section.name):
                continue
            start = section.address
            end = section.address + max(section.size, 1)
            lo = start if lo is None else min(lo, start)
            hi = end if hi is None else max(hi, end)
        if lo is None:
            raise LinkError("no sections matched bounds query")
        return lo, hi

    def sections_named(self, name: str) -> List[Section]:
        return [s for _o, s in self.placed if s.name == name]

    def load_into(self, memory) -> None:
        for address, blob in self.segments:
            memory.load(address, blob)

    def total_size(self) -> int:
        return sum(len(blob) for _a, blob in self.segments)


class Linker:
    def __init__(self, script: LinkScript):
        self.script = script
        self._objects: List[ObjectFile] = []
        self._placed = False

    # -- stage 1 ------------------------------------------------------------
    def place(self, objects: Iterable[ObjectFile]) -> "Linker":
        self._objects = list(objects)
        for obj in self._objects:
            for section in obj.sections.values():
                if section.size == 0:
                    # still give empty sections an address for bounds math
                    region = self.script.region_for(section.name)
                    section.address = region.allocate(0, section.align)
                    continue
                region = self.script.region_for(section.name)
                section.address = region.allocate(section.size,
                                                  section.align)
        self._placed = True
        return self

    def section_address(self, object_name: str, section_name: str) -> int:
        for obj in self._objects:
            if obj.name == object_name and section_name in obj.sections:
                address = obj.sections[section_name].address
                if address is None:
                    raise LinkError("sections not yet placed")
                return address
        raise LinkError(f"no section {section_name!r} in {object_name!r}")

    # -- stage 2 ---------------------------------------------------------------
    def resolve(self, extra_symbols: Optional[Dict[str, int]] = None
                ) -> Image:
        if not self._placed:
            raise LinkError("place() must run before resolve()")
        image = Image()
        if extra_symbols:
            image.symbols.update(
                {k: v & 0xFFFF for k, v in extra_symbols.items()}
            )

        # Global symbol table.
        local_tables: Dict[str, Dict[str, int]] = {}
        for obj in self._objects:
            locals_ = {}
            for symbol in obj.symbols.values():
                if symbol.is_absolute:
                    value = symbol.offset & 0xFFFF
                else:
                    section = obj.sections[symbol.section]
                    value = (section.address + symbol.offset) & 0xFFFF
                locals_[symbol.name] = value
                if symbol.is_global:
                    if symbol.name in image.symbols and \
                            image.symbols[symbol.name] != value:
                        raise LinkError(
                            f"duplicate global symbol {symbol.name!r} "
                            f"({obj.name})"
                        )
                    image.symbols[symbol.name] = value
            local_tables[obj.name] = locals_

        def lookup(obj: ObjectFile, name: str) -> int:
            locals_ = local_tables[obj.name]
            if name in locals_:
                return locals_[name]
            if name in image.symbols:
                return image.symbols[name]
            raise LinkError(
                f"undefined symbol {name!r} referenced from {obj.name}"
            )

        # Apply relocations and collect segments.
        for obj in self._objects:
            for section in obj.sections.values():
                if section.size == 0:
                    image.placed.append((obj.name, section))
                    continue
                data = bytearray(section.data)
                for reloc in section.relocations:
                    value = lookup(obj, reloc.symbol)
                    site = section.address + reloc.offset
                    if reloc.type is RelocType.ABS16:
                        patched = (value + reloc.addend) & 0xFFFF
                    elif reloc.type is RelocType.PCREL16:
                        patched = (value + reloc.addend - site) & 0xFFFF
                    else:  # JUMP10
                        target = (value + reloc.addend) & 0xFFFF
                        delta = target - (site + 2)
                        if delta % 2:
                            raise LinkError(
                                f"odd jump target 0x{target:04X} "
                                f"for {reloc.symbol!r}"
                            )
                        words = delta // 2
                        if not -512 <= words <= 511:
                            raise LinkError(
                                f"jump to {reloc.symbol!r} out of range "
                                f"({words} words) from 0x{site:04X}"
                            )
                        old = data[reloc.offset] | \
                            (data[reloc.offset + 1] << 8)
                        patched = (old & 0xFC00) | (words & 0x3FF)
                    data[reloc.offset] = patched & 0xFF
                    data[reloc.offset + 1] = (patched >> 8) & 0xFF
                image.segments.append((section.address, bytes(data)))
                image.placed.append((obj.name, section))

        return image


def link(objects: Iterable[ObjectFile], script: LinkScript,
         extra_symbols: Optional[Dict[str, int]] = None) -> Image:
    """One-shot link when no boundary-symbol stage is needed."""
    return Linker(script).place(objects).resolve(extra_symbols)
