"""Memory-mapped port addresses shared by the runtime, kernel and tools.

These live in otherwise-unused peripheral-register space (which the
MSP430's MPU cannot protect — one of the hardware limitations the paper
lists).  The kernel registers I/O handlers at these addresses; bare
test harnesses may map them too.
"""

#: Writing a service id here invokes the kernel service dispatcher.
SVC_PORT = 0x01F0

#: Any write halts the CPU (the kernel's "dispatch finished" signal).
DONE_PORT = 0x01F2

#: Writing a code here reports a software-detected isolation fault
#: (the compiler-inserted checks jump to code that writes this port).
FAULT_PORT = 0x01F4

#: ARP counting instrumentation: the profiler's counting build writes a
#: site-kind code here at every would-be-checked location.
COUNT_PORT = 0x01F6

#: site-kind codes written to COUNT_PORT
COUNT_DATA_ACCESS = 1
COUNT_FN_POINTER = 2
COUNT_RETURN = 3
