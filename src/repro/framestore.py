"""Self-checking append-only frame stores (shared plumbing).

Two persistent cache tiers share one on-disk grammar: the ``.sbx``
execution-cache tier (:mod:`repro.msp430.execcache`) and the ``.tbx``
cohort trace tier (:mod:`repro.fleet.tracetier`).  Both persist
pickled record dicts as **frames** — a 4-byte magic, a little-endian
length, a 16-byte sha-256 payload prefix, then the payload — appended
to store files named by a 16-hex-digit identity hash.  This module
holds the format-agnostic machinery: frame packing and walking, the
import-time scan, the LRU file prune, the env-knob plumbing
(``REPRO_<FAMILY>[_DIR|_MAX_MB]``), and the incremental append-only
reader both tiers subclass.

The safety model is identical for every family:

* **Framing is self-checking.**  A torn tail from a killed writer, a
  corrupted length field, bit-rot in a payload — all are detected by
  the magic/length/digest walk and skipped, never acted on.
* **Ingestion never executes.**  Payloads are deserialized with the
  restricted :func:`repro.safeload.safe_loads`; a payload referencing
  any global raises before anything is called, so a hostile store
  file degrades to "fewer warm frames", never to code execution.
* **Frame digests prove framing, not provenance.**  An attacker
  controls magic, length, and digest of frames it writes; every
  family therefore re-validates record *content* on ingest (shape
  checks here, byte- or state-verification at adoption time in the
  tier above).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import struct
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.safeload import safe_loads

#: every frame family uses the same header: payload length (u32le) +
#: the first 16 bytes of the payload's sha-256
HEADER = struct.Struct("<I16s")


class FrameFormat:
    """One store family's framing identity: magic + record bound."""

    __slots__ = ("magic", "max_record", "suffix")

    def __init__(self, magic: bytes, max_record: int, suffix: str):
        self.magic = magic
        self.max_record = max_record
        self.suffix = suffix

    def frame(self, payload: bytes) -> bytes:
        """One complete frame for ``payload``."""
        digest = hashlib.sha256(payload).digest()[:16]
        return self.magic + HEADER.pack(len(payload), digest) + payload


def walk_frames(data: bytes, fmt: FrameFormat
                ) -> Tuple[List[Tuple[bytes, bytes, bool]], int, str]:
    """Parse ``data`` as consecutive frames of ``fmt``.

    Returns ``(events, consumed, tail)``: ``events`` is one
    ``(payload, raw frame bytes, digest_ok)`` per structurally
    complete frame, in order; ``consumed`` is the offset just past the
    last complete frame; ``tail`` classifies why the walk stopped —

    ========   ======================================================
    tail       meaning
    ========   ======================================================
    clean      every byte consumed
    fragment   trailing bytes shorter than a frame header
    torn       a frame header whose payload runs past the data
    sync       bad magic — lost sync, the rest is unparseable
    oversize   a length field past ``max_record`` — corrupt header
    ========   ======================================================

    ``fragment``/``torn`` mean "an appender may still be writing";
    ``sync``/``oversize`` mean the remaining bytes are garbage.  The
    caller decides what each means for its counters and its offset.
    """
    events: List[Tuple[bytes, bytes, bool]] = []
    view = memoryview(data)
    pos = 0
    frame = len(fmt.magic) + HEADER.size
    tail = "clean"
    while pos + frame <= len(view):
        if bytes(view[pos:pos + len(fmt.magic)]) != fmt.magic:
            tail = "sync"
            break
        length, digest = HEADER.unpack_from(view, pos + len(fmt.magic))
        if length > fmt.max_record:
            tail = "oversize"
            break
        start = pos + frame
        if start + length > len(view):
            tail = "torn"
            break
        payload = bytes(view[start:start + length])
        ok = hashlib.sha256(payload).digest()[:16] == digest
        events.append((payload, bytes(view[pos:start + length]), ok))
        pos = start + length
    else:
        if pos < len(view):
            tail = "fragment"
    return events, pos, tail


def scan_store(data: bytes, fmt: FrameFormat,
               validate: Callable[[object], None]
               ) -> Tuple[bytes, int, int]:
    """Walk ``data`` and keep only fully valid frames (import path).

    Returns ``(valid frame bytes, records kept, frames rejected)``.
    Applies every check ingestion applies — magic, length bound,
    payload digest, globals-free restricted unpickling, then the
    family's ``validate`` (which raises on a bad record shape) — and,
    being an import-time scan of a complete transfer, also treats a
    torn or trailing-fragment tail as a rejection rather than "wait
    for more"."""
    kept = bytearray()
    records = 0
    rejected = 0
    events, _consumed, tail = walk_frames(data, fmt)
    for payload, raw, ok in events:
        if not ok:
            rejected += 1
            continue
        try:
            validate(safe_loads(payload))
        except Exception:
            rejected += 1
            continue
        kept += raw
        records += 1
    if tail in ("sync", "oversize", "torn"):
        rejected += 1
    elif tail == "fragment" and not rejected:
        rejected += 1
    return bytes(kept), records, rejected


class StoreLayout:
    """One family's on-disk layout: directory, budget, and naming —
    all tunable through ``REPRO_<FAMILY>``, ``REPRO_<FAMILY>_DIR`` and
    ``REPRO_<FAMILY>_MAX_MB`` (plus the global ``REPRO_NO_CACHE`` and
    ``REPRO_CACHE_DIR``)."""

    __slots__ = ("fmt", "family", "subdir", "default_mb", "_name_re")

    def __init__(self, fmt: FrameFormat, family: str, subdir: str,
                 default_mb: int):
        self.fmt = fmt
        self.family = family          # env-var infix, e.g. EXEC_CACHE
        self.subdir = subdir          # default subdir under .cache/
        self.default_mb = default_mb
        self._name_re = re.compile(
            r"^[0-9a-f]{16}" + re.escape(fmt.suffix) + r"$")

    def enabled(self) -> bool:
        if os.environ.get("REPRO_NO_CACHE", "") in ("1", "true"):
            return False
        return os.environ.get(f"REPRO_{self.family}", "") \
            not in ("0", "off")

    def directory(self) -> Path:
        """``REPRO_<FAMILY>_DIR``, else ``<REPRO_CACHE_DIR>/<subdir>``,
        else ``<repo>/.cache/<subdir>``."""
        override = os.environ.get(f"REPRO_{self.family}_DIR")
        if override:
            return Path(override)
        shared_root = os.environ.get("REPRO_CACHE_DIR")
        if shared_root:
            return Path(shared_root) / self.subdir
        return Path(__file__).resolve().parents[2] / ".cache" \
            / self.subdir

    def max_bytes(self) -> int:
        """Disk budget from ``REPRO_<FAMILY>_MAX_MB`` (<= 0:
        unbounded)."""
        raw = os.environ.get(f"REPRO_{self.family}_MAX_MB",
                             str(self.default_mb))
        try:
            return int(float(raw) * 1024 * 1024)
        except ValueError:
            return self.default_mb * 1024 * 1024

    def store_name(self, identity: tuple) -> str:
        """The file name for an identity tuple — everything
        version-shaped goes *into the name*, so an incompatible
        change simply starts a new file and the old one ages out
        under the LRU budget."""
        digest = hashlib.sha256(repr(identity).encode()).hexdigest()
        return digest[:16] + self.fmt.suffix

    def valid_name(self, name: str) -> bool:
        return bool(self._name_re.match(name))

    def prune(self, directory: Optional[Path] = None,
              max_bytes: Optional[int] = None,
              keep: Optional[Path] = None) -> int:
        """Evict least-recently-used store files until the directory
        fits the budget; returns the number of files removed.
        ``keep`` (the store a live process is appending to) is never
        evicted — its mtime is refreshed by every append anyway."""
        directory = self.directory() if directory is None else directory
        limit = self.max_bytes() if max_bytes is None else max_bytes
        if limit <= 0 or not directory.is_dir():
            return 0
        entries = []
        total = 0
        for path in directory.glob("*" + self.fmt.suffix):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        removed = 0
        entries.sort()                 # oldest first
        for _mtime, size, path in entries:
            if total <= limit:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue               # raced with another process
            total -= size
            removed += 1
        return removed

    # -- store export/import (the fleet blob channel) -------------------

    def list_store_files(self) -> List[dict]:
        """Offerable stores in this family's cache dir:
        ``[{"name", "sha", "size"}, ...]`` — the coordinator's side of
        the blob-channel handshake."""
        directory = self.directory()
        offers = []
        if not directory.is_dir():
            return offers
        for path in sorted(directory.glob("*" + self.fmt.suffix)):
            if not self.valid_name(path.name):
                continue
            try:
                data = path.read_bytes()
            except OSError:
                continue
            offers.append({"name": path.name,
                           "sha": hashlib.sha256(data).hexdigest(),
                           "size": len(data)})
        return offers

    def read_store_file(self, name: str) -> Optional[bytes]:
        """The raw bytes of one offerable store, or ``None`` (bad
        name, vanished file)."""
        if not self.valid_name(name):
            return None
        try:
            return (self.directory() / name).read_bytes()
        except OSError:
            return None

    def have_store_file(self, name: str) -> bool:
        """Whether this host already has (any version of) the named
        store — an importer skips those; append-only publishing means
        the local copy converges on its own."""
        return self.valid_name(name) and \
            (self.directory() / name).exists()

    def import_store_file(self, name: str, data: bytes,
                          validate: Callable[[object], None]) -> int:
        """Install a store fetched from a peer; returns records kept.

        No-ops (returns 0) when this family is disabled, the name is
        not a valid store name, the store already exists locally, or
        no frame survives :func:`scan_store`.  The validated frames
        are written atomically under the peer's name — the name
        encodes the store identity, so a store from a peer with a
        different environment simply never gets opened here."""
        if not self.enabled() or not self.valid_name(name):
            return 0
        path = self.directory() / name
        if path.exists():
            return 0
        kept, records, _rejected = scan_store(data, self.fmt, validate)
        if not records:
            return 0
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(
                f"{self.fmt.suffix}.tmp{os.getpid()}")
            tmp.write_bytes(kept)
            os.replace(tmp, path)
        except OSError:
            return 0                   # unwritable cache dir
        self.prune(path.parent, keep=path)
        return records


class AppendStore:
    """Incremental reader/appender over one self-checking store file.

    Concurrency model: every record is appended with a single
    ``O_APPEND`` write, and every frame is self-checking — readers in
    other processes pick up appended frames incrementally (cheap
    ``stat`` + read from the last consumed offset) and skip anything
    torn or corrupt.  No locks, no coordination: the worst race is a
    duplicate record, which each family's content-level dedup absorbs.

    Subclasses implement :meth:`_accept`, which indexes one
    deserialized record and returns whether it was new (``False`` for
    duplicates and over-cap variants); a record of the wrong shape
    raises and is counted ``corrupt``.
    """

    __slots__ = ("path", "layout", "_offset",
                 "loaded", "published", "corrupt")

    def __init__(self, path: Path, layout: StoreLayout):
        self.path = path
        self.layout = layout
        self._offset = 0
        self.loaded = 0
        self.published = 0
        self.corrupt = 0
        path.parent.mkdir(parents=True, exist_ok=True)
        self.refresh()

    def refresh(self) -> bool:
        """Read frames appended since the last call (other workers'
        publishes); returns True when anything new arrived."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return False
        if size <= self._offset:
            return False
        try:
            with self.path.open("rb") as fh:
                fh.seek(self._offset)
                data = fh.read(size - self._offset)
        except OSError:
            return False
        return self._ingest(data)

    def _ingest(self, data: bytes) -> bool:
        new = False
        events, consumed, tail = walk_frames(data, self.layout.fmt)
        for payload, _raw, ok in events:
            if not ok:
                self.corrupt += 1      # bit-rot: skip this frame only
                continue
            try:
                record = safe_loads(payload)
                accepted = self._accept(record)
            except Exception:
                self.corrupt += 1
                continue
            if accepted:
                self.loaded += 1
                new = True
        if tail in ("sync", "oversize"):
            # lost sync (corrupt length field, or garbage from an
            # interleaved write): stop consuming — the remaining tail
            # is re-examined on the next refresh only if the file
            # grows past it, so count it corrupt and give up on this
            # file's tail
            self.corrupt += 1
            consumed = len(data)
        # torn/fragment tails stay unconsumed: wait for the appender
        self._offset += consumed
        return new

    def _accept(self, record) -> bool:
        raise NotImplementedError

    def publish_record(self, record: dict) -> bool:
        """Append one record frame; returns whether it was written
        (``False`` on a read-only FS — stay memory-only)."""
        payload = pickle.dumps(record,
                               protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > self.layout.fmt.max_record:
            return False
        try:
            with self.path.open("ab") as fh:
                fh.write(self.layout.fmt.frame(payload))
        except OSError:
            return False
        # (the next refresh re-reads our own frame and dedups it via
        # the family's content index — offset tracking stays simple
        # and conservative)
        self.published += 1
        self.layout.prune(self.path.parent, keep=self.path)
        return True
