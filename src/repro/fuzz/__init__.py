"""Differential fuzzing and fault injection.

Two engines pin the simulator's exactness-critical fast paths (the
permission bitmap, instruction thunks, and superblock compiler from
PR 1/2) and the paper's containment claim:

* the **differential engine** (:mod:`repro.fuzz.generator`,
  :mod:`repro.fuzz.harness`) generates seeded random MSP430 programs
  and executes each one twice — superblock mode vs. forced ``step()``
  mode — asserting bit-identical architectural state at every
  checkpoint; divergences are shrunk (:mod:`repro.fuzz.shrink`) to a
  minimal replayable ``.s`` case under ``tests/fuzz_corpus/``;
* the **attack engine** (:mod:`repro.fuzz.attacks`) compiles a library
  of adversarial app templates under every memory model and asserts
  each isolation-enabled model contains the attack with the expected
  :class:`~repro.kernel.fault.FaultOrigin`, while No-Isolation
  demonstrably corrupts.

``repro fuzz`` on the command line drives both
(:mod:`repro.fuzz.engine`).
"""

from repro.fuzz.attacks import ATTACK_TEMPLATES, run_attack_matrix
from repro.fuzz.engine import (
    CampaignStats,
    run_differential_campaign,
    run_smoke,
)
from repro.fuzz.generator import FuzzProgram, generate_program
from repro.fuzz.harness import DiffResult, run_differential
from repro.fuzz.shrink import load_case, shrink_program, write_case

__all__ = [
    "ATTACK_TEMPLATES",
    "CampaignStats",
    "DiffResult",
    "FuzzProgram",
    "generate_program",
    "load_case",
    "run_attack_matrix",
    "run_differential",
    "run_differential_campaign",
    "run_smoke",
    "shrink_program",
    "write_case",
]
