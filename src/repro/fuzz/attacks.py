"""Fault-injection attack engine: adversarial app templates versus
every memory model.

Each :class:`AttackTemplate` is a small MiniC app that tries to break
the paper's isolation property from the inside — wild-pointer stores
and loads into OS and neighbour-app regions, function-pointer hijack,
return-address corruption, stack overflow, and reconfiguring the MPU
from app code.  :func:`run_attack_matrix` compiles each template under
each memory model and asserts:

* every isolation-enabled model **contains** the attack — the dispatch
  faults with one of the template's expected
  :class:`~repro.kernel.fault.FaultOrigin` values, and a victim app
  still runs correctly afterwards;
* No-Isolation **demonstrably fails** — the attack completes, corrupts
  the victim's data, or escapes without being stopped by any isolation
  mechanism.

Templates deliberately mirror the threat model of the paper's security
evaluation (section 5): a buggy or malicious application, an intact
OS + toolchain.

Some templates need concrete victim addresses; those do a *probe
build* first (same app order, placeholder attacker) to learn the
layout, then rebuild the attacker with the address baked in — layout
is deterministic for a given app order and model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.aft import AftPipeline, AppSource, IsolationModel
from repro.kernel.fault import FaultOrigin
from repro.kernel.machine import AmuletMachine

#: origins that mean "an isolation mechanism stopped the attack"
_ISOLATION_ORIGINS = frozenset((
    FaultOrigin.SOFTWARE_CHECK, FaultOrigin.MPU, FaultOrigin.API_POINTER,
))

VICTIM_SOURCE = """
int secret = 0x1234;
int v_buffer[8];
int on_victim(int x) {
    v_buffer[x & 7] = secret + x;
    return v_buffer[x & 7];
}
"""

_PLACEHOLDER = "int on_attack(int x) { return x; }"


@dataclass(frozen=True)
class AttackTemplate:
    """One adversarial app and what every model must do with it."""

    name: str
    summary: str
    source: str
    #: per-model acceptable fault origins; the template runs only
    #: under the models listed here (plus No-Isolation)
    expected: Dict[IsolationModel, FrozenSet[FaultOrigin]]
    #: "victim_stack" / "victim_secret" — address baked in via a
    #: probe build; "" for self-contained sources
    needs: str = ""
    #: how No-Isolation's failure shows: "no_fault" (attack completes),
    #: "corrupts_secret" (victim data provably changed), or
    #: "uncontained" (no isolation origin stopped it)
    no_isolation: str = "no_fault"
    #: per-app stack size override (stack-overflow template)
    recursive_stack: int = 0

    def models(self) -> Tuple[IsolationModel, ...]:
        return tuple(self.expected)


@dataclass
class AttackOutcome:
    """Result of one (template, model) cell of the matrix."""

    template: str
    model: IsolationModel
    ok: bool
    origin: Optional[FaultOrigin]
    detail: str

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        origin = self.origin.name if self.origin else "-"
        return (f"{status:4} {self.template:28} "
                f"{self.model.name:16} {origin:14} {self.detail}")


def _origins(*names: str) -> FrozenSet[FaultOrigin]:
    return frozenset(FaultOrigin[n] for n in names)


_SW = IsolationModel.SOFTWARE_ONLY
_MPU = IsolationModel.MPU
_ADV = IsolationModel.ADVANCED_MPU


ATTACK_TEMPLATES: Tuple[AttackTemplate, ...] = (
    AttackTemplate(
        name="wild-store-os-sram",
        summary="store through a wild pointer into the OS stack (SRAM)",
        source="""
        int on_attack(int x) {
            int *p = (int *)0x2000;
            *p = 0xAAAA;
            return 0;
        }
        """,
        # SRAM is below every app region and outside MPU coverage:
        # the compiler's lower-bound check fires under both compiled
        # models; only the idealized full-coverage MPU catches it in
        # hardware.
        expected={_SW: _origins("SOFTWARE_CHECK"),
                  _MPU: _origins("SOFTWARE_CHECK"),
                  _ADV: _origins("MPU")},
    ),
    AttackTemplate(
        name="wild-load-os-fram",
        summary="load through a wild pointer from OS code/data in FRAM",
        source="""
        int on_attack(int x) {
            int *p = (int *)0x4500;
            return *p;
        }
        """,
        expected={_SW: _origins("SOFTWARE_CHECK"),
                  _MPU: _origins("SOFTWARE_CHECK"),
                  _ADV: _origins("MPU")},
    ),
    AttackTemplate(
        name="wild-store-neighbor",
        summary="store into the neighbour app's data region",
        needs="victim_stack",
        source="""
        int on_attack(int x) {{
            int *p = (int *){victim_stack};
            *p = 0xDEAD;
            return 0;
        }}
        """,
        # the victim sits *above* the attacker: the software model's
        # upper-bound check fires; under the MPU models segment 3
        # (hardware) catches it.
        expected={_SW: _origins("SOFTWARE_CHECK"),
                  _MPU: _origins("MPU"),
                  _ADV: _origins("MPU")},
        no_isolation="corrupts_secret",
    ),
    AttackTemplate(
        name="fnptr-hijack-os",
        summary="call OS code through a rogue function pointer",
        source="""
        int on_attack(int x) {
            int (*fp)(void) = (int (*)(void))0x4400;
            return fp();
        }
        """,
        # Advanced-MPU is excluded: its coarse execute region spans
        # the OS gates, an honest limitation of dropping the compiler
        # check (repro.kernel.advanced_mpu).
        expected={_SW: _origins("SOFTWARE_CHECK"),
                  _MPU: _origins("SOFTWARE_CHECK")},
        no_isolation="uncontained",
    ),
    AttackTemplate(
        name="retaddr-corruption",
        summary="smash the saved return address, return into the OS",
        source="""
        int smash(int x) {
            int local[2];
            int *p = local;
            int i = 0;
            while (i < 8) { p[i] = 0x4400; i = i + 1; }
            return x;
        }
        int on_attack(int x) { return smash(x); }
        """,
        # the stores land inside the app's own stack (legal); the
        # epilogue return check catches the corrupted address.
        # Advanced-MPU has no compiler checks and its execute region
        # covers 0x4400 — excluded, same honest limitation as above.
        expected={_SW: _origins("SOFTWARE_CHECK"),
                  _MPU: _origins("SOFTWARE_CHECK")},
        no_isolation="uncontained",
    ),
    AttackTemplate(
        name="stack-overflow",
        summary="deep recursion overruns the app stack into OS data",
        source="""
        int deep(int n) {
            int pad[16];
            pad[0] = n;
            if (n <= 0) return pad[0];
            return deep(n - 1) + pad[0];
        }
        int on_attack(int x) { return deep(2000); }
        """,
        # under both MPU models the stack walks down into
        # execute-only code and the *hardware* catches it — the
        # paper's overflow containment story
        expected={_SW: _origins("SOFTWARE_CHECK"),
                  _MPU: _origins("MPU"),
                  _ADV: _origins("MPU")},
        no_isolation="uncontained",
        recursive_stack=128,
    ),
    AttackTemplate(
        name="mpu-reconfig",
        summary="rewrite MPUCTL0 from app code to switch the MPU off",
        source="""
        int on_attack(int x) {
            int *p = (int *)0x05A0;
            *p = 0;
            return 0;
        }
        """,
        # MPU registers live in peripheral space the real MPU cannot
        # cover: the compiler check must catch the pointer (and does,
        # under both compiled models); the idealized MPU covers it.
        expected={_SW: _origins("SOFTWARE_CHECK"),
                  _MPU: _origins("SOFTWARE_CHECK"),
                  _ADV: _origins("MPU")},
    ),
)


def _build(model: IsolationModel, attacker_source: str,
           recursive_stack: int = 0, attacker_first: bool = True):
    kwargs = {}
    if recursive_stack:
        kwargs["recursive_stack"] = recursive_stack
    attacker = AppSource("attacker", attacker_source, ["on_attack"],
                         **kwargs)
    victim = AppSource("victim", VICTIM_SOURCE, ["on_victim"])
    apps = [attacker, victim] if attacker_first else [victim, attacker]
    firmware = AftPipeline(model).build(apps)
    return firmware, AmuletMachine(firmware)


def _resolve_source(template: AttackTemplate,
                    model: IsolationModel,
                    attacker_first: bool = True) -> str:
    if not template.needs:
        return template.source
    probe, _machine = _build(model, _PLACEHOLDER,
                             attacker_first=attacker_first)
    if template.needs == "victim_stack":
        address = probe.apps["victim"].stack_top
        return template.source.format(victim_stack=address)
    if template.needs == "victim_secret":
        address = probe.symbol("app_victim_secret")
        return template.source.format(victim_secret=address)
    raise ValueError(f"unknown probe kind {template.needs!r}")


def run_attack(template: AttackTemplate,
               model: IsolationModel) -> AttackOutcome:
    """One cell: compile the template under ``model`` and check the
    containment (or, for No-Isolation, the failure) contract."""
    if model is IsolationModel.NO_ISOLATION:
        return _run_no_isolation(template)

    source = _resolve_source(template, model)
    _firmware, machine = _build(model, source, template.recursive_stack)
    result = machine.dispatch("attacker", "on_attack", [0])
    origin = result.fault.origin if result.faulted else None
    if not result.faulted:
        return AttackOutcome(template.name, model, False, None,
                             "attack completed — NOT contained")
    if origin not in template.expected[model]:
        want = "/".join(sorted(o.name for o in template.expected[model]))
        return AttackOutcome(template.name, model, False, origin,
                             f"contained, but origin != {want}")
    # containment also means the victim is untouched
    victim = machine.dispatch("victim", "on_victim", [2])
    if victim.faulted or victim.return_value != 0x1234 + 2:
        return AttackOutcome(template.name, model, False, origin,
                             "victim damaged after contained attack")
    return AttackOutcome(template.name, model, True, origin,
                         "contained, victim intact")


def _run_no_isolation(template: AttackTemplate) -> AttackOutcome:
    model = IsolationModel.NO_ISOLATION
    if template.no_isolation == "corrupts_secret":
        # victim placed first so its layout is independent of the
        # attacker's size; overwrite the secret and watch the victim
        # return the corrupted value
        probe, _m = _build(model, _PLACEHOLDER, attacker_first=False)
        secret = probe.symbol("app_victim_secret")
        source = (f"int on_attack(int x) {{"
                  f" int *p = (int *){secret}; *p = 0x666;"
                  f" return *p; }}")
        _fw, machine = _build(model, source, attacker_first=False)
        result = machine.dispatch("attacker", "on_attack", [0])
        victim = machine.dispatch("victim", "on_victim", [0])
        corrupted = (not result.faulted and not victim.faulted
                     and victim.return_value == 0x666)
        return AttackOutcome(
            template.name, model, corrupted, None,
            "victim secret corrupted" if corrupted
            else "corruption not observed")

    source = _resolve_source(template, model)
    _fw, machine = _build(model, source, template.recursive_stack)
    result = machine.dispatch("attacker", "on_attack", [0])
    origin = result.fault.origin if result.faulted else None
    if template.no_isolation == "no_fault":
        ok = not result.faulted
        return AttackOutcome(template.name, model, ok, origin,
                             "attack completed unchecked" if ok
                             else "unexpectedly stopped")
    # "uncontained": whatever happened, no isolation mechanism fired
    ok = origin not in _ISOLATION_ORIGINS
    return AttackOutcome(
        template.name, model, ok, origin,
        "escaped isolation (crash or silent success)" if ok
        else "unexpectedly stopped by an isolation origin")


def run_attack_matrix(
        templates: Optional[Tuple[AttackTemplate, ...]] = None,
) -> List[AttackOutcome]:
    """The full matrix: every template under its isolation models and
    under No-Isolation."""
    outcomes: List[AttackOutcome] = []
    for template in (templates or ATTACK_TEMPLATES):
        for model in template.models():
            outcomes.append(run_attack(template, model))
        outcomes.append(run_attack(template,
                                   IsolationModel.NO_ISOLATION))
    return outcomes
