"""Campaign orchestration for ``repro fuzz``.

Runs batches of differential seeds (shrinking and archiving any
divergence into the corpus), replays archived corpus cases, and runs
the attack matrix — the combination the CI smoke job executes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from repro.fuzz.attacks import AttackOutcome, run_attack_matrix
from repro.fuzz.generator import generate_program
from repro.fuzz.harness import (
    DiffResult,
    FuzzHarnessError,
    run_differential,
)
from repro.fuzz.shrink import load_case, shrink_program, write_case

#: default archive directory for shrunken divergence cases
DEFAULT_CORPUS = Path("tests/fuzz_corpus")

Report = Callable[[str], None]


def _silent(_message: str) -> None:
    pass


@dataclass
class CampaignStats:
    """Aggregate outcome of one differential campaign."""

    seeds: int = 0
    ok: int = 0
    divergences: List[DiffResult] = field(default_factory=list)
    build_errors: List[str] = field(default_factory=list)
    instructions: int = 0
    elapsed: float = 0.0
    cases_written: List[Path] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.divergences and not self.build_errors

    def describe(self) -> str:
        rate = self.instructions / self.elapsed if self.elapsed else 0
        return (f"{self.seeds} seeds: {self.ok} ok, "
                f"{len(self.divergences)} divergences, "
                f"{len(self.build_errors)} build errors "
                f"({self.instructions} insns, {self.elapsed:.1f}s, "
                f"{rate:,.0f} insn/s)")


def _still_diverges(chunk: int, max_instructions: int):
    def predicate(candidate) -> bool:
        try:
            return not run_differential(
                candidate, chunk=chunk,
                max_instructions=max_instructions).ok
        except FuzzHarnessError:
            # e.g. a removed subroutine that is still called — the
            # candidate does not link, so it does not reproduce
            return False
    return predicate


def run_differential_campaign(
        seeds: int = 500,
        seed_start: int = 0,
        chunk: int = 256,
        max_instructions: int = 20_000,
        corpus: Optional[Path] = DEFAULT_CORPUS,
        report: Report = _silent) -> CampaignStats:
    """Run ``seeds`` consecutive differential seeds.  Divergent seeds
    are shrunk to a minimal repro and archived under ``corpus`` (pass
    ``None`` to skip archiving)."""
    stats = CampaignStats()
    started = time.perf_counter()
    for seed in range(seed_start, seed_start + seeds):
        stats.seeds += 1
        program = generate_program(seed)
        try:
            result = run_differential(program, chunk=chunk,
                                      max_instructions=max_instructions)
        except FuzzHarnessError as error:
            stats.build_errors.append(str(error))
            report(f"seed {seed}: BUILD ERROR — {error}")
            continue
        stats.instructions += result.instructions
        if result.ok:
            stats.ok += 1
            continue
        report(result.describe())
        report(f"seed {seed}: shrinking...")
        minimal = shrink_program(
            program, _still_diverges(chunk, max_instructions))
        final = run_differential(minimal, chunk=chunk,
                                 max_instructions=max_instructions)
        stats.divergences.append(final)
        if corpus is not None:
            path = Path(corpus) / f"divergence_seed{seed}.s"
            write_case(minimal, path,
                       note=final.divergence.describe()
                       if final.divergence else "divergence")
            stats.cases_written.append(path)
            report(f"seed {seed}: minimal repro -> {path}")
    stats.elapsed = time.perf_counter() - started
    return stats


def replay_corpus(corpus: Path = DEFAULT_CORPUS,
                  chunk: int = 256,
                  max_instructions: int = 20_000,
                  report: Report = _silent) -> List[DiffResult]:
    """Re-run every archived ``.s`` case; fixed bugs should replay
    clean, open ones reproduce deterministically."""
    results = []
    for path in sorted(Path(corpus).glob("*.s")):
        result = run_differential(load_case(path), chunk=chunk,
                                  max_instructions=max_instructions)
        report(f"{path.name}: {result.describe()}")
        results.append(result)
    return results


def run_smoke(seeds: int = 200, seed_start: int = 0,
              report: Report = _silent) -> bool:
    """The CI gate: a fixed block of differential seeds plus the full
    attack matrix.  Returns True when everything holds."""
    stats = run_differential_campaign(
        seeds=seeds, seed_start=seed_start, corpus=None, report=report)
    report(stats.describe())
    outcomes = run_attack_matrix()
    failures = [o for o in outcomes if not o.ok]
    for outcome in outcomes:
        report(outcome.describe())
    return stats.clean and not failures
